#!/usr/bin/env python3
"""Watch HPCSched track a dynamically changing application.

Runs MetBenchVar (the imbalance reverses every k iterations) and prints
a per-iteration log of each worker's utilization and the detector's
priority decisions — the machinery of paper Figures 4(c)/4(d).

Usage::

    python examples/dynamic_behavior.py [uniform|adaptive]
"""

import sys
from collections import defaultdict

from repro import MetBenchVar, run_experiment
from repro.trace.gantt import render_gantt

K = 4
ITERATIONS = 3 * K


def main() -> None:
    heuristic = sys.argv[1] if len(sys.argv) > 1 else "uniform"
    result = run_experiment(
        MetBenchVar(iterations=ITERATIONS, k=K), heuristic
    )

    # Interleave the iteration-utilization marks and priority changes.
    events = []
    for ev in result.trace.events:
        if ev.kind == "iteration":
            events.append((ev.time, ev.name, f"util={ev.info['util'] * 100:5.1f}%"))
        elif ev.kind == "hw_priority":
            events.append((ev.time, ev.name, f"PRIORITY -> {ev.info['priority']}"))
    events.sort()

    print(f"MetBenchVar, k={K}, heuristic={heuristic}")
    print(f"(the load reverses at iterations {K} and {2 * K})\n")
    per_task_iter = defaultdict(int)
    for t, name, what in events:
        if name == "master":
            continue
        if "util" in what:
            per_task_iter[name] += 1
            print(f"t={t:8.3f}s  {name}  iter {per_task_iter[name]:>2}  {what}")
        else:
            print(f"t={t:8.3f}s  {name}  {'':>9}{what}")

    print(f"\nexecution time: {result.exec_time:.2f}s, "
          f"{result.priority_changes} priority changes")
    print("\ntrace:")
    print(render_gantt(result.trace, result.exec_time, width=100,
                       names=[f"P{i}" for i in range(1, 5)]))


if __name__ == "__main__":
    main()
