#!/usr/bin/env python3
"""Quickstart: balance an imbalanced MPI application with HPCSched.

Runs the paper's MetBench microbenchmark (one small-load and one
big-load worker per POWER5 core) under the standard CFS scheduler and
under HPCSched with the Uniform heuristic, then prints the paper-style
characterization table and the execution traces.

Usage::

    python examples/quickstart.py
"""

from repro import MetBench, render_gantt, run_experiment
from repro.analysis.tables import format_characterization_table

ITERATIONS = 10


def main() -> None:
    workload = MetBench(iterations=ITERATIONS)

    baseline = run_experiment(MetBench(iterations=ITERATIONS), "cfs")
    dynamic = run_experiment(MetBench(iterations=ITERATIONS), "uniform")

    print(format_characterization_table([baseline, dynamic], "MetBench"))
    print()
    print(
        f"HPCSched (Uniform) improved execution time by "
        f"{dynamic.improvement_over(baseline):.1f}% "
        f"({baseline.exec_time:.2f}s -> {dynamic.exec_time:.2f}s) "
        f"with {dynamic.priority_changes} hardware-priority changes."
    )

    print("\n--- baseline CFS trace ---")
    print(render_gantt(baseline.trace, baseline.exec_time, width=90,
                       names=[f"P{i}" for i in range(1, 5)]))
    print("\n--- HPCSched trace (balanced after iteration 1) ---")
    print(render_gantt(dynamic.trace, dynamic.exec_time, width=90,
                       names=[f"P{i}" for i in range(1, 5)]))

    print("\nPriority decisions:")
    for name, history in sorted(dynamic.priority_history.items()):
        for t, prio in history:
            print(f"  t={t:7.3f}s  {name} -> hardware priority {prio}")


if __name__ == "__main__":
    main()
