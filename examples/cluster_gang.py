#!/usr/bin/env python3
"""Cluster-level gang scheduling on top of HPCSched (paper §VI).

The paper's future work: HPCSched balances inside a node; a cluster
scheduler should assign *groups* of tasks to nodes knowing that the
local scheduler can absorb bounded intra-core imbalance.  This example
runs an 8-rank application with an ascending load ladder on a 2-node
cluster and compares:

* **block** placement (what a sorted host file gives you): all light
  ranks on node 0, all heavy on node 1 — heavy shares a core with
  heavy, which HPCSched cannot fix (both siblings want the priority);
* **gang** placement: heavy paired with light per SMT core (inside the
  ±2 priority window's ~7x absorbable ratio), node totals equalized.

Usage::

    python examples/cluster_gang.py
"""

from repro.cluster.experiment import DEFAULT_LOADS, run_cluster


def main() -> None:
    print(f"ranks and loads: {DEFAULT_LOADS}\n")
    results = {}
    for strategy in ("block", "gang"):
        for hpc in (False, True):
            results[(strategy, hpc)] = run_cluster(
                strategy, iterations=10, use_hpc=hpc
            )

    print(f"{'placement':<10}{'local HPCSched':>15}{'exec time':>11}{'node loads':>16}")
    for (strategy, hpc), res in results.items():
        loads = " / ".join(
            f"{v:.1f}" for _, v in sorted(res.node_loads.items())
        )
        print(f"{strategy:<10}{('yes' if hpc else 'no'):>15}"
              f"{res.exec_time:>10.2f}s{loads:>16}")

    base = results[("block", False)].exec_time
    best = results[("gang", True)].exec_time
    print(
        f"\ngang placement + per-node HPCSched: "
        f"{100 * (base - best) / base:.0f}% faster than naive placement —"
        "\nthe two levels of balancing are complementary: the gang layer"
        "\nfixes what the node scheduler cannot see, and vice versa."
    )


if __name__ == "__main__":
    main()
