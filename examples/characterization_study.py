#!/usr/bin/env python3
"""Characterize the hardware-priority mechanism (the ISCA'08 method).

Co-schedules two busy loops on one POWER5 core at every priority pair
in [2, 6], measuring each thread's speed and its PMU decode share —
the methodology of the paper's companion study (reference [4]) rerun
inside the simulator.  Prints the speed matrix for the CPU-bound and
memory-bound profiles side by side; the contrast is the whole reason
SIESTA cannot be balanced while MetBench can.

Usage::

    python examples/characterization_study.py
"""

from repro.experiments.characterization import characterize, render
from repro.power5.perfmodel import CPU_BOUND, MEM_BOUND


def main() -> None:
    for profile in (CPU_BOUND, MEM_BOUND):
        print(f"=== profile: {profile.name} "
              f"(ST speedup {profile.st_speedup}x) ===")
        measurements = characterize(profile)
        print(render(measurements))
        m = measurements[(6, 4)]
        print(
            f"\nat (+2/-2): favoured thread {m.speed_a:.2f}x, victim "
            f"{measurements[(4, 6)].speed_a:.2f}x, decode shares "
            f"{m.decode_share_a:.3f}/{m.decode_share_b:.3f} "
            "(Table I: 0.875/0.125)\n"
        )


if __name__ == "__main__":
    main()
