#!/usr/bin/env python3
"""Plug a custom balancing heuristic into HPCSched.

The paper's future work asks for "an heuristic capable of performing
well for both constant and dynamic applications".  This example
implements a *proportional* heuristic — instead of the LOW/HIGH band
jump it maps utilization linearly onto the priority window — and races
it against the paper's Uniform heuristic on MetBench.

It demonstrates the extension API: subclass
:class:`repro.hpcsched.heuristics.Heuristic`, implement ``decide`` and
hand the instance to ``attach_hpcsched``.

Usage::

    python examples/custom_heuristic.py
"""

from typing import Optional

from repro import MetBench, UniformHeuristic, attach_hpcsched, build_kernel, launch_workload
from repro.hpcsched.heuristics import Heuristic


class ProportionalHeuristic(Heuristic):
    """Map the recent utilization linearly onto [MIN_PRIO, MAX_PRIO]."""

    name = "proportional"

    def decide(self, detector, task, stats) -> Optional[int]:
        tun = detector.kernel.tunables
        lo = tun.get("hpcsched/min_prio")
        hi = tun.get("hpcsched/max_prio")
        util = stats.last_util if stats.last_util is not None else 0.0
        # full window between the paper's LOW/HIGH anchor points
        low_anchor = tun.get("hpcsched/low_util") / 100.0
        high_anchor = tun.get("hpcsched/high_util") / 100.0
        if util <= low_anchor:
            return lo
        if util >= high_anchor:
            return hi
        frac = (util - low_anchor) / (high_anchor - low_anchor)
        return lo + round(frac * (hi - lo))


def run(heuristic) -> float:
    kernel = build_kernel()
    attach_hpcsched(kernel, heuristic)
    launch_workload(kernel, MetBench(iterations=10), use_hpc=True)
    return kernel.run()


def main() -> None:
    baseline_kernel = build_kernel()
    launch_workload(baseline_kernel, MetBench(iterations=10))
    base = baseline_kernel.run()

    uniform = run(UniformHeuristic())
    proportional = run(ProportionalHeuristic())

    print(f"CFS baseline:            {base:8.2f}s")
    print(f"HPCSched / Uniform:      {uniform:8.2f}s "
          f"({100 * (base - uniform) / base:+.1f}%)")
    print(f"HPCSched / Proportional: {proportional:8.2f}s "
          f"({100 * (base - proportional) / base:+.1f}%)")


if __name__ == "__main__":
    main()
