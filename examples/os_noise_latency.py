#!/usr/bin/env python3
"""The SIESTA story: scheduling latency, not balance (paper §V-D).

Runs a latency-sensitive irregular application (frequent tiny compute
phases + global reductions) with OS-noise daemons on every CPU, under
CFS and under HPCSched, and decomposes where the improvement comes
from: wakeup latencies collapse and the daemons are starved while HPC
work is runnable, while the utilization balance barely moves.

Usage::

    python examples/os_noise_latency.py
"""

from repro import NoiseDaemons, Siesta, run_experiment

SCF_STEPS = 6


def main() -> None:
    noise = NoiseDaemons()
    print(
        f"OS noise: one daemon per CPU, {noise.duty * 100:.1f}% duty "
        f"({noise.burst * 1e3:.2f} ms every {noise.period * 1e3:.0f} ms)\n"
    )

    base = run_experiment(Siesta(scf_steps=SCF_STEPS), "cfs", noise=noise)
    hpc = run_experiment(Siesta(scf_steps=SCF_STEPS), "adaptive", noise=noise)

    print(f"{'':<12}{'CFS':>12}{'HPCSched':>12}")
    print(f"{'exec time':<12}{base.exec_time:>11.2f}s{hpc.exec_time:>11.2f}s")
    print(
        f"{'mean latency':<12}{base.mean_wakeup_latency * 1e6:>10.1f}us"
        f"{hpc.mean_wakeup_latency * 1e6:>10.1f}us"
    )
    print(
        f"{'max latency':<12}{base.max_wakeup_latency * 1e3:>10.2f}ms"
        f"{hpc.max_wakeup_latency * 1e3:>10.2f}ms"
    )
    print()
    print(f"{'rank':<6}{'%comp CFS':>11}{'%comp HPCSched':>16}")
    for name in sorted(base.tasks):
        print(
            f"{name:<6}{base.tasks[name].pct_comp:>10.1f}%"
            f"{hpc.tasks[name].pct_comp:>15.1f}%"
        )
    print(
        f"\nimprovement: {hpc.improvement_over(base):.1f}% — from the "
        "scheduling policy (class ordering + latency), not from balance."
    )


if __name__ == "__main__":
    main()
