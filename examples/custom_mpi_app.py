#!/usr/bin/env python3
"""Balance *your own* MPI application with HPCSched.

This example builds a pipeline-style MPI application from scratch using
the public workload API — four ranks with uneven stage costs that pass
results around a ring — and shows the single line an application needs
to benefit from HPCSched: ``yield mpi.setscheduler_hpc()`` (done for
you by ``launch_workload(use_hpc=True)``).

Usage::

    python examples/custom_mpi_app.py
"""

from typing import Generator, List

from repro import (
    CPU_BOUND,
    AdaptiveHeuristic,
    MPIRank,
    attach_hpcsched,
    build_kernel,
    compute_stats,
    launch_workload,
)
from repro.workloads.base import RankSpec, Workload

#: Per-rank stage cost (seconds of work at SMT-equal speed).  Rank 1 is
#: the heavy stage; its core sibling (rank 0) is nearly idle.
STAGE_COST = [0.05, 0.40, 0.10, 0.35]
ROUNDS = 20


class RingPipeline(Workload):
    """Each rank computes its stage, then exchanges with its successor."""

    name = "ring-pipeline"

    def _program(self, rank: int):
        n = len(STAGE_COST)
        succ = (rank + 1) % n
        pred = (rank - 1) % n

        def factory(mpi: MPIRank) -> Generator:
            def prog():
                for round_no in range(ROUNDS):
                    yield mpi.compute(STAGE_COST[rank])
                    # Hand the result downstream, take the next input.
                    # Use the isend/irecv/waitall idiom: the detector
                    # counts iterations at MPI *waits*, and waitall
                    # blocks at least for the send handshake even on the
                    # bottleneck rank (whose inputs are always ready).
                    handles = [
                        mpi.isend(succ, tag=round_no),
                        mpi.irecv(pred, tag=round_no),
                    ]
                    yield mpi.waitall(handles)

            return prog()

        return factory

    def rank_specs(self) -> List[RankSpec]:
        return [
            RankSpec(name=f"stage{r}", factory=self._program(r),
                     profile=CPU_BOUND, cpu=r)
            for r in range(len(STAGE_COST))
        ]


def run(use_hpc: bool) -> tuple:
    kernel = build_kernel()
    if use_hpc:
        attach_hpcsched(kernel, AdaptiveHeuristic())
    launch_workload(kernel, RingPipeline(), use_hpc=use_hpc)
    end = kernel.run()
    stats = compute_stats(kernel.trace, end)
    return end, stats


def main() -> None:
    base_time, base_stats = run(use_hpc=False)
    hpc_time, hpc_stats = run(use_hpc=True)

    print(f"{'rank':<8}{'%comp CFS':>11}{'%comp HPCSched':>16}")
    for name in sorted(n for n in base_stats if n.startswith("stage")):
        print(
            f"{name:<8}{base_stats[name].pct_comp:>10.1f}%"
            f"{hpc_stats[name].pct_comp:>15.1f}%"
        )
    gain = 100.0 * (base_time - hpc_time) / base_time
    print(f"\nexecution time: {base_time:.2f}s -> {hpc_time:.2f}s "
          f"({gain:+.1f}% with HPCSched)")


if __name__ == "__main__":
    main()
