"""Fast-forward engine: closed-form elision of provably-inert timers.

Between scheduler decision points the simulation's state evolves in
closed form: compute phases progress at piecewise-constant fluid rates
(banked exactly by ``Task.bank_progress`` at the next rate change) and
periodic timers re-arm along a fixed arithmetic chain.  A timer fire
whose outcome is *predetermined* — it will observe nothing actionable
and merely re-arm itself — therefore does not need to be executed at
all: its effect on every future observable is the identity.

This module generalizes the sharded runner's balance-timer parking
(PR 5) into a reusable mechanism:

* A :class:`TimerChain` is one periodic timer (one CPU's balance timer,
  one CPU's ``full_ticks`` tick).  It is either *armed* (a real event in
  the heap — indistinguishable from the stock chain) or *parked* (no
  event; only the next chain point is remembered).
* A chain may be parked only while its **inertness witness** holds: a
  predicate over owner state proving the fire's body is a no-op (e.g.
  "no runnable task anywhere" for a balance round).  The owner must
  invalidate eagerly: every state transition that can break the witness
  (a run queue's 0→1 edge, a migratable task appearing, a task being
  installed on an idle CPU) calls back into the family, which re-arms
  the chain at its first chain point at or after ``now``.
* Re-arm arithmetic is **bit-exact**: the walk repeats the serial
  re-arms' ``t += interval`` float accumulation from the parked anchor,
  so a reinstated fire lands at exactly the instant the serial chain
  would have fired.  Skipped points are no-op fires by construction
  (the witness held for the whole parked span — it can only break via
  an invalidation edge, which un-parks immediately).
* A chain point landing exactly on ``now`` is ambiguous: did the serial
  fire precede or follow the event that broke the witness?  The heap
  orders same-instant events by priority, so the walk compares the
  chain's priority against :attr:`Simulator.cur_event_prio`: if the
  chain fires *earlier* (lower priority value) it would have observed
  the still-inert pre-edge state — the point is treated as already
  elided; otherwise the chain is re-armed at ``now`` and fires after
  the current event, exactly as the serial heap would order it.
  (Equal priorities keep the re-arm-at-now behaviour; the only such
  collision — a balance fire on one kernel migrating work into
  another — is commutative, see ``cluster/sharded.py``.)
* Chains whose serial twin can *die* (the balance chain stops re-arming
  once ``live_tasks`` hits zero) record the death instant via
  :meth:`ChainFamily.mark_dead`; a later revival calls
  :meth:`ChainFamily.reap`, which kills exactly the parked chains that
  had a chain point inside the dead window — the points at which the
  serial fire would have found ``live_tasks <= 0`` and returned without
  re-arming.
* A tunable change re-times the chain: serial fires *before* the change
  re-arm with the old interval and the first fire *after* it adopts the
  new one.  :meth:`ChainFamily.retime` (driven from the owner's
  ``Tunables.subscribe`` refresh, which runs synchronously inside
  ``set()``) walks every parked anchor forward with the **old** interval
  up to the change instant, then swaps the interval — reproducing that
  split exactly.

The engine is wired behind one flag: the ``REPRO_FASTFORWARD``
environment variable (default on), overridable per component
(``Kernel(fastforward=...)``, ``Simulator(fastforward=...)``).  With the
flag off, every consumer falls back to the stock always-armed chains.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore.engine import Simulator

import os

#: Environment switch for the whole fast-forward engine (default on).
ENV_FLAG = "REPRO_FASTFORWARD"

_OFF_VALUES = ("", "0", "false", "off", "no")


def fastforward_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the engine flag: an explicit ``override`` wins, then the
    ``REPRO_FASTFORWARD`` environment variable, then the default (on)."""
    if override is not None:
        return bool(override)
    value = os.environ.get(ENV_FLAG)
    if value is None:
        return True
    return value.strip().lower() not in _OFF_VALUES


class TimerChain:
    """One periodic timer chain (e.g. one CPU's balance timer).

    ``event`` is the pending heap event while armed and ``None`` while
    parked (or mid-fire); ``next_time`` is the next chain point — the
    instant the serial chain's next fire would land on — maintained by
    the owner's fire wrapper and by the family's walk helpers.
    """

    __slots__ = ("key", "label", "fire", "inert", "next_time", "event", "family")

    def __init__(
        self,
        key: Any,
        label: str,
        anchor: float,
        inert: Callable[[], bool],
        family: "ChainFamily",
    ) -> None:
        self.key = key
        self.label = label
        self.fire: Callable[[], Any] = _unset_fire
        self.inert = inert
        self.next_time = anchor
        self.event: Optional[Any] = None
        self.family = family


def _unset_fire() -> None:  # pragma: no cover - programming error guard
    raise RuntimeError("TimerChain.fire was never assigned")


class ChainFamily:
    """All chains of one owner sharing interval, priority and re-arm
    arithmetic (a kernel's balance timers; its ``full_ticks`` ticks).

    The owner provides the fire wrappers (which decide park vs. arm at
    each fire with the exact serial guards) and calls the invalidation
    entry points from its witness-breaking edges.  The family owns the
    arithmetic: bit-exact walks, dead-window reaping, tunable re-timing.
    """

    __slots__ = ("sim", "interval", "priority", "chains", "parked", "dead_at", "elided")

    def __init__(self, sim: "Simulator", interval: float, priority: int) -> None:
        self.sim = sim
        self.interval = interval
        self.priority = priority
        # Chain families are the only consumers of ``sim.cur_event_prio``
        # (the re-arm tie walk).  Registering here lets the accelerated
        # core skip priority tracking entirely until the first family
        # exists — including kernels constructed mid-run, whose chains
        # anchor at or after ``now`` and are therefore first observable
        # at an instant the storm stage re-checks this counter.
        sim._ff_users += 1
        self.chains: Dict[Any, TimerChain] = {}
        #: Number of currently-parked chains (fast guard for edge hooks).
        self.parked = 0
        #: Instant the owner's chains became collectively dead (e.g.
        #: ``live_tasks`` hit 0) — ``None`` while alive.  See ``reap``.
        self.dead_at: Optional[float] = None
        #: Fires skipped analytically (observability/bench accounting).
        self.elided = 0

    # -- construction ---------------------------------------------------
    def add(
        self,
        key: Any,
        label: str,
        anchor: float,
        inert: Callable[[], bool],
    ) -> TimerChain:
        """Create a chain anchored at absolute time ``anchor`` (not yet
        armed nor parked; the caller assigns ``fire`` then picks one)."""
        chain = TimerChain(key, label, anchor, inert, self)
        self.chains[key] = chain
        return chain

    def arm(self, chain: TimerChain) -> None:
        """Push the chain's next fire on the heap (stock behaviour)."""
        chain.event = self.sim.at(
            chain.next_time, chain.fire, priority=self.priority,
            label=chain.label,
        )

    # -- fire-time transitions (called from the owner's wrappers) -------
    def park(self, chain: TimerChain) -> None:
        """Park a chain instead of (re-)arming it: the witness holds, so
        every fire until the next invalidation edge is provably a no-op
        re-arm.  Also used at arm time for chains born inert (e.g. every
        task pinned when the balance chains start) — such a chain never
        touches the heap at all."""
        self.parked += 1

    def kill(self, chain: TimerChain) -> None:
        """Called by a fire wrapper when the serial chain would die
        (it returns without re-arming)."""
        del self.chains[chain.key]

    # -- invalidation ---------------------------------------------------
    def unpark_ready(self) -> None:
        """Reinstate every parked chain whose witness no longer holds.

        Called from the owner's witness-breaking edges (inside the event
        that broke the witness, before any same-instant chain fire with
        a later priority could have run).
        """
        if not self.parked:
            return
        for chain in list(self.chains.values()):
            if chain.event is None and not chain.inert():
                self._reinstate(chain)

    def unpark_one(self, chain: TimerChain) -> None:
        """Reinstate one specific parked chain (per-chain witnesses,
        e.g. the per-CPU tick chain on a non-idle install)."""
        if chain.event is None:
            self._reinstate(chain)

    def _reinstate(self, chain: TimerChain) -> None:
        """Walk the parked chain to its first not-yet-elided chain point
        at or after ``now`` and re-arm there — or kill it if a point
        fell inside a dead window.  The walk repeats the serial re-arms'
        ``t += interval`` float accumulation, so the landing instant is
        bit-identical to the serial fire's."""
        sim = self.sim
        now = sim.now
        t = chain.next_time
        interval = self.interval
        dead_at = self.dead_at
        elided = 0
        while t < now:
            if dead_at is not None and t >= dead_at:
                self.parked -= 1
                del self.chains[chain.key]
                return
            t += interval
            elided += 1
        if t == now:
            # Same-instant tie: the serial fire at (now, self.priority)
            # ran before the current event iff its priority is lower —
            # in which case it observed the pre-edge (inert) state and
            # this point is already elided.
            prio = sim.cur_event_prio
            if prio is not None and self.priority < prio:
                if dead_at is not None and t >= dead_at:
                    self.parked -= 1
                    del self.chains[chain.key]
                    return
                t += interval
                elided += 1
        self.elided += elided
        self.parked -= 1
        chain.next_time = t
        chain.event = sim.at(
            t, chain.fire, priority=self.priority, label=chain.label
        )

    # -- dead windows ---------------------------------------------------
    def mark_dead(self, now: float) -> None:
        """Record that the serial chains stopped re-arming at ``now``
        (first death instant wins; cleared by :meth:`reap`)."""
        if self.dead_at is None:
            self.dead_at = now

    def reap(self, now: float) -> None:
        """Close a dead window at revival time: kill exactly the parked
        chains whose next serial fire fell inside ``[dead_at, now)`` —
        where the serial fire would have found the owner dead and
        returned without re-arming — and advance the survivors' anchors
        past the window."""
        dead_at = self.dead_at
        self.dead_at = None
        if dead_at is None:
            return
        interval = self.interval
        for chain in list(self.chains.values()):
            if chain.event is not None:
                continue  # armed: its own fire performs the dead check
            t = chain.next_time
            elided = 0
            killed = False
            while t < now:
                if t >= dead_at:
                    killed = True
                    break
                t += interval
                elided += 1
            if killed:
                self.parked -= 1
                del self.chains[chain.key]
            else:
                chain.next_time = t
                self.elided += elided

    # -- tunable changes ------------------------------------------------
    def retime(self, new_interval: float) -> None:
        """Adopt a changed interval.

        Serial chains re-arm with the interval read *at fire time*, so
        fires before the change instant use the old value and the first
        fire after it uses the new one.  Parked anchors are therefore
        walked forward with the **old** interval up to ``now`` (the
        change instant — tunable subscribers run synchronously inside
        ``set()``) before the family adopts the new interval; armed
        chains need nothing (their next re-arm reads the new value).
        """
        if new_interval == self.interval:
            return
        now = self.sim.now
        old = self.interval
        dead_at = self.dead_at
        for chain in list(self.chains.values()):
            if chain.event is not None:
                continue
            t = chain.next_time
            elided = 0
            killed = False
            while t < now:
                if dead_at is not None and t >= dead_at:
                    killed = True
                    break
                t += old
                elided += 1
            if killed:
                self.parked -= 1
                del self.chains[chain.key]
            else:
                chain.next_time = t
                self.elided += elided
        self.interval = new_interval

    # -- teardown -------------------------------------------------------
    def dissolve(self) -> List[TimerChain]:
        """Drop every chain, cancelling armed events (used when the
        owner leaves the fast-forward regime, e.g. ``full_ticks`` is
        switched off mid-run and stock NOHZ arming takes over)."""
        dropped = list(self.chains.values())
        for chain in dropped:
            if chain.event is not None and not chain.event.cancelled:
                chain.event.cancel()
            chain.event = None
        self.chains.clear()
        self.parked = 0
        self.dead_at = None
        return dropped

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<ChainFamily interval={self.interval} prio={self.priority} "
            f"chains={len(self.chains)} parked={self.parked} "
            f"elided={self.elided}>"
        )
