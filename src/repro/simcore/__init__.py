"""Discrete-event simulation core.

The engine is deliberately small: a monotonic clock, a binary-heap event
queue with stable tie-breaking, and cancellable event handles.  Everything
else in the stack (the simulated kernel, the POWER5 chip model, the MPI
runtime) is built as callbacks on top of this engine.

Time is a float measured in **seconds** of simulated machine time.
"""

from repro.simcore.events import Event, EventQueue
from repro.simcore.engine import Simulator, SimulationError
from repro.simcore.fastcore import (
    FastEvent,
    FastEventQueue,
    FastSimulator,
    fastcore_enabled,
)
from repro.simcore.fastforward import (
    ChainFamily,
    TimerChain,
    fastforward_enabled,
)
from repro.simcore.profile import (
    EventProfiler,
    activate_profiler,
    deactivate_profiler,
    get_active_profiler,
)

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "SimulationError",
    "FastEvent",
    "FastEventQueue",
    "FastSimulator",
    "fastcore_enabled",
    "ChainFamily",
    "TimerChain",
    "fastforward_enabled",
    "EventProfiler",
    "activate_profiler",
    "deactivate_profiler",
    "get_active_profiler",
]
