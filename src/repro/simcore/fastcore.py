"""Accelerated serial core: slotted event buckets behind the EventQueue API.

The heap engine (:mod:`repro.simcore.engine`) pays one heap sift per
delivered event — tuple allocation plus ~log-n C-level compares per
push and pop.  This module replaces the single heap with a two-level
structure exploiting what event storms actually look like: *many events
share an instant* (same-instant bursts of phase completions, wakeups
and rescheds) and *most pushes carry priority 0*.

* ``FastEventQueue`` keys a dict of **buckets** by exact float timestamp
  and keeps the distinct timestamps in a small ``heapq``.  A bucket is
  either a single :class:`FastEvent` (stored inline — the common case
  for spread-out timers) or a plain list of them.  Pushing into an
  existing instant is an O(1) dict hit + list append; only the *first*
  event of an instant pays a heap push, and the heap holds timestamps,
  not events, so it stays small.
* ``FastEvent`` is a 5-slot ``list`` subclass ``[order, fn, time, label,
  queue]``.  ``order`` folds ``(priority, seq)`` into one integer
  (``priority * SEQ_SPAN + seq``), so sorting a bucket compares plain
  ints in C.  Cancellation is ``fn is None``; the queue slot doubles as
  the lifecycle marker: the owning queue while pending, ``False`` once
  delivered, ``None`` once cancelled.  No wrapper tuple, no ``__dict__``.
* **Lazy sortedness.**  An append extends a sorted bucket iff the
  current tail does not outrank the new event, and the packed-order
  compare (``b[-1][0] > order``) is that exact condition — so in-order
  cascades (monotonic priority-0 seq, or a resched storm appending p5
  after p5) never flag and never sort.  A push whose tail outranks it
  flags the timestamp in ``_unsorted`` and the drain sorts once per
  flagged instant.  The invariant (proof in DESIGN §13): after every
  push the bucket is either sorted or flagged — a flagged bucket stays
  flagged until the drain sorts it, and an unflagged bucket only ever
  received in-order appends.

Delivery order is identical to the heap engine's: all events of the
earliest instant, in ``(priority, seq)`` order, including events pushed
*at* that instant mid-drain (the drain iterates the live bucket list, so
same-instant appends are picked up and re-sorted into the undelivered
tail).  Equivalence is enforced by the oracle stack: goldens, the
differential fuzzer, sharded parity and the hypothesis property suite in
``tests/simcore/test_fastcore_queue_property.py``.

Selection: ``REPRO_FASTCORE`` (default on) or ``Simulator(core=...)``;
``Simulator.__new__`` dispatches construction to :class:`FastSimulator`
(see engine.py), so existing call sites get the fast core transparently
and ``Simulator(core="heap")`` / ``REPRO_FASTCORE=0`` opt out.
"""

from __future__ import annotations

import heapq
import os
import time as _time
from typing import Any, Callable, Iterator, Optional, Tuple

from repro.simcore.engine import (
    DEFAULT_MAX_EVENTS,
    SimulationError,
    Simulator,
)

#: Environment switch for the accelerated core (default on).
ENV_FLAG = "REPRO_FASTCORE"

_OFF_VALUES = ("", "0", "false", "off", "no")

#: ``order = priority * SEQ_SPAN + seq`` packs the (priority, seq)
#: tie-break into one int.  2^48 sequence numbers per priority level is
#: unreachable (the engine's event limit trips several orders of
#: magnitude earlier), and floor division recovers negative priorities
#: exactly, so the packing is lossless.
SEQ_SPAN = 1 << 48


def fastcore_enabled(override: Optional[str] = None) -> bool:
    """Resolve the core selection: an explicit ``core=`` argument wins
    (``"fast"``/``"heap"``), then ``REPRO_FASTCORE``, then the default
    (on)."""
    if override is not None:
        if override not in ("fast", "heap"):
            raise ValueError(f"core must be 'fast' or 'heap', not {override!r}")
        return override == "fast"
    value = os.environ.get(ENV_FLAG)
    if value is None:
        return True
    return value.strip().lower() not in _OFF_VALUES


def _stop_sentinel() -> None:
    """Injected into the deferred list by :meth:`FastSimulator.stop` so
    the storm drain's single ``if deferred:`` test observes the stop
    without a per-event ``_stop_requested`` attribute load."""


class FastEvent(list):
    """A scheduled callback, API-compatible with
    :class:`repro.simcore.events.Event`.

    Layout: ``[order, fn, time, label, queue]``.  The queue slot is the
    owning :class:`FastEventQueue` while pending, ``False`` after
    delivery, ``None`` after cancellation (or ``clear()``); the
    delivered/cancelled distinction lets a mid-drain ``clear()``
    reconcile the engine's batched counters exactly.

    The inherited C list comparison orders same-instant events by their
    packed ``order`` int (all a bucket sort ever compares); it is *not*
    meaningful across different timestamps — order events by ``.time``
    first, as :class:`Event` consumers already do.
    """

    __slots__ = ()

    @property
    def time(self) -> float:
        return self[2]

    @property
    def priority(self) -> int:
        return self[0] // SEQ_SPAN

    @property
    def seq(self) -> int:
        return self[0] % SEQ_SPAN

    @property
    def fn(self):
        return self[1]

    @property
    def label(self) -> str:
        return self[3]

    @property
    def cancelled(self) -> bool:
        return self[1] is None

    @property
    def active(self) -> bool:
        return self[1] is not None

    @property
    def _queue(self):
        q = self[4]
        return q if q.__class__ is FastEventQueue else None

    def cancel(self) -> None:
        """Mark the event so the queue discards it instead of firing it."""
        if self[1] is None:
            return
        self[1] = None
        q = self[4]
        if q.__class__ is FastEventQueue:
            # Pending: keep the queue's counters exact.  A post-delivery
            # cancel leaves the delivered marker (False) in place so the
            # mid-drain clear() reconciliation still counts the event as
            # delivered.
            self[4] = None
            q._cancelled += 1
            corpses = q._corpses + 1
            if corpses > 64 and corpses > len(q) and not q._draining:
                q._compact()
            else:
                q._corpses = corpses

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "cancelled" if self[1] is None else "pending"
        return (
            f"<FastEvent t={self[2]:.9f} prio={self[0] // SEQ_SPAN} "
            f"{self[3]!r} {state}>"
        )


class FastEventQueue:
    """Bucketed priority queue, API-compatible with
    :class:`repro.simcore.events.EventQueue`.

    ``len()`` is derived — ``pushed - delivered - cancelled`` — so the
    push path maintains a single counter.  In exchange, delivery updates
    are *batched per instant* inside the storm stage of
    :meth:`FastSimulator.run`; the counters are exact at every instant
    boundary, and at every event boundary in the general stage (which
    the validation oracle observes).
    """

    __slots__ = (
        "_buckets",
        "_times",
        "_seq",
        "_delivered",
        "_cancelled",
        "_corpses",
        "_unsorted",
        "_draining",
        "_drain_bucket",
        "_clear_epoch",
        "_flushed",
    )

    def __init__(self) -> None:
        #: time -> FastEvent (singleton instant) or list of FastEvents.
        self._buckets: dict = {}
        #: Distinct pending timestamps (heapq; may hold stale entries
        #: for buckets already drained — consumers skip those).
        self._times: list = []
        self._seq = 0
        self._delivered = 0
        self._cancelled = 0
        #: Cancelled events still sitting in buckets awaiting lazy
        #: removal (skipped at drain, or dropped by :meth:`_compact`).
        self._corpses = 0
        #: Timestamps whose bucket may be out of (priority, seq) order;
        #: the drain sorts those once.  See the module docstring.
        self._unsorted: set = set()
        #: True while a run loop drains this queue: compaction would
        #: desynchronize the live bucket iteration, so it is skipped.
        self._draining = False
        #: The list bucket the storm stage is currently delivering with
        #: batched counters (None otherwise); lets a mid-drain clear()
        #: reconcile the in-flight deliveries.
        self._drain_bucket: Optional[list] = None
        #: Bumped by clear(); the storm stage detects a mid-bucket clear
        #: by comparing against the value snapshot at bucket start.
        self._clear_epoch = 0
        #: Deliveries of the interrupted bucket, counted by clear() for
        #: the storm stage to fold into ``events_processed``.
        self._flushed = 0

    def __len__(self) -> int:
        return self._seq - self._delivered - self._cancelled

    # -- push ----------------------------------------------------------
    def push(
        self,
        time: float,
        fn: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> FastEvent:
        """Schedule ``fn`` at absolute ``time`` and return its handle."""
        seq = self._seq
        self._seq = seq + 1
        order = seq if priority == 0 else priority * SEQ_SPAN + seq
        # Built empty then extended in place: list.__iadd__ skips the
        # iterable-copy constructor, measurably cheaper on this path.
        ev = FastEvent()
        ev += (order, fn, time, label, self)
        buckets = self._buckets
        b = buckets.get(time)
        if b is None:
            buckets[time] = ev
            heapq.heappush(self._times, time)
        elif type(b) is list:
            # An append keeps a sorted bucket sorted *iff* the current
            # tail does not outrank it.  The packed-order compare is the
            # exact condition — a priority push that still lands in
            # order (the common resched cascade: p5 after p5, or p5
            # after a tail of lower-priority wakeups) must NOT flag, or
            # every barrier-width instant pays one tail sort per event.
            # An already-flagged bucket is sorted at drain regardless,
            # so comparing only the tail stays sound.  A list bucket is
            # never empty (pop/_head/_compact prune emptied instants,
            # clear drops the dict wholesale), so the tail index is safe.
            if b[-1][0] > order:
                self._unsorted.add(time)
            b.append(ev)
        else:
            buckets[time] = [b, ev]
            if b[0] > order:
                self._unsorted.add(time)
        return ev

    # -- pop / peek ----------------------------------------------------
    def _head(self) -> Optional[Tuple[float, Any]]:
        """(time, bucket) of the earliest instant with a live event,
        dropping stale time entries and leading corpses on the way.
        List buckets are sorted if flagged, so ``bucket[0]`` (or the
        singleton itself) is the next event to fire."""
        buckets = self._buckets
        times = self._times
        while times:
            t = times[0]
            b = buckets.get(t)
            if b is None:
                heapq.heappop(times)
                continue
            if type(b) is not list:
                if b[1] is None:
                    heapq.heappop(times)
                    del buckets[t]
                    self._corpses -= 1
                    continue
                return t, b
            if t in self._unsorted:
                b.sort()
                self._unsorted.discard(t)
            while b and b[0][1] is None:
                del b[0]
                self._corpses -= 1
            if not b:
                heapq.heappop(times)
                del buckets[t]
                continue
            return t, b
        return None

    def pop(self) -> Optional[FastEvent]:
        """Remove and return the earliest pending event, skipping
        cancelled entries.  Returns ``None`` when the queue is
        exhausted."""
        head = self._head()
        if head is None:
            return None
        t, b = head
        if type(b) is not list:
            heapq.heappop(self._times)
            del self._buckets[t]
            ev = b
        else:
            ev = b[0]
            del b[0]
            if not b:
                heapq.heappop(self._times)
                del self._buckets[t]
        ev[4] = False
        self._delivered += 1
        return ev

    def peek_time(self) -> Optional[float]:
        """Time of the earliest pending event, or ``None`` if empty."""
        head = self._head()
        return None if head is None else head[0]

    # -- bulk operations ----------------------------------------------
    def clear(self) -> None:
        """Drop every pending event, marking each one cancelled so held
        handles stop reporting ``active``.

        Safe mid-drain: every list bucket is emptied *in place* (which
        ends the engine's live iteration), and if the storm stage was
        mid-bucket its already-delivered events — identified by the
        ``False`` queue marker, counted only from the registered drain
        bucket because the general stage's deliveries are already in the
        counters — are folded into ``_delivered`` here.  The epoch bump
        tells the storm stage to skip its own (now stale) batched
        bucket-end reconciliation.
        """
        drain_b = self._drain_bucket
        flushed = 0
        if drain_b is not None:
            for ev in drain_b:
                if ev[4] is False:
                    flushed += 1
        for b in self._buckets.values():
            if type(b) is list:
                for ev in b:
                    if ev[4].__class__ is FastEventQueue:
                        ev[1] = None
                        ev[4] = None
                b.clear()
            elif b[4].__class__ is FastEventQueue:
                b[1] = None
                b[4] = None
        self._buckets.clear()
        self._times.clear()
        self._unsorted.clear()
        self._delivered += flushed
        self._cancelled = self._seq - self._delivered
        self._corpses = 0
        if drain_b is not None:
            self._flushed += flushed
            self._clear_epoch += 1
            self._drain_bucket = None

    def _compact(self) -> None:
        """Drop cancelled corpses from every bucket and prune emptied
        instants.  A no-op while a run loop is draining (removal would
        desynchronize the live bucket iteration); the drain skips
        corpses at native list-iteration speed anyway, so deferring
        costs only their memory."""
        if self._draining:
            return
        survivors: dict = {}
        for t, b in self._buckets.items():
            if type(b) is list:
                keep = [ev for ev in b if ev[4].__class__ is FastEventQueue]
                if not keep:
                    continue
                survivors[t] = keep[0] if len(keep) == 1 else keep
            elif b[4].__class__ is FastEventQueue:
                survivors[t] = b
        self._buckets.clear()
        self._buckets.update(survivors)
        self._times[:] = list(survivors)
        heapq.heapify(self._times)
        self._unsorted &= set(survivors)
        self._corpses = 0

    # -- introspection -------------------------------------------------
    def iter_entries(self) -> Iterator[Tuple[float, FastEvent]]:
        """Yield ``(time, event)`` for every pending event, in no
        particular order (the queue-agnostic scan used by the sharded
        runner's action-bound computation)."""
        for t, b in self._buckets.items():
            if type(b) is list:
                for ev in b:
                    if ev[4].__class__ is FastEventQueue:
                        yield t, ev
            elif b[4].__class__ is FastEventQueue:
                yield t, b

    def live_count_check(self) -> Tuple[int, int]:
        """``(tracked, actual)`` pending counts — ``tracked`` is the
        derived count behind ``len()``, ``actual`` an O(n) bucket scan.
        The validate invariants assert they agree."""
        actual = sum(1 for _t, _ev in self.iter_entries())
        return len(self), actual


class FastSimulator(Simulator):
    """:class:`Simulator` on a :class:`FastEventQueue`.

    ``run()`` is two stages.  The *storm stage* handles the unobserved
    configuration (no horizon, no oracle, no profiler, no fast-forward
    chain families; a ``stop_when`` predicate is allowed and checked
    after every delivery) with per-instant batched bookkeeping — the
    ≥1.8× path.  Everything else, including a mid-run transition (a
    kernel constructed inside an event registers chain families, which
    need ``cur_event_prio`` tracking), falls through to the *general
    stage*: same bucket drain, per-event exact bookkeeping,
    horizon/oracle/profiler/stop_when hooks — matching the heap engine's
    general path event for event.
    """

    def __init__(
        self,
        max_events: int = DEFAULT_MAX_EVENTS,
        fastforward: Optional[bool] = None,
        core: Optional[str] = None,
    ) -> None:
        super().__init__(max_events=max_events, fastforward=fastforward, core=core)
        self.queue = FastEventQueue()
        self.core = "fast"

    # ``cur_event_prio`` is stored packed (the delivering event's
    # ``order``) so the drain stores an int it already has; the
    # fast-forward re-arm walk reads the unpacked priority through this
    # property.  The base class assigns None, and ``step()`` assigns
    # real priorities — the setter accepts both.
    @property
    def cur_event_prio(self) -> Optional[int]:
        order = self._cur_order
        return None if order is None else order // SEQ_SPAN

    @cur_event_prio.setter
    def cur_event_prio(self, value: Optional[int]) -> None:
        self._cur_order = None if value is None else value * SEQ_SPAN

    # ------------------------------------------------------------------
    # Scheduling API (hand-inlined push, mirroring engine.at/after)
    # ------------------------------------------------------------------
    def at(
        self,
        time: float,
        fn: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> FastEvent:
        """Schedule ``fn`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time} (< now {self.now})"
            )
        queue = self.queue
        seq = queue._seq
        queue._seq = seq + 1
        order = seq if priority == 0 else priority * SEQ_SPAN + seq
        ev = FastEvent()  # see FastEventQueue.push on the += form
        ev += (order, fn, time, label, queue)
        buckets = queue._buckets
        b = buckets.get(time)
        if b is None:
            buckets[time] = ev
            heapq.heappush(queue._times, time)
        elif type(b) is list:
            # Same invariant as FastEventQueue.push: flag iff the
            # current tail outranks this event (exact packed-order
            # compare — in-order priority pushes must not flag).
            if b[-1][0] > order:
                queue._unsorted.add(time)
            b.append(ev)
        else:
            buckets[time] = [b, ev]
            if b[0] > order:
                queue._unsorted.add(time)
        return ev

    def after(
        self,
        delay: float,
        fn: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> FastEvent:
        """Schedule ``fn`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        queue = self.queue
        seq = queue._seq
        queue._seq = seq + 1
        order = seq if priority == 0 else priority * SEQ_SPAN + seq
        t = self.now + delay
        ev = FastEvent()  # see FastEventQueue.push on the += form
        ev += (order, fn, t, label, queue)
        buckets = queue._buckets
        b = buckets.get(t)
        if b is None:
            buckets[t] = ev
            heapq.heappush(queue._times, t)
        elif type(b) is list:
            # Same invariant as FastEventQueue.push (see at()).
            if b[-1][0] > order:
                queue._unsorted.add(t)
            b.append(ev)
        else:
            buckets[t] = [b, ev]
            if b[0] > order:
                queue._unsorted.add(t)
        return ev

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request the current :meth:`run` loop to stop after the event
        being processed."""
        self._stop_requested = True
        # The storm stage folds its stop check into the existing
        # ``if deferred:`` test; make sure that test fires.
        if self._running and not self._deferred:
            self._deferred.append(_stop_sentinel)

    def run(
        self,
        until: Optional[float] = None,
        stop_when: Optional[Callable[[], bool]] = None,
        until_exclusive: bool = False,
    ) -> float:
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stop_requested = False
        queue = self.queue
        processed = self.events_processed
        queue._draining = True
        try:
            if (
                until is None
                and self.oracle is None
                and self.profiler is None
            ):
                processed = self._run_storm(queue, processed, stop_when)
            if not self._stop_requested:
                processed = self._run_general(
                    queue, processed, until, stop_when, until_exclusive
                )
            if until is not None and len(queue) == 0 and until > self.now:
                self.now = until
        finally:
            self._running = False
            self._cur_order = None
            queue._draining = False
            queue._drain_bucket = None
        return self.now

    def _run_storm(
        self,
        queue: FastEventQueue,
        processed: int,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> int:
        """The hot stage: batched per-instant bookkeeping, no horizon,
        no oracle/profiler.  ``stop_when`` (when given) is evaluated
        after every delivered event, exactly like the heap engine's
        fast path, so predicate-bounded runs stop on the same event.
        While fast-forward chain families are registered
        (``_ff_users``, re-checked per instant) the delivering event's
        packed order is stored per delivery so ``cur_event_prio`` stays
        observable — kernel workloads keep the batched drain instead of
        demoting to the general stage.  On any exception the in-flight
        bucket is reconciled from the delivered markers
        (``ev[4] is False``), so counters and bucket state stay exact
        and ``run()`` can even be resumed after a handler error.
        """
        buckets = queue._buckets
        times = queue._times
        unsorted = queue._unsorted
        heappop = heapq.heappop
        heappush = heapq.heappush
        max_events = self.max_events
        deferred = self._deferred
        t = 0.0
        try:
            while times:
                # Hoisted per instant: chain families (the sole readers
                # of ``cur_event_prio``) register at kernel construction,
                # so within one instant the flag is stable enough — the
                # heap path this mirrors also only exposes the priority
                # of events delivered *after* registration.
                track = self._ff_users
                t = heappop(times)
                b = buckets.pop(t, None)
                if b is None:
                    continue  # stale entry for an already-drained instant
                if t < self.now:
                    raise SimulationError(
                        f"event at t={t} scheduled in the past (now={self.now})"
                    )
                if type(b) is not list:
                    # Singleton instant: no bucket machinery, exact
                    # per-event bookkeeping (same cost for one event).
                    fn = b[1]
                    if fn is None:
                        queue._corpses -= 1
                        continue
                    self.now = t
                    b[4] = False
                    queue._delivered += 1
                    processed += 1
                    if processed > max_events:
                        raise SimulationError(
                            f"event limit {max_events} exceeded at "
                            f"t={self.now}: likely a zero-delay event livelock"
                        )
                    if track:
                        self._cur_order = b[0]
                    fn()
                    if deferred:
                        self._run_deferred()
                        if self._stop_requested:
                            break
                    if stop_when is not None and stop_when():
                        self._stop_requested = True
                        break
                    continue
                # List bucket: deliver the whole instant with one clock
                # store and batched counter updates at the end.
                buckets[t] = b  # stay visible so same-instant pushes append
                if unsorted and t in unsorted:
                    b.sort()
                    unsorted.discard(t)
                prev = self.now
                self.now = t
                k = len(b)
                if processed + k > max_events and (
                    processed + sum(1 for e in b if e[1] is not None)
                    > max_events
                ):
                    raise SimulationError(
                        f"event limit {max_events} exceeded at t={self.now}: "
                        "likely a zero-delay event livelock"
                    )
                epoch = queue._clear_epoch
                queue._drain_bucket = b
                skipped = 0
                stopped = False
                i = 0  # consumed count when the drain breaks early
                if stop_when is None and not track:
                    # Leanest body — no predicate, no priority tracking,
                    # and no per-event position counter: the consumed
                    # count is recovered with one index() on the rare
                    # early stop or same-instant append.  This is the
                    # ≥1.8× storm path; keep it free of per-event
                    # bookkeeping.
                    for ev in b:
                        fn = ev[1]
                        if fn is None:
                            skipped += 1  # cancelled before/during instant
                            continue
                        ev[4] = False
                        fn()
                        if deferred:
                            self._run_deferred()
                            if self._stop_requested:
                                stopped = True
                                i = b.index(ev) + 1
                                break
                        if len(b) != k:
                            # Same-instant pushes landed (or clear()
                            # emptied the bucket).  The list iterator
                            # picks appended events up; the undelivered
                            # tail is re-sorted only when a push actually
                            # broke its order (the _unsorted flag), so
                            # an append cascade stays linear in the
                            # bucket width instead of quadratic.
                            if queue._clear_epoch != epoch:
                                break
                            i = b.index(ev) + 1
                            k = len(b)
                            if processed + k > max_events and (
                                processed
                                + sum(1 for e in b if e[1] is not None)
                                > max_events
                            ):
                                raise SimulationError(
                                    f"event limit {max_events} exceeded "
                                    f"at t={self.now}: likely a "
                                    "zero-delay event livelock"
                                )
                            if t in unsorted:
                                rest = b[i:]
                                rest.sort()
                                b[i:] = rest
                                unsorted.discard(t)
                else:
                    # Same drain with a per-event position counter plus
                    # the stop_when / cur_event_prio hooks — the kernel
                    # and cluster path (predicate-bounded runs, chain
                    # families).
                    for ev in b:
                        i += 1
                        fn = ev[1]
                        if fn is None:
                            skipped += 1  # cancelled before/during instant
                            continue
                        ev[4] = False
                        if track:
                            self._cur_order = ev[0]
                        fn()
                        if deferred:
                            self._run_deferred()
                            if self._stop_requested:
                                stopped = True
                                break
                        if stop_when is not None and stop_when():
                            self._stop_requested = True
                            stopped = True
                            break
                        if len(b) != k:
                            # See the lean body's note on the flag-gated
                            # tail resort.
                            if queue._clear_epoch != epoch:
                                break
                            k = len(b)
                            if processed + k > max_events and (
                                processed
                                + sum(1 for e in b if e[1] is not None)
                                > max_events
                            ):
                                raise SimulationError(
                                    f"event limit {max_events} exceeded "
                                    f"at t={self.now}: likely a "
                                    "zero-delay event livelock"
                                )
                            if t in unsorted:
                                rest = b[i:]
                                rest.sort()
                                b[i:] = rest
                                unsorted.discard(t)
                if queue._clear_epoch != epoch:
                    # Mid-bucket clear(): the queue reconciled its own
                    # counters; fold the interrupted bucket's deliveries
                    # into the processed count and move on.
                    processed += queue._flushed
                    queue._flushed = 0
                    if self._stop_requested:
                        break
                    continue
                queue._drain_bucket = None
                n_done = i if stopped else len(b)
                delivered = n_done - skipped
                queue._delivered += delivered
                queue._corpses -= skipped
                processed += delivered
                if delivered == 0:
                    # Corpse-only instant: the heap engine would have
                    # popped the corpses without advancing the clock.
                    self.now = prev
                if stopped and n_done < len(b):
                    del b[:n_done]
                    heappush(times, t)
                elif buckets.get(t) is b:
                    del buckets[t]
                if stopped:
                    break
            return processed
        except BaseException:
            # Reconcile the in-flight bucket from the delivered markers:
            # everything up to the last event marked False (inclusive)
            # has been consumed — fold it into the counters and drop it
            # from the bucket so state is exact when the error surfaces.
            b = queue._drain_bucket
            if b is not None:
                queue._drain_bucket = None
                n_done = 0
                for idx in range(len(b) - 1, -1, -1):
                    if b[idx][4] is False:
                        n_done = idx + 1
                        break
                if n_done:
                    delivered = sum(1 for ev in b[:n_done] if ev[4] is False)
                    queue._delivered += delivered
                    queue._corpses -= n_done - delivered
                    processed += delivered
                    del b[:n_done]
                if b:
                    heappush(times, t)
                elif buckets.get(t) is b:
                    del buckets[t]
            raise
        finally:
            if queue._flushed:
                # clear() interrupted a bucket and the normal
                # reconciliation did not run (exception inside the same
                # handler): pick the flushed deliveries up here.
                processed += queue._flushed
                queue._flushed = 0
            self.events_processed = processed

    def _run_general(
        self,
        queue: FastEventQueue,
        processed: int,
        until: Optional[float],
        stop_when: Optional[Callable[[], bool]],
        until_exclusive: bool,
    ) -> int:
        """Bucket drain with the heap engine's general-path semantics:
        per-event exact bookkeeping (the validation oracle asserts the
        live counters at every delivery), horizon peeking, priority
        tracking for fast-forward re-arm walks, optional per-event-type
        profiling."""
        buckets = queue._buckets
        times = queue._times
        heappop = heapq.heappop
        max_events = self.max_events
        deferred = self._deferred
        oracle = self.oracle
        profiler = self.profiler
        perf_counter = _time.perf_counter
        b: Any = None
        t = 0.0
        n_done = 0
        listed = False
        try:
            while not self._stop_requested:
                b = None
                head = queue._head()
                if head is None:
                    break
                t, b = head
                if until is not None and (
                    t > until or (until_exclusive and t >= until)
                ):
                    b = None
                    if until > self.now:
                        self.now = until
                    break
                if t < self.now:
                    b = None
                    raise SimulationError(
                        f"event at t={t} scheduled in the past (now={self.now})"
                    )
                listed = type(b) is list
                if not listed:
                    heappop(times)
                    del buckets[t]
                    b = [b]
                self.now = t
                k = len(b)
                n_done = 0
                for ev in b:
                    n_done += 1
                    fn = ev[1]
                    if fn is None:
                        queue._corpses -= 1
                        continue
                    ev[4] = False
                    queue._delivered += 1
                    processed += 1
                    self.events_processed = processed
                    if processed > max_events:
                        raise SimulationError(
                            f"event limit {max_events} exceeded at "
                            f"t={self.now}: likely a zero-delay event livelock"
                        )
                    if oracle is not None:
                        oracle.on_event(ev)
                    self._cur_order = ev[0]
                    if profiler is None:
                        fn()
                    else:
                        t0 = perf_counter()
                        fn()
                        profiler.record(ev[3], perf_counter() - t0)
                    if deferred:
                        self._run_deferred()
                    if stop_when is not None and stop_when():
                        self._stop_requested = True
                    if self._stop_requested:
                        break
                    if len(b) != k:
                        if not b:
                            break  # clear() emptied the bucket in place
                        k = len(b)
                        # Same-instant appends: sort the undelivered tail
                        # only when a push actually broke its order (see
                        # the storm-stage note on the _unsorted flag).
                        if t in queue._unsorted:
                            rest = b[n_done:]
                            rest.sort()
                            b[n_done:] = rest
                            queue._unsorted.discard(t)
                if listed:
                    # t stays in the times heap for list buckets (only
                    # _head removes it), so no re-push is needed when
                    # events remain after an early stop.
                    if n_done >= len(b):
                        if buckets.get(t) is b:
                            del buckets[t]
                    else:
                        del b[:n_done]
                b = None
            return processed
        except BaseException:
            # Counters are per-event exact here; only the structural
            # prefix cleanup is pending.  Drop the consumed events so
            # they cannot be re-delivered on a resumed run.
            if listed and b is not None and n_done:
                del b[:n_done]
                if not b and buckets.get(t) is b:
                    del buckets[t]
            raise
        finally:
            self.events_processed = processed
