"""The simulation engine: clock + event loop.

The :class:`Simulator` advances a simulated clock by draining an
:class:`~repro.simcore.events.EventQueue`.  Components schedule callbacks
with :meth:`Simulator.at` / :meth:`Simulator.after`; the engine guarantees:

* the clock never moves backwards,
* events at the same instant fire in (priority, insertion) order,
* a hard event-count limit catches accidental livelock (zero-delay loops).

The run loop is the hottest code in the repository: every simulated
context switch, tick, wakeup and phase completion pays it once.  It is
therefore hand-flattened — one heap access per delivered event, no
intermediate ``peek``/``step``/``pop`` call layers — and ``at``/``after``
construct the :class:`Event` directly instead of going through
``EventQueue.push``.  ``Simulator.step`` keeps the composable slow path
for external single-stepping; both paths have identical semantics.
"""

from __future__ import annotations

import heapq
from time import perf_counter as _perf_counter
from typing import Any, Callable, Optional

from repro.simcore.events import Event, EventQueue
from repro.simcore.fastforward import fastforward_enabled
from repro.simcore.profile import get_active_profiler

#: Default ceiling on processed events, generous enough for multi-hundred
#: simulated seconds of a 4-CPU machine, small enough to catch livelocks.
DEFAULT_MAX_EVENTS = 50_000_000


class SimulationError(RuntimeError):
    """Raised for engine misuse (time travel, livelock, ...)."""


class Simulator:
    """Discrete-event simulator with a float clock in simulated seconds.

    Constructing ``Simulator(...)`` dispatches to the accelerated
    bucketed core (:class:`repro.simcore.fastcore.FastSimulator`) unless
    ``core="heap"`` or ``REPRO_FASTCORE=0`` selects this heap engine;
    both cores deliver identical event sequences (enforced by the
    validation oracle stack) and expose the same API, so callers never
    need to know which one they got — ``.core`` says.
    """

    def __new__(cls, *args, **kwargs):
        if cls is Simulator:
            core = kwargs.get("core")
            if core is None and len(args) >= 3:
                core = args[2]
            # Imported lazily: fastcore imports this module.
            from repro.simcore.fastcore import FastSimulator, fastcore_enabled

            if fastcore_enabled(core):
                return super().__new__(FastSimulator)
        return super().__new__(cls)

    def __init__(
        self,
        max_events: int = DEFAULT_MAX_EVENTS,
        fastforward: Optional[bool] = None,
        core: Optional[str] = None,
    ) -> None:
        self.now: float = 0.0
        self.queue = EventQueue()
        self.max_events = max_events
        self.events_processed = 0
        self._running = False
        self._stop_requested = False
        #: Which engine implementation this instance is ("heap"/"fast").
        self.core = "heap"
        #: Count of fast-forward chain-family users attached to this
        #: simulator (kernels bump it at construction).  The accelerated
        #: core's storm stage checks it per instant so that a kernel
        #: created *inside* an event (e.g. a campaign spawn) flips the
        #: engine into priority-tracked delivery before any chain family
        #: can read ``cur_event_prio``.
        self._ff_users = 0
        #: Per-event-type profiler (``bench --profile``); snapshot of the
        #: module-level active profiler at construction.  When set, the
        #: run loops take the general (per-event timed) path.
        self.profiler = get_active_profiler()
        #: Fast-forward engine flag (REPRO_FASTFORWARD, default on).
        #: Gates the batched same-instant delivery loop; timer elision
        #: itself lives with the timer owners (see simcore.fastforward).
        self.fastforward = fastforward_enabled(fastforward)
        #: Priority of the event whose callback is currently executing
        #: (``None`` outside event delivery).  Fast-forward re-arm walks
        #: use it to order a reinstated chain point that collides with
        #: ``now`` exactly as the serial heap would have.
        self.cur_event_prio: Optional[int] = None
        #: Optional runtime oracle (repro.validate.invariants); receives
        #: every delivered event when validation is enabled.  Must be
        #: installed before :meth:`run` — the loop snapshots it.
        self.oracle: Optional[Any] = None
        #: Same-instant work queued by :meth:`defer`; drained after the
        #: current event's callback returns, before ``stop_when``.  The
        #: list object is stable so run loops may bind it locally.
        self._deferred: list[Callable[[], Any]] = []

    def defer(self, fn: Callable[[], Any]) -> None:
        """Run ``fn`` once, at the current instant, after the event
        callback now executing returns (and before ``stop_when`` is
        evaluated).  Components use this to *batch* work that several
        actions within one event would otherwise each repeat — e.g. the
        kernel coalesces per-core rate propagation this way.  Deferred
        functions may defer further work; everything drains before the
        clock moves."""
        self._deferred.append(fn)

    def _run_deferred(self) -> None:
        deferred = self._deferred
        while deferred:
            if len(deferred) == 1:
                # Common case (one dirty-core drain per event): skip
                # the defensive snapshot copy.
                fn = deferred[0]
                deferred.clear()
                fn()
                continue
            pending = deferred[:]
            deferred.clear()
            for fn in pending:
                fn()

    # ------------------------------------------------------------------
    # Scheduling API
    # ------------------------------------------------------------------
    def at(
        self,
        time: float,
        fn: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``fn`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time} (< now {self.now})"
            )
        queue = self.queue
        seq = queue._seq
        ev = Event(time, priority, seq, fn, label, queue)
        queue._seq = seq + 1
        queue._live += 1
        heapq.heappush(queue._heap, (time, priority, seq, ev))
        return ev

    def after(
        self,
        delay: float,
        fn: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``fn`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        queue = self.queue
        seq = queue._seq
        time = self.now + delay
        ev = Event(time, priority, seq, fn, label, queue)
        queue._seq = seq + 1
        queue._live += 1
        heapq.heappush(queue._heap, (time, priority, seq, ev))
        return ev

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.  Returns ``False`` when the queue
        is empty (nothing fired)."""
        ev = self.queue.pop()
        if ev is None:
            return False
        if ev.time < self.now:
            raise SimulationError(
                f"event {ev!r} scheduled in the past (now={self.now})"
            )
        self.now = ev.time
        self.events_processed += 1
        if self.events_processed > self.max_events:
            raise SimulationError(
                f"event limit {self.max_events} exceeded at t={self.now}: "
                "likely a zero-delay event livelock"
            )
        if self.oracle is not None:
            self.oracle.on_event(ev)
        self.cur_event_prio = ev.priority
        try:
            ev.fn()
            if self._deferred:
                self._run_deferred()
        finally:
            self.cur_event_prio = None
        return True

    def run(
        self,
        until: Optional[float] = None,
        stop_when: Optional[Callable[[], bool]] = None,
        until_exclusive: bool = False,
    ) -> float:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Optional simulated-time horizon; events beyond it stay queued
            and the clock is advanced to ``until``.
        stop_when:
            Optional predicate evaluated after every event; the run stops
            as soon as it returns ``True``.
        until_exclusive:
            When true, events at exactly ``until`` also stay queued (the
            horizon is the half-open interval ``[now, until)``).  The
            sharded cluster runner depends on this: a cross-shard message
            landing exactly on a window boundary must be injected before
            the boundary instant is executed, so the window must not
            consume any event at its own horizon.  The clock still
            advances to ``until``.

        Returns the simulated time at which the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stop_requested = False
        # Hot loop: one heap access per delivered event.  The heap list
        # is mutated in place everywhere (clear() included), so the local
        # binding stays valid across callbacks.  ``oracle`` is snapshot
        # once — it is installed at kernel construction, never mid-run.
        queue = self.queue
        heap = queue._heap
        heappop = heapq.heappop
        max_events = self.max_events
        oracle = self.oracle
        profiler = self.profiler
        deferred = self._deferred
        processed = self.events_processed
        try:
            if (
                until is None
                and oracle is None
                and profiler is None
                and self.fastforward
            ):
                # Batched fast path: same-instant events are drained as
                # one group — the past-check and the clock store are
                # paid once per distinct timestamp, and each event still
                # costs exactly one heap access.
                while not self._stop_requested:
                    if not heap:
                        break
                    entry = heappop(heap)
                    ev = entry[3]
                    if ev.cancelled:
                        queue._corpses -= 1
                        continue
                    t = entry[0]
                    if t < self.now:
                        raise SimulationError(
                            f"event {ev!r} scheduled in the past "
                            f"(now={self.now})"
                        )
                    self.now = t
                    while True:
                        ev._queue = None
                        queue._live -= 1
                        processed += 1
                        self.events_processed = processed
                        if processed > max_events:
                            raise SimulationError(
                                f"event limit {max_events} exceeded at "
                                f"t={self.now}: likely a zero-delay "
                                "event livelock"
                            )
                        self.cur_event_prio = entry[1]
                        ev.fn()
                        if deferred:
                            self._run_deferred()
                        if stop_when is not None and stop_when():
                            self._stop_requested = True
                            break
                        if self._stop_requested:
                            break
                        # Same-instant continuation (callbacks may have
                        # scheduled more work at t, or cancelled some).
                        ev = None
                        while heap and heap[0][0] == t:
                            entry = heappop(heap)
                            ev = entry[3]
                            if not ev.cancelled:
                                break
                            queue._corpses -= 1
                            ev = None
                        if ev is None:
                            break
            elif until is None and oracle is None and profiler is None:
                # Unbatched fast path (fast-forward off): pop directly;
                # cancelled entries are dropped as they surface.
                while not self._stop_requested:
                    if not heap:
                        break
                    entry = heappop(heap)
                    ev = entry[3]
                    if ev.cancelled:
                        queue._corpses -= 1
                        continue
                    ev._queue = None
                    queue._live -= 1
                    t = entry[0]
                    if t < self.now:
                        raise SimulationError(
                            f"event {ev!r} scheduled in the past "
                            f"(now={self.now})"
                        )
                    self.now = t
                    processed += 1
                    self.events_processed = processed
                    if processed > max_events:
                        raise SimulationError(
                            f"event limit {max_events} exceeded at "
                            f"t={self.now}: likely a zero-delay event "
                            "livelock"
                        )
                    self.cur_event_prio = entry[1]
                    ev.fn()
                    if deferred:
                        self._run_deferred()
                    if stop_when is not None and stop_when():
                        break
            else:
                # General path: peek first so events beyond the horizon
                # stay queued, and feed the oracle when one is attached.
                while not self._stop_requested:
                    while heap and heap[0][3].cancelled:
                        heappop(heap)
                        queue._corpses -= 1
                    if not heap:
                        break
                    entry = heap[0]
                    t = entry[0]
                    if until is not None and (
                        t > until or (until_exclusive and t >= until)
                    ):
                        if until > self.now:
                            self.now = until
                        break
                    heappop(heap)
                    ev = entry[3]
                    ev._queue = None
                    queue._live -= 1
                    if t < self.now:
                        raise SimulationError(
                            f"event {ev!r} scheduled in the past "
                            f"(now={self.now})"
                        )
                    self.now = t
                    processed += 1
                    self.events_processed = processed
                    if processed > max_events:
                        raise SimulationError(
                            f"event limit {max_events} exceeded at "
                            f"t={self.now}: likely a zero-delay event "
                            "livelock"
                        )
                    if oracle is not None:
                        oracle.on_event(ev)
                    self.cur_event_prio = entry[1]
                    if profiler is None:
                        ev.fn()
                    else:
                        t0 = _perf_counter()
                        ev.fn()
                        profiler.record(ev.label, _perf_counter() - t0)
                    if deferred:
                        self._run_deferred()
                    if stop_when is not None and stop_when():
                        break
            if until is not None:
                while heap and heap[0][3].cancelled:
                    heappop(heap)
                    queue._corpses -= 1
                if not heap and until > self.now:
                    self.now = until
        finally:
            self.events_processed = processed
            self._running = False
            self.cur_event_prio = None
        return self.now

    def stop(self) -> None:
        """Request the current :meth:`run` loop to stop after the event
        being processed."""
        self._stop_requested = True

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<Simulator now={self.now:.6f} pending={len(self.queue)} "
            f"processed={self.events_processed}>"
        )
