"""The simulation engine: clock + event loop.

The :class:`Simulator` advances a simulated clock by draining an
:class:`~repro.simcore.events.EventQueue`.  Components schedule callbacks
with :meth:`Simulator.at` / :meth:`Simulator.after`; the engine guarantees:

* the clock never moves backwards,
* events at the same instant fire in (priority, insertion) order,
* a hard event-count limit catches accidental livelock (zero-delay loops).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.simcore.events import Event, EventQueue

#: Default ceiling on processed events, generous enough for multi-hundred
#: simulated seconds of a 4-CPU machine, small enough to catch livelocks.
DEFAULT_MAX_EVENTS = 50_000_000


class SimulationError(RuntimeError):
    """Raised for engine misuse (time travel, livelock, ...)."""


class Simulator:
    """Discrete-event simulator with a float clock in simulated seconds."""

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        self.now: float = 0.0
        self.queue = EventQueue()
        self.max_events = max_events
        self.events_processed = 0
        self._running = False
        self._stop_requested = False
        #: Optional runtime oracle (repro.validate.invariants); receives
        #: every delivered event when validation is enabled.
        self.oracle: Optional[Any] = None

    # ------------------------------------------------------------------
    # Scheduling API
    # ------------------------------------------------------------------
    def at(
        self,
        time: float,
        fn: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``fn`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time} (< now {self.now})"
            )
        return self.queue.push(time, fn, priority, label)

    def after(
        self,
        delay: float,
        fn: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``fn`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.queue.push(self.now + delay, fn, priority, label)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.  Returns ``False`` when the queue
        is empty (nothing fired)."""
        ev = self.queue.pop()
        if ev is None:
            return False
        if ev.time < self.now:
            raise SimulationError(
                f"event {ev!r} scheduled in the past (now={self.now})"
            )
        self.now = ev.time
        self.events_processed += 1
        if self.events_processed > self.max_events:
            raise SimulationError(
                f"event limit {self.max_events} exceeded at t={self.now}: "
                "likely a zero-delay event livelock"
            )
        if self.oracle is not None:
            self.oracle.on_event(ev)
        ev.fn()
        return True

    def run(
        self,
        until: Optional[float] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Optional simulated-time horizon; events beyond it stay queued
            and the clock is advanced to ``until``.
        stop_when:
            Optional predicate evaluated after every event; the run stops
            as soon as it returns ``True``.

        Returns the simulated time at which the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stop_requested = False
        try:
            while True:
                if self._stop_requested:
                    break
                nxt = self.queue.peek_time()
                if nxt is None:
                    break
                if until is not None and nxt > until:
                    self.now = max(self.now, until)
                    break
                self.step()
                if stop_when is not None and stop_when():
                    break
            if until is not None and self.queue.peek_time() is None:
                self.now = max(self.now, until)
        finally:
            self._running = False
        return self.now

    def stop(self) -> None:
        """Request the current :meth:`run` loop to stop after the event
        being processed."""
        self._stop_requested = True

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<Simulator now={self.now:.6f} pending={len(self.queue)} "
            f"processed={self.events_processed}>"
        )
