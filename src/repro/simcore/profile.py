"""Per-event-type cost profiling for the simulation engines.

``bench --profile`` activates an :class:`EventProfiler` for the
duration of an (unmeasured) extra scenario pass; every simulator
constructed while one is active picks it up and routes event delivery
through the timed general path, attributing each callback's wall time
to its event *type* — the label prefix before the first ``/``
(``"tick/cpu0"`` → ``"tick"``), which is how the kernel and cluster
layers namespace their labels.

The active profiler is process-global rather than per-simulator because
bench scenarios construct their simulators internally; threading a
profiler argument through every harness entry point would touch every
scenario signature for a diagnostics-only feature.  Profiled passes are
never timed passes, so the observer overhead (two ``perf_counter``
calls and a dict upsert per event) does not pollute recorded numbers.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: Fallback type for events scheduled without a label.
UNLABELED = "<unlabeled>"


class EventProfiler:
    """Accumulates per-event-type delivery counts and cumulative wall
    time.  ``stats`` maps event type → ``[count, seconds]``."""

    __slots__ = ("stats",)

    def __init__(self) -> None:
        self.stats: Dict[str, List[float]] = {}

    def record(self, label: str, seconds: float) -> None:
        """Attribute one delivered event's callback time to its type."""
        key = label.partition("/")[0] or UNLABELED
        entry = self.stats.get(key)
        if entry is None:
            self.stats[key] = [1, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds

    def merge(self, other: "EventProfiler") -> None:
        """Fold another profiler's stats into this one (multi-simulator
        scenarios, e.g. the sharded cluster, profile each shard)."""
        stats = self.stats
        for key, (count, seconds) in other.stats.items():
            entry = stats.get(key)
            if entry is None:
                stats[key] = [count, seconds]
            else:
                entry[0] += count
                entry[1] += seconds

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """JSON-friendly view: type → {count, total_us, mean_us},
        sorted by descending cumulative time."""
        out: Dict[str, Dict[str, float]] = {}
        for key, (count, seconds) in sorted(
            self.stats.items(), key=lambda kv: -kv[1][1]
        ):
            total_us = seconds * 1e6
            out[key] = {
                "count": int(count),
                "total_us": round(total_us, 3),
                "mean_us": round(total_us / count, 4) if count else 0.0,
            }
        return out


_active: Optional[EventProfiler] = None


def activate_profiler(profiler: Optional[EventProfiler] = None) -> EventProfiler:
    """Install ``profiler`` (or a fresh one) as the process-global active
    profiler; simulators constructed afterwards record into it."""
    global _active
    if profiler is None:
        profiler = EventProfiler()
    _active = profiler
    return profiler


def deactivate_profiler() -> Optional[EventProfiler]:
    """Remove and return the active profiler (None if none was set)."""
    global _active
    profiler = _active
    _active = None
    return profiler


def get_active_profiler() -> Optional[EventProfiler]:
    """The profiler new simulators should record into, if any."""
    return _active
