"""Event and event-queue primitives for the discrete-event engine.

Events are ordered by ``(time, priority, seq)``.  ``priority`` breaks ties
between events scheduled for the same instant (lower runs first) and ``seq``
is a monotonically increasing sequence number that keeps ordering stable and
deterministic for equal ``(time, priority)`` pairs.

Cancellation is *lazy*: :meth:`Event.cancel` flags the event and the queue
drops flagged entries when they surface, which is O(1) per cancel and keeps
the heap simple.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulated time at which the callback fires.
    priority:
        Tie-break rank for events at the same time; lower fires first.
    seq:
        Insertion sequence number (assigned by the queue).
    fn:
        Zero-argument callable invoked when the event fires.
    label:
        Optional human-readable tag used in debug dumps.
    """

    __slots__ = ("time", "priority", "seq", "fn", "label", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[[], Any],
        label: str = "",
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.label = label
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the queue discards it instead of firing it."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        """Whether the event is still pending (not cancelled)."""
        return not self.cancelled

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.9f} prio={self.priority} {self.label!r} {state}>"


class EventQueue:
    """A cancellable priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(
        self,
        time: float,
        fn: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``fn`` at absolute ``time`` and return its handle."""
        ev = Event(time, priority, self._seq, fn, label)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest pending event, skipping cancelled
        entries.  Returns ``None`` when the queue is exhausted."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if not ev.cancelled:
                return ev
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest pending event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
