"""Event and event-queue primitives for the discrete-event engine.

Events are ordered by ``(time, priority, seq)``.  ``priority`` breaks ties
between events scheduled for the same instant (lower runs first) and ``seq``
is a monotonically increasing sequence number that keeps ordering stable and
deterministic for equal ``(time, priority)`` pairs.

Cancellation is *lazy*: :meth:`Event.cancel` flags the event and the queue
drops flagged entries when they surface, which is O(1) per cancel and keeps
the heap simple.  The queue still answers ``len()`` exactly: it maintains a
live pending count that is incremented on push and decremented when an event
is cancelled, popped, or dropped by :meth:`EventQueue.clear` — so ``len()``
never counts lazily-cancelled corpses still sitting in the heap.

Cancelled corpses are additionally *compacted* in bulk: the queue counts
them, and when they outnumber the live events (and the heap is non-trivial)
the heap is rebuilt in place without them — one O(n) heapify amortized over
the n/2 cancels that triggered it.  That keeps cancel-heavy workloads
(ticks, reschedules and phase re-pushes across hundreds of CPUs) from
carrying a heap that is mostly garbage, without giving up O(1) cancel.
The rebuild cannot reorder deliveries: the heap entries are totally
ordered by their ``(time, priority, seq)`` prefix, so any valid heap of
the same entries pops in the same sequence.

The heap itself stores ``(time, priority, seq, event)`` tuples rather than
the events: ``seq`` is unique, so the tuple prefix is a total order, the
:class:`Event` is never reached during comparison, and every heap sift
compares plain floats/ints in C instead of calling ``Event.__lt__``.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulated time at which the callback fires.
    priority:
        Tie-break rank for events at the same time; lower fires first.
    seq:
        Insertion sequence number (assigned by the queue).
    fn:
        Zero-argument callable invoked when the event fires.
    label:
        Optional human-readable tag used in debug dumps.
    """

    __slots__ = ("time", "priority", "seq", "fn", "label", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[[], Any],
        label: str = "",
        queue: Optional["EventQueue"] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.label = label
        self.cancelled = False
        # Owning queue while the event is pending; reset to None when the
        # event fires, is cancelled, or the queue is cleared.  Carries the
        # live pending count (``_queue is not None`` == counted in len()).
        self._queue = queue

    def cancel(self) -> None:
        """Mark the event so the queue discards it instead of firing it."""
        if self.cancelled:
            return
        self.cancelled = True
        q = self._queue
        if q is not None:
            self._queue = None
            q._live -= 1
            corpses = q._corpses + 1
            if corpses > 64 and corpses > q._live:
                q._compact()
            else:
                q._corpses = corpses

    @property
    def active(self) -> bool:
        """Whether the event is still pending (not cancelled)."""
        return not self.cancelled

    def __lt__(self, other: "Event") -> bool:
        # The heap compares its (time, priority, seq) tuple entries and
        # never reaches the Event; this ordering is kept for direct
        # comparisons (sorting debug dumps, external consumers).
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.9f} prio={self.priority} {self.label!r} {state}>"


class EventQueue:
    """A cancellable priority queue of :class:`Event` objects.

    ``len(queue)`` is the number of *pending* (active, not yet fired)
    events — cancelled entries awaiting lazy removal are not counted.
    """

    def __init__(self) -> None:
        #: (time, priority, seq, event) entries; seq is unique so the
        #: prefix totally orders the heap without comparing events.
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        #: Live pending count: push +1; cancel/pop/clear -1 per event.
        self._live = 0
        #: Cancelled entries still sitting in the heap awaiting lazy
        #: removal; when they outnumber the live events the heap is
        #: rebuilt without them (see :meth:`_compact`).
        self._corpses = 0

    def _compact(self) -> None:
        """Rebuild the heap in place without cancelled corpses.  The
        list object is mutated (not replaced) so run loops holding a
        local binding to it stay valid."""
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[3].cancelled]
        heapq.heapify(heap)
        self._corpses = 0

    def __len__(self) -> int:
        return self._live

    def push(
        self,
        time: float,
        fn: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``fn`` at absolute ``time`` and return its handle."""
        seq = self._seq
        ev = Event(time, priority, seq, fn, label, self)
        self._seq = seq + 1
        self._live += 1
        heapq.heappush(self._heap, (time, priority, seq, ev))
        return ev

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest pending event, skipping cancelled
        entries.  Returns ``None`` when the queue is exhausted."""
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)[3]
            if not ev.cancelled:
                ev._queue = None
                self._live -= 1
                return ev
            self._corpses -= 1
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest pending event, or ``None`` if empty."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
            self._corpses -= 1
        return heap[0][0] if heap else None

    def clear(self) -> None:
        """Drop every pending event, marking each one cancelled so held
        handles do not keep reporting ``active`` for events that can
        never fire."""
        for entry in self._heap:
            ev = entry[3]
            ev.cancelled = True
            ev._queue = None
        self._heap.clear()
        self._live = 0
        self._corpses = 0

    def live_count_check(self) -> tuple[int, int]:
        """``(tracked, actual)`` pending counts — ``tracked`` is the O(1)
        live counter behind ``len()``, ``actual`` an O(n) scan of the
        heap.  Used by the validate invariants to assert they agree."""
        actual = sum(1 for entry in self._heap if not entry[3].cancelled)
        return self._live, actual

    def iter_entries(self):
        """Yield ``(time, event)`` for every pending event, in no
        particular order.  Queue-implementation-agnostic introspection
        (the accelerated core's queue offers the same method), used by
        consumers that would otherwise walk ``_heap`` directly."""
        for entry in self._heap:
            ev = entry[3]
            if not ev.cancelled:
                yield entry[0], ev
