"""Parallel, fault-tolerant campaign execution.

A :class:`CampaignExecutor` dispatches a campaign's runs over a
``ProcessPoolExecutor`` with:

* **per-run timeouts** — an overdue run is marked ``FAILED`` (its
  worker slot is written off; when every slot is lost the pool is
  rebuilt and in-flight runs are resubmitted without consuming an
  attempt);
* **bounded retries with exponential backoff** — a crashed or timed
  out run is retried up to ``retries`` times before its ``FAILED``
  record becomes final;
* **graceful degradation** — a worker exception is transported back as
  a formatted traceback in the run record; it never kills the
  campaign, and a broken pool (hard worker death) is rebuilt on the
  spot;
* **result caching** — each run is looked up in the content-addressed
  :class:`~repro.campaign.cache.ResultCache` first, and OK results are
  written back;
* **parallel-equals-serial verification** — because every experiment
  is bit-reproducible from its spec, the executor re-runs a sample of
  completed runs serially in-process and asserts the canonical payload
  bytes match, making the campaign layer a correctness harness as well
  as a throughput one.

Workers communicate outcomes as plain ``("ok"|"error", data, wall)``
tuples, so nothing exception-shaped ever has to survive pickling.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.campaign.cache import ResultCache
from repro.campaign.spec import CampaignSpec, RunSpec, canonical_json, invoke, summarize_result
from repro.campaign.store import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_RETRYING,
    CampaignStore,
    RunRecord,
)

import repro


class CampaignConsistencyError(AssertionError):
    """Parallel and serial executions of a run disagreed byte-for-byte."""


def _mp_context():
    """Fork where available (cheap workers), default elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class PoolManager:
    """Thread-safe, generation-guarded worker-pool lifecycle.

    The executor used to keep its ``ProcessPoolExecutor`` in a bare
    attribute with the timeout write-off counter as a loop-local and
    the rebuild logic inline in the drain loop.  That was fine for the
    one-shot CLI (a single drain thread owns the pool), but it is not
    idempotent under concurrent submissions: with two drains sharing
    one executor (as ``repro.serve`` does), both could observe the same
    hung/broken pool and both would tear it down and rebuild — the
    second teardown killing a *fresh* pool that already carried the
    first drain's resubmitted in-flight runs, so those runs ran twice
    (or their results were lost) and the write-off counter was reset
    against the wrong pool.

    The fix is an idempotency token: every pool carries a
    **generation**.  Callers capture the generation together with the
    pool; :meth:`rebuild` replaces the pool only when the caller's
    generation is still current and is a no-op otherwise (a concurrent
    caller already rebuilt).  Slot write-offs are generation-scoped the
    same way, so a timeout observed against a pool that no longer
    exists cannot push a healthy replacement pool over the rebuild
    threshold.
    """

    def __init__(self, jobs: int) -> None:
        self.jobs = max(1, jobs)
        self._lock = threading.Lock()
        self._pool: Optional[concurrent.futures.Executor] = None
        self._generation = 0
        self._lost_slots = 0
        #: Pools rebuilt over this manager's lifetime (observability +
        #: regression tests).
        self.rebuilds = 0

    def _new_pool(self) -> concurrent.futures.Executor:
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=self.jobs, mp_context=_mp_context()
        )

    @property
    def generation(self) -> int:
        """The current pool generation (0 before the first pool)."""
        with self._lock:
            return self._generation

    def submit(
        self, fn: Callable, *args: Any
    ) -> Tuple[concurrent.futures.Future, int]:
        """Submit ``fn(*args)``; returns ``(future, generation)``.

        Creates the pool lazily and retries if the pool it grabbed was
        concurrently shut down (the submit/rebuild race is resolved
        here instead of leaking ``RuntimeError`` to the caller).
        """
        while True:
            with self._lock:
                if self._pool is None:
                    self._pool = self._new_pool()
                    self._generation += 1
                    self._lost_slots = 0
                pool, generation = self._pool, self._generation
            try:
                return pool.submit(fn, *args), generation
            except RuntimeError:
                # The pool was shut down between acquire and submit by a
                # concurrent rebuild; loop for the replacement.
                with self._lock:
                    if self._pool is pool:
                        self._pool = None

    def write_off(self, generation: int) -> bool:
        """Write off one worker slot of ``generation``.

        Returns ``True`` when every slot of the *current* pool has been
        written off (the caller should rebuild).  A stale generation —
        the pool was already replaced — is a no-op returning ``False``.
        """
        with self._lock:
            if generation != self._generation or self._pool is None:
                return False
            self._lost_slots += 1
            return self._lost_slots >= self.jobs

    def rebuild(self, generation: int) -> bool:
        """Replace the pool of ``generation``, idempotently.

        Only the first caller observing a given generation performs the
        teardown; later callers (concurrent drains that observed the
        same breakage) get ``False`` and simply resubmit onto the
        replacement via :meth:`submit`.
        """
        with self._lock:
            if generation != self._generation:
                return False
            # A second caller with the current generation finds the pool
            # already detached (None) and backs off; the generation only
            # advances when the replacement is created in submit().
            pool, self._pool = self._pool, None
            if pool is None:
                return False
            self._lost_slots = 0
            self.rebuilds += 1
        self._discard(pool)
        return True

    def shutdown(self) -> None:
        """Tear the current pool down (end of campaign / service)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            self._discard(pool)

    @staticmethod
    def _discard(pool: concurrent.futures.Executor) -> None:
        """Tear down a pool that may contain hung or dead workers."""
        try:
            procs = list(getattr(pool, "_processes", {}).values())
        except Exception:  # pragma: no cover - private API drift
            procs = []
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in procs:
            if proc.is_alive():
                proc.terminate()


def execute_runspec(payload: Dict[str, Any]) -> Tuple[str, str, float]:
    """Worker entry point: run one spec, return ``(status, data, wall)``.

    ``status`` is ``"ok"`` (``data`` = canonical payload JSON) or
    ``"error"`` (``data`` = formatted traceback).  Module-level so the
    process pool can pickle it.
    """
    spec = RunSpec.from_payload(payload)
    t0 = time.perf_counter()
    try:
        result, _dropped = invoke(spec)
        data = canonical_json(summarize_result(result))
        return ("ok", data, time.perf_counter() - t0)
    except BaseException:  # noqa: BLE001 - the whole point is capture
        return ("error", traceback.format_exc(), time.perf_counter() - t0)


@dataclass
class CampaignResult:
    """What :meth:`CampaignExecutor.run` hands back."""

    campaign: str
    records: Dict[str, RunRecord] = field(default_factory=dict)
    payloads: Dict[str, bytes] = field(default_factory=dict)
    wall_time: float = 0.0
    verified: int = 0

    @property
    def ok(self) -> List[RunRecord]:
        """Records that finished ``OK`` (including cache hits)."""
        return [r for r in self.records.values() if r.status == STATUS_OK]

    @property
    def failed(self) -> List[RunRecord]:
        """Records whose final status is ``FAILED``."""
        return [r for r in self.records.values() if r.status == STATUS_FAILED]

    @property
    def cache_hits(self) -> int:
        """Runs answered from the result cache."""
        return sum(1 for r in self.records.values() if r.cache_hit)

    @property
    def cache_hit_ratio(self) -> float:
        """Cache hits / total runs."""
        return self.cache_hits / len(self.records) if self.records else 0.0

    def summary(self) -> Dict[str, Any]:
        """JSON-able totals for the manifest / status rendering."""
        return {
            "runs": len(self.records),
            "ok": len(self.ok),
            "failed": len(self.failed),
            "cache_hits": self.cache_hits,
            "cache_hit_ratio": round(self.cache_hit_ratio, 4),
            "wall_time": round(self.wall_time, 3),
            "verified": self.verified,
        }


#: (spec, attempt, not-before-monotonic-time) queue entry.
_Pending = Tuple[RunSpec, int, float]


class CampaignExecutor:
    """Dispatch a :class:`CampaignSpec` across worker processes."""

    def __init__(
        self,
        jobs: int = 1,
        timeout: Optional[float] = None,
        retries: int = 0,
        backoff: float = 0.5,
        cache: Optional[ResultCache] = None,
        store: Optional[CampaignStore] = None,
        on_event: Optional[Callable[..., None]] = None,
        verify: int = 1,
    ) -> None:
        self.jobs = max(1, jobs)
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff = backoff
        self.cache = cache
        self.store = store
        self.on_event = on_event or (lambda kind, **info: None)
        self.verify = max(0, verify)
        #: Shared worker-pool lifecycle; safe to use from several
        #: concurrent drains (see :class:`PoolManager`).
        self.pools = PoolManager(self.jobs)

    # -- record plumbing ----------------------------------------------

    def _record(
        self,
        result: CampaignResult,
        spec: RunSpec,
        *,
        status: str,
        attempt: int,
        wall: float,
        cache_hit: bool = False,
        cache_key: str = "",
        error: Optional[str] = None,
        payload: Optional[bytes] = None,
    ) -> RunRecord:
        rec = RunRecord(
            run_id=spec.run_id,
            experiment=spec.experiment,
            status=status,
            attempt=attempt,
            wall_time=wall,
            cache_hit=cache_hit,
            cache_key=cache_key,
            seed=spec.seed,
            params=dict(spec.params),
            error=error,
        )
        if payload is not None:
            result.payloads[spec.run_id] = payload
            if self.store is not None:
                rec.payload_path = self.store.write_payload(spec.run_id, payload)
        if status != STATUS_RETRYING:
            result.records[spec.run_id] = rec
        if self.store is not None:
            self.store.append(rec)
        return rec

    # -- the main loop -------------------------------------------------

    def run(self, campaign: CampaignSpec) -> CampaignResult:
        """Execute every run of ``campaign``; never raises for a run
        failure (only for campaign-level errors such as a verification
        mismatch)."""
        t_start = time.perf_counter()
        result = CampaignResult(campaign=campaign.name)
        if self.store is not None:
            manifest = {
                "campaign": campaign.to_payload(),
                "version": repro.__version__,
                "source_digest": self.cache.source_token if self.cache else None,
                "jobs": self.jobs,
                "timeout": self.timeout,
                "retries": self.retries,
                "cache_enabled": bool(self.cache and self.cache.enabled),
                "started_at": time.time(),
                "status": "running",
            }
            self.store.write_manifest(manifest)

        keys: Dict[str, str] = {}
        pending: deque = deque()
        for spec in campaign.runs:
            key = self.cache.key_for(spec) if self.cache else ""
            keys[spec.run_id] = key
            data = self.cache.get(key) if self.cache else None
            if data is not None:
                self._record(
                    result,
                    spec,
                    status=STATUS_OK,
                    attempt=0,
                    wall=0.0,
                    cache_hit=True,
                    cache_key=key,
                    payload=data,
                )
                self.on_event("cached", spec=spec, run_id=spec.run_id)
            else:
                pending.append((spec, 1, 0.0))

        if pending:
            self._drain(result, pending, keys)
        result.wall_time = time.perf_counter() - t_start

        if self.verify:
            result.verified = self._verify_sample(result, campaign.runs)

        if self.store is not None:
            manifest = self.store.load_manifest()
            manifest.update(
                {
                    "status": "complete",
                    "finished_at": time.time(),
                    "totals": result.summary(),
                }
            )
            self.store.write_manifest(manifest)
        return result

    def _drain(
        self,
        result: CampaignResult,
        pending: "deque[_Pending]",
        keys: Dict[str, str],
    ) -> None:
        """Run the submit/collect/timeout loop until nothing is left."""
        #: future -> (spec, attempt, deadline, t0, pool generation).
        active: Dict[
            concurrent.futures.Future,
            Tuple[RunSpec, int, Optional[float], float, int],
        ] = {}
        try:
            while pending or active:
                now = time.monotonic()
                # Submit every ready entry while there is capacity.
                ready, later = [], deque()
                while pending:
                    spec, attempt, not_before = pending.popleft()
                    (ready if not_before <= now else later).append(
                        (spec, attempt, not_before)
                    )
                pending = later
                for spec, attempt, _ in ready:
                    if len(active) >= self.jobs:
                        pending.append((spec, attempt, now))
                        continue
                    per_timeout = spec.timeout if spec.timeout is not None else self.timeout
                    deadline = now + per_timeout if per_timeout else None
                    fut, gen = self.pools.submit(execute_runspec, spec.to_payload())
                    active[fut] = (spec, attempt, deadline, time.monotonic(), gen)
                    self.on_event("start", spec=spec, run_id=spec.run_id, attempt=attempt)

                if not active:
                    # Everything is backing off; sleep until the earliest.
                    wake = min(nb for _, _, nb in pending)
                    time.sleep(max(0.0, wake - time.monotonic()))
                    continue

                wait_for = [
                    d - time.monotonic()
                    for _, _, d, _, _ in active.values()
                    if d is not None
                ]
                if pending and len(active) < self.jobs:
                    # A backoff entry may become ready before any
                    # completion; with no capacity waiting on it is
                    # pointless (and would busy-spin).
                    wait_for.append(
                        min(nb for _, _, nb in pending) - time.monotonic()
                    )
                timeout = max(0.0, min(wait_for)) if wait_for else None
                done, _ = concurrent.futures.wait(
                    active,
                    timeout=timeout,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )

                rebuild_gen: Optional[int] = None
                for fut in done:
                    spec, attempt, _deadline, t0, gen = active.pop(fut)
                    elapsed = time.monotonic() - t0
                    try:
                        status, data, wall = fut.result()
                    except concurrent.futures.CancelledError:
                        # This drain's own cancellations (timeout
                        # write-off, rebuild resubmission) pop the
                        # future from ``active`` first and never reach
                        # here — so this cancellation is external: a
                        # concurrent drain retired the shared pool while
                        # the run sat queued.  Not a run failure;
                        # resubmit without burning an attempt.
                        pending.append((spec, attempt, 0.0))
                        continue
                    except Exception as exc:  # pool breakage, not run code
                        rebuild_gen = gen if rebuild_gen is None else rebuild_gen
                        self._handle_failure(
                            result,
                            pending,
                            spec,
                            attempt,
                            keys,
                            error=f"worker died: {exc!r}",
                            wall=elapsed,
                        )
                        continue
                    if status == "ok":
                        payload = data.encode("utf-8")
                        key = keys.get(spec.run_id, "")
                        if self.cache:
                            self.cache.put(key, payload)
                        self._record(
                            result,
                            spec,
                            status=STATUS_OK,
                            attempt=attempt,
                            wall=wall,
                            cache_key=key,
                            payload=payload,
                        )
                        self.on_event(
                            "ok", spec=spec, run_id=spec.run_id, wall=wall,
                            attempt=attempt,
                        )
                    else:
                        self._handle_failure(
                            result, pending, spec, attempt, keys,
                            error=data, wall=wall,
                        )

                # Timed-out runs: the worker may be stuck; write the
                # slot off and rebuild the pool once all slots are gone.
                now = time.monotonic()
                for fut in [
                    f
                    for f, (_, _, d, _, _) in active.items()
                    if d is not None and now >= d
                ]:
                    spec, attempt, _deadline, t0, gen = active.pop(fut)
                    if not fut.cancel() and self.pools.write_off(gen):
                        # Every slot of this pool is written off.
                        rebuild_gen = gen if rebuild_gen is None else rebuild_gen
                    self._handle_failure(
                        result,
                        pending,
                        spec,
                        attempt,
                        keys,
                        error=(
                            f"timeout: exceeded "
                            f"{spec.timeout if spec.timeout is not None else self.timeout}s"
                        ),
                        wall=now - t0,
                        timed_out=True,
                    )

                if rebuild_gen is not None:
                    # Resubmit whatever was in flight (no attempt burned)
                    # and retire the broken pool.  rebuild() is
                    # generation-guarded: if a concurrent drain already
                    # replaced it, this is a no-op and the resubmissions
                    # simply land on the fresh pool.
                    for fut, (spec, attempt, _d, _t0, _g) in active.items():
                        fut.cancel()
                        pending.append((spec, attempt, 0.0))
                    active.clear()
                    self.pools.rebuild(rebuild_gen)
        finally:
            self.pools.shutdown()

    def _handle_failure(
        self,
        result: CampaignResult,
        pending: "deque[_Pending]",
        spec: RunSpec,
        attempt: int,
        keys: Dict[str, str],
        *,
        error: str,
        wall: float,
        timed_out: bool = False,
    ) -> None:
        """Record a failed attempt; requeue with backoff or finalize."""
        if attempt <= self.retries:
            self._record(
                result,
                spec,
                status=STATUS_RETRYING,
                attempt=attempt,
                wall=wall,
                cache_key=keys.get(spec.run_id, ""),
                error=error,
            )
            delay = self.backoff * (2 ** (attempt - 1))
            pending.append((spec, attempt + 1, time.monotonic() + delay))
            self.on_event(
                "retry", spec=spec, run_id=spec.run_id, attempt=attempt,
                delay=delay, timed_out=timed_out,
            )
        else:
            self._record(
                result,
                spec,
                status=STATUS_FAILED,
                attempt=attempt,
                wall=wall,
                cache_key=keys.get(spec.run_id, ""),
                error=error,
            )
            self.on_event(
                "failed", spec=spec, run_id=spec.run_id, attempt=attempt,
                error=error, timed_out=timed_out,
            )

    # -- parallel == serial -------------------------------------------

    def _verify_sample(self, result: CampaignResult, runs: List[RunSpec]) -> int:
        """Re-run the cheapest executed runs serially; assert equality.

        Raises :class:`CampaignConsistencyError` on the first byte
        difference between the worker's payload and the in-process
        serial recomputation.
        """
        by_id = {r.run_id for r in result.ok if not r.cache_hit}
        candidates = sorted(
            (result.records[rid] for rid in by_id),
            key=lambda r: r.wall_time,
        )[: self.verify]
        specs = {s.run_id: s for s in runs}
        verified = 0
        for rec in candidates:
            spec = specs.get(rec.run_id)
            if spec is None:
                continue
            raw, _dropped = invoke(spec)
            serial = canonical_json(summarize_result(raw)).encode("utf-8")
            parallel = result.payloads.get(rec.run_id)
            if parallel != serial:
                raise CampaignConsistencyError(
                    f"run {rec.run_id}: parallel result differs from serial "
                    f"recomputation ({len(parallel or b'')} vs {len(serial)} "
                    f"bytes) — the experiment is not deterministic"
                )
            verified += 1
            self.on_event("verified", run_id=rec.run_id)
        return verified
