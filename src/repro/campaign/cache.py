"""Content-addressed result cache.

A run's cache key is the SHA-256 of three ingredients:

1. the :class:`~repro.campaign.spec.RunSpec` identity (experiment id,
   parameter overrides, seed, runner override),
2. the ``repro`` package version,
3. a digest of the git-tracked source tree (every ``.py`` file under
   the package).

Because every experiment is bit-reproducible from its spec, equal keys
imply equal results — so a campaign re-run recomputes only the cells
whose spec *or* whose code changed.  Payloads are stored as the exact
canonical-JSON bytes the executor produced, which keeps the
parallel-equals-serial byte comparison valid across cache hits.
"""

from __future__ import annotations

import hashlib
import subprocess
from pathlib import Path
from typing import Dict, Optional

import repro
from repro.campaign.spec import RunSpec, canonical_json

_digest_memo: Dict[str, str] = {}


def _package_root() -> Path:
    """Directory containing the ``repro`` package sources."""
    return Path(repro.__file__).resolve().parent


def _git_tracked_sources(pkg_root: Path) -> Optional[list]:
    """Git-tracked files under the package, or ``None`` off-git."""
    try:
        out = subprocess.run(
            ["git", "-C", str(pkg_root), "ls-files", "--full-name", "*.py"],
            capture_output=True,
            text=True,
            timeout=30,
            check=True,
        ).stdout
    except (OSError, subprocess.SubprocessError):
        return None
    top = subprocess.run(
        ["git", "-C", str(pkg_root), "rev-parse", "--show-toplevel"],
        capture_output=True,
        text=True,
        timeout=30,
        check=True,
    ).stdout.strip()
    paths = [Path(top) / line for line in out.splitlines() if line]
    inside = [p for p in paths if pkg_root in p.parents or p.parent == pkg_root]
    return inside or None


def source_digest(refresh: bool = False) -> str:
    """SHA-256 digest of the repro source tree (memoized per process).

    Prefers ``git ls-files`` (so untracked scratch files don't churn
    the cache); falls back to walking the installed package directory.
    """
    pkg_root = _package_root()
    memo_key = str(pkg_root)
    if not refresh and memo_key in _digest_memo:
        return _digest_memo[memo_key]
    files = _git_tracked_sources(pkg_root)
    if files is None:
        files = sorted(pkg_root.rglob("*.py"))
    h = hashlib.sha256()
    for path in sorted(files):
        try:
            content = path.read_bytes()
        except OSError:
            continue
        rel = path.name if pkg_root not in path.parents else str(
            path.relative_to(pkg_root)
        )
        h.update(rel.encode("utf-8"))
        h.update(b"\0")
        h.update(hashlib.sha256(content).digest())
        h.update(b"\0")
    digest = h.hexdigest()
    _digest_memo[memo_key] = digest
    return digest


class ResultCache:
    """Filesystem cache mapping run keys to canonical result bytes.

    Layout: ``<root>/<key[:2]>/<key>.json``.  ``source_token``
    defaults to :func:`source_digest` and exists as a parameter so
    tests can exercise invalidation without editing source files.
    """

    def __init__(
        self,
        root: Path,
        enabled: bool = True,
        source_token: Optional[str] = None,
    ) -> None:
        self.root = Path(root)
        self.enabled = enabled
        self._source_token = source_token
        self.hits = 0
        self.misses = 0

    @property
    def source_token(self) -> str:
        """The code-version ingredient of every cache key."""
        if self._source_token is None:
            self._source_token = source_digest()
        return self._source_token

    def key_for(self, spec: RunSpec) -> str:
        """Content address of a run: SHA-256(spec + version + source)."""
        material = canonical_json(
            {
                "spec": spec.identity(),
                "version": repro.__version__,
                "source": self.source_token,
            }
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[bytes]:
        """Cached payload bytes for ``key``, or ``None`` (a miss)."""
        if not self.enabled:
            self.misses += 1
            return None
        path = self._path(key)
        try:
            data = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        self.hits += 1
        return data

    def put(self, key: str, payload: bytes) -> None:
        """Store ``payload`` under ``key`` (atomic rename)."""
        if not self.enabled:
            return
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_bytes(payload)
        tmp.replace(path)

    @property
    def hit_ratio(self) -> float:
        """Hits / lookups over this cache object's lifetime."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
