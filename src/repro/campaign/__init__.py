"""``repro.campaign`` — parallel, fault-tolerant experiment campaigns.

The campaign layer turns the repo's ~20 serial experiment runners into
a schedulable matrix: a :class:`CampaignSpec` describes (experiment x
params x seed) cells, a :class:`CampaignExecutor` dispatches them over
a process pool with timeouts/retries, a content-addressed
:class:`ResultCache` skips everything whose spec and source digest are
unchanged, and a :class:`CampaignStore` leaves a machine-readable
artifact trail (``manifest.json`` + ``runs.jsonl`` + payloads).

A pleasing echo of the paper itself: a campaign-level scheduler
dispatching simulations that each *contain* a scheduler.

Quick start::

    from repro.campaign import CampaignExecutor, ResultCache, builtin_campaign
    result = CampaignExecutor(jobs=4).run(builtin_campaign("paper-quick"))
    print(result.summary())

or from the CLI::

    repro-hpcsched campaign run paper-full --jobs 4
"""

from repro.campaign.cache import ResultCache, source_digest
from repro.campaign.executor import (
    CampaignConsistencyError,
    CampaignExecutor,
    CampaignResult,
    execute_runspec,
)
from repro.campaign.report import ProgressPrinter, render_report, render_status
from repro.campaign.spec import (
    BUILTIN_CAMPAIGNS,
    CampaignSpec,
    RunSpec,
    builtin_campaign,
    canonical_json,
    expand_matrix,
    invoke,
    result_from_payload,
    summarize_result,
)
from repro.campaign.store import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_RETRYING,
    CampaignStore,
    RunRecord,
)

__all__ = [
    "BUILTIN_CAMPAIGNS",
    "CampaignConsistencyError",
    "CampaignExecutor",
    "CampaignResult",
    "CampaignSpec",
    "CampaignStore",
    "ProgressPrinter",
    "ResultCache",
    "RunRecord",
    "RunSpec",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_RETRYING",
    "builtin_campaign",
    "canonical_json",
    "execute_runspec",
    "expand_matrix",
    "invoke",
    "render_report",
    "render_status",
    "result_from_payload",
    "source_digest",
    "summarize_result",
]
