"""Declarative campaign specifications.

A *campaign* is a matrix of experiment runs — (experiment id x
parameter overrides x seed) — expanded from the existing
``experiments.registry``.  Each cell is a :class:`RunSpec`; the whole
matrix is a :class:`CampaignSpec`.  Both are plain data: a spec can be
hashed (for the content-addressed result cache), serialized into the
campaign manifest, and shipped to a worker process.

The module also owns the two pieces of glue that make the campaign
layer and ``repro-hpcsched run`` share one code path:

* :func:`invoke` — resolve a :class:`RunSpec` to its runner (registry
  id or an explicit ``module:function`` dotted path) and call it with
  only the keyword arguments the runner actually accepts;
* :func:`summarize_result` / :func:`result_from_payload` — convert a
  runner's return value to a canonical JSON payload and back (the
  payload is what gets cached, stored, and byte-compared between
  parallel and serial executions).
"""

from __future__ import annotations

import hashlib
import importlib
import inspect
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.common import ExperimentResult, TaskResult


# ----------------------------------------------------------------------
# Canonical serialization
# ----------------------------------------------------------------------

def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, ``repr`` floats.

    Two equal payloads always serialize to the same bytes, which is
    what makes SHA-256 cache keys and the parallel-equals-serial
    assertion meaningful.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def spec_sha256(obj: Any) -> str:
    """SHA-256 hex digest of an object's canonical JSON form."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Run / campaign specs
# ----------------------------------------------------------------------

@dataclass
class RunSpec:
    """One cell of a campaign matrix.

    ``experiment`` is a registry id (``table3``, ``fig4``, ...) unless
    ``runner`` gives an explicit ``package.module:function`` dotted
    path (used by tests to inject crashing/hanging stubs).  ``params``
    are keyword overrides forwarded to the runner; ``seed`` (if not
    ``None``) is forwarded as the ``seed`` keyword.  ``timeout`` is a
    per-run override of the campaign-wide timeout and is *not* part of
    the run's identity — it cannot change the result.
    """

    experiment: str
    params: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None
    runner: Optional[str] = None
    timeout: Optional[float] = None

    def identity(self) -> Dict[str, Any]:
        """The result-determining fields (what the cache key hashes)."""
        return {
            "experiment": self.experiment,
            "params": self.params,
            "seed": self.seed,
            "runner": self.runner,
        }

    @property
    def digest(self) -> str:
        """SHA-256 of the run's identity."""
        return spec_sha256(self.identity())

    @property
    def run_id(self) -> str:
        """Stable human-readable id: ``<experiment>-<digest prefix>``."""
        return f"{self.experiment}-{self.digest[:10]}"

    def to_payload(self) -> Dict[str, Any]:
        """JSON-able form (manifest / worker transport)."""
        return {
            "experiment": self.experiment,
            "params": self.params,
            "seed": self.seed,
            "runner": self.runner,
            "timeout": self.timeout,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "RunSpec":
        """Inverse of :meth:`to_payload`."""
        return cls(
            experiment=payload["experiment"],
            params=dict(payload.get("params") or {}),
            seed=payload.get("seed"),
            runner=payload.get("runner"),
            timeout=payload.get("timeout"),
        )


@dataclass
class CampaignSpec:
    """A named list of :class:`RunSpec` cells."""

    name: str
    runs: List[RunSpec] = field(default_factory=list)
    description: str = ""

    @property
    def digest(self) -> str:
        """SHA-256 over all run identities (order-independent)."""
        return spec_sha256(sorted(r.digest for r in self.runs))

    def to_payload(self) -> Dict[str, Any]:
        """JSON-able form for the campaign manifest."""
        return {
            "name": self.name,
            "description": self.description,
            "digest": self.digest,
            "runs": [r.to_payload() for r in self.runs],
        }


def expand_matrix(
    name: str,
    experiments: Sequence[str],
    seeds: Sequence[Optional[int]] = (None,),
    params: Optional[Mapping[str, Any]] = None,
    grid: Optional[Mapping[str, Sequence[Any]]] = None,
    per_experiment_params: Optional[Mapping[str, Mapping[str, Any]]] = None,
    description: str = "",
) -> CampaignSpec:
    """Expand (experiment x seed x grid-point) into a campaign.

    ``params`` are overrides common to every run; ``grid`` maps a
    parameter name to a list of values and contributes its cartesian
    product; ``per_experiment_params`` adds overrides keyed by
    experiment id (e.g. quick iteration counts).
    """
    grid = dict(grid or {})
    grid_axes = [[(k, v) for v in values] for k, values in sorted(grid.items())]
    runs: List[RunSpec] = []
    for exp_id in experiments:
        base = dict(params or {})
        base.update((per_experiment_params or {}).get(exp_id, {}))
        for seed in seeds:
            for combo in itertools.product(*grid_axes) if grid_axes else [()]:
                cell = dict(base)
                cell.update(combo)
                runs.append(RunSpec(experiment=exp_id, params=cell, seed=seed))
    return CampaignSpec(name=name, runs=runs, description=description)


# ----------------------------------------------------------------------
# Built-in campaigns
# ----------------------------------------------------------------------

#: Reduced-size parameter overrides per experiment (same shape, much
#: faster) — used by the ``paper-quick`` and ``smoke`` campaigns.
QUICK_PARAMS: Dict[str, Dict[str, Any]] = {
    "table3": {"iterations": 8},
    "table4": {"iterations": 9, "k": 3},
    "table5": {"iterations": 30},
    "table6": {"scf_steps": 4},
    "fig2": {"iterations": 2},
    "fig3": {"iterations": 4},
    "fig4": {"iterations": 9, "k": 3},
    "fig5": {"iterations": 10},
    "fig6": {"scf_steps": 2},
    "ablation_gl": {"iterations": 15, "k": 5},
    "ablation_latency": {"scf_steps": 2},
    "ablation_priority_range": {"iterations": 8},
    "ablation_nice": {"iterations": 8},
    "extrinsic": {"iterations": 8},
    "synth_scatter": {"iterations": 3, "ranks": 4},
    "synth_convergence": {"iterations": 8, "ranks": 8},
    "synth_sweep": {"iterations": 2, "ranks": [4, 16]},
    "synth_offload": {"iterations": 2, "messages": 4},
    "synth_local_bad": {"iterations": 3, "ranks": 4},
}

#: The (imbalance x rank-count) grid of the ``synth-sweep`` preset.
SWEEP_IMBALANCES = (1.0, 1.5, 2.0, 4.0)
SWEEP_RANKS = (4, 16, 64)


def _all_experiment_ids() -> List[str]:
    from repro.experiments.registry import all_ids

    return all_ids()


def builtin_campaign(name: str) -> CampaignSpec:
    """Resolve a built-in campaign by name.

    * ``paper-full`` — every registered experiment at full paper size
      (regenerates tables I-VI, figs 1-6, and all ablations);
    * ``paper-quick`` — the same matrix with reduced iteration counts;
    * ``smoke`` — two fast experiments, used by CI;
    * ``synth-sweep`` — ``synth_scatter`` over the feasible
      (imbalance x rank-count) grid, one cached run per cell;
    * ``synth-convergence`` — step-change reaction time (with
      reversal) at 16 and 64 ranks.
    """
    if name == "paper-full":
        return expand_matrix(
            "paper-full",
            _all_experiment_ids(),
            description="every paper table/figure/ablation, full size",
        )
    if name == "paper-quick":
        return expand_matrix(
            "paper-quick",
            _all_experiment_ids(),
            per_experiment_params=QUICK_PARAMS,
            description="every paper table/figure/ablation, reduced size",
        )
    if name == "smoke":
        return expand_matrix(
            "smoke",
            ["table1", "fig1"],
            description="2-run CI smoke campaign",
        )
    if name == "synth-sweep":
        from repro.workloads.synth import unbalanced_sweep

        return CampaignSpec(
            name="synth-sweep",
            runs=[
                RunSpec(experiment="synth_scatter", params=dict(cell))
                for cell in unbalanced_sweep(SWEEP_IMBALANCES, SWEEP_RANKS)
            ],
            description=(
                "synthetic_scatter over the feasible imbalance x ranks "
                "grid, one cached run per cell"
            ),
        )
    if name == "synth-convergence":
        return expand_matrix(
            "synth-convergence",
            ["synth_convergence"],
            grid={"ranks": [16, 64]},
            params={"revert_at": 9},
            description=(
                "step-change reaction time (uniform vs adaptive, with "
                "reversal) at 16 and 64 ranks"
            ),
        )
    known = ", ".join(sorted(BUILTIN_CAMPAIGNS))
    raise KeyError(f"unknown campaign {name!r}; built-ins: {known}")


#: Names :func:`builtin_campaign` accepts.
BUILTIN_CAMPAIGNS = (
    "paper-full",
    "paper-quick",
    "smoke",
    "synth-sweep",
    "synth-convergence",
)


# ----------------------------------------------------------------------
# Runner resolution / invocation
# ----------------------------------------------------------------------

def resolve_runner(spec: RunSpec) -> Callable:
    """The callable a :class:`RunSpec` describes.

    Either an explicit ``module:function`` dotted path, or the registry
    entry for ``spec.experiment``.
    """
    if spec.runner:
        mod_name, _, attr = spec.runner.partition(":")
        if not attr:
            raise ValueError(
                f"runner {spec.runner!r} must be 'package.module:function'"
            )
        return getattr(importlib.import_module(mod_name), attr)
    from repro.experiments.registry import resolve

    return resolve(spec.experiment)


def filter_kwargs(
    fn: Callable, kwargs: Mapping[str, Any]
) -> Tuple[Dict[str, Any], List[str]]:
    """Split ``kwargs`` into (accepted, dropped-names) for ``fn``.

    A runner with a ``**kwargs`` catch-all accepts everything;
    otherwise only named keyword parameters survive.  Dropping instead
    of raising lets one campaign-wide override (e.g. ``seed``) apply
    to the subset of experiments that understand it.
    """
    sig = inspect.signature(fn)
    if any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in sig.parameters.values()
    ):
        return dict(kwargs), []
    accepted, dropped = {}, []
    for key, value in kwargs.items():
        param = sig.parameters.get(key)
        if param is not None and param.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            accepted[key] = value
        else:
            dropped.append(key)
    return accepted, dropped


def invoke(spec: RunSpec) -> Tuple[Any, List[str]]:
    """Run the spec's experiment; returns (raw result, dropped kwargs).

    This is the single invocation path shared by ``repro-hpcsched
    run``, the campaign worker processes, and the serial verifier.
    """
    fn = resolve_runner(spec)
    kwargs = dict(spec.params)
    if spec.seed is not None:
        kwargs.setdefault("seed", spec.seed)
    accepted, dropped = filter_kwargs(fn, kwargs)
    return fn(**accepted), dropped


# ----------------------------------------------------------------------
# Result payloads
# ----------------------------------------------------------------------

_EXPERIMENT_RESULT_KIND = "experiment_result"


def summarize_result(obj: Any) -> Any:
    """Reduce a runner's return value to a JSON-able payload.

    :class:`ExperimentResult` objects become typed dicts (dropping the
    trace/kernel handles, which exist only for figure rendering);
    containers recurse; anything else non-JSON falls back to ``repr``.
    """
    if isinstance(obj, ExperimentResult):
        return {
            "__kind__": _EXPERIMENT_RESULT_KIND,
            "workload": obj.workload,
            "scheduler": obj.scheduler,
            "exec_time": obj.exec_time,
            "mean_wakeup_latency": obj.mean_wakeup_latency,
            "max_wakeup_latency": obj.max_wakeup_latency,
            "priority_changes": obj.priority_changes,
            "tasks": {
                name: {
                    "name": tr.name,
                    "pct_comp": tr.pct_comp,
                    "pct_running": tr.pct_running,
                    "priority": tr.priority,
                    "running": tr.running,
                    "waiting": tr.waiting,
                    "ready": tr.ready,
                }
                for name, tr in obj.tasks.items()
            },
            "priority_history": {
                name: [list(entry) for entry in hist]
                for name, hist in obj.priority_history.items()
            },
        }
    if isinstance(obj, Mapping):
        return {str(k): summarize_result(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [summarize_result(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    return repr(obj)


def result_from_payload(payload: Any) -> Any:
    """Rebuild :class:`ExperimentResult` trees from a stored payload.

    The inverse of :func:`summarize_result` as far as table rendering
    needs: reconstructed results carry tasks and timings but no trace.
    """
    if isinstance(payload, Mapping):
        if payload.get("__kind__") == _EXPERIMENT_RESULT_KIND:
            res = ExperimentResult(
                workload=payload["workload"],
                scheduler=payload["scheduler"],
                exec_time=payload["exec_time"],
                mean_wakeup_latency=payload.get("mean_wakeup_latency", 0.0),
                max_wakeup_latency=payload.get("max_wakeup_latency", 0.0),
                priority_changes=payload.get("priority_changes", 0),
            )
            for name, tr in payload.get("tasks", {}).items():
                res.tasks[name] = TaskResult(**tr)
            res.priority_history = {
                name: [tuple(entry) for entry in hist]
                for name, hist in payload.get("priority_history", {}).items()
            }
            return res
        return {k: result_from_payload(v) for k, v in payload.items()}
    if isinstance(payload, list):
        return [result_from_payload(v) for v in payload]
    return payload


def iter_experiment_results(payload: Any) -> Iterable[ExperimentResult]:
    """Yield every reconstructed :class:`ExperimentResult` in a payload."""
    restored = result_from_payload(payload)

    def walk(node):
        if isinstance(node, ExperimentResult):
            yield node
        elif isinstance(node, Mapping):
            for v in node.values():
                yield from walk(v)
        elif isinstance(node, list):
            for v in node:
                yield from walk(v)

    yield from walk(restored)
