"""Campaign progress and reporting.

Two consumers:

* :class:`ProgressPrinter` — plugged into the executor's ``on_event``
  hook for live ``[done/total]`` lines with per-run wall time and
  cache/retry annotations;
* :func:`render_status` / :func:`render_report` — offline views over a
  :class:`~repro.campaign.store.CampaignStore`: status is the run
  table plus totals (counts, wall time, cache-hit ratio), report adds
  the paper-style aggregate tables by reconstructing
  :class:`~repro.experiments.common.ExperimentResult` objects from the
  stored payloads and reusing :mod:`repro.analysis.tables`.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List, Optional, TextIO

from repro.campaign.spec import iter_experiment_results
from repro.campaign.store import STATUS_FAILED, STATUS_OK, CampaignStore, RunRecord


class ProgressPrinter:
    """Executor event hook rendering one line per run outcome."""

    def __init__(self, total: int, out: Optional[TextIO] = None) -> None:
        self.total = total
        self.done = 0
        self.out = out or sys.stdout

    def _line(self, text: str) -> None:
        print(text, file=self.out, flush=True)

    def __call__(self, kind: str, **info: Any) -> None:
        """Handle one executor event (the ``on_event`` signature)."""
        run_id = info.get("run_id", "?")
        if kind == "cached":
            self.done += 1
            self._line(f"[{self.done}/{self.total}] {run_id:<36} OK (cached)")
        elif kind == "ok":
            self.done += 1
            wall = info.get("wall", 0.0)
            note = f" [attempt {info['attempt']}]" if info.get("attempt", 1) > 1 else ""
            self._line(
                f"[{self.done}/{self.total}] {run_id:<36} OK {wall:6.2f}s{note}"
            )
        elif kind == "retry":
            self._line(
                f"[{self.done}/{self.total}] {run_id:<36} "
                f"retrying (attempt {info.get('attempt')} failed"
                f"{', timeout' if info.get('timed_out') else ''})"
            )
        elif kind == "failed":
            self.done += 1
            first = (info.get("error") or "").strip().splitlines()
            why = first[-1] if first else "unknown error"
            self._line(
                f"[{self.done}/{self.total}] {run_id:<36} FAILED — {why}"
            )
        elif kind == "verified":
            self._line(f"verified {run_id}: parallel == serial")


def summarize_records(records: List[RunRecord]) -> Dict[str, Any]:
    """Totals over final run records (counts, wall, cache ratio)."""
    ok = [r for r in records if r.status == STATUS_OK]
    failed = [r for r in records if r.status == STATUS_FAILED]
    hits = sum(1 for r in records if r.cache_hit)
    return {
        "runs": len(records),
        "ok": len(ok),
        "failed": len(failed),
        "cache_hits": hits,
        "cache_hit_ratio": hits / len(records) if records else 0.0,
        "wall_time": sum(r.wall_time for r in records),
    }


def render_status(store: CampaignStore) -> str:
    """The ``campaign status`` view: run table + totals."""
    manifest = store.load_manifest()
    finals = store.final_records()
    lines = []
    name = manifest.get("campaign", {}).get("name", store.root.name)
    lines.append(f"campaign: {name}  [{manifest.get('status', 'unknown')}]")
    if manifest.get("source_digest"):
        lines.append(f"source:   {manifest['source_digest'][:12]}")
    lines.append(
        f"{'run':<38}{'status':<10}{'wall':>8}  {'attempt':>7}  cache"
    )
    lines.append("-" * 72)
    for rec in finals.values():
        cache = "hit" if rec.cache_hit else "miss"
        lines.append(
            f"{rec.run_id:<38}{rec.status:<10}{rec.wall_time:>7.2f}s"
            f"  {rec.attempt:>7}  {cache}"
        )
    totals = summarize_records(list(finals.values()))
    lines.append("-" * 72)
    lines.append(
        f"{totals['ok']}/{totals['runs']} OK, {totals['failed']} failed, "
        f"cache-hit ratio {totals['cache_hit_ratio']:.0%}, "
        f"total run wall {totals['wall_time']:.2f}s"
    )
    return "\n".join(lines)


def render_report(store: CampaignStore) -> str:
    """The ``campaign report`` view: status + paper-style tables.

    Any run whose payload contains reconstructable experiment results
    gets a Table III-VI style block; failures print their last error
    line.
    """
    from repro.analysis.tables import format_characterization_table

    lines = [render_status(store), ""]
    for run_id, rec in store.final_records().items():
        if rec.status == STATUS_FAILED:
            last = (rec.error or "").strip().splitlines()
            lines.append(f"== {run_id}: FAILED — {last[-1] if last else '?'}")
            lines.append("")
            continue
        raw = store.read_payload(run_id)
        if raw is None:
            continue
        payload = json.loads(raw)
        results = list(iter_experiment_results(payload))
        if results:
            lines.append(format_characterization_table(results, title=f"== {run_id}"))
            lines.append("")
    return "\n".join(lines).rstrip() + "\n"
