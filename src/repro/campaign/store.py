"""Campaign artifact store.

One directory per campaign::

    <root>/
      manifest.json        campaign spec + environment + final totals
      runs.jsonl           one JSON record per run *attempt outcome*
      results/<run_id>.json   canonical result payload of each OK run

``runs.jsonl`` is append-only — a retried run contributes one record
per attempt, and the *last* record for a run id is authoritative
(:meth:`CampaignStore.final_records` collapses the log).  Everything is
machine-readable so ``campaign status`` / ``campaign report`` can be
answered from disk long after the process exited.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Terminal statuses a run record can carry.
STATUS_OK = "OK"
STATUS_FAILED = "FAILED"
STATUS_RETRYING = "RETRYING"


@dataclass
class RunRecord:
    """Outcome of one run attempt (one ``runs.jsonl`` line)."""

    run_id: str
    experiment: str
    status: str
    attempt: int = 1
    wall_time: float = 0.0
    cache_hit: bool = False
    cache_key: str = ""
    seed: Optional[int] = None
    params: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    payload_path: Optional[str] = None
    finished_at: float = 0.0

    def to_json(self) -> str:
        """One JSON-lines record."""
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "RunRecord":
        """Inverse of :meth:`to_json`."""
        return cls(**json.loads(line))


class CampaignStore:
    """Filesystem-backed run log + payload store for one campaign."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / "results").mkdir(exist_ok=True)

    # -- manifest ------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        """Path of ``manifest.json``."""
        return self.root / "manifest.json"

    @property
    def runs_path(self) -> Path:
        """Path of ``runs.jsonl``."""
        return self.root / "runs.jsonl"

    def write_manifest(self, manifest: Dict[str, Any]) -> None:
        """(Re)write the campaign manifest atomically."""
        tmp = self.manifest_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True))
        tmp.replace(self.manifest_path)

    def load_manifest(self) -> Dict[str, Any]:
        """The manifest, or ``{}`` when none has been written."""
        try:
            return json.loads(self.manifest_path.read_text())
        except OSError:
            return {}

    # -- run records ---------------------------------------------------

    def append(self, record: RunRecord) -> None:
        """Append one attempt record to ``runs.jsonl``."""
        if not record.finished_at:
            record.finished_at = time.time()
        with self.runs_path.open("a") as fh:
            fh.write(record.to_json() + "\n")

    def records(self) -> List[RunRecord]:
        """Every attempt record, in append order."""
        try:
            lines = self.runs_path.read_text().splitlines()
        except OSError:
            return []
        return [RunRecord.from_json(line) for line in lines if line.strip()]

    def final_records(self) -> Dict[str, RunRecord]:
        """Last (authoritative) record per run id, in first-seen order."""
        out: Dict[str, RunRecord] = {}
        for rec in self.records():
            out[rec.run_id] = rec
        return out

    # -- payloads ------------------------------------------------------

    def write_payload(self, run_id: str, payload: bytes) -> str:
        """Store a run's canonical result bytes; returns the rel path."""
        rel = f"results/{run_id}.json"
        path = self.root / rel
        tmp = path.with_suffix(".tmp")
        tmp.write_bytes(payload)
        tmp.replace(path)
        return rel

    def read_payload(self, run_id: str) -> Optional[bytes]:
        """A run's stored payload bytes, or ``None``."""
        try:
            return (self.root / "results" / f"{run_id}.json").read_bytes()
        except OSError:
            return None
