"""Table V / Figure 5: NAS BT-MZ class A (4 ranks, 200 iterations).

Paper numbers (Table V):

========  =====================================  =========
Test      %Comp (P1, P2, P3, P4)                 Exec. time
========  =====================================  =========
Baseline  17.63, 29.85, 66.09, 99.85             94.97 s
Static    70.64, 42.22, 60.96, 99.85 (4,4,5,6)   79.63 s
Uniform   70.31, 37.18, 65.29, 99.85             79.81 s
Adaptive  70.31, 37.30, 65.30, 99.83             79.92 s
========  =====================================  =========

Both heuristics find the stable state (P4 boosted) and hold it — the
~16% improvement equals the static hand-tuning without any programmer
effort (paper §V-C).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.common import ExperimentResult, run_experiment
from repro.experiments.registry import register
from repro.workloads.btmz import BTMZ

PAPER_EXEC = {"cfs": 94.97, "static": 79.63, "uniform": 79.81, "adaptive": 79.92}
PAPER_COMP = {
    "cfs": {"P1": 17.63, "P2": 29.85, "P3": 66.09, "P4": 99.85},
    "static": {"P1": 70.64, "P2": 42.22, "P3": 60.96, "P4": 99.85},
    "uniform": {"P1": 70.31, "P2": 37.18, "P3": 65.29, "P4": 99.85},
    "adaptive": {"P1": 70.31, "P2": 37.30, "P3": 65.30, "P4": 99.83},
}
STATIC_PRIORITIES = {"P3": 5, "P4": 6}


def run_one(
    scheduler: str,
    iterations: Optional[int] = None,
    keep_trace: bool = True,
) -> ExperimentResult:
    """Run BT-MZ under one scheduler configuration."""
    workload = BTMZ(**({"iterations": iterations} if iterations else {}))
    return run_experiment(
        workload,
        scheduler,
        static_priorities=STATIC_PRIORITIES,
        keep_trace=keep_trace,
    )


@register("table5")
def run_table5(
    iterations: Optional[int] = None, keep_trace: bool = False
) -> Dict[str, ExperimentResult]:
    """All four scheduler configurations of Table V."""
    return {
        sched: run_one(sched, iterations=iterations, keep_trace=keep_trace)
        for sched in ("cfs", "static", "uniform", "adaptive")
    }
