"""Tables I and II: the hardware mechanism itself.

Table I — decode cycles per window as a function of the priority
difference; Table II — privilege level and ``or X,X,X`` encoding per
priority.  Both are regenerated directly from the POWER5 model, so the
"reproduction" here is an exactness check against the paper.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.experiments.registry import register
from repro.power5.decode import DECODE_TABLE
from repro.power5.priorities import (
    HWPriority,
    OR_NOP_REGISTER,
    required_privilege,
)

#: Table I exactly as printed in the paper.
PAPER_TABLE1: Dict[int, Tuple[int, int, int]] = {
    0: (2, 1, 1),
    1: (4, 3, 1),
    2: (8, 7, 1),
    3: (16, 15, 1),
    4: (32, 31, 1),
    5: (64, 63, 1),
}

#: Table II rows: (priority, level name, privilege, or-nop register).
PAPER_TABLE2 = [
    (0, "Thread off", "Hypervisor", None),
    (1, "Very low", "Supervisor", 31),
    (2, "Low", "User", 1),
    (3, "Medium-Low", "User", 6),
    (4, "Medium", "User", 2),
    (5, "Medium-high", "Supervisor", 5),
    (6, "High", "Supervisor", 3),
    (7, "Very high", "Hypervisor", 7),
]


def generate_table1() -> Dict[int, Tuple[int, int, int]]:
    """Decode window and per-task cycles per priority difference, from
    the model's arithmetic (R = 2^(dp+1); favoured task R-1, other 1)."""
    out = {}
    for diff in range(0, 6):
        r = 2 ** (diff + 1)
        if diff == 0:
            out[diff] = (r, 1, 1)
        else:
            out[diff] = (r, r - 1, 1)
    return out


def generate_table2() -> List[Tuple[int, str, str, int]]:
    """(priority, level name, privilege, or-nop register) rows from the
    model (paper Table II)."""
    rows = []
    for prio in HWPriority:
        reg = OR_NOP_REGISTER.get(prio)
        rows.append(
            (
                int(prio),
                prio.name,
                required_privilege(prio).name,
                reg,
            )
        )
    return rows


def render_table1() -> str:
    """Pretty-print Table I."""
    lines = [
        "Table I: decode cycles assigned to tasks based on priorities",
        f"{'prio diff':>9} {'R':>4} {'decode A':>9} {'decode B':>9}",
    ]
    for diff, (r, a, b) in sorted(generate_table1().items()):
        lines.append(f"{diff:>9} {r:>4} {a:>9} {b:>9}")
    return "\n".join(lines)


@register("table1")
def run_table1(**_kwargs) -> Dict[str, object]:
    """Verify the model reproduces Tables I and II bit-exactly."""
    model1 = generate_table1()
    exact1 = model1 == PAPER_TABLE1 and model1 == DECODE_TABLE
    model2 = generate_table2()
    # Structural comparison: (priority, privilege, or-nop register).
    paper_rows = [(p, priv.upper(), reg) for (p, _n, priv, reg) in PAPER_TABLE2]
    model_rows = [(p, priv.upper(), reg) for (p, _n, priv, reg) in model2]
    exact2 = paper_rows == model_rows
    return {
        "table1": model1,
        "table1_exact": exact1,
        "table2": model2,
        "table2_exact": exact2,
        "rendered": render_table1(),
    }
