"""Synthetic-generator experiments: imbalance sweeps + reaction speed.

Four registered runners over :mod:`repro.workloads.synth`:

* ``synth_scatter`` — :class:`SyntheticScatter` at one (imbalance,
  ranks) point under the requested schedulers;
* ``synth_convergence`` — :class:`SyntheticConvergence` step change,
  reporting :mod:`repro.analysis.convergence` time-to-threshold
  metrics per scheduler (the paper-style claim becomes measurable:
  *how fast* does Adaptive rebalance versus Uniform?);
* ``synth_sweep`` — the :func:`unbalanced_sweep` grid in one run
  (campaigns usually prefer the ``synth-sweep`` preset, which expands
  the grid into separately cached cells);
* ``synth_offload`` / ``synth_local_bad`` — the stressors.

Each runner returns campaign-serializable values: plain dicts of
:class:`~repro.experiments.common.ExperimentResult` plus (for
convergence) ``ConvergenceMetrics.to_payload()`` dicts.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.analysis.convergence import (
    auto_eps,
    convergence_metrics,
    epoch_samples,
)
from repro.experiments.common import ExperimentResult, run_experiment
from repro.experiments.registry import register
from repro.workloads.synth import (
    LocalBad,
    OffloadLatency,
    SyntheticConvergence,
    SyntheticScatter,
    unbalanced_sweep,
)

#: Schedulers the synth experiments compare by default: the baseline
#: plus the paper's two dynamic heuristics.
DEFAULT_SCHEDULERS = ("cfs", "uniform", "adaptive")


def _run_all(
    make_workload, schedulers: Sequence[str], keep_trace: bool
) -> Dict[str, ExperimentResult]:
    out: Dict[str, ExperimentResult] = {}
    for sched in schedulers:
        workload = make_workload()
        out[sched] = run_experiment(
            workload,
            sched,
            topology=workload.topology(),
            keep_trace=keep_trace,
        )
    return out


@register("synth_scatter")
def run_synth_scatter(
    imbalance: float = 2.0,
    ranks: int = 8,
    iterations: int = 10,
    mean_work: float = 1.0,
    seed: int = 0,
    placement: str = "paired",
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    keep_trace: bool = False,
) -> Dict[str, ExperimentResult]:
    """One (imbalance, ranks) scatter point under each scheduler."""
    return _run_all(
        lambda: SyntheticScatter(
            imbalance=imbalance,
            ranks=ranks,
            iterations=iterations,
            mean_work=mean_work,
            seed=seed,
            placement=placement,
        ),
        schedulers,
        keep_trace,
    )


@register("synth_local_bad")
def run_synth_local_bad(
    imbalance: float = 2.0,
    ranks: int = 8,
    iterations: int = 10,
    mean_work: float = 1.0,
    seed: int = 0,
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    keep_trace: bool = False,
) -> Dict[str, ExperimentResult]:
    """The pathological-placement stressor under each scheduler."""
    return _run_all(
        lambda: LocalBad(
            imbalance=imbalance,
            ranks=ranks,
            iterations=iterations,
            mean_work=mean_work,
            seed=seed,
        ),
        schedulers,
        keep_trace,
    )


@register("synth_offload")
def run_synth_offload(
    ranks: int = 8,
    iterations: int = 4,
    messages: int = 16,
    chunk_work: float = 1e-3,
    origin_work: float = 0.05,
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    keep_trace: bool = False,
) -> Dict[str, ExperimentResult]:
    """The wakeup-latency stressor under each scheduler."""
    return _run_all(
        lambda: OffloadLatency(
            ranks=ranks,
            iterations=iterations,
            messages=messages,
            chunk_work=chunk_work,
            origin_work=origin_work,
        ),
        schedulers,
        keep_trace,
    )


@register("synth_convergence")
def run_synth_convergence(
    ranks: int = 16,
    imbalance: float = 1.5,
    iterations: int = 12,
    step_at: Optional[int] = None,
    revert_at: Optional[int] = None,
    mean_work: float = 1.0,
    eps: Optional[float] = None,
    schedulers: Sequence[str] = ("uniform", "adaptive"),
    keep_trace: bool = False,
) -> Dict[str, Dict[str, Any]]:
    """Step-change reaction time per scheduler.

    Per scheduler: the :class:`ExperimentResult` under ``"result"``,
    the post-step convergence metrics under ``"convergence"``, and —
    when ``revert_at`` is given — the post-reversal metrics under
    ``"reconvergence"`` (each window bounded by the next disturbance).
    Epoch ordinals are 1-based, so a step at 0-based workload iteration
    ``s`` first shows up in epoch ``s + 1``; ``after_index=s`` hands
    the analysis exactly the post-step epochs.

    ``eps=None`` (default) picks the threshold per run via
    :func:`repro.analysis.convergence.auto_eps` over the *pre-step*
    steady state — "converged" then means "recovered the balance the
    mechanism held before the disturbance", which stays meaningful at
    imbalance targets whose discrete-priority floor sits above the
    detector's 10-point band.
    """
    out: Dict[str, Dict[str, Any]] = {}
    for sched in schedulers:
        workload = SyntheticConvergence(
            ranks=ranks,
            imbalance=imbalance,
            iterations=iterations,
            step_at=step_at,
            revert_at=revert_at,
            mean_work=mean_work,
        )
        result = run_experiment(
            workload, sched, topology=workload.topology(), keep_trace=True
        )
        samples = epoch_samples(result.trace, names=list(result.tasks))
        # Pre-step window: skip epoch 1 (the heuristic's first look at
        # the application — still unbalanced by construction).
        eps_val = (
            auto_eps(samples, after_index=1, until_index=workload.step_at)
            if eps is None
            else eps
        )
        entry: Dict[str, Any] = {
            "result": result,
            "convergence": convergence_metrics(
                samples,
                eps=eps_val,
                after_index=workload.step_at,
                until_index=workload.revert_at,
            ).to_payload(),
        }
        if workload.revert_at is not None:
            entry["reconvergence"] = convergence_metrics(
                samples, eps=eps_val, after_index=workload.revert_at
            ).to_payload()
        if not keep_trace:
            result.trace = result.kernel = result.launched = None
        out[sched] = entry
    return out


@register("synth_sweep")
def run_synth_sweep(
    imbalances: Sequence[float] = (1.0, 1.5, 2.0, 4.0),
    ranks: Sequence[int] = (4, 16, 64),
    iterations: int = 5,
    mean_work: float = 1.0,
    seed: int = 0,
    schedulers: Sequence[str] = ("cfs", "adaptive"),
    keep_trace: bool = False,
) -> Dict[str, Any]:
    """The (imbalance x rank-count) grid in a single run.

    Returns ``{"cells": [{"imbalance": I, "ranks": N, "results":
    {scheduler: ExperimentResult}}, ...]}``.  Campaign users usually
    want the ``synth-sweep`` preset instead, which expands the same
    grid into separately cached runs.
    """
    cells = []
    for cell in unbalanced_sweep(imbalances=imbalances, ranks=ranks):
        results = run_synth_scatter(
            imbalance=cell["imbalance"],
            ranks=cell["ranks"],
            iterations=iterations,
            mean_work=mean_work,
            seed=seed,
            schedulers=schedulers,
            keep_trace=keep_trace,
        )
        cells.append({**cell, "results": results})
    return {"cells": cells}
