"""Experiment registry: id -> runner.

Ids follow the paper's tables/figures (see DESIGN.md §4): ``table1``,
``table3``/``fig3`` (MetBench), ``table4``/``fig4`` (MetBenchVar),
``table5``/``fig5`` (BT-MZ), ``table6``/``fig6`` (SIESTA), ``fig1``,
``fig2``, plus the ablations ``ablation_gl``, ``ablation_latency`` and
``ablation_priority_range``.

Populated lazily to keep imports light; use :func:`run_by_id`.
"""

from __future__ import annotations

from typing import Callable, Dict

EXPERIMENTS: Dict[str, Callable] = {}


def register(exp_id: str):
    """Decorator registering an experiment runner under ``exp_id``."""

    def deco(fn: Callable) -> Callable:
        EXPERIMENTS[exp_id] = fn
        return fn

    return deco


def resolve(exp_id: str) -> Callable:
    """Return the runner registered under ``exp_id``.

    Raises :class:`KeyError` with the known ids when the id is unknown.
    """
    _load_all()
    try:
        return EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None


def run_by_id(exp_id: str, **kwargs):
    """Run a registered experiment by its paper id."""
    return resolve(exp_id)(**kwargs)


def all_ids():
    """Sorted list of registered experiment ids."""
    _load_all()
    return sorted(EXPERIMENTS)


def _load_all() -> None:
    """Import the experiment modules so their @register decorators run."""
    from repro.experiments import (  # noqa: F401
        table1,
        metbench,
        metbenchvar,
        btmz,
        siesta,
        figures,
        ablations,
        characterization,
        extrinsic,
        nice_ablation,
        amr,
        synth,
    )
