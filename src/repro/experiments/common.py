"""Shared experiment machinery: build, run, measure."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hpcsched import (
    AdaptiveHeuristic,
    HybridHeuristic,
    UniformHeuristic,
    attach_hpcsched,
)
from repro.kernel.core_sched import Kernel
from repro.kernel.tunables import Tunables
from repro.power5.machine import Machine, MachineTopology
from repro.power5.perfmodel import PerformanceModel, TableDrivenModel
from repro.trace.collector import TraceCollector
from repro.trace.stats import compute_stats
from repro.workloads.base import LaunchedWorkload, Workload, launch_workload
from repro.workloads.noise import NoiseDaemons, spawn_noise

#: The scheduler configurations of the paper's tables.
SCHEDULERS = ("cfs", "static", "uniform", "adaptive")

#: HPCSched heuristics by scheduler name ("hybrid" is this repo's
#: future-work extension, not one of the paper's configurations).
HEURISTICS = {
    "uniform": UniformHeuristic,
    "adaptive": AdaptiveHeuristic,
    "hybrid": HybridHeuristic,
}


@dataclass
class TaskResult:
    """One row of a paper-style table."""

    name: str
    pct_comp: float
    pct_running: float
    priority: Optional[int]  # fixed priority, or None for dynamic
    running: float
    waiting: float
    ready: float


@dataclass
class ExperimentResult:
    """Outcome of one (workload, scheduler) run."""

    workload: str
    scheduler: str
    exec_time: float
    tasks: Dict[str, TaskResult] = field(default_factory=dict)
    #: Mean/max wakeup latency over the measured tasks.
    mean_wakeup_latency: float = 0.0
    max_wakeup_latency: float = 0.0
    #: Hardware-priority changes applied by HPCSched (0 for cfs/static).
    priority_changes: int = 0
    #: Per-task hardware-priority history [(time, prio), ...].
    priority_history: Dict[str, List] = field(default_factory=dict)
    #: The trace collector (kept for figure rendering).
    trace: Optional[TraceCollector] = None
    kernel: Optional[Kernel] = None
    launched: Optional[LaunchedWorkload] = None

    def improvement_over(self, other: "ExperimentResult") -> float:
        """Percent execution-time improvement relative to ``other``."""
        if other.exec_time <= 0:
            return 0.0
        return 100.0 * (other.exec_time - self.exec_time) / other.exec_time


def build_kernel(
    topology: Optional[MachineTopology] = None,
    perf_model: Optional[PerformanceModel] = None,
    tunables: Optional[Tunables] = None,
) -> Kernel:
    """A kernel on the paper's machine (1 POWER5: 2 cores x 2 SMT)."""
    machine = Machine(topology or MachineTopology(), perf_model or TableDrivenModel())
    return Kernel(machine=machine, tunables=tunables, trace=TraceCollector())


def run_experiment(
    workload: Workload,
    scheduler: str,
    static_priorities: Optional[Dict[str, int]] = None,
    noise: Optional[NoiseDaemons] = None,
    perf_model: Optional[PerformanceModel] = None,
    tunables: Optional[Tunables] = None,
    topology: Optional[MachineTopology] = None,
    until: Optional[float] = None,
    keep_trace: bool = True,
) -> ExperimentResult:
    """Run ``workload`` under one scheduler configuration.

    ``static_priorities`` maps task names to fixed hardware priorities
    (used with ``scheduler="static"``); ``noise`` optionally adds the
    per-CPU OS-noise daemons; ``topology`` overrides the paper's
    1-chip machine (e.g. for multi-chip scaling studies).
    """
    valid = set(SCHEDULERS) | set(HEURISTICS)
    if scheduler not in valid:
        raise ValueError(
            f"unknown scheduler {scheduler!r}; pick from {sorted(valid)}"
        )

    kernel = build_kernel(
        topology=topology, perf_model=perf_model, tunables=tunables
    )
    hpc_class = None
    if scheduler in HEURISTICS:
        hpc_class = attach_hpcsched(kernel, HEURISTICS[scheduler]())

    if noise is not None:
        spawn_noise(kernel, noise)

    launched = launch_workload(kernel, workload, use_hpc=hpc_class is not None)

    if scheduler == "static":
        for name, prio in (static_priorities or {}).items():
            kernel.set_hw_priority(launched.tasks[name], prio)

    exec_time = kernel.run(until=until)

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    trace = kernel.trace
    assert trace is not None
    measured = workload.measured_names()
    stats = compute_stats(trace, exec_time, names=measured)

    result = ExperimentResult(
        workload=workload.name,
        scheduler=scheduler,
        exec_time=exec_time,
        trace=trace if keep_trace else None,
        kernel=kernel if keep_trace else None,
        launched=launched if keep_trace else None,
    )
    lat_means: List[float] = []
    for name in measured:
        st = stats[name]
        task = launched.tasks[name]
        fixed_prio: Optional[int]
        if scheduler in ("cfs", "static"):
            fixed_prio = task.hw_priority
        else:
            fixed_prio = None  # dynamic (the tables print "-")
        result.tasks[name] = TaskResult(
            name=name,
            pct_comp=st.pct_comp,
            pct_running=st.pct_running,
            priority=fixed_prio,
            running=st.running,
            waiting=st.waiting,
            ready=st.ready,
        )
        acc = kernel.latency_stats.for_task(task.pid)
        lat_means.append(acc.mean)
        result.max_wakeup_latency = max(result.max_wakeup_latency, acc.max)
        result.priority_history[name] = [
            (ev.time, ev.info.get("priority"))
            for ev in trace.priority_changes(task.pid)
        ]
    result.mean_wakeup_latency = (
        sum(lat_means) / len(lat_means) if lat_means else 0.0
    )
    if hpc_class is not None:
        result.priority_changes = hpc_class.detector.priority_changes
    return result
