"""Figures 1-6: class diagrams and execution traces.

The paper's trace figures are PARAVER screenshots; ours are ASCII Gantt
charts (``#`` compute, ``.`` wait) rendered from the same trace data,
plus the ``.prv`` export for tooling.  Figure 1 is the scheduling-class
diagram, regenerated from the live kernel's class list; Figure 2 is a
single-task iteration timeline.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments import btmz, metbench, metbenchvar, siesta
from repro.experiments.common import build_kernel
from repro.experiments.registry import register
from repro.hpcsched import attach_hpcsched
from repro.trace.gantt import render_gantt
from repro.trace.records import State


@register("fig1")
def figure1(**_kwargs) -> Dict[str, str]:
    """Scheduling classes of the standard and HPCSched kernels."""
    std = build_kernel()
    hpc = build_kernel()
    attach_hpcsched(hpc)

    def diagram(kernel, label):
        rows = [label]
        for i, cls in enumerate(kernel.classes):
            policies = ", ".join(sorted(p.name for p in cls.policies)) or "-"
            rows.append(f"  {i + 1}. {cls.name:<6} [{policies}]")
        return "\n".join(rows)

    return {
        "standard": diagram(std, "a) Standard Linux Scheduling Classes"),
        "hpcsched": diagram(hpc, "b) HPCSched Scheduling Classes"),
        "order_standard": [c.name for c in std.classes],
        "order_hpcsched": [c.name for c in hpc.classes],
    }


@register("fig2")
def figure2(iterations: int = 4, **_kwargs) -> Dict[str, object]:
    """One task's iterative behaviour: tR (compute) / tW (wait) spans."""
    res = metbench.run_one("cfs", iterations=iterations, keep_trace=True)
    tl = res.trace.by_name("P1")
    res.trace.finish(res.exec_time)
    spans = [
        (iv.state.name, round(iv.start, 4), round(iv.end, 4))
        for iv in tl.intervals
        if iv.state in (State.RUNNING, State.WAITING)
    ]
    return {
        "task": "P1",
        "spans": spans,
        "gantt": render_gantt(res.trace, res.exec_time, width=90, names=["P1"]),
    }


def _trace_figure(run_one, schedulers, static_key="static", **kwargs):
    out = {}
    for sched in schedulers:
        res = run_one(sched, keep_trace=True, **kwargs)
        out[sched] = {
            "exec_time": res.exec_time,
            "gantt": render_gantt(
                res.trace,
                res.exec_time,
                width=100,
                names=[n for n in sorted(res.tasks)],
            ),
            "priority_history": res.priority_history,
        }
    return out


@register("fig3")
def figure3(iterations: Optional[int] = 12, **_kwargs):
    """MetBench traces under the four schedulers (paper Fig. 3)."""
    return _trace_figure(
        metbench.run_one, ("cfs", "static", "uniform", "adaptive"),
        iterations=iterations,
    )


@register("fig4")
def figure4(iterations: Optional[int] = 45, k: Optional[int] = 15, **_kwargs):
    """MetBenchVar traces (paper Fig. 4): reversal and re-balancing."""
    return _trace_figure(
        metbenchvar.run_one, ("cfs", "static", "uniform", "adaptive"),
        iterations=iterations, k=k,
    )


@register("fig5")
def figure5(iterations: Optional[int] = 40, **_kwargs):
    """BT-MZ traces (paper Fig. 5; the paper shows a few iterations)."""
    return _trace_figure(
        btmz.run_one, ("cfs", "static", "uniform", "adaptive"),
        iterations=iterations,
    )


@register("fig6")
def figure6(scf_steps: Optional[int] = 4, **_kwargs):
    """SIESTA traces (paper Fig. 6: standard, Uniform, Adaptive)."""
    return _trace_figure(
        siesta.run_one, ("cfs", "uniform", "adaptive"), scf_steps=scf_steps
    )
