"""Ablation: why not just use nice()?

The paper notes that opting into HPCSched costs the programmer as much
as "the nice() system call commonly used in HPC applications" — but
nice and hardware priorities act on completely different resources:

* ``nice`` biases **CPU-time sharing** among tasks *on the same
  runqueue*.  With the standard HPC deployment of one MPI rank per
  logical CPU, ranks never share a runqueue, so nice cannot move any
  resource between them: the big and small MetBench workers share an
  *SMT core*, not a CPU.
* The POWER5 **hardware priority** biases the core's decode slots
  between the two *hardware contexts* — exactly the boundary the
  imbalance sits on.

This experiment runs MetBench with the big workers at nice -15
(maximum practical CFS favour) and with HPCSched, against the CFS
baseline.  The expected result — nice: ~0%, HPCSched: ~11% — is the
paper's core insight in one table.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.common import ExperimentResult, build_kernel, run_experiment
from repro.experiments.registry import register
from repro.trace.stats import compute_stats
from repro.workloads.base import launch_workload
from repro.workloads.metbench import MetBench

#: nice level granted to the big-load workers in the "nice" run.
FAVOURED_NICE = -15


def run_nice(iterations: int = 20) -> ExperimentResult:
    """MetBench under CFS with the big workers reniced."""
    kernel = build_kernel()
    launched = launch_workload(kernel, MetBench(iterations=iterations))
    for name in ("P2", "P4"):
        launched.tasks[name].nice = FAVOURED_NICE
    exec_time = kernel.run()
    stats = compute_stats(
        kernel.trace, exec_time, names=["P1", "P2", "P3", "P4"]
    )
    result = ExperimentResult(
        workload="metbench", scheduler="nice", exec_time=exec_time
    )
    from repro.experiments.common import TaskResult

    for name, st in stats.items():
        result.tasks[name] = TaskResult(
            name=name,
            pct_comp=st.pct_comp,
            pct_running=st.pct_running,
            priority=4,
            running=st.running,
            waiting=st.waiting,
            ready=st.ready,
        )
    return result


@register("ablation_nice")
def run_ablation_nice(iterations: int = 20, **_kw) -> Dict[str, ExperimentResult]:
    """cfs vs cfs+nice(-15) vs HPCSched on MetBench."""
    return {
        "cfs": run_experiment(
            MetBench(iterations=iterations), "cfs", keep_trace=False
        ),
        "nice": run_nice(iterations=iterations),
        "uniform": run_experiment(
            MetBench(iterations=iterations), "uniform", keep_trace=False
        ),
    }
