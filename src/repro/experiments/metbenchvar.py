"""Table IV / Figure 4: MetBenchVar (k=15) — dynamic behaviour.

Paper numbers (Table IV):

========  =====================================  =========
Test      %Comp (P1, P2, P3, P4)                 Exec. time
========  =====================================  =========
Baseline  50.24, 75.09, 50.22, 75.08             368.17 s
Static    99.97, 68.06, 99.94, 68.04 (4,6,4,6)   338.40 s
Uniform   91.47, 95.55, 91.44, 95.33             327.17 s
Adaptive  89.61, 93.08, 89.99, 95.15             326.41 s
========  =====================================  =========

The headline behaviours: the static prioritization is *reversed* during
the middle period (its balance turns into extra imbalance, Fig. 4b),
while HPCSched detects the change and re-balances within a couple of
iterations (Figs. 4c/4d).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.common import ExperimentResult, run_experiment
from repro.experiments.registry import register
from repro.workloads.metbenchvar import MetBenchVar

PAPER_EXEC = {"cfs": 368.17, "static": 338.40, "uniform": 327.17, "adaptive": 326.41}
PAPER_COMP = {
    "cfs": {"P1": 50.24, "P2": 75.09, "P3": 50.22, "P4": 75.08},
    "static": {"P1": 99.97, "P2": 68.06, "P3": 99.94, "P4": 68.04},
    "uniform": {"P1": 91.47, "P2": 95.55, "P3": 91.44, "P4": 95.33},
    "adaptive": {"P1": 89.61, "P2": 93.08, "P3": 89.99, "P4": 95.15},
}
STATIC_PRIORITIES = {"P2": 6, "P4": 6}


def run_one(
    scheduler: str,
    iterations: Optional[int] = None,
    k: Optional[int] = None,
    keep_trace: bool = True,
) -> ExperimentResult:
    """Run MetBenchVar under one scheduler configuration."""
    kwargs = {}
    if iterations is not None:
        kwargs["iterations"] = iterations
    if k is not None:
        kwargs["k"] = k
    return run_experiment(
        MetBenchVar(**kwargs),
        scheduler,
        static_priorities=STATIC_PRIORITIES,
        keep_trace=keep_trace,
    )


@register("table4")
def run_table4(
    iterations: Optional[int] = None,
    k: Optional[int] = None,
    keep_trace: bool = False,
) -> Dict[str, ExperimentResult]:
    """All four scheduler configurations of Table IV."""
    return {
        sched: run_one(sched, iterations=iterations, k=k, keep_trace=keep_trace)
        for sched in ("cfs", "static", "uniform", "adaptive")
    }
