"""Experiment harness reproducing the paper's evaluation (§V).

Each experiment runs one workload under up to four scheduler
configurations:

* ``cfs``      — baseline: standard Linux 2.6.24 CFS (Tables: "Baseline"),
* ``static``   — CFS + hand-tuned fixed hardware priorities, the
  authors' IPDPS'08 approach (Tables: "Static"),
* ``uniform``  — HPCSched with the Uniform heuristic,
* ``adaptive`` — HPCSched with the Adaptive heuristic.

See :mod:`repro.experiments.registry` for the experiment-id index
(table1, table3/fig3 ... table6/fig6, ablations).
"""

from repro.experiments.common import (
    SCHEDULERS,
    ExperimentResult,
    TaskResult,
    run_experiment,
)
from repro.experiments.registry import EXPERIMENTS, run_by_id

__all__ = [
    "SCHEDULERS",
    "ExperimentResult",
    "TaskResult",
    "run_experiment",
    "EXPERIMENTS",
    "run_by_id",
]
