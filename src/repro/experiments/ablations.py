"""Ablations on the design choices DESIGN.md calls out.

* ``ablation_gl`` — the Adaptive G/L aggressiveness trade-off (§IV-B:
  "an aggressive heuristic quickly adapts but may over-react"), swept on
  MetBenchVar.
* ``ablation_latency`` — decomposes SIESTA's gain into the scheduling
  -policy part (HPC class with the *Null* mechanism: no hardware
  prioritization at all) and the balancing part (full HPCSched) —
  paper §V-D attributes the gain to the former.
* ``ablation_priority_range`` — why the paper caps priorities at ±2
  (§II, conclusion 2 of [4]): widen MAX_PRIO/MIN_PRIO and watch the
  de-prioritized tasks collapse.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.experiments.common import ExperimentResult, run_experiment
from repro.experiments.registry import register
from repro.hpcsched import AdaptiveHeuristic, NullMechanism, attach_hpcsched
from repro.kernel.tunables import Tunables
from repro.workloads.base import launch_workload
from repro.workloads.metbench import MetBench
from repro.workloads.metbenchvar import MetBenchVar
from repro.workloads.noise import NoiseDaemons
from repro.workloads.siesta import Siesta


@register("ablation_gl")
def ablation_gl(
    weights: Tuple[Tuple[float, float], ...] = ((1.0, 0.0), (0.5, 0.5), (0.1, 0.9)),
    iterations: int = 45,
    k: int = 15,
) -> Dict[str, ExperimentResult]:
    """Sweep the Adaptive heuristic's (G, L) weights on MetBenchVar."""
    out = {}
    for g, l in weights:
        tun = Tunables()
        tun.set("hpcsched/adaptive_g", g)
        tun.set("hpcsched/adaptive_l", l)
        res = run_experiment(
            MetBenchVar(iterations=iterations, k=k),
            "adaptive",
            tunables=tun,
            keep_trace=False,
        )
        out[f"G={g:.2f}/L={l:.2f}"] = res
    out["cfs"] = run_experiment(
        MetBenchVar(iterations=iterations, k=k), "cfs", keep_trace=False
    )
    return out


@register("ablation_latency")
def ablation_latency(scf_steps: Optional[int] = None) -> Dict[str, float]:
    """SIESTA: baseline CFS vs HPC-class-without-prioritization vs full
    HPCSched.  The middle bar isolates the scheduling-latency gain."""
    kwargs = {"scf_steps": scf_steps} if scf_steps else {}
    noise = NoiseDaemons()

    cfs = run_experiment(Siesta(**kwargs), "cfs", noise=noise, keep_trace=False)

    # HPC class with the Null mechanism: policy benefits only.
    from repro.experiments.common import build_kernel
    from repro.workloads.noise import spawn_noise

    kernel = build_kernel()
    attach_hpcsched(kernel, AdaptiveHeuristic(), mechanism=NullMechanism())
    spawn_noise(kernel, noise)
    launch_workload(kernel, Siesta(**kwargs), use_hpc=True)
    policy_only_time = kernel.run()

    full = run_experiment(Siesta(**kwargs), "adaptive", noise=noise, keep_trace=False)
    return {
        "cfs": cfs.exec_time,
        "hpc_policy_only": policy_only_time,
        "hpcsched_full": full.exec_time,
        "policy_gain_pct": 100.0 * (cfs.exec_time - policy_only_time) / cfs.exec_time,
        "full_gain_pct": 100.0 * (cfs.exec_time - full.exec_time) / cfs.exec_time,
    }


@register("ablation_priority_range")
def ablation_priority_range(
    ranges: Tuple[Tuple[int, int], ...] = ((4, 5), (4, 6), (3, 6), (2, 6)),
    iterations: int = 20,
) -> Dict[str, ExperimentResult]:
    """Widen the [MIN_PRIO, MAX_PRIO] window on MetBench.

    The paper confines HPCSched to [4, 6]; larger windows keep helping
    the favoured task only marginally while the de-prioritized task's
    slowdown explodes (an order of magnitude, §I)."""
    out = {}
    for lo, hi in ranges:
        tun = Tunables()
        tun.set("hpcsched/min_prio", lo)
        tun.set("hpcsched/max_prio", hi)
        res = run_experiment(
            MetBench(iterations=iterations),
            "uniform",
            tunables=tun,
            keep_trace=False,
        )
        out[f"[{lo},{hi}]"] = res
    out["cfs"] = run_experiment(
        MetBench(iterations=iterations), "cfs", keep_trace=False
    )
    return out
