"""AMR-drift experiment (extension; paper §II-A motivation, [11]).

Huang & Tafti's adaptive-mesh work — cited by the paper as the dynamic
power-balancing motivation — features load that *drifts* rather than
steps.  This experiment runs :class:`repro.workloads.amr.AMRDrift`
under the scheduler matrix: the detector must thaw and re-balance every
time the refinement front crosses a core boundary.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.common import ExperimentResult, run_experiment
from repro.experiments.registry import register
from repro.workloads.amr import AMRDrift


def run_one(
    scheduler: str,
    iterations: Optional[int] = None,
    keep_trace: bool = True,
) -> ExperimentResult:
    """Run the AMR drift workload under one scheduler configuration."""
    workload = AMRDrift(**({"iterations": iterations} if iterations else {}))
    return run_experiment(workload, scheduler, keep_trace=keep_trace)


@register("amr")
def run_amr(
    iterations: Optional[int] = None, keep_trace: bool = False
) -> Dict[str, ExperimentResult]:
    """The drift workload under cfs/uniform/adaptive/hybrid."""
    return {
        sched: run_one(sched, iterations=iterations, keep_trace=keep_trace)
        for sched in ("cfs", "uniform", "adaptive", "hybrid")
    }
