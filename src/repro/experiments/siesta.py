"""Table VI / Figure 6: SIESTA (benzene input) — the latency story.

Paper numbers (Table VI; the paper runs no static configuration here —
the application's variability defeated their static balancing):

========  =====================================  =========
Test      %Comp (P1, P2, P3, P4)                 Exec. time
========  =====================================  =========
Baseline  98.90, 52.79, 28.45, 19.99             81.49 s
Uniform   98.81, 53.38, 31.41, 21.68             76.82 s
Adaptive  98.81, 53.40, 31.47, 21.71             76.91 s
========  =====================================  =========

The balance barely moves (the heuristics' guesses cannot track an
application whose iteration i does not predict i+1, and the MEM_BOUND
profile makes prioritization nearly ineffective) — the ~6% comes from
the scheduling policy itself: SCHED_HPC tasks wake past the OS daemons
instead of sharing and waiting behind them (paper §V-D).  Runs include
the OS-noise daemons by default for exactly that reason.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.common import ExperimentResult, run_experiment
from repro.experiments.registry import register
from repro.workloads.noise import NoiseDaemons
from repro.workloads.siesta import Siesta

PAPER_EXEC = {"cfs": 81.49, "uniform": 76.82, "adaptive": 76.91}
PAPER_COMP = {
    "cfs": {"P1": 98.90, "P2": 52.79, "P3": 28.45, "P4": 19.99},
    "uniform": {"P1": 98.81, "P2": 53.38, "P3": 31.41, "P4": 21.68},
    "adaptive": {"P1": 98.81, "P2": 53.40, "P3": 31.47, "P4": 21.71},
}


def run_one(
    scheduler: str,
    scf_steps: Optional[int] = None,
    noise: bool = True,
    keep_trace: bool = True,
) -> ExperimentResult:
    """Run SIESTA (with OS noise by default) under one scheduler."""
    workload = Siesta(**({"scf_steps": scf_steps} if scf_steps else {}))
    return run_experiment(
        workload,
        scheduler,
        noise=NoiseDaemons() if noise else None,
        keep_trace=keep_trace,
    )


@register("table6")
def run_table6(
    scf_steps: Optional[int] = None,
    noise: bool = True,
    keep_trace: bool = False,
) -> Dict[str, ExperimentResult]:
    """The three scheduler configurations of Table VI."""
    return {
        sched: run_one(sched, scf_steps=scf_steps, noise=noise, keep_trace=keep_trace)
        for sched in ("cfs", "uniform", "adaptive")
    }
