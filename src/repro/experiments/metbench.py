"""Table III / Figure 3: MetBench under the four schedulers.

Paper numbers (Table III):

========  =====================================  =========
Test      %Comp (P1, P2, P3, P4)                 Exec. time
========  =====================================  =========
Baseline  25.34, 99.98, 25.32, 99.97             81.78 s
Static    99.97, 99.64, 99.95, 99.64 (4,6,4,6)   70.90 s
Uniform   96.17, 98.57, 90.94, 99.57             71.74 s
Adaptive  80.64, 99.52, 87.52, 99.20             71.65 s
========  =====================================  =========

The static configuration boosts the two big-load workers to priority 6.
The Adaptive heuristic's lower %Comp reflects its noise-induced
over-reactions (paper Fig. 3d); pass ``noise=True`` to reproduce that
behaviour, the default runs are deterministic.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.common import ExperimentResult, run_experiment
from repro.experiments.registry import register
from repro.workloads.metbench import MetBench
from repro.workloads.noise import NoiseDaemons

PAPER_EXEC = {"cfs": 81.78, "static": 70.90, "uniform": 71.74, "adaptive": 71.65}
PAPER_COMP = {
    "cfs": {"P1": 25.34, "P2": 99.98, "P3": 25.32, "P4": 99.97},
    "static": {"P1": 99.97, "P2": 99.64, "P3": 99.95, "P4": 99.64},
    "uniform": {"P1": 96.17, "P2": 98.57, "P3": 90.94, "P4": 99.57},
    "adaptive": {"P1": 80.64, "P2": 99.52, "P3": 87.52, "P4": 99.20},
}
STATIC_PRIORITIES = {"P2": 6, "P4": 6}

#: Light OS noise, enough to occasionally tickle the Adaptive
#: heuristic's over-reaction without moving the baseline.
LIGHT_NOISE = NoiseDaemons(period=0.010, burst=0.0001, seed=11)


def run_one(
    scheduler: str,
    iterations: Optional[int] = None,
    noise: bool = False,
    keep_trace: bool = True,
) -> ExperimentResult:
    """Run MetBench under one scheduler configuration."""
    workload = MetBench(**({"iterations": iterations} if iterations else {}))
    return run_experiment(
        workload,
        scheduler,
        static_priorities=STATIC_PRIORITIES,
        noise=LIGHT_NOISE if noise else None,
        keep_trace=keep_trace,
    )


@register("table3")
def run_table3(
    iterations: Optional[int] = None,
    noise: bool = False,
    keep_trace: bool = False,
) -> Dict[str, ExperimentResult]:
    """All four scheduler configurations of Table III."""
    return {
        sched: run_one(sched, iterations=iterations, noise=noise, keep_trace=keep_trace)
        for sched in ("cfs", "static", "uniform", "adaptive")
    }
