"""Extrinsic-imbalance experiment: HPCSched versus OS noise.

Paper §I separates *intrinsic* imbalance (uneven input data — what
Tables III-V exercise) from *extrinsic* imbalance (the OS stealing
cycles from some ranks, references [9]/[24]/[28]).  This experiment
demonstrates that the same mechanism compensates the extrinsic kind: a
*perfectly balanced* MetBench where one CPU hosts a heavy OS daemon.

Under CFS the afflicted rank straggles every iteration (the daemon
shares its CPU) and the whole application waits for it — the classic
noise amplification of [24].  Under HPCSched the shielding comes from
the *scheduling policy*: the HPC class outranks CFS, so the daemon only
ever runs while the rank sleeps in the barrier, and the stolen time
vanishes from the critical path.  The detector, seeing every rank at
high utilization, raises them all — equal priorities, i.e. a no-op for
the hardware, confirming that the gain is pure class ordering (the
same mechanism behind SIESTA's §V-D result, isolated here).
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.common import ExperimentResult
from repro.experiments.registry import register
from repro.workloads.metbench import MetBench
from repro.workloads.noise import NoiseDaemons

#: A heavy daemon: ~20% duty on its CPU — a pathological but
#: illustrative extrinsic disturbance (a runaway system service).
HEAVY_NOISE = NoiseDaemons(period=0.010, burst=0.002, jitter=0.3, seed=23)

#: The afflicted CPU (hosts worker P1).
NOISY_CPU = 0


def balanced_metbench(iterations: int = 20) -> MetBench:
    """Equal loads: all imbalance will come from the noise."""
    load = 1.5
    return MetBench(loads=[load] * 4, iterations=iterations)


def run_one(
    scheduler: str, iterations: int = 20, keep_trace: bool = True
) -> ExperimentResult:
    """Balanced MetBench + one noisy CPU under one scheduler."""
    from repro.experiments.common import build_kernel
    from repro.workloads.base import launch_workload
    from repro.workloads.noise import spawn_noise

    # Noise only on one CPU — run_experiment's noise arg covers all
    # CPUs, so assemble manually.
    from repro.experiments.common import HEURISTICS
    from repro.hpcsched import attach_hpcsched

    kernel = build_kernel()
    hpc_class = None
    if scheduler in HEURISTICS:
        hpc_class = attach_hpcsched(kernel, HEURISTICS[scheduler]())
    spawn_noise(kernel, HEAVY_NOISE, cpus=[NOISY_CPU])
    launched = launch_workload(
        kernel, balanced_metbench(iterations), use_hpc=hpc_class is not None
    )
    exec_time = kernel.run()

    from repro.trace.stats import compute_stats

    stats = compute_stats(kernel.trace, exec_time, names=["P1", "P2", "P3", "P4"])
    result = ExperimentResult(
        workload="metbench-extrinsic",
        scheduler=scheduler,
        exec_time=exec_time,
        trace=kernel.trace if keep_trace else None,
        kernel=kernel if keep_trace else None,
    )
    from repro.experiments.common import TaskResult

    for name, st in stats.items():
        task = launched.tasks[name]
        result.tasks[name] = TaskResult(
            name=name,
            pct_comp=st.pct_comp,
            pct_running=st.pct_running,
            priority=None if hpc_class else task.hw_priority,
            running=st.running,
            waiting=st.waiting,
            ready=st.ready,
        )
    if hpc_class is not None:
        result.priority_changes = hpc_class.detector.priority_changes
        result.priority_history = {
            name: [
                (ev.time, ev.info.get("priority"))
                for ev in kernel.trace.priority_changes(launched.tasks[name].pid)
            ]
            for name in stats
        }
    return result


@register("extrinsic")
def run_extrinsic(
    iterations: int = 20, keep_trace: bool = False
) -> Dict[str, ExperimentResult]:
    """Balanced MetBench + one noisy CPU under cfs/uniform/adaptive."""
    return {
        sched: run_one(sched, iterations=iterations, keep_trace=keep_trace)
        for sched in ("cfs", "uniform", "adaptive")
    }
