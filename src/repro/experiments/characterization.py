"""Priority characterization — the methodology of reference [4].

The paper's performance model rests on its companion ISCA'08 study,
which co-scheduled microbenchmark pairs on one POWER5 core at every
hardware-priority combination and measured each thread's progress and
resource share with the PMU.  This experiment reruns that methodology
*inside the simulation*: for each priority pair it co-schedules two
identical busy loops, measures their speed relative to the equal-
priority baseline and reads the PMU's average decode shares.

It serves two purposes:

* it regenerates a Table-I-like decode-share matrix *empirically* (the
  PMU integral must match the analytical ``decode_shares``), and
* it round-trips the calibrated performance model: the measured speed
  ratios must equal the ``PerfProfile`` table the experiments use —
  a self-consistency check between the model's two faces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.experiments.common import build_kernel
from repro.experiments.registry import register
from repro.kernel.syscalls import Compute
from repro.power5.decode import decode_shares
from repro.power5.perfmodel import CPU_BOUND, PerfProfile


@dataclass(frozen=True)
class PairMeasurement:
    """Result of co-running two tasks at one priority pair."""

    prio_a: int
    prio_b: int
    speed_a: float  # relative to the equal-priority baseline
    speed_b: float
    decode_share_a: float  # PMU-measured average share
    decode_share_b: float


def measure_pair(
    prio_a: int,
    prio_b: int,
    profile: PerfProfile = CPU_BOUND,
    duration: float = 1.0,
) -> PairMeasurement:
    """Co-schedule two busy loops on one core at fixed priorities."""
    kernel = build_kernel()

    def busy():
        while True:
            yield Compute(10.0)

    a = kernel.spawn("A", busy(), cpu=0, cpus_allowed=[0],
                     perf_profile=profile)
    b = kernel.spawn("B", busy(), cpu=1, cpus_allowed=[1],
                     perf_profile=profile)
    kernel.set_hw_priority(a, prio_a)
    kernel.set_hw_priority(b, prio_b)
    end = kernel.run(until=duration)
    kernel.pmu.finalize(end)

    ca = kernel.pmu.context_counters(0)
    cb = kernel.pmu.context_counters(1)
    return PairMeasurement(
        prio_a=prio_a,
        prio_b=prio_b,
        speed_a=ca.work_done / end,
        speed_b=cb.work_done / end,
        decode_share_a=ca.avg_decode_share,
        decode_share_b=cb.avg_decode_share,
    )


def characterize(
    profile: PerfProfile = CPU_BOUND,
    prio_range: Tuple[int, ...] = (2, 3, 4, 5, 6),
) -> Dict[Tuple[int, int], PairMeasurement]:
    """The full priority-pair sweep of [4]."""
    out = {}
    for pa in prio_range:
        for pb in prio_range:
            out[(pa, pb)] = measure_pair(pa, pb, profile)
    return out


def render(measurements: Dict[Tuple[int, int], PairMeasurement]) -> str:
    """ISCA'08-style matrix: speed of task A per (prioA, prioB)."""
    prios = sorted({pa for pa, _ in measurements})
    lines = ["speed of task A (columns: prio B)"]
    header = "A\\B " + "".join(f"{pb:>8}" for pb in prios)
    lines.append(header)
    for pa in prios:
        row = f"{pa:>3} " + "".join(
            f"{measurements[(pa, pb)].speed_a:>8.3f}" for pb in prios
        )
        lines.append(row)
    return "\n".join(lines)


@register("characterization")
def run_characterization(
    profile: Optional[PerfProfile] = None, **_kwargs
) -> Dict[str, object]:
    """Full sweep + the two model-consistency checks (see module doc)."""
    profile = profile or CPU_BOUND
    measurements = characterize(profile)

    # Consistency check 1: PMU decode shares == Table I arithmetic.
    share_errors = []
    for (pa, pb), m in measurements.items():
        expect_a, expect_b = decode_shares(pa, pb)
        share_errors.append(abs(m.decode_share_a - expect_a))
        share_errors.append(abs(m.decode_share_b - expect_b))

    # Consistency check 2: measured speeds == the calibrated table.
    speed_errors = []
    for (pa, pb), m in measurements.items():
        expect = profile.table_speed(pa - pb)
        speed_errors.append(abs(m.speed_a - expect))

    return {
        "measurements": measurements,
        "rendered": render(measurements),
        "max_share_error": max(share_errors),
        "max_speed_error": max(speed_errors),
    }
