"""Durable priority job queue: a SQLite/WAL journal.

Every job the service accepts is journaled **before** it is
acknowledged, every state transition is journaled as it happens, and
the journal is the single source of truth on restart:

* ``OK``/``FAILED``/``CANCELLED`` rows are final — a restart serves
  their results straight from the journal, never re-executing them;
* ``RUNNING`` rows mean the process died mid-execution — recovery
  re-queues them (``recovered=1``, attempt preserved).  Their first
  dispatch goes through the content-addressed cache, so work that
  finished (and was cached) between the last journal write and the
  crash is still not executed twice;
* ``QUEUED`` rows simply wait for the dispatcher again.

WAL mode keeps readers (status/metrics queries) from blocking the
writer, and a crash can lose at most the tail of the WAL — never
corrupt the journal (SQLite's guarantee).  All access happens on the
service's event-loop thread; the queue is not a cross-thread object.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.serve.state import (
    JOB_CANCELLED,
    JOB_FAILED,
    JOB_OK,
    JOB_QUEUED,
    JOB_RUNNING,
    TERMINAL_STATES,
    Job,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id          TEXT PRIMARY KEY,
    tenant          TEXT NOT NULL,
    spec            TEXT NOT NULL,
    cache_key       TEXT NOT NULL DEFAULT '',
    state           TEXT NOT NULL,
    attempt         INTEGER NOT NULL DEFAULT 0,
    executions      INTEGER NOT NULL DEFAULT 0,
    submitted_epoch INTEGER NOT NULL DEFAULT 0,
    started_epoch   INTEGER,
    finished_epoch  INTEGER,
    error           TEXT,
    result          BLOB,
    cache_hit       INTEGER NOT NULL DEFAULT 0,
    recovered       INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS jobs_by_tenant_state ON jobs (tenant, state);
CREATE INDEX IF NOT EXISTS jobs_by_state ON jobs (state);
"""


class JobQueue:
    """The journaled job table plus typed accessors over it."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._db = sqlite3.connect(str(self.path))
        self._db.row_factory = sqlite3.Row
        self._db.execute("PRAGMA journal_mode=WAL")
        self._db.execute("PRAGMA synchronous=NORMAL")
        self._db.executescript(_SCHEMA)
        self._db.commit()

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Checkpoint and close the journal (idempotent)."""
        if self._db is None:
            return
        self._db.commit()
        self._db.close()
        self._db = None

    def recover(self) -> List[Job]:
        """Crash recovery: re-queue every job left ``RUNNING``.

        Returns the re-queued jobs.  Attempts are preserved (the death
        was the service's fault, not the run's), and ``recovered`` is
        set so operators and tests can see the crash in the record.
        """
        rows = self._db.execute(
            "SELECT job_id FROM jobs WHERE state = ?", (JOB_RUNNING,)
        ).fetchall()
        ids = [r["job_id"] for r in rows]
        self._db.executemany(
            "UPDATE jobs SET state = ?, recovered = 1 WHERE job_id = ?",
            [(JOB_QUEUED, jid) for jid in ids],
        )
        self._db.commit()
        return [job for jid in ids if (job := self.get(jid)) is not None]

    # -- submission ----------------------------------------------------

    def submit(self, job: Job) -> tuple:
        """Journal a new job; returns ``(job, created)``.

        Submitting an existing ``job_id`` is idempotent: the journaled
        job is returned with ``created=False`` and nothing is written.
        """
        existing = self.get(job.job_id)
        if existing is not None:
            return existing, False
        cur = self._db.execute(
            "INSERT INTO jobs (job_id, tenant, spec, cache_key, state,"
            " attempt, submitted_epoch) VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                job.job_id,
                job.tenant,
                _spec_json(job.spec),
                job.cache_key,
                JOB_QUEUED,
                job.attempt,
                job.submitted_epoch,
            ),
        )
        self._db.commit()
        job.seq = cur.lastrowid or 0
        job.state = JOB_QUEUED
        return job, True

    # -- transitions ---------------------------------------------------

    def claim(self, job_id: str, epoch: int) -> Optional[Job]:
        """QUEUED -> RUNNING; bumps the execution ledger.

        Returns the claimed job, or ``None`` when the job is no longer
        claimable (cancelled/completed in the meantime).
        """
        cur = self._db.execute(
            "UPDATE jobs SET state = ?, started_epoch = ?, "
            "attempt = attempt + 1, executions = executions + 1 "
            "WHERE job_id = ? AND state = ?",
            (JOB_RUNNING, epoch, job_id, JOB_QUEUED),
        )
        self._db.commit()
        if cur.rowcount != 1:
            return None
        return self.get(job_id)

    def complete(
        self,
        job_id: str,
        result: bytes,
        epoch: int,
        cache_hit: bool = False,
    ) -> Optional[Job]:
        """-> OK with the canonical result payload.

        Terminal states are never overwritten (a result arriving after
        a cancel is discarded by the state guard).  Cache hits complete
        straight from QUEUED without ever being claimed.
        """
        cur = self._db.execute(
            "UPDATE jobs SET state = ?, result = ?, finished_epoch = ?, "
            "cache_hit = ?, error = NULL "
            "WHERE job_id = ? AND state IN (?, ?)",
            (
                JOB_OK,
                result,
                epoch,
                1 if cache_hit else 0,
                job_id,
                JOB_QUEUED,
                JOB_RUNNING,
            ),
        )
        self._db.commit()
        return self.get(job_id) if cur.rowcount == 1 else None

    def requeue(self, job_id: str, error: str) -> Optional[Job]:
        """RUNNING -> QUEUED after a retryable failure."""
        cur = self._db.execute(
            "UPDATE jobs SET state = ?, error = ? "
            "WHERE job_id = ? AND state = ?",
            (JOB_QUEUED, error, job_id, JOB_RUNNING),
        )
        self._db.commit()
        return self.get(job_id) if cur.rowcount == 1 else None

    def fail(self, job_id: str, error: str, epoch: int) -> Optional[Job]:
        """-> FAILED (terminal), recording the last error."""
        cur = self._db.execute(
            "UPDATE jobs SET state = ?, error = ?, finished_epoch = ? "
            "WHERE job_id = ? AND state IN (?, ?)",
            (JOB_FAILED, error, epoch, job_id, JOB_QUEUED, JOB_RUNNING),
        )
        self._db.commit()
        return self.get(job_id) if cur.rowcount == 1 else None

    def cancel(self, job_id: str, epoch: int) -> Optional[Job]:
        """-> CANCELLED, from QUEUED or RUNNING.

        Cancelling a running job takes effect immediately in the
        journal; the in-flight worker result is discarded when it
        lands (the ``complete`` state guard rejects it).
        """
        cur = self._db.execute(
            "UPDATE jobs SET state = ?, finished_epoch = ? "
            "WHERE job_id = ? AND state IN (?, ?)",
            (JOB_CANCELLED, epoch, job_id, JOB_QUEUED, JOB_RUNNING),
        )
        self._db.commit()
        return self.get(job_id) if cur.rowcount == 1 else None

    # -- queries -------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        """The journaled job, or ``None``."""
        row = self._db.execute(
            "SELECT rowid, * FROM jobs WHERE job_id = ?", (job_id,)
        ).fetchone()
        return _job_from_row(row) if row is not None else None

    def queued(self, tenant: Optional[str] = None) -> List[Job]:
        """QUEUED jobs in submission order (optionally one tenant's)."""
        if tenant is None:
            rows = self._db.execute(
                "SELECT rowid, * FROM jobs WHERE state = ? ORDER BY rowid",
                (JOB_QUEUED,),
            ).fetchall()
        else:
            rows = self._db.execute(
                "SELECT rowid, * FROM jobs WHERE state = ? AND tenant = ? "
                "ORDER BY rowid",
                (JOB_QUEUED, tenant),
            ).fetchall()
        return [_job_from_row(r) for r in rows]

    def jobs_for(self, tenant: str) -> List[Job]:
        """Every journaled job of one tenant, in submission order."""
        rows = self._db.execute(
            "SELECT rowid, * FROM jobs WHERE tenant = ? ORDER BY rowid",
            (tenant,),
        ).fetchall()
        return [_job_from_row(r) for r in rows]

    def all_jobs(self) -> List[Job]:
        """Every journaled job, in submission order."""
        rows = self._db.execute(
            "SELECT rowid, * FROM jobs ORDER BY rowid"
        ).fetchall()
        return [_job_from_row(r) for r in rows]

    def depth(self, tenant: Optional[str] = None) -> int:
        """Queued-job count (per tenant, or total)."""
        if tenant is None:
            row = self._db.execute(
                "SELECT COUNT(*) AS n FROM jobs WHERE state = ?",
                (JOB_QUEUED,),
            ).fetchone()
        else:
            row = self._db.execute(
                "SELECT COUNT(*) AS n FROM jobs WHERE state = ? AND tenant = ?",
                (JOB_QUEUED, tenant),
            ).fetchone()
        return int(row["n"])

    def counts(self) -> Dict[str, int]:
        """Job count per state (absent states omitted)."""
        rows = self._db.execute(
            "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
        ).fetchall()
        return {r["state"]: int(r["n"]) for r in rows}

    def pending(self) -> int:
        """Jobs not yet terminal (QUEUED + RUNNING)."""
        row = self._db.execute(
            "SELECT COUNT(*) AS n FROM jobs WHERE state IN (?, ?)",
            (JOB_QUEUED, JOB_RUNNING),
        ).fetchone()
        return int(row["n"])

    def tenants(self) -> List[str]:
        """Every tenant name appearing in the journal."""
        rows = self._db.execute(
            "SELECT DISTINCT tenant FROM jobs ORDER BY tenant"
        ).fetchall()
        return [r["tenant"] for r in rows]


def _spec_json(spec: Dict) -> str:
    import json

    return json.dumps(spec, sort_keys=True)


def _job_from_row(row: sqlite3.Row) -> Job:
    import json

    return Job(
        job_id=row["job_id"],
        tenant=row["tenant"],
        spec=json.loads(row["spec"]),
        cache_key=row["cache_key"],
        state=row["state"],
        attempt=row["attempt"],
        executions=row["executions"],
        submitted_epoch=row["submitted_epoch"],
        started_epoch=row["started_epoch"],
        finished_epoch=row["finished_epoch"],
        error=row["error"],
        result=row["result"],
        cache_hit=bool(row["cache_hit"]),
        seq=row["rowid"],
        recovered=bool(row["recovered"]),
    )
