"""Bounded end-to-end self-test: ``repro-hpcsched serve --smoke``.

Boots a real :class:`~repro.serve.service.CampaignService` on an
ephemeral port, then drives the ISSUE's acceptance scenario from the
outside, over HTTP, exactly as three independent tenants would:

1. tenant *alice* runs the built-in ``smoke`` campaign matrix and
   streams her results (NDJSON, ``follow=1``);
2. *bob* and *carol* submit the identical matrix and are answered
   entirely from the shared content-addressed cache — zero extra
   executions;
3. three virtual epochs of one-sided demand shift the fair-share
   priorities toward alice (the paper's Adaptive heuristic), and a
   demand reversal swaps them within one further epoch — every epoch
   advanced explicitly via ``POST /v1/tick``, no sleeps in the
   decision path;
4. the service drains, then a restart on the same root serves every
   result straight from the journal.

The whole scenario is deterministic and finishes in a few seconds, so
CI runs it under a hard wall-clock budget.  Exit code 0 means every
check passed; the first failed check aborts with a ``FAIL:`` line.
"""

from __future__ import annotations

import asyncio
import tempfile
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.serve.client import ServeClient
from repro.serve.state import ServeConfig


class SmokeFailure(AssertionError):
    """One smoke check did not hold."""


def _check(cond: bool, message: str) -> None:
    if not cond:
        raise SmokeFailure(message)


class _ServiceHost:
    """Run a CampaignService on a dedicated thread + event loop.

    The service object is constructed *inside* the loop thread (the
    SQLite journal is single-threaded); the caller talks to it over
    HTTP only, which is the point of the exercise.
    """

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.port: Optional[int] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread = threading.Thread(
            target=self._run, name="serve-smoke", daemon=True
        )

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surface boot/teardown failures
            self._error = exc
        finally:
            self._ready.set()

    async def _main(self) -> None:
        from repro.serve.service import CampaignService

        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        service = CampaignService(self.config)
        await service.start()
        self.port = service.port
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await service.stop()

    def start(self) -> None:
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise SmokeFailure("service did not come up within 30s")
        if self._error is not None:
            raise self._error

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30.0)
        if self._thread.is_alive():
            raise SmokeFailure("service did not shut down within 30s")
        if self._error is not None:
            raise self._error


def _smoke_matrix() -> List[Dict[str, Any]]:
    """The built-in ``smoke`` campaign as submit-API run descriptors."""
    from repro.campaign.spec import builtin_campaign

    runs: List[Dict[str, Any]] = []
    for spec in builtin_campaign("smoke").runs:
        run: Dict[str, Any] = {
            "experiment": spec.experiment,
            "params": dict(spec.params),
        }
        if spec.seed is not None:
            run["seed"] = spec.seed
        runs.append(run)
    return runs


def _submit_and_stream(
    client: ServeClient,
    tenant: str,
    runs: List[Dict[str, Any]],
    tag: str = "",
) -> List[Dict[str, Any]]:
    """Submit one tenant round and follow the NDJSON stream to OK."""
    batch = [dict(run, **({"tag": tag} if tag else {})) for run in runs]
    doc = client.submit(tenant, batch)
    _check(doc["rejected"] == 0, f"{tenant}: batch partially rejected")
    job_ids = [job["job_id"] for job in doc["accepted"]]
    records = list(client.results(jobs=job_ids, follow=True))
    _check(
        len(records) == len(job_ids),
        f"{tenant}: streamed {len(records)} records for {len(job_ids)} jobs",
    )
    for rec in records:
        _check(
            rec["state"] == "OK",
            f"{tenant}: job {rec['job_id']} ended {rec['state']} "
            f"({rec.get('error')})",
        )
        _check("result" in rec, f"{tenant}: {rec['job_id']} has no result")
    return records


def run_smoke(
    root: Optional[str] = None,
    workers: int = 2,
    worker_mode: str = "process",
    out: Callable[[str], None] = print,
) -> int:
    """Drive the full smoke scenario; returns a process exit code."""
    started = time.monotonic()
    tmp: Optional[tempfile.TemporaryDirectory] = None
    if root is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-serve-smoke-")
        root = tmp.name

    def step(message: str) -> None:
        out(f"  ok  {message}  [{time.monotonic() - started:5.1f}s]")

    config = ServeConfig(
        root=root,
        port=0,
        workers=workers,
        worker_mode=worker_mode,
        manual_clock=True,
        epoch_interval=None,
        labels={"smoke": "1"},
    )
    matrix = _smoke_matrix()
    host = _ServiceHost(config)
    try:
        host.start()
        assert host.port is not None
        client = ServeClient(config.host, host.port, timeout=60.0)
        out(
            f"serve smoke: http://{config.host}:{host.port} "
            f"({workers} {worker_mode} workers, root={root})"
        )

        health = client.healthz()
        _check(health["ok"] and health["epoch"] == 0, "healthz")
        step("healthz answers at epoch 0")

        # Round 1: alice executes the matrix for real.
        alice = _submit_and_stream(client, "alice", matrix)
        _check(
            all(not rec["cache_hit"] for rec in alice),
            "alice's first round should execute, not hit the cache",
        )
        step(f"alice ran the {len(matrix)}-run matrix and streamed results")

        # bob and carol submit the identical matrix: the shared
        # content-addressed cache answers without a single execution.
        for tenant in ("bob", "carol"):
            records = _submit_and_stream(client, tenant, matrix)
            _check(
                all(rec["cache_hit"] for rec in records),
                f"{tenant}'s duplicate matrix must be all cache hits",
            )
            _check(
                all(rec["executions"] == 0 for rec in records),
                f"{tenant}'s jobs must not execute",
            )
        step("bob + carol answered from the cross-tenant cache (0 executions)")

        tick = client.tick()
        prios = tick["balancer"]["priorities"]
        _check(
            tick["epoch"] == 1
            and set(prios.values()) == {config.max_prio},
            f"epoch 1: every demanding tenant at max priority, got {prios}",
        )
        step(f"epoch 1 closed: all tenants promoted to {config.max_prio}")

        # Epochs 2-3: only alice keeps demanding (tags force new job
        # ids; the cache still answers, so no extra executions).
        for tag in ("r2", "r3"):
            _submit_and_stream(client, "alice", matrix, tag=tag)
            tick = client.tick()
        prios = tick["balancer"]["priorities"]
        _check(
            prios == {"alice": config.max_prio,
                      "bob": config.min_prio,
                      "carol": config.min_prio},
            f"epoch 3: slots should favor alice, got {prios}",
        )
        _check(
            tick["balancer"]["state"] == "frozen",
            f"epoch 3: balancer should be frozen, is {tick['balancer']['state']}",
        )
        step(
            f"epochs 2-3: fair share converged to alice={config.max_prio}, "
            f"others={config.min_prio} (frozen)"
        )

        # The reversal: bob becomes the laggard, alice idles.
        _submit_and_stream(client, "bob", matrix, tag="r4")
        tick = client.tick()
        prios = tick["balancer"]["priorities"]
        _check(
            prios == {"alice": config.min_prio,
                      "bob": config.max_prio,
                      "carol": config.min_prio},
            f"epoch 4: reversal should swap alice/bob, got {prios}",
        )
        step("epoch 4: demand reversal thawed + swapped priorities in 1 epoch")

        total_jobs = 6 * len(matrix)  # alice x3, bob x2, carol x1
        metrics = client.metrics()
        _check(
            metrics["states"] == {"OK": total_jobs},
            f"every job OK, got {metrics['states']}",
        )
        _check(
            metrics["cache"]["hits"] == total_jobs - len(matrix)
            and metrics["cache"]["misses"] == len(matrix),
            f"exactly one real execution per matrix cell, got "
            f"{metrics['cache']}",
        )
        _check(
            metrics["balancer"]["behaviour_changes"] == 1,
            "exactly one detected behaviour change (the reversal)",
        )
        step(
            f"metrics: {total_jobs} jobs OK, {len(matrix)} executions, "
            f"{total_jobs - len(matrix)} cache hits, 1 behaviour change"
        )

        drained = client.drain(timeout=30.0)
        _check(drained["drained"] and drained["pending"] == 0, "drain")
        rejected = client.submit("alice", matrix, ok=False)
        _check(
            rejected["_status"] == 503,
            f"post-drain submissions answer 503, got {rejected['_status']}",
        )
        step("drain completed; new submissions answer 503")
    except (SmokeFailure, Exception) as exc:
        out(f"FAIL: {exc}")
        try:
            host.stop()
        except Exception:
            pass
        if tmp is not None:
            tmp.cleanup()
        return 1

    # Restart on the same root: the journal is the source of truth.
    try:
        host.stop()
        host2 = _ServiceHost(config)
        host2.start()
        assert host2.port is not None
        client = ServeClient(config.host, host2.port, timeout=60.0)
        metrics = client.metrics()
        _check(
            metrics["states"] == {"OK": total_jobs},
            f"restart must serve all journaled jobs, got {metrics['states']}",
        )
        _check(
            metrics["recovered_jobs"] == 0,
            "a clean shutdown leaves nothing to recover",
        )
        record = next(
            client.results(jobs=[alice[0]["job_id"]], follow=False)
        )
        _check(
            record["state"] == "OK" and record["result"] == alice[0]["result"],
            "restart must serve byte-identical journaled results",
        )
        step("restart on the same root served journaled results unchanged")
        host2.stop()
    except (SmokeFailure, Exception) as exc:
        out(f"FAIL: {exc}")
        return 1
    finally:
        if tmp is not None:
            tmp.cleanup()

    out(
        f"serve smoke PASSED in {time.monotonic() - started:.1f}s "
        f"({total_jobs} jobs, {len(matrix)} executions, "
        f"{total_jobs - len(matrix)} cache hits)"
    )
    return 0
