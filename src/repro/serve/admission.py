"""Admission control and backpressure.

The queue is durable, not infinite: each tenant gets a bounded number
of queued jobs and the service a global bound.  Past either bound a
submission is **rejected up front** with a 429-style decision (carrying
a retry hint derived from queue pressure) instead of being accepted
and starved — bounded queues are what keeps tail latency and recovery
time bounded when heavy traffic arrives.

A draining service rejects everything: shutdown finishes the work it
already accepted and never takes on more.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    ok: bool
    reason: str = ""
    #: HTTP status the API should answer with when not ok.
    status: int = 200
    #: Suggested client back-off in seconds (429 responses).
    retry_after: Optional[float] = None


ACCEPT = AdmissionDecision(ok=True)


class AdmissionController:
    """Bounded per-tenant and global queue depth, plus drain mode."""

    def __init__(
        self,
        max_tenant_depth: int,
        max_total_depth: int,
        retry_after: float = 1.0,
    ) -> None:
        self.max_tenant_depth = max(1, max_tenant_depth)
        self.max_total_depth = max(1, max_total_depth)
        self.retry_after = retry_after
        self.draining = False
        self.rejections = 0

    def admit(self, tenant_depth: int, total_depth: int) -> AdmissionDecision:
        """Decide one submission given current queue depths."""
        if self.draining:
            self.rejections += 1
            return AdmissionDecision(
                ok=False,
                reason="service is draining; not accepting new jobs",
                status=503,
            )
        if total_depth >= self.max_total_depth:
            self.rejections += 1
            return AdmissionDecision(
                ok=False,
                reason=(
                    f"queue full: {total_depth} jobs queued service-wide "
                    f"(limit {self.max_total_depth})"
                ),
                status=429,
                retry_after=self.retry_after,
            )
        if tenant_depth >= self.max_tenant_depth:
            self.rejections += 1
            return AdmissionDecision(
                ok=False,
                reason=(
                    f"tenant queue full: {tenant_depth} jobs queued "
                    f"(limit {self.max_tenant_depth})"
                ),
                status=429,
                retry_after=self.retry_after,
            )
        return ACCEPT

    def snapshot(self) -> dict:
        """Metrics view."""
        return {
            "max_tenant_depth": self.max_tenant_depth,
            "max_total_depth": self.max_total_depth,
            "draining": self.draining,
            "rejections": self.rejections,
        }
