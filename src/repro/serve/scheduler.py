"""Fair-share scheduling driven by the paper's own imbalance detector.

Two cooperating pieces:

* :class:`FairShareBalancer` — a service-layer port of the kernel's
  Load Imbalance Detector (paper §IV-B).  One scheduler epoch plays
  the role of one application iteration; a tenant's per-epoch *demand
  fraction* (how much of the epoch it had work pending or running)
  plays the role of a task's compute utilization.  The Uniform and
  Adaptive heuristics then map utilization to a worker-slot priority
  in ``[min_prio, max_prio]`` through the **same band arithmetic** the
  kernel heuristics use (:mod:`repro.hpcsched.bands`) and the same
  :class:`~repro.hpcsched.detector.HPCTaskStats` bookkeeping — the
  service and the simulated kernel cannot drift apart.

  The detector's stable-state machine is ported too: once an epoch
  passes with no priority change the balancer **freezes** and only
  re-balances when a tenant's utilization deviates from its frozen
  reference by more than ``rebalance_delta`` points (a workload step,
  e.g. the MetBenchVar-style demand reversal exercised in the tests)
  — the paper's answer to priority oscillation, applied to tenants.

* :class:`FairShareScheduler` — turns priorities into dispatch
  decisions by stride scheduling: each tenant advances a pass value by
  ``1/priority`` per dispatched job, and the lowest pass goes first,
  so over time tenants receive worker slots proportionally to their
  balancer-assigned priorities.  Decisions are a pure function of
  (pass values, priorities); no wall clock anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.hpcsched.bands import (
    BandConfig,
    adaptive_mix,
    band_target,
    global_before_last,
)
from repro.serve.tenants import TenantAccount, TenantRegistry

#: Balancer states (the detector's three-state machine).
ADJUSTING = "adjusting"
OBSERVING = "observing"
FROZEN = "frozen"


@dataclass(frozen=True)
class BalancerConfig:
    """Fair-share knobs, mirroring the ``hpcsched/*`` tunables."""

    heuristic: str = "adaptive"  # "uniform" | "adaptive"
    band: BandConfig = BandConfig(
        low_util=65.0, high_util=85.0, min_prio=4, max_prio=6
    )
    adaptive_g: float = 0.1
    adaptive_l: float = 0.9
    #: Frozen-state thaw threshold, in utilization points.
    rebalance_delta: float = 10.0


class FairShareBalancer:
    """Assign per-tenant worker-slot priorities from demand history."""

    def __init__(
        self, registry: TenantRegistry, config: Optional[BalancerConfig] = None
    ) -> None:
        self.registry = registry
        self.config = config or BalancerConfig()
        if self.config.heuristic not in ("uniform", "adaptive"):
            raise ValueError(f"unknown heuristic {self.config.heuristic!r}")
        self.state = ADJUSTING
        self.epoch = 0
        self.priority_changes = 0
        self.behaviour_changes = 0
        self._freeze_ref: Dict[str, float] = {}
        #: Tenants seen by the previous epoch close (membership change
        #: detection: a new tenant thaws the frozen state, exactly as
        #: the detector's task_added does).
        self._known: set = set()

    # -- the epoch close (the only decision point) ---------------------

    def close_epoch(self, demand: Dict[str, float]) -> Dict[str, int]:
        """Close one epoch; returns the tenants whose priority changed.

        ``demand`` maps tenant name -> fraction of the epoch the tenant
        had work pending or running (0..1).  Tenants known to the
        registry but absent from ``demand`` close an idle (0.0) epoch —
        every tenant closes every epoch, which is what makes one epoch
        one detector *round*.
        """
        self.epoch += 1
        accounts = self.registry.all()
        names = {a.name for a in accounts}
        new_names = names - self._known
        if self.state == FROZEN and new_names:
            # Membership changed under the freeze: stale references
            # (the detector's task_added thaw, ported).
            self._thaw()
        self._known = names

        closed: List[TenantAccount] = []
        for acct in accounts:
            if acct.name in new_names and acct.stats.iterations == 0:
                # Joined mid-stream: its first iteration spans only
                # this epoch, not everything since the service booted
                # (task_added's iter_start alignment).
                acct.stats.iter_start = float(self.epoch - 1)
                acct.stats.run_snapshot = acct.demand_time
            frac = min(1.0, max(0.0, demand.get(acct.name, 0.0)))
            acct.demand_time += frac
            acct.stats.close_iteration(
                now=float(self.epoch), run_now=acct.demand_time
            )
            closed.append(acct)

        if self.state == FROZEN:
            if not any(
                self._behaviour_changed(a.name, a.stats.last_util)
                for a in closed
                if a.stats.last_util is not None
            ):
                return {}  # stable state: hold every priority
            self._thaw()

        changes: Dict[str, int] = {}
        for acct in closed:
            new_prio = self._decide(acct)
            if new_prio is None or new_prio == acct.priority:
                continue
            # Mirror the detector: while observing (a change's effect is
            # being measured) only downward corrections are safe.
            if self.state == ADJUSTING or new_prio < acct.priority:
                acct.priority = new_prio
                acct.priority_history.append((self.epoch, new_prio))
                self.priority_changes += 1
                changes[acct.name] = new_prio

        # Round bookkeeping: changes -> measure one more epoch before
        # freezing; a quiet epoch -> the shares are stable, freeze.
        if changes:
            self.state = OBSERVING
        else:
            self._freeze(closed)
        return changes

    # -- heuristic plumbing (shared band arithmetic) -------------------

    def _decide(self, acct: TenantAccount) -> Optional[int]:
        stats = acct.stats
        if stats.last_util is None:
            return None
        if self.config.heuristic == "uniform":
            util = stats.global_util
        else:
            last = stats.last_util
            if stats.iterations <= 1:
                prev_global = last
            else:
                prev_global = global_before_last(stats.history, last)
            util = adaptive_mix(
                self.config.adaptive_g,
                self.config.adaptive_l,
                prev_global,
                last,
            )
        return band_target(
            util * 100.0, current=acct.priority, cfg=self.config.band
        )

    # -- stable-state machinery ---------------------------------------

    def _freeze(self, closed: Iterable[TenantAccount]) -> None:
        self.state = FROZEN
        self._freeze_ref = {
            a.name: a.stats.last_util
            for a in closed
            if a.stats.last_util is not None
        }

    def _behaviour_changed(self, name: str, util: float) -> bool:
        ref = self._freeze_ref.get(name)
        if ref is None:
            return False
        return abs(util - ref) * 100.0 > self.config.rebalance_delta

    def _thaw(self) -> None:
        """Behaviour change: the demand history describes the old load."""
        self.state = ADJUSTING
        self.behaviour_changes += 1
        self._freeze_ref.clear()
        for acct in self.registry.all():
            acct.stats.reset_history()

    @property
    def frozen(self) -> bool:
        """Whether the balancer sits in the stable state."""
        return self.state == FROZEN

    def snapshot(self) -> Dict[str, object]:
        """Metrics view of the balancer."""
        return {
            "heuristic": self.config.heuristic,
            "state": self.state,
            "epoch": self.epoch,
            "priority_changes": self.priority_changes,
            "behaviour_changes": self.behaviour_changes,
            "priorities": {
                a.name: a.priority for a in self.registry.all()
            },
        }


class FairShareScheduler:
    """Stride dispatch over balancer-assigned tenant priorities."""

    def __init__(self, registry: TenantRegistry) -> None:
        self.registry = registry
        #: Virtual time: the pass value of the last dispatched job.
        self._global_pass = 0.0

    def rejoin(self, tenant: str) -> None:
        """A tenant's queue went empty -> nonempty.

        Its pass value catches up to the global virtual time, so an
        idle spell cannot be hoarded as dispatch credit (the standard
        stride-scheduling join rule).
        """
        acct = self.registry.get(tenant)
        acct.pass_value = max(acct.pass_value, self._global_pass)

    def pick(self, eligible: List[str]) -> Optional[str]:
        """The eligible tenant that should dispatch next.

        Lowest pass value wins; ties break by name for determinism.
        """
        if not eligible:
            return None
        accounts = [self.registry.get(name) for name in sorted(eligible)]
        best = min(accounts, key=lambda a: (a.pass_value, a.name))
        return best.name

    def charge(self, tenant: str) -> None:
        """Account one dispatched job to ``tenant``."""
        acct = self.registry.get(tenant)
        acct.pass_value += 1.0 / max(1, acct.priority)
        acct.dispatches += 1
        self._global_pass = acct.pass_value
