"""Shared data model of the campaign service.

Three things live here because every other ``repro.serve`` module needs
them and none may depend on the others:

* the **job lifecycle** — :class:`Job` records and their state
  constants.  A job is one :class:`~repro.campaign.spec.RunSpec`
  submitted by a tenant; its identity (and therefore its idempotency
  key) is the tenant, the spec's content digest, and an optional
  client-supplied ``tag`` for deliberate re-runs;
* the **virtual epoch clock** — all fair-share decisions advance on
  discrete epochs, never on wall-clock sleeps, so scheduling behaviour
  is deterministically assertable in tests.  In production a background
  task calls :meth:`VirtualClock.advance` every ``epoch_interval``
  seconds; under test (or ``manual_clock``) the test advances it
  explicitly (``POST /v1/tick``);
* the **service configuration** — one :class:`ServeConfig` dataclass
  threaded through queue, scheduler, workers, and API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.campaign.spec import RunSpec, spec_sha256

# -- job lifecycle -----------------------------------------------------

JOB_QUEUED = "QUEUED"
JOB_RUNNING = "RUNNING"
JOB_OK = "OK"
JOB_FAILED = "FAILED"
JOB_CANCELLED = "CANCELLED"

#: States a job can never leave.
TERMINAL_STATES = frozenset({JOB_OK, JOB_FAILED, JOB_CANCELLED})

#: Every state the journal may contain.
ALL_STATES = frozenset(
    {JOB_QUEUED, JOB_RUNNING, JOB_OK, JOB_FAILED, JOB_CANCELLED}
)


def job_id_for(tenant: str, spec: RunSpec, tag: str = "") -> str:
    """Deterministic job id: ``<tenant>/<experiment>-<digest>[-<tag>]``.

    The digest covers the spec identity *and* the tag, so resubmitting
    an identical spec is idempotent (the service returns the existing
    job) while a distinct ``tag`` makes a deliberate duplicate.
    """
    digest = spec_sha256({"spec": spec.identity(), "tag": tag})[:12]
    suffix = f"-{tag}" if tag else ""
    return f"{tenant}/{spec.experiment}-{digest}{suffix}"


@dataclass
class Job:
    """One submitted run and its journaled lifecycle."""

    job_id: str
    tenant: str
    spec: Dict[str, Any]  # RunSpec.to_payload() form
    cache_key: str = ""
    state: str = JOB_QUEUED
    attempt: int = 0
    #: Times a worker actually started executing this job (the
    #: zero-duplicate-execution ledger: cache hits don't count).
    executions: int = 0
    submitted_epoch: int = 0
    started_epoch: Optional[int] = None
    finished_epoch: Optional[int] = None
    error: Optional[str] = None
    #: Canonical result payload bytes (exactly what the campaign cache
    #: stores), present once the job is OK.
    result: Optional[bytes] = None
    cache_hit: bool = False
    #: Submission order within the service (journal rowid).
    seq: int = 0
    #: True when this job was re-queued by crash recovery.
    recovered: bool = False

    @property
    def terminal(self) -> bool:
        """Whether the job reached a final state."""
        return self.state in TERMINAL_STATES

    def run_spec(self) -> RunSpec:
        """The job's spec as a live :class:`RunSpec`."""
        return RunSpec.from_payload(self.spec)

    def to_public(self, with_result: bool = False) -> Dict[str, Any]:
        """JSON-able view served by the API (results only on demand)."""
        out: Dict[str, Any] = {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "experiment": self.spec.get("experiment"),
            "state": self.state,
            "attempt": self.attempt,
            "executions": self.executions,
            "cache_hit": self.cache_hit,
            "submitted_epoch": self.submitted_epoch,
            "started_epoch": self.started_epoch,
            "finished_epoch": self.finished_epoch,
            "error": self.error,
            "recovered": self.recovered,
        }
        if with_result and self.result is not None:
            import json

            out["result"] = json.loads(self.result.decode("utf-8"))
        return out


# -- virtual epoch clock ----------------------------------------------

class VirtualClock:
    """A discrete epoch counter; the only clock scheduling sees.

    Subscribers (the service's tick pipeline) run synchronously on
    :meth:`advance`, so a test that advances the clock observes the
    complete scheduling consequence before its next assertion.
    """

    def __init__(self, epoch: int = 0) -> None:
        self.epoch = epoch
        self._subscribers: List[Callable[[int], None]] = []

    def subscribe(self, fn: Callable[[int], None]) -> None:
        """Call ``fn(new_epoch)`` after every advance."""
        self._subscribers.append(fn)

    def advance(self, epochs: int = 1) -> int:
        """Advance the clock by ``epochs``; returns the new epoch."""
        for _ in range(max(0, epochs)):
            self.epoch += 1
            for fn in self._subscribers:
                fn(self.epoch)
        return self.epoch


# -- configuration -----------------------------------------------------

@dataclass
class ServeConfig:
    """Everything the campaign service needs to boot."""

    #: Service root directory: the SQLite journal and the shared
    #: content-addressed result cache live under it.
    root: str = "serve-data"
    host: str = "127.0.0.1"
    #: 0 picks an ephemeral port (reported by ``Service.port``).
    port: int = 0
    #: Worker slots available to the dispatcher.
    workers: int = 2
    #: ``process`` = ProcessPool via the campaign PoolManager;
    #: ``thread`` = in-process thread pool (tests, tiny deployments).
    worker_mode: str = "process"
    #: Seconds between scheduler epochs; ``None`` (or manual_clock)
    #: means the clock only advances via ``POST /v1/tick``.
    epoch_interval: Optional[float] = 0.25
    manual_clock: bool = False
    #: Admission control: queued-job bounds (429 beyond them).
    max_tenant_depth: int = 64
    max_total_depth: int = 256
    #: Per-job execution timeout (seconds) and retry budget.
    job_timeout: Optional[float] = None
    retries: int = 1
    #: Fair-share balancer knobs (the paper's bands, service-side).
    heuristic: str = "adaptive"
    min_prio: int = 4
    max_prio: int = 6
    low_util: float = 65.0
    high_util: float = 85.0
    adaptive_g: float = 0.1
    adaptive_l: float = 0.9
    rebalance_delta: float = 10.0
    #: Disable the content-addressed cache (always execute).
    cache_enabled: bool = True
    #: Extra metadata surfaced by /v1/metrics.
    labels: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.worker_mode not in ("process", "thread"):
            raise ValueError(
                f"worker_mode must be 'process' or 'thread', "
                f"got {self.worker_mode!r}"
            )
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.heuristic not in ("uniform", "adaptive"):
            raise ValueError(
                f"heuristic must be 'uniform' or 'adaptive', "
                f"got {self.heuristic!r}"
            )
        if not (0 <= self.min_prio <= self.max_prio):
            raise ValueError("need 0 <= min_prio <= max_prio")
