"""The campaign service: queue + fair-share scheduler + workers.

:class:`CampaignService` is the composition root.  One asyncio event
loop owns everything:

* submissions go through admission control, are journaled by the
  :class:`~repro.serve.queue.JobQueue`, and wake the dispatcher;
* the **dispatcher** fills free worker slots: the fair-share scheduler
  picks the tenant (stride over balancer priorities), the tenant's
  oldest queued job is looked up in the shared content-addressed
  :class:`~repro.campaign.cache.ResultCache` (cross-tenant: equal
  specs share results regardless of submitter) and either completes
  instantly or is claimed and executed on the worker pool;
* the **epoch tick** closes a balancer epoch: each tenant's demand
  fraction this epoch feeds the ported imbalance detector, which may
  reassign worker-slot priorities.  Ticks come from the injected
  :class:`~repro.serve.state.VirtualClock` — a wall-clock task in
  production, explicit ``advance()`` in tests — so every scheduling
  decision is deterministic given the same submission/completion
  sequence;
* **drain** flips admission off and waits for the journal to empty of
  non-terminal jobs; **stop** tears down the server, workers, and
  journal connection.

Crash safety: anything the service acknowledged is in the journal.  On
restart, terminal jobs are served from the journal, ``RUNNING`` jobs
are re-queued (and usually complete from cache if their first
execution finished), and tenant accounting is rebuilt by folding the
journal.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.campaign.cache import ResultCache
from repro.campaign.spec import RunSpec
from repro.serve.admission import AdmissionController
from repro.serve.queue import JobQueue
from repro.serve.scheduler import (
    BalancerConfig,
    FairShareBalancer,
    FairShareScheduler,
)
from repro.serve.state import (
    JOB_CANCELLED,
    JOB_FAILED,
    JOB_OK,
    JOB_QUEUED,
    JOB_RUNNING,
    Job,
    ServeConfig,
    VirtualClock,
    job_id_for,
)
from repro.serve.stream import EventBroker
from repro.serve.tenants import TenantRegistry
from repro.serve.workers import (
    OUTCOME_LOST,
    OUTCOME_OK,
    WorkerPool,
)
from repro.hpcsched.bands import BandConfig


class CampaignService:
    """A long-running, multi-tenant campaign execution service."""

    def __init__(
        self,
        config: ServeConfig,
        clock: Optional[VirtualClock] = None,
        cache: Optional[ResultCache] = None,
    ) -> None:
        self.config = config
        root = Path(config.root)
        self.clock = clock or VirtualClock()
        self.queue = JobQueue(root / "jobs.db")
        self.registry = TenantRegistry(base_priority=config.min_prio)
        self.balancer = FairShareBalancer(
            self.registry,
            BalancerConfig(
                heuristic=config.heuristic,
                band=BandConfig(
                    low_util=config.low_util,
                    high_util=config.high_util,
                    min_prio=config.min_prio,
                    max_prio=config.max_prio,
                ),
                adaptive_g=config.adaptive_g,
                adaptive_l=config.adaptive_l,
                rebalance_delta=config.rebalance_delta,
            ),
        )
        self.scheduler = FairShareScheduler(self.registry)
        self.admission = AdmissionController(
            max_tenant_depth=config.max_tenant_depth,
            max_total_depth=config.max_total_depth,
        )
        self.workers = WorkerPool(
            slots=config.workers,
            mode=config.worker_mode,
            timeout=config.job_timeout,
        )
        self.cache = cache or ResultCache(
            root / "cache", enabled=config.cache_enabled
        )
        self.broker = EventBroker()
        self.clock.subscribe(self._on_epoch)

        self._server: Optional[asyncio.base_events.Server] = None
        self._inflight: Dict[str, asyncio.Task] = {}
        self._wake: Optional[asyncio.Event] = None
        self._dispatch_task: Optional[asyncio.Task] = None
        self._clock_task: Optional[asyncio.Task] = None
        self._stopped = False
        #: Tenants that had work pending/running at any point since the
        #: last epoch close (the balancer's demand signal).
        self._active_tenants: set = set()
        self.recovered_jobs: List[Job] = []

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Open the journal, recover, bind the API, start dispatching."""
        from repro.serve.api import handle_connection

        self.recovered_jobs = self.queue.recover()
        self._rebuild_accounting()
        self._wake = asyncio.Event()
        self._dispatch_task = asyncio.create_task(self._dispatch_loop())
        if self.config.epoch_interval and not self.config.manual_clock:
            self._clock_task = asyncio.create_task(self._clock_loop())
        self._server = await asyncio.start_server(
            lambda r, w: handle_connection(self, r, w),
            host=self.config.host,
            port=self.config.port,
        )
        self._kick()

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        """``host:port`` of the bound API socket."""
        return f"{self.config.host}:{self.port}"

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admitting; wait for every accepted job to finish.

        Returns ``True`` when the queue drained, ``False`` on timeout
        (remaining jobs stay journaled for the next start).
        """
        self.admission.draining = True
        self._kick()

        async def _empty() -> None:
            version = self.broker.version
            while self.queue.pending() > 0:
                version = await self.broker.wait(version)

        try:
            await asyncio.wait_for(_empty(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    async def stop(self) -> None:
        """Tear the service down (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in (self._dispatch_task, self._clock_task):
            if task is not None:
                task.cancel()
        for task in list(self._inflight.values()):
            task.cancel()
        pending = [
            t
            for t in [self._dispatch_task, self._clock_task]
            + list(self._inflight.values())
            if t is not None
        ]
        for task in pending:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._inflight.clear()
        self.workers.shutdown()
        self.queue.close()

    def abandon(self) -> None:
        """Simulate a crash: drop everything without journaling.

        Test hook for kill-9 semantics — the journal keeps whatever the
        last transition wrote; in-flight work is simply lost.
        """
        self._stopped = True
        if self._server is not None:
            self._server.close()
        for task in (self._dispatch_task, self._clock_task):
            if task is not None:
                task.cancel()
        for task in self._inflight.values():
            task.cancel()
        self._inflight.clear()
        self.workers.shutdown()
        self.queue.close()

    # -- submission ----------------------------------------------------

    def submit(
        self, tenant: str, specs: List[Tuple[RunSpec, str]]
    ) -> Tuple[List[Job], Optional[Any]]:
        """Admit and journal a batch of runs for ``tenant``.

        ``specs`` is a list of ``(RunSpec, tag)`` pairs.  Admission is
        checked per job as the batch lands, so a batch can be partially
        accepted; the first rejection is returned alongside the
        accepted jobs.  Accepted jobs are journaled before return.
        """
        accepted: List[Job] = []
        rejection = None
        acct = self.registry.get(tenant)
        for spec, tag in specs:
            decision = self.admission.admit(
                tenant_depth=self.queue.depth(tenant),
                total_depth=self.queue.depth(),
            )
            if not decision.ok:
                acct.rejections += 1
                rejection = decision
                break
            job = Job(
                job_id=job_id_for(tenant, spec, tag),
                tenant=tenant,
                spec=spec.to_payload(),
                cache_key=self.cache.key_for(spec) if self.cache.enabled else "",
                submitted_epoch=self.clock.epoch,
            )
            job, created = self.queue.submit(job)
            if created:
                acct.submitted += 1
                self.scheduler.rejoin(tenant)
            accepted.append(job)
        self._active_tenants.add(tenant)
        self._kick()
        return accepted, rejection

    def cancel(self, job_id: str) -> Optional[Job]:
        """Cancel a job; running executions are discarded on landing."""
        job = self.queue.cancel(job_id, self.clock.epoch)
        if job is not None:
            acct = self.registry.get(job.tenant)
            acct.cancelled += 1
            task = self._inflight.get(job_id)
            if task is not None:
                task.cancel()
            self.broker.publish()
            self._kick()
        return job

    # -- dispatch ------------------------------------------------------

    def _kick(self) -> None:
        if self._wake is not None:
            self._wake.set()

    async def _dispatch_loop(self) -> None:
        assert self._wake is not None
        while True:
            await self._wake.wait()
            self._wake.clear()
            self._fill_slots()

    def _fill_slots(self) -> None:
        """Hand queued jobs to free slots, fair-share order."""
        while len(self._inflight) < self.workers.slots:
            queued = self.queue.queued()
            if not queued:
                break
            by_tenant: Dict[str, Job] = {}
            for job in queued:  # oldest first per tenant
                by_tenant.setdefault(job.tenant, job)
                self._active_tenants.add(job.tenant)
            tenant = self.scheduler.pick(list(by_tenant))
            if tenant is None:
                break
            job = by_tenant[tenant]

            # Cross-tenant content-addressed cache: a result computed
            # for any tenant answers every identical spec instantly,
            # without consuming a worker slot.
            if job.cache_key:
                data = self.cache.get(job.cache_key)
                if data is not None:
                    done = self.queue.complete(
                        job.job_id, data, self.clock.epoch, cache_hit=True
                    )
                    if done is not None:
                        acct = self.registry.get(tenant)
                        acct.completed += 1
                        acct.cache_hits += 1
                        self.broker.publish()
                    continue

            claimed = self.queue.claim(job.job_id, self.clock.epoch)
            if claimed is None:
                continue  # cancelled under our feet
            self.scheduler.charge(tenant)
            self.broker.publish()
            self._inflight[job.job_id] = asyncio.create_task(
                self._run_job(claimed)
            )

    async def _run_job(self, job: Job) -> None:
        spec = job.run_spec()
        timeout = (
            spec.timeout if spec.timeout is not None else self.config.job_timeout
        )
        try:
            status, data, _wall = await self.workers.run(
                job.spec, timeout=timeout
            )
        finally:
            self._inflight.pop(job.job_id, None)
        if self._stopped:
            # Torn down (stop/abandon) while the run was in flight: the
            # journal must stay exactly as the last transition left it
            # (RUNNING rows are what crash recovery re-queues).
            raise asyncio.CancelledError()
        acct = self.registry.get(job.tenant)
        if status == OUTCOME_OK:
            payload = data.encode("utf-8")
            if job.cache_key:
                self.cache.put(job.cache_key, payload)
            done = self.queue.complete(job.job_id, payload, self.clock.epoch)
            if done is not None:
                acct.completed += 1
            # else: cancelled mid-run; the result is discarded (the
            # cache write above still benefits future identical specs).
        elif status == OUTCOME_LOST:
            # Not the run's fault: requeue without burning an attempt.
            self.queue.requeue(job.job_id, data)
        else:
            current = self.queue.get(job.job_id)
            if current is not None and current.state == JOB_RUNNING:
                if job.attempt <= self.config.retries:
                    self.queue.requeue(job.job_id, data)
                else:
                    self.queue.fail(job.job_id, data, self.clock.epoch)
                    acct.failed += 1
        self.broker.publish()
        self._kick()

    # -- epochs --------------------------------------------------------

    async def _clock_loop(self) -> None:
        """Wall-clock epoch driver (production mode only).

        The *only* place wall time exists; everything downstream of
        ``clock.advance`` is pure epoch arithmetic.
        """
        assert self.config.epoch_interval is not None
        while True:
            await asyncio.sleep(self.config.epoch_interval)
            self.clock.advance()

    def _on_epoch(self, _epoch: int) -> None:
        """Close a balancer epoch: demand -> utilization -> priorities.

        A tenant demanded this epoch when it had work pending or
        running at any point since the previous tick (the accumulated
        ``_active_tenants`` set) — the service-side analogue of a task
        having spent the iteration computing rather than waiting.
        """
        still_active = {
            name
            for name in self.registry.names()
            if self.queue.depth(name) > 0
        }
        for jid in list(self._inflight):
            job = self.queue.get(jid)
            if job is not None:
                still_active.add(job.tenant)
        demand = {
            acct.name: 1.0
            if (acct.name in self._active_tenants or acct.name in still_active)
            else 0.0
            for acct in self.registry.all()
        }
        self._active_tenants = still_active
        self.balancer.close_epoch(demand)

    # -- accounting / metrics -----------------------------------------

    def _rebuild_accounting(self) -> None:
        """Fold the journal into tenant counters after a restart."""
        for job in self.queue.all_jobs():
            acct = self.registry.get(job.tenant)
            acct.submitted += 1
            if job.state == JOB_OK:
                acct.completed += 1
                if job.cache_hit:
                    acct.cache_hits += 1
            elif job.state == JOB_FAILED:
                acct.failed += 1
            elif job.state == JOB_CANCELLED:
                acct.cancelled += 1
            elif job.state == JOB_QUEUED:
                self._active_tenants.add(job.tenant)

    def metrics(self) -> Dict[str, Any]:
        """The ``/v1/metrics`` document."""
        return {
            "epoch": self.clock.epoch,
            "states": self.queue.counts(),
            "inflight": len(self._inflight),
            "worker_slots": self.workers.slots,
            "worker_mode": self.workers.mode,
            "worker_rebuilds": self.workers.rebuilds,
            "worker_timeouts": self.workers.timeouts,
            "balancer": self.balancer.snapshot(),
            "admission": self.admission.snapshot(),
            "tenants": self.registry.snapshot(),
            "cache": {
                "enabled": self.cache.enabled,
                "hits": self.cache.hits,
                "misses": self.cache.misses,
            },
            "labels": dict(self.config.labels),
            "recovered_jobs": len(self.recovered_jobs),
        }
