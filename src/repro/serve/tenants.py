"""Per-tenant accounting.

Each tenant carries two kinds of state:

* **service counters** — submissions, completions, cache hits,
  dispatches, admission rejections — surfaced by ``/v1/metrics``;
* **utilization bookkeeping** — the same
  :class:`~repro.hpcsched.detector.HPCTaskStats` record the kernel's
  Load Imbalance Detector keeps per MPI task, reused verbatim at the
  service layer.  One scheduler epoch plays the role of one
  application iteration: the fraction of the epoch during which the
  tenant had work pending or running is its "compute time", the rest
  is its "wait time", and the resulting per-epoch utilization drives
  the Uniform/Adaptive priority bands exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hpcsched.detector import HPCTaskStats


@dataclass
class TenantAccount:
    """One tenant's counters and utilization history."""

    name: str
    #: Worker-slot priority in ``[min_prio, max_prio]``, assigned by
    #: the fair-share balancer each epoch; doubles as the tenant's
    #: dispatch weight.
    priority: int = 4
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    cache_hits: int = 0
    #: Jobs handed to a worker slot (excludes cache hits).
    dispatches: int = 0
    rejections: int = 0
    #: Accumulated "demand time": integral of has-work over epochs.
    demand_time: float = 0.0
    #: The detector's per-iteration bookkeeping, reused as-is.
    stats: HPCTaskStats = field(default_factory=lambda: HPCTaskStats(pid=0))
    #: Stride-scheduling pass value (see FairShareScheduler).
    pass_value: float = 0.0
    #: History of (epoch, priority) changes for observability.
    priority_history: List[tuple] = field(default_factory=list)

    def snapshot(self) -> Dict[str, object]:
        """JSON-able metrics view."""
        return {
            "tenant": self.name,
            "priority": self.priority,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "cache_hits": self.cache_hits,
            "dispatches": self.dispatches,
            "rejections": self.rejections,
            "iterations": self.stats.iterations,
            "last_util": self.stats.last_util,
            "global_util": round(self.stats.global_util, 6),
        }


class TenantRegistry:
    """Name -> :class:`TenantAccount`, created on first sight."""

    def __init__(self, base_priority: int = 4) -> None:
        self.base_priority = base_priority
        self._accounts: Dict[str, TenantAccount] = {}

    def get(self, name: str) -> TenantAccount:
        """The tenant's account, creating it at base priority."""
        acct = self._accounts.get(name)
        if acct is None:
            acct = TenantAccount(name=name, priority=self.base_priority)
            acct.stats.pid = len(self._accounts)
            self._accounts[name] = acct
        return acct

    def peek(self, name: str) -> Optional[TenantAccount]:
        """The account if it exists (no creation)."""
        return self._accounts.get(name)

    def all(self) -> List[TenantAccount]:
        """Every account, in first-seen order."""
        return list(self._accounts.values())

    def names(self) -> List[str]:
        """Every tenant name, in first-seen order."""
        return list(self._accounts)

    def snapshot(self) -> List[Dict[str, object]]:
        """Metrics rows for every tenant."""
        return [acct.snapshot() for acct in self._accounts.values()]
