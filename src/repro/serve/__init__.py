"""repro.serve — multi-tenant campaign service.

A long-running asyncio service wrapping the one-shot campaign layer:
durable SQLite job queue, stdlib HTTP/JSON API with incremental NDJSON
result streaming, a worker pool reusing the campaign executor's
process-pool machinery and content-addressed cache, bounded-queue
admission control, and — the point of the exercise — fair-share
scheduling across tenants driven by the paper's own Load Imbalance
Detector: one scheduler epoch per detector iteration, per-tenant
demand fraction as utilization, Uniform/Adaptive bands assigning
worker-slot priorities in ``[4, 6]``, stride dispatch turning those
priorities into slot shares.
"""

from repro.serve.admission import AdmissionController, AdmissionDecision
from repro.serve.client import ServeClient, ServeError
from repro.serve.queue import JobQueue
from repro.serve.scheduler import (
    BalancerConfig,
    FairShareBalancer,
    FairShareScheduler,
)
from repro.serve.service import CampaignService
from repro.serve.state import (
    JOB_CANCELLED,
    JOB_FAILED,
    JOB_OK,
    JOB_QUEUED,
    JOB_RUNNING,
    TERMINAL_STATES,
    Job,
    ServeConfig,
    VirtualClock,
    job_id_for,
)
from repro.serve.stream import EventBroker, ndjson_line, stream_jobs
from repro.serve.tenants import TenantAccount, TenantRegistry
from repro.serve.workers import WorkerPool

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "BalancerConfig",
    "CampaignService",
    "EventBroker",
    "FairShareBalancer",
    "FairShareScheduler",
    "JOB_CANCELLED",
    "JOB_FAILED",
    "JOB_OK",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "Job",
    "JobQueue",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "TERMINAL_STATES",
    "TenantAccount",
    "TenantRegistry",
    "VirtualClock",
    "WorkerPool",
    "job_id_for",
    "ndjson_line",
    "stream_jobs",
]
