"""Synchronous client for the campaign service API.

Built on :mod:`http.client` so the CLI (``repro submit``) and the
tests speak to the service exactly the way any third-party HTTP client
would — one request per connection, JSON in, JSON (or NDJSON lines)
out.  No dependency on the service internals: everything round-trips
through the wire format.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Iterator, List, Optional
from urllib.parse import urlencode


class ServeError(RuntimeError):
    """A non-2xx API answer, carrying status and decoded body."""

    def __init__(self, status: int, body: Dict[str, Any]) -> None:
        super().__init__(f"HTTP {status}: {body.get('error', body)}")
        self.status = status
        self.body = body
        self.retry_after: Optional[float] = None


class ServeClient:
    """Talk to a running campaign service."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        ok: bool = True,
    ) -> Dict[str, Any]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
            doc = json.loads(raw.decode("utf-8")) if raw else {}
            if ok and resp.status >= 400:
                err = ServeError(resp.status, doc)
                retry = resp.getheader("Retry-After")
                if retry is not None:
                    err.retry_after = float(retry)
                raise err
            doc["_status"] = resp.status
            return doc
        finally:
            conn.close()

    # -- API surface ---------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        """Liveness probe."""
        return self._request("GET", "/v1/healthz")

    def submit(
        self, tenant: str, runs: List[Dict[str, Any]], ok: bool = True
    ) -> Dict[str, Any]:
        """Submit a batch of run descriptors for ``tenant``.

        Each run is ``{"experiment": ..., "params": {...}, "seed": ...,
        "tag": ...}``.  With ``ok=False`` a 429/503 rejection is
        returned as a document (``_status`` carries the HTTP status)
        instead of raising :class:`ServeError`.
        """
        return self._request(
            "POST", "/v1/submit", {"tenant": tenant, "runs": runs}, ok=ok
        )

    def status(self, job: str) -> Dict[str, Any]:
        """One job's public record."""
        return self._request("GET", f"/v1/status?{urlencode({'job': job})}")

    def tenant_status(self, tenant: str) -> Dict[str, Any]:
        """Every job of one tenant."""
        return self._request(
            "GET", f"/v1/status?{urlencode({'tenant': tenant})}"
        )

    def cancel(self, job: str, ok: bool = True) -> Dict[str, Any]:
        """Cancel one job."""
        return self._request("POST", "/v1/cancel", {"job": job}, ok=ok)

    def metrics(self) -> Dict[str, Any]:
        """The full metrics document."""
        return self._request("GET", "/v1/metrics")

    def tick(self, epochs: int = 1) -> Dict[str, Any]:
        """Advance the virtual epoch clock (manual-clock services)."""
        return self._request("POST", "/v1/tick", {"epochs": epochs})

    def drain(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Stop admission and wait for the queue to empty."""
        body: Dict[str, Any] = {}
        if timeout is not None:
            body["timeout"] = timeout
        return self._request("POST", "/v1/drain", body, ok=False)

    def results(
        self,
        jobs: Optional[List[str]] = None,
        tenant: Optional[str] = None,
        follow: bool = False,
        timeout: Optional[float] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Stream results as parsed NDJSON records.

        With ``follow=True`` the iterator blocks until every requested
        job is terminal — each record arrives the moment its job
        finishes, so results can be consumed while the campaign runs.
        """
        params: List[tuple] = []
        for jid in jobs or []:
            params.append(("job", jid))
        if tenant is not None:
            params.append(("tenant", tenant))
        if follow:
            params.append(("follow", "1"))
        conn = http.client.HTTPConnection(
            self.host,
            self.port,
            timeout=timeout if timeout is not None else self.timeout,
        )
        try:
            conn.request("GET", f"/v1/results?{urlencode(params)}")
            resp = conn.getresponse()
            if resp.status >= 400:
                raw = resp.read()
                doc = json.loads(raw.decode("utf-8")) if raw else {}
                raise ServeError(resp.status, doc)
            buffer = b""
            while True:
                chunk = resp.read(4096)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        yield json.loads(line.decode("utf-8"))
            if buffer.strip():
                yield json.loads(buffer.decode("utf-8"))
        finally:
            conn.close()
