"""The service's HTTP/JSON API — stdlib asyncio streams only.

A deliberately small HTTP/1.x server: parse the request line, headers,
and a ``Content-Length`` body, route on ``(method, path)``, answer
with JSON (or NDJSON for result streams), and close the connection.
``Connection: close`` semantics keep the parser to ~40 lines and make
every response self-delimiting; clients issue one request per
connection, which is plenty for a campaign-submission workload.

Endpoints (all under ``/v1``):

========  ==============  ==================================================
method    path            action
========  ==============  ==================================================
POST      /v1/submit      admit + journal a batch of runs for a tenant
GET       /v1/status      one job (``?job=``) or a tenant (``?tenant=``)
GET       /v1/results     NDJSON stream of results (``?job=a&job=b``,
                          ``follow=1`` waits for non-terminal jobs)
POST      /v1/cancel      cancel one job (queued or running)
GET       /v1/metrics     scheduler/queue/cache/tenant counters
POST      /v1/tick        advance the virtual epoch clock (manual mode)
POST      /v1/drain       stop admitting, wait for the queue to empty
GET       /v1/healthz     liveness probe
========  ==============  ==================================================

Rejected submissions answer ``429`` (queue bounds, with
``Retry-After``) or ``503`` (draining), mirroring the admission
decision exactly.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

import asyncio

from repro.campaign.spec import RunSpec
from repro.serve.stream import ndjson_line, stream_jobs

#: Cap on request bodies — campaign batches are small; anything larger
#: is a client bug, not a workload.
MAX_BODY = 8 * 1024 * 1024


class _BadRequest(Exception):
    """Client error carrying the message to send back."""


async def handle_connection(
    service: "CampaignService",  # noqa: F821  (import cycle: service->api)
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve exactly one request, then close."""
    try:
        request = await _read_request(reader)
        if request is None:
            return
        method, path, query, body = request
        await _route(service, method, path, query, body, writer)
    except _BadRequest as exc:
        await _send_json(writer, 400, {"error": str(exc)})
    except (ConnectionError, asyncio.IncompleteReadError):
        pass  # client went away mid-request/response
    except Exception as exc:  # never kill the server on a handler bug
        try:
            await _send_json(writer, 500, {"error": f"internal: {exc!r}"})
        except (ConnectionError, OSError):
            pass
    finally:
        # Half-close before close: shutdown(SHUT_WR) sends a FIN on the
        # connection itself, so the client sees EOF even when a forked
        # pool worker inherited a duplicate of this socket's fd (fork
        # ignores non-inheritable flags; a plain close() would leave
        # the connection half-open and streaming clients hanging).
        try:
            if writer.can_write_eof():
                writer.write_eof()
        except (ConnectionError, OSError, RuntimeError):
            pass
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, List[str]], bytes]]:
    """Parse one HTTP/1.x request; ``None`` on immediate EOF."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not line:
        return None
    try:
        method, target, _version = line.decode("latin-1").split(None, 2)
    except ValueError:
        raise _BadRequest("malformed request line")
    headers: Dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY:
        raise _BadRequest(f"request body too large ({length} bytes)")
    body = await reader.readexactly(length) if length else b""
    parts = urlsplit(target)
    return method.upper(), parts.path, parse_qs(parts.query), body


def _json_body(body: bytes) -> Dict[str, Any]:
    if not body:
        raise _BadRequest("expected a JSON body")
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise _BadRequest(f"invalid JSON body: {exc}")
    if not isinstance(obj, dict):
        raise _BadRequest("JSON body must be an object")
    return obj


async def _route(
    service: "CampaignService",  # noqa: F821
    method: str,
    path: str,
    query: Dict[str, List[str]],
    body: bytes,
    writer: asyncio.StreamWriter,
) -> None:
    if (method, path) == ("POST", "/v1/submit"):
        await _submit(service, body, writer)
    elif (method, path) == ("GET", "/v1/status"):
        await _status(service, query, writer)
    elif (method, path) == ("GET", "/v1/results"):
        await _results(service, query, writer)
    elif (method, path) == ("POST", "/v1/cancel"):
        await _cancel(service, body, writer)
    elif (method, path) == ("GET", "/v1/metrics"):
        await _send_json(writer, 200, service.metrics())
    elif (method, path) == ("POST", "/v1/tick"):
        await _tick(service, body, writer)
    elif (method, path) == ("POST", "/v1/drain"):
        await _drain(service, body, writer)
    elif (method, path) == ("GET", "/v1/healthz"):
        await _send_json(
            writer, 200, {"ok": True, "epoch": service.clock.epoch}
        )
    else:
        await _send_json(
            writer, 404, {"error": f"no route for {method} {path}"}
        )


async def _submit(
    service: "CampaignService",  # noqa: F821
    body: bytes,
    writer: asyncio.StreamWriter,
) -> None:
    """``{"tenant": ..., "runs": [{"experiment": ..., ...}, ...]}``."""
    payload = _json_body(body)
    tenant = payload.get("tenant")
    if not tenant or not isinstance(tenant, str):
        raise _BadRequest("missing 'tenant'")
    if "/" in tenant:
        raise _BadRequest("tenant names must not contain '/'")
    runs = payload.get("runs")
    if not isinstance(runs, list) or not runs:
        raise _BadRequest("'runs' must be a non-empty list")
    specs: List[Tuple[RunSpec, str]] = []
    for i, run in enumerate(runs):
        if not isinstance(run, dict) or "experiment" not in run:
            raise _BadRequest(f"runs[{i}] needs an 'experiment'")
        tag = str(run.get("tag", ""))
        try:
            spec = RunSpec(
                experiment=run["experiment"],
                params=dict(run.get("params", {})),
                seed=run.get("seed"),
                runner=run.get("runner"),
                timeout=run.get("timeout"),
            )
        except (TypeError, ValueError) as exc:
            raise _BadRequest(f"runs[{i}]: {exc}")
        specs.append((spec, tag))
    accepted, rejection = service.submit(tenant, specs)
    doc = {
        "tenant": tenant,
        "accepted": [job.to_public() for job in accepted],
        "rejected": len(specs) - len(accepted),
    }
    if rejection is None:
        await _send_json(writer, 200, doc)
    else:
        doc["error"] = rejection.reason
        headers = {}
        if rejection.retry_after is not None:
            headers["Retry-After"] = str(rejection.retry_after)
        await _send_json(writer, rejection.status, doc, headers)


async def _status(
    service: "CampaignService",  # noqa: F821
    query: Dict[str, List[str]],
    writer: asyncio.StreamWriter,
) -> None:
    job_ids = query.get("job", [])
    tenants = query.get("tenant", [])
    if job_ids:
        job = service.queue.get(job_ids[0])
        if job is None:
            await _send_json(
                writer, 404, {"error": f"unknown job {job_ids[0]!r}"}
            )
        else:
            await _send_json(writer, 200, job.to_public())
    elif tenants:
        jobs = service.queue.jobs_for(tenants[0])
        await _send_json(
            writer,
            200,
            {
                "tenant": tenants[0],
                "jobs": [job.to_public() for job in jobs],
            },
        )
    else:
        raise _BadRequest("need ?job=<id> or ?tenant=<name>")


async def _results(
    service: "CampaignService",  # noqa: F821
    query: Dict[str, List[str]],
    writer: asyncio.StreamWriter,
) -> None:
    """NDJSON result stream; ``follow=1`` waits on running jobs."""
    job_ids = query.get("job", [])
    if not job_ids and query.get("tenant"):
        job_ids = [
            job.job_id for job in service.queue.jobs_for(query["tenant"][0])
        ]
    if not job_ids:
        raise _BadRequest("need ?job=<id> (repeatable) or ?tenant=<name>")
    follow = query.get("follow", ["0"])[0] not in ("0", "", "false")
    writer.write(
        b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: application/x-ndjson\r\n"
        b"Connection: close\r\n"
        b"\r\n"
    )
    await writer.drain()
    if follow:
        async for line in stream_jobs(
            job_ids, service.queue.get, service.broker, with_results=True
        ):
            writer.write(line)
            await writer.drain()
    else:
        for jid in job_ids:
            job = service.queue.get(jid)
            if job is None:
                writer.write(ndjson_line({"job_id": jid, "state": "UNKNOWN"}))
            else:
                writer.write(ndjson_line(job.to_public(with_result=True)))
            await writer.drain()


async def _cancel(
    service: "CampaignService",  # noqa: F821
    body: bytes,
    writer: asyncio.StreamWriter,
) -> None:
    payload = _json_body(body)
    job_id = payload.get("job")
    if not job_id:
        raise _BadRequest("missing 'job'")
    job = service.cancel(job_id)
    if job is None:
        existing = service.queue.get(job_id)
        if existing is None:
            await _send_json(
                writer, 404, {"error": f"unknown job {job_id!r}"}
            )
        else:  # already terminal — cancelling is a no-op, say so
            await _send_json(
                writer,
                409,
                {"error": f"job is already {existing.state}",
                 "job": existing.to_public()},
            )
    else:
        await _send_json(writer, 200, job.to_public())


async def _tick(
    service: "CampaignService",  # noqa: F821
    body: bytes,
    writer: asyncio.StreamWriter,
) -> None:
    payload = _json_body(body) if body else {}
    epochs = int(payload.get("epochs", 1))
    if epochs < 1 or epochs > 10_000:
        raise _BadRequest("epochs must be in [1, 10000]")
    epoch = service.clock.advance(epochs)
    await _send_json(
        writer,
        200,
        {
            "epoch": epoch,
            "balancer": service.balancer.snapshot(),
        },
    )


async def _drain(
    service: "CampaignService",  # noqa: F821
    body: bytes,
    writer: asyncio.StreamWriter,
) -> None:
    payload = _json_body(body) if body else {}
    timeout = payload.get("timeout")
    drained = await service.drain(
        timeout=float(timeout) if timeout is not None else None
    )
    await _send_json(
        writer,
        200 if drained else 504,
        {"drained": drained, "pending": service.queue.pending()},
    )


async def _send_json(
    writer: asyncio.StreamWriter,
    status: int,
    doc: Dict[str, Any],
    headers: Optional[Dict[str, str]] = None,
) -> None:
    body = json.dumps(doc, sort_keys=True).encode("utf-8")
    reason = {
        200: "OK",
        400: "Bad Request",
        404: "Not Found",
        409: "Conflict",
        429: "Too Many Requests",
        500: "Internal Server Error",
        503: "Service Unavailable",
        504: "Gateway Timeout",
    }.get(status, "OK")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
    )
    for name, value in (headers or {}).items():
        head += f"{name}: {value}\r\n"
    writer.write(head.encode("latin-1") + b"\r\n" + body)
    await writer.drain()
