"""Worker-pool dispatch for the service.

Jobs execute through :func:`repro.campaign.executor.execute_runspec` —
the exact worker entry point the one-shot campaign CLI uses, so the
service inherits its property that outcomes travel as plain
``(status, data, wall)`` tuples and nothing exception-shaped crosses a
process boundary.

Two backends:

* ``process`` — a ``ProcessPoolExecutor`` managed by the campaign
  layer's generation-guarded :class:`~repro.campaign.executor.
  PoolManager`, sharing its idempotent rebuild-after-timeout logic
  (the service's concurrent submissions are why that fix exists);
* ``thread`` — an in-process thread pool: no fork cost, right for
  tests and for tiny single-host deployments where the runs themselves
  are cheap.

The pool is deliberately asyncio-friendly but not asyncio-native: the
event loop awaits wrapped futures, while the actual work happens in
workers, keeping the decision path (scheduler/balancer) free of any
execution stalls.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
from typing import Any, Dict, Optional, Tuple

from repro.campaign.executor import PoolManager, execute_runspec

#: Worker outcome statuses (superset of execute_runspec's).
OUTCOME_OK = "ok"
OUTCOME_ERROR = "error"
OUTCOME_TIMEOUT = "timeout"
OUTCOME_LOST = "lost"


class WorkerPool:
    """Execute run payloads on worker slots; async interface."""

    def __init__(
        self,
        slots: int,
        mode: str = "process",
        timeout: Optional[float] = None,
    ) -> None:
        if mode not in ("process", "thread"):
            raise ValueError(f"unknown worker mode {mode!r}")
        self.slots = max(1, slots)
        self.mode = mode
        self.timeout = timeout
        self._procs: Optional[PoolManager] = None
        self._threads: Optional[concurrent.futures.ThreadPoolExecutor] = None
        if mode == "process":
            self._procs = PoolManager(self.slots)
        else:
            self._threads = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.slots, thread_name_prefix="serve-worker"
            )
        #: Pool rebuilds triggered by timeouts (process mode).
        self.timeouts = 0

    async def run(
        self, payload: Dict[str, Any], timeout: Optional[float] = None
    ) -> Tuple[str, str, float]:
        """Execute one run payload; returns ``(status, data, wall)``.

        ``status`` is ``ok`` (data = canonical payload JSON), ``error``
        (data = formatted traceback), ``timeout``, or ``lost`` (the
        worker died underneath the run — pool breakage, not run code).
        Never raises for a run failure.
        """
        per_timeout = timeout if timeout is not None else self.timeout
        if self._procs is not None:
            fut, gen = self._procs.submit(execute_runspec, payload)
        else:
            assert self._threads is not None
            fut, gen = self._threads.submit(execute_runspec, payload), 0
        wrapped = asyncio.wrap_future(fut)
        try:
            if per_timeout is not None:
                return await asyncio.wait_for(wrapped, per_timeout)
            return await wrapped
        except asyncio.TimeoutError:
            self.timeouts += 1
            if not fut.cancel() and self._procs is not None:
                # The worker is stuck mid-run: write the slot off; once
                # every slot of this pool generation is gone, rebuild.
                # (Idempotent under concurrent timeouts — PoolManager.)
                if self._procs.write_off(gen):
                    self._procs.rebuild(gen)
            return (
                OUTCOME_TIMEOUT,
                f"timeout: exceeded {per_timeout}s",
                per_timeout or 0.0,
            )
        except concurrent.futures.CancelledError:
            return (OUTCOME_LOST, "worker pool retired mid-run", 0.0)
        except Exception as exc:  # pool breakage, not run code
            if self._procs is not None:
                self._procs.rebuild(gen)
            return (OUTCOME_LOST, f"worker died: {exc!r}", 0.0)

    @property
    def rebuilds(self) -> int:
        """Worker-pool rebuilds performed so far (process mode)."""
        return self._procs.rebuilds if self._procs is not None else 0

    def shutdown(self) -> None:
        """Tear every worker down (service stop)."""
        if self._procs is not None:
            self._procs.shutdown()
        if self._threads is not None:
            self._threads.shutdown(wait=False, cancel_futures=True)
