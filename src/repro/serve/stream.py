"""Incremental NDJSON result streaming.

``GET /v1/results`` answers with one JSON object per line, written as
each requested job reaches a terminal state — a client submits a
campaign and consumes results while later jobs are still queued or
running.  NDJSON needs no framing beyond the newline, survives any
HTTP/1.0 proxy, and is trivially consumed from Python
(``for line in response``).

The :class:`EventBroker` is the coupling point between the dispatcher
(which publishes every job state change) and any number of concurrent
streams: a single asyncio condition variable with a monotonically
increasing version, so followers wake exactly when something changed
and re-check their remaining set against the journal.  Followers never
poll on a wall-clock interval.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, AsyncIterator, Callable, Dict, List, Optional

from repro.serve.state import Job


def ndjson_line(obj: Any) -> bytes:
    """One NDJSON record: compact JSON plus the newline terminator."""
    return (
        json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


class EventBroker:
    """Wakes result streams when any job changes state."""

    def __init__(self) -> None:
        self._cond: Optional[asyncio.Condition] = None
        self.version = 0

    def _condition(self) -> asyncio.Condition:
        # Created lazily so the broker can be built before the loop.
        if self._cond is None:
            self._cond = asyncio.Condition()
        return self._cond

    def publish(self) -> None:
        """Note a state change and wake every follower."""
        self.version += 1
        cond = self._condition()

        async def _notify() -> None:
            async with cond:
                cond.notify_all()

        # publish() is called from the event loop; schedule the notify
        # rather than requiring every caller to be async.
        asyncio.get_running_loop().create_task(_notify())

    async def wait(self, seen_version: int) -> int:
        """Block until the version moves past ``seen_version``."""
        cond = self._condition()
        async with cond:
            await cond.wait_for(lambda: self.version > seen_version)
            return self.version


async def stream_jobs(
    job_ids: List[str],
    fetch: Callable[[str], Optional[Job]],
    broker: EventBroker,
    with_results: bool = True,
) -> AsyncIterator[bytes]:
    """Yield NDJSON lines as each requested job turns terminal.

    ``fetch`` reads the authoritative job record (the journal).  Jobs
    already terminal are emitted immediately, in request order; the
    rest are emitted as the broker announces changes.  Unknown ids are
    reported once with ``state: "UNKNOWN"`` so a client can't hang on a
    typo.
    """
    # Snapshot the version BEFORE the initial sweep: a job completing
    # between its fetch below and the follow loop bumps the version and
    # is caught by the first wait() instead of being missed.
    version = broker.version
    remaining: List[str] = []
    for jid in job_ids:
        job = fetch(jid)
        if job is None:
            yield ndjson_line({"job_id": jid, "state": "UNKNOWN"})
        elif job.terminal:
            yield ndjson_line(job.to_public(with_result=with_results))
        else:
            remaining.append(jid)

    while remaining:
        version = await broker.wait(version)
        still: List[str] = []
        for jid in remaining:
            job = fetch(jid)
            if job is not None and job.terminal:
                yield ndjson_line(job.to_public(with_result=with_results))
            else:
                still.append(jid)
        remaining = still
