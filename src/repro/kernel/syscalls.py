"""Request objects a task program may yield to the kernel.

A program is a generator::

    def program(env):
        yield Compute(2.5)          # 2.5 work units
        yield Sleep(0.001)          # block for 1 ms
        yield SetScheduler(SchedPolicy.HPC)
        ...

``Compute`` is handled natively by the execution engine; every other
request implements :meth:`KernelRequest.execute`, returning ``True`` if
the task may continue immediately and ``False`` if it must block (the
issuing subsystem is then responsible for waking it).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.kernel.policies import (
    NICE_MAX,
    NICE_MIN,
    RT_PRIO_MAX,
    RT_PRIO_MIN,
    RT_POLICIES,
    SchedPolicy,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core_sched import Kernel
    from repro.kernel.task import Task


class KernelRequest:
    """Base class for blocking/non-compute requests."""

    #: Marks requests that represent an MPI wait phase; the HPC
    #: load-imbalance detector treats wakeup from such a request as an
    #: iteration boundary (paper Fig. 2).
    is_wait = False

    def execute(self, kernel: "Kernel", task: "Task") -> bool:
        """Perform the request for ``task``.

        Returns ``True`` if the task may continue immediately, ``False``
        if it must block (the issuing subsystem is then responsible for
        waking it).  A request may deliver a result to the program's
        yield expression via ``task._syscall_result``.
        """
        raise NotImplementedError

    @property
    def sleep_reason(self) -> str:
        """Label recorded on the task while blocked on this request."""
        return type(self).__name__.lower()


class Compute:
    """Run on the CPU for ``work`` units.

    One work unit corresponds to one second of execution at the
    SMT-equal baseline speed; the actual wall time depends on the SMT
    state of the core the task lands on.
    """

    __slots__ = ("work",)

    def __init__(self, work: float) -> None:
        if work < 0:
            raise ValueError(f"negative work {work}")
        self.work = work

    def __repr__(self) -> str:  # pragma: no cover
        return f"Compute({self.work})"


class Sleep(KernelRequest):
    """Block for a fixed amount of simulated time."""

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative sleep {duration}")
        self.duration = duration

    def execute(self, kernel: "Kernel", task: "Task") -> bool:
        if self.duration == 0.0:
            return True
        kernel.sim.after(self.duration, lambda: kernel.wake_up(task), label="sleep-end")
        return False


class SetScheduler(KernelRequest):
    """``sched_setscheduler()``: move the task to another policy/class.

    This is the *only* modification an application needs to opt into
    HPCSched (paper §IV-A).
    """

    def __init__(self, policy: SchedPolicy, rt_priority: int = 0) -> None:
        if policy in RT_POLICIES and not RT_PRIO_MIN <= rt_priority <= RT_PRIO_MAX:
            raise ValueError(f"rt_priority {rt_priority} out of range for {policy}")
        self.policy = policy
        self.rt_priority = rt_priority

    def execute(self, kernel: "Kernel", task: "Task") -> bool:
        kernel.sched_setscheduler(task, self.policy, self.rt_priority)
        return True


class SetNice(KernelRequest):
    """``nice()``: adjust the CFS weight of the calling task."""

    def __init__(self, nice: int) -> None:
        if not NICE_MIN <= nice <= NICE_MAX:
            raise ValueError(f"nice {nice} out of range")
        self.nice = nice

    def execute(self, kernel: "Kernel", task: "Task") -> bool:
        task.nice = self.nice
        return True


class SetAffinity(KernelRequest):
    """``sched_setaffinity()``: restrict the CPUs the task may use."""

    def __init__(self, cpus: Optional[Iterable[int]]) -> None:
        self.cpus = set(cpus) if cpus is not None else None

    def execute(self, kernel: "Kernel", task: "Task") -> bool:
        kernel.set_affinity(task, self.cpus)
        return True


class YieldCPU(KernelRequest):
    """``sched_yield()``: put the task at the back of its queue."""

    def execute(self, kernel: "Kernel", task: "Task") -> bool:
        kernel.yield_current(task)
        return True


class Exit(KernelRequest):
    """Terminate the task (equivalent to the program returning).

    Handled specially by the program driver in the kernel core; the
    ``execute`` method is never called.
    """

    def execute(self, kernel: "Kernel", task: "Task") -> bool:  # pragma: no cover
        raise AssertionError("Exit is handled by the program driver")
