"""Wakeup (scheduler) latency accounting.

The time between a task becoming runnable and actually executing is the
*scheduler latency* the paper's §V-D identifies as the source of
SIESTA's improvement: an HPC-class task that wakes competes only with
its own (usually empty) class, while a CFS task competes with everything
in the system.  This module aggregates those latencies per task and
globally so experiments can decompose execution-time gains.

The accounting is entirely passive — samples are taken inside the
enqueue/install events themselves; no latency timer ever exists — so
the fast-forward engine (:mod:`repro.simcore.fastforward`) needs no
chain family here: there is nothing to elide, and every elided tick or
balance fire is invisible to these aggregates by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.task import Task


@dataclass
class LatencyAccumulator:
    """Streaming count/sum/max of observed wakeup latencies."""

    count: int = 0
    total: float = 0.0
    max: float = 0.0

    def add(self, value: float) -> None:
        """Fold one latency observation into the accumulator."""
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass
class LatencyStats:
    """Per-task and global wakeup-latency statistics."""

    per_task: Dict[int, LatencyAccumulator] = field(default_factory=dict)
    overall: LatencyAccumulator = field(default_factory=LatencyAccumulator)

    def record(self, task: "Task", latency: float) -> None:
        """Record one wakeup-to-run latency for ``task``."""
        acc = self.per_task.get(task.pid)
        if acc is None:
            acc = LatencyAccumulator()
            self.per_task[task.pid] = acc
        acc.add(latency)
        self.overall.add(latency)

    def for_task(self, pid: int) -> LatencyAccumulator:
        """The task's accumulator (empty if it never woke)."""
        return self.per_task.get(pid, LatencyAccumulator())
