"""Per-CPU run queue.

Each CPU owns one :class:`RunQueue`.  The queue holds, per scheduling
class, that class's private queue object (created lazily through
:meth:`SchedClass.create_queue`), plus the currently running task and
the tick/resched bookkeeping the scheduler core needs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.sched_class import SchedClass
    from repro.kernel.task import Task
    from repro.simcore.events import Event


class RunQueue:
    """State of one logical CPU from the scheduler's point of view."""

    def __init__(self, cpu: int) -> None:
        self.cpu = cpu
        #: Currently running task (None only transiently; the idle task
        #: occupies the CPU when nothing else is runnable).
        self.current: Optional["Task"] = None
        #: Class-private queues, keyed by class name.
        self.class_queues: Dict[str, Any] = {}
        #: Number of queued (not running) tasks across all classes.
        self.nr_queued = 0
        self.need_resched = False
        #: Pending deferred __schedule() event (dedup guard).
        self.resched_event: Optional["Event"] = None
        #: Pending tick event.
        self.tick_event: Optional["Event"] = None
        #: Pending periodic load-balance event.
        self.balance_event: Optional["Event"] = None
        #: Time the current task was switched in (for slice accounting).
        self.curr_switched_in_at: float = 0.0

    def queue_for(self, sched_class: "SchedClass") -> Any:
        """This CPU's private queue object of ``sched_class`` (created
        lazily through the class's ``create_queue``)."""
        q = self.class_queues.get(sched_class.name)
        if q is None:
            q = sched_class.create_queue()
            self.class_queues[sched_class.name] = q
        return q

    @property
    def nr_running(self) -> int:
        """Queued tasks plus the running one (idle task excluded)."""
        running = 1 if self.current is not None and not getattr(
            self.current, "is_idle_task", False
        ) else 0
        return self.nr_queued + running

    def __repr__(self) -> str:  # pragma: no cover
        cur = self.current.name if self.current else None
        return f"<RunQueue cpu{self.cpu} current={cur!r} queued={self.nr_queued}>"
