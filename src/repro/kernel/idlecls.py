"""The idle scheduling class: last resort, never empty.

Each CPU owns one idle task; the scheduler core falls through to this
class when every other class is empty, so "the scheduler cannot fail in
its search" (paper §III).  Running the idle task parks the hardware
context at snooze priority, putting the core in single-thread mode for
its sibling.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.kernel.policies import SchedPolicy
from repro.kernel.sched_class import SchedClass

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.runqueue import RunQueue
    from repro.kernel.task import Task


class IdleClass(SchedClass):
    """Lowest-priority scheduling class holding the per-CPU idle tasks."""

    name = "idle"
    policies = frozenset({SchedPolicy.IDLE})

    def __init__(self, kernel) -> None:
        super().__init__(kernel)
        self.idle_tasks: Dict[int, "Task"] = {}

    def register_idle_task(self, cpu: int, task: "Task") -> None:
        """Install ``task`` as the per-CPU idle task (boot time)."""
        task.is_idle_task = True  # type: ignore[attr-defined]
        self.idle_tasks[cpu] = task

    def create_queue(self) -> None:
        return None

    def enqueue_task(self, rq: "RunQueue", task: "Task") -> None:
        raise RuntimeError("the idle task is never enqueued")

    def dequeue_task(self, rq: "RunQueue", task: "Task") -> None:
        raise RuntimeError("the idle task is never dequeued")

    def pick_next_task(self, rq: "RunQueue") -> Optional["Task"]:
        return self.idle_tasks.get(rq.cpu)

    def nr_queued(self, rq: "RunQueue") -> int:
        return 0

    def needs_tick(self, rq: "RunQueue", task: "Task") -> bool:
        return False
