"""A red-black tree, as used by CFS for its runnable-task timeline.

The Linux CFS class keeps runnable entities in a red-black tree ordered
by virtual runtime; the "leftmost" entity is the next to run (paper
§III).  This is a from-scratch CLRS-style implementation with insert,
delete, minimum and ordered iteration, parameterized by an explicit sort
key so it is reusable (and property-testable) outside the scheduler.

Keys must be totally ordered; duplicate keys are allowed (insertion
order among equal keys is *not* guaranteed, callers that need stability
should extend the key with a tie-breaker, as CFS does with the pid).
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

RED = True
BLACK = False


class RBNode:
    """A tree node holding an arbitrary payload and its sort key."""

    __slots__ = ("key", "value", "color", "left", "right", "parent")

    def __init__(self, key: Any, value: Any) -> None:
        self.key = key
        self.value = value
        self.color = RED
        self.left: Optional["RBNode"] = None
        self.right: Optional["RBNode"] = None
        self.parent: Optional["RBNode"] = None


class RBTree:
    """Red-black tree with O(log n) insert/delete/min."""

    def __init__(self) -> None:
        self.root: Optional[RBNode] = None
        self._size = 0
        self._leftmost: Optional[RBNode] = None

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any) -> RBNode:
        """Insert ``value`` under ``key``; returns the node handle."""
        node = RBNode(key, value)
        parent = None
        cur = self.root
        leftmost = True
        while cur is not None:
            parent = cur
            if key < cur.key:
                cur = cur.left
            else:
                cur = cur.right
                leftmost = False
        node.parent = parent
        if parent is None:
            self.root = node
        elif key < parent.key:
            parent.left = node
        else:
            parent.right = node
        if leftmost:
            self._leftmost = node
        self._size += 1
        self._insert_fixup(node)
        return node

    def minimum(self) -> Optional[RBNode]:
        """The node with the smallest key (the CFS "leftmost task")."""
        return self._leftmost

    def pop_min(self) -> Optional[RBNode]:
        """Remove and return the minimum node."""
        node = self._leftmost
        if node is not None:
            self.delete(node)
        return node

    def delete(self, node: RBNode) -> None:
        """Remove ``node`` (a handle previously returned by insert)."""
        if node is self._leftmost:
            self._leftmost = self._successor(node)
        self._size -= 1

        y = node
        y_color = y.color
        if node.left is None:
            x, x_parent = node.right, node.parent
            self._transplant(node, node.right)
        elif node.right is None:
            x, x_parent = node.left, node.parent
            self._transplant(node, node.left)
        else:
            y = self._subtree_min(node.right)
            y_color = y.color
            x = y.right
            if y.parent is node:
                x_parent = y
            else:
                x_parent = y.parent
                self._transplant(y, y.right)
                y.right = node.right
                y.right.parent = y
            self._transplant(node, y)
            y.left = node.left
            y.left.parent = y
            y.color = node.color
        if y_color == BLACK:
            self._delete_fixup(x, x_parent)
        node.left = node.right = node.parent = None

    def items(self) -> Iterator[tuple]:
        """In-order (key, value) traversal."""
        for node in self._walk(self.root):
            yield node.key, node.value

    def values(self) -> Iterator[Any]:
        """In-order traversal of stored values."""
        for node in self._walk(self.root):
            yield node.value

    # ------------------------------------------------------------------
    # Invariant checking (used by tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> int:
        """Verify the red-black properties; returns the black height.

        Raises ``AssertionError`` on violation.  Checks: root is black,
        no red node has a red child, every root-to-leaf path has the
        same black count, keys are in order, and parent pointers and the
        cached leftmost/size are consistent.
        """
        if self.root is not None:
            assert self.root.color == BLACK, "root must be black"
            assert self.root.parent is None, "root has a parent"
        count = sum(1 for _ in self._walk(self.root))
        assert count == self._size, f"size mismatch {count} != {self._size}"
        expected_min = None
        cur = self.root
        while cur is not None:
            expected_min = cur
            cur = cur.left
        assert self._leftmost is expected_min, "cached leftmost is stale"
        keys = [n.key for n in self._walk(self.root)]
        assert keys == sorted(keys), "in-order keys not sorted"
        return self._black_height(self.root)

    def _black_height(self, node: Optional[RBNode]) -> int:
        if node is None:
            return 1
        if node.color == RED:
            for child in (node.left, node.right):
                assert child is None or child.color == BLACK, "red-red violation"
        for child in (node.left, node.right):
            if child is not None:
                assert child.parent is node, "broken parent pointer"
        lh = self._black_height(node.left)
        rh = self._black_height(node.right)
        assert lh == rh, "unequal black heights"
        return lh + (1 if node.color == BLACK else 0)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _subtree_min(node: RBNode) -> RBNode:
        while node.left is not None:
            node = node.left
        return node

    @staticmethod
    def _successor(node: RBNode) -> Optional[RBNode]:
        if node.right is not None:
            return RBTree._subtree_min(node.right)
        parent = node.parent
        while parent is not None and node is parent.right:
            node, parent = parent, parent.parent
        return parent

    def _walk(self, node: Optional[RBNode]) -> Iterator[RBNode]:
        if node is None:
            return
        yield from self._walk(node.left)
        yield node
        yield from self._walk(node.right)

    def _transplant(self, u: RBNode, v: Optional[RBNode]) -> None:
        if u.parent is None:
            self.root = v
        elif u is u.parent.left:
            u.parent.left = v
        else:
            u.parent.right = v
        if v is not None:
            v.parent = u.parent

    def _rotate_left(self, x: RBNode) -> None:
        y = x.right
        assert y is not None
        x.right = y.left
        if y.left is not None:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is None:
            self.root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y

    def _rotate_right(self, x: RBNode) -> None:
        y = x.left
        assert y is not None
        x.left = y.right
        if y.right is not None:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is None:
            self.root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y

    def _insert_fixup(self, z: RBNode) -> None:
        while z.parent is not None and z.parent.color == RED:
            gp = z.parent.parent
            assert gp is not None  # red parent implies grandparent exists
            if z.parent is gp.left:
                uncle = gp.right
                if uncle is not None and uncle.color == RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    gp.color = RED
                    z = gp
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._rotate_left(z)
                    z.parent.color = BLACK
                    gp.color = RED
                    self._rotate_right(gp)
            else:
                uncle = gp.left
                if uncle is not None and uncle.color == RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    gp.color = RED
                    z = gp
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._rotate_right(z)
                    z.parent.color = BLACK
                    gp.color = RED
                    self._rotate_left(gp)
        assert self.root is not None
        self.root.color = BLACK

    def _delete_fixup(
        self, x: Optional[RBNode], x_parent: Optional[RBNode]
    ) -> None:
        while x is not self.root and (x is None or x.color == BLACK):
            if x_parent is None:
                break
            if x is x_parent.left:
                w = x_parent.right
                if w is not None and w.color == RED:
                    w.color = BLACK
                    x_parent.color = RED
                    self._rotate_left(x_parent)
                    w = x_parent.right
                if w is None:
                    x, x_parent = x_parent, x_parent.parent
                    continue
                wl_black = w.left is None or w.left.color == BLACK
                wr_black = w.right is None or w.right.color == BLACK
                if wl_black and wr_black:
                    w.color = RED
                    x, x_parent = x_parent, x_parent.parent
                else:
                    if wr_black:
                        if w.left is not None:
                            w.left.color = BLACK
                        w.color = RED
                        self._rotate_right(w)
                        w = x_parent.right
                    assert w is not None
                    w.color = x_parent.color
                    x_parent.color = BLACK
                    if w.right is not None:
                        w.right.color = BLACK
                    self._rotate_left(x_parent)
                    x = self.root
                    x_parent = None
            else:
                w = x_parent.left
                if w is not None and w.color == RED:
                    w.color = BLACK
                    x_parent.color = RED
                    self._rotate_right(x_parent)
                    w = x_parent.left
                if w is None:
                    x, x_parent = x_parent, x_parent.parent
                    continue
                wl_black = w.left is None or w.left.color == BLACK
                wr_black = w.right is None or w.right.color == BLACK
                if wl_black and wr_black:
                    w.color = RED
                    x, x_parent = x_parent, x_parent.parent
                else:
                    if wl_black:
                        if w.right is not None:
                            w.right.color = BLACK
                        w.color = RED
                        self._rotate_left(w)
                        w = x_parent.left
                    assert w is not None
                    w.color = x_parent.color
                    x_parent.color = BLACK
                    if w.left is not None:
                        w.left.color = BLACK
                    self._rotate_right(x_parent)
                    x = self.root
                    x_parent = None
        if x is not None:
            x.color = BLACK
