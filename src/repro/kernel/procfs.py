"""/proc-style introspection of the simulated kernel.

Text dumps in the spirit of ``/proc/sched_debug``, ``/proc/<pid>/stat``
and ``/proc/schedstat`` — invaluable when debugging scheduler behaviour
(and used by the test suite to assert internal consistency without
reaching into private state).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.kernel.policies import TaskState

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core_sched import Kernel


def sched_debug(kernel: "Kernel") -> str:
    """A ``/proc/sched_debug``-like dump: per-CPU runqueues, current
    task, queued tasks per class, clock and counters."""
    lines = [
        f"sched_debug, now={kernel.now:.6f}s",
        f"nr_switches={kernel.context_switches} "
        f"nr_migrations={kernel.migrations} live_tasks={kernel.live_tasks}",
        "",
    ]
    for cpu in kernel.machine.cpu_ids:
        rq = kernel.rqs[cpu]
        ctx = kernel.machine.context(cpu)
        cur = rq.current
        cur_txt = (
            f"{cur.name} (pid {cur.pid}, {cur.policy.name}, hw {cur.hw_priority})"
            if cur is not None
            else "<none>"
        )
        lines.append(
            f"cpu#{cpu}: core={ctx.core.core_id} "
            f"ctx_prio={int(ctx.priority)} busy={ctx.busy}"
        )
        lines.append(f"  curr: {cur_txt}")
        lines.append(f"  nr_queued: {rq.nr_queued}")
        for cls in kernel.classes:
            n = cls.nr_queued(rq)
            if n:
                lines.append(f"    {cls.name}: {n} queued")
        lines.append("")
    return "\n".join(lines)


def task_stat(kernel: "Kernel", pid: int) -> Dict[str, object]:
    """A ``/proc/<pid>/stat``-like record."""
    task = kernel.tasks[pid]
    return {
        "pid": task.pid,
        "comm": task.name,
        "state": task.state.value,
        "policy": task.policy.name,
        "cpu": task.cpu,
        "nice": task.nice,
        "rt_priority": task.rt_priority,
        "hw_priority": task.hw_priority,
        "utime": task.sum_exec_runtime,
        "vruntime": task.vruntime,
        "cpus_allowed": sorted(task.cpus_allowed) if task.cpus_allowed else None,
    }


def ps(kernel: "Kernel") -> str:
    """A ``ps``-like table of all known tasks."""
    lines = [
        f"{'PID':>5} {'COMM':<14} {'POLICY':<7} {'STATE':<9} "
        f"{'CPU':>3} {'HW':>3} {'RUNTIME':>10}"
    ]
    for pid in sorted(kernel.tasks):
        t = kernel.tasks[pid]
        lines.append(
            f"{t.pid:>5} {t.name:<14} {t.policy.name:<7} {t.state.value:<9} "
            f"{t.cpu if t.cpu is not None else '-':>3} {t.hw_priority:>3} "
            f"{t.sum_exec_runtime:>9.4f}s"
        )
    return "\n".join(lines)


def schedstat(kernel: "Kernel") -> Dict[str, object]:
    """Aggregate scheduler statistics (``/proc/schedstat``-like)."""
    runnable = sum(
        1
        for t in kernel.tasks.values()
        if t.state in (TaskState.READY, TaskState.RUNNING)
    )
    return {
        "now": kernel.now,
        "nr_switches": kernel.context_switches,
        "nr_migrations": kernel.migrations,
        "nr_tasks": len(kernel.tasks),
        "nr_runnable": runnable,
        "events_processed": kernel.sim.events_processed,
        "wakeups": kernel.latency_stats.overall.count,
        "mean_wakeup_latency": kernel.latency_stats.overall.mean,
        "max_wakeup_latency": kernel.latency_stats.overall.max,
    }


def consistency_check(kernel: "Kernel") -> List[str]:
    """Cross-check kernel invariants; returns a list of violations
    (empty = healthy).  Used by tests as a deep sanity probe."""
    problems: List[str] = []
    for cpu in kernel.machine.cpu_ids:
        rq = kernel.rqs[cpu]
        cur = rq.current
        if cur is not None and not cur.is_idle_task:
            if cur.state != TaskState.RUNNING:
                problems.append(f"cpu{cpu}: current {cur.name} not RUNNING")
            if cur.cpu != cpu:
                problems.append(f"cpu{cpu}: current {cur.name} thinks cpu={cur.cpu}")
        queued = sum(cls.nr_queued(rq) for cls in kernel.classes)
        if queued != rq.nr_queued:
            problems.append(
                f"cpu{cpu}: nr_queued {rq.nr_queued} != class sum {queued}"
            )
    for t in kernel.tasks.values():
        if t.state == TaskState.READY and t.cpu is None:
            problems.append(f"task {t.name}: READY without a cpu")
        if t.state == TaskState.RUNNING:
            if t.cpu is None or kernel.rqs[t.cpu].current is not t:
                problems.append(f"task {t.name}: RUNNING but not current")
    return problems
