"""The real-time scheduling class (SCHED_FIFO / SCHED_RR).

A set of round-robin run-queue lists, one per real-time priority — the
old O(1) algorithm preserved inside the new framework (paper §III).  We
use POSIX semantics directly: larger ``rt_priority`` wins.  FIFO tasks
run until they block or yield; RR tasks are moved to the back of their
priority list when their time slice expires.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional

from repro.kernel.policies import RT_POLICIES, SchedPolicy
from repro.kernel.sched_class import SchedClass

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.runqueue import RunQueue
    from repro.kernel.task import Task


class RTQueue:
    """Priority array: rt_priority -> FIFO list of runnable tasks."""

    __slots__ = ("lists", "count")

    def __init__(self) -> None:
        self.lists: Dict[int, Deque["Task"]] = {}
        self.count = 0

    def push(self, task: "Task", front: bool = False) -> None:
        """Queue a task on its priority list (tail, or head for a
        preempted task resuming its turn)."""
        lst = self.lists.get(task.rt_priority)
        if lst is None:
            lst = deque()
            self.lists[task.rt_priority] = lst
        if front:
            lst.appendleft(task)
        else:
            lst.append(task)
        self.count += 1

    def remove(self, task: "Task") -> None:
        """Unqueue a specific task (raises if absent)."""
        lst = self.lists.get(task.rt_priority)
        if lst is None or task not in lst:
            raise ValueError(f"{task!r} not queued in RT class")
        lst.remove(task)
        self.count -= 1
        if not lst:
            del self.lists[task.rt_priority]

    def pop_best(self) -> Optional["Task"]:
        """Dequeue the head of the highest non-empty priority list."""
        if not self.lists:
            return None
        best = max(self.lists)
        lst = self.lists[best]
        task = lst.popleft()
        self.count -= 1
        if not lst:
            del self.lists[best]
        return task

    def best_priority(self) -> Optional[int]:
        """Highest priority with waiters, or None when empty."""
        return max(self.lists) if self.lists else None


class RTClass(SchedClass):
    """Highest-priority scheduling class."""

    name = "rt"
    policies = RT_POLICIES

    def __init__(self, kernel) -> None:
        super().__init__(kernel)
        kernel.tunables.subscribe(self._refresh_tunable_cache)

    def _refresh_tunable_cache(self) -> None:
        """Cache the RR slice / tick knobs read on every pick and tick."""
        get = self.kernel.tunables.get
        self._rr_timeslice = get("kernel/sched_rr_timeslice")
        self._tick_period = get("kernel/tick_period")

    def create_queue(self) -> RTQueue:
        return RTQueue()

    def enqueue_task(self, rq: "RunQueue", task: "Task") -> None:
        # A preempted FIFO/RR task that did not exhaust its turn goes back
        # to the *head* of its priority list (it only lost the CPU to a
        # higher-priority task).
        head = getattr(task, "_rt_requeue_head", False)
        task._rt_requeue_head = False  # type: ignore[attr-defined]
        rq.queue_for(self).push(task, front=head)

    def dequeue_task(self, rq: "RunQueue", task: "Task") -> None:
        rq.queue_for(self).remove(task)

    def pick_next_task(self, rq: "RunQueue") -> Optional["Task"]:
        task = rq.queue_for(self).pop_best()
        if task is not None and task.policy == SchedPolicy.RR:
            if task.rr_slice_left <= 0.0:
                task.rr_slice_left = self._rr_timeslice
        return task

    def nr_queued(self, rq: "RunQueue") -> int:
        return rq.queue_for(self).count

    def task_tick(self, rq: "RunQueue", task: "Task") -> None:
        if task.policy != SchedPolicy.RR:
            return  # FIFO: no slice, runs until it blocks or yields
        task.rr_slice_left -= self._tick_period
        if task.rr_slice_left > 0.0:
            return
        task.rr_slice_left = self._rr_timeslice
        # Round-robin only matters if a peer of the same priority waits.
        q = rq.queue_for(self)
        if q.best_priority() is not None and q.best_priority() >= task.rt_priority:
            self.kernel.resched(rq.cpu)

    def check_preempt(self, rq: "RunQueue", woken: "Task") -> bool:
        cur = rq.current
        return cur is not None and woken.rt_priority > cur.rt_priority

    def needs_tick(self, rq: "RunQueue", task: "Task") -> bool:
        if task.policy != SchedPolicy.RR:
            return False
        best = rq.queue_for(self).best_priority()
        return best is not None and best >= task.rt_priority

    def put_prev_task(self, rq: "RunQueue", task: "Task") -> None:
        yielded = task._sched_yield
        task._sched_yield = False  # type: ignore[attr-defined]
        if yielded:
            return  # sched_yield: go to the tail of the priority list
        if task.policy == SchedPolicy.FIFO or task.rr_slice_left > 0.0:
            task._rt_requeue_head = True  # type: ignore[attr-defined]

    def pull_candidates(self, rq: "RunQueue") -> List["Task"]:
        # Lowest-priority queued RT tasks are cheapest to migrate.
        q = rq.queue_for(self)
        out: List["Task"] = []
        for prio in sorted(q.lists):
            out.extend(q.lists[prio])
        return out
