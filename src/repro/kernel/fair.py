"""The Completely Fair Scheduler class (SCHED_NORMAL / SCHED_BATCH).

Runnable tasks live in a red-black tree ordered by virtual runtime; the
leftmost task — the one that has received the least weighted CPU time —
runs next (paper §III).  Weights follow the kernel's nice-to-weight
table; a task's slice within the ``sched_latency`` period is
proportional to its weight, bounded below by ``sched_min_granularity``;
wakeup preemption applies a ``sched_wakeup_granularity`` margin.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.kernel.policies import FAIR_POLICIES
from repro.kernel.rbtree import RBNode, RBTree
from repro.kernel.sched_class import SchedClass

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.runqueue import RunQueue
    from repro.kernel.task import Task

#: Weight of a nice-0 task; vruntime advances at wall speed for it.
NICE_0_LOAD = 1024

#: The kernel's prio_to_weight[] table, indexed by ``nice + 20``.
PRIO_TO_WEIGHT = [
    88761, 71755, 56483, 46273, 36291,
    29154, 23254, 18705, 14949, 11916,
    9548, 7620, 6100, 4904, 3906,
    3121, 2501, 1991, 1586, 1277,
    1024, 820, 655, 526, 423,
    335, 272, 215, 172, 137,
    110, 87, 70, 56, 45,
    36, 29, 23, 18, 15,
]


def nice_to_weight(nice: int) -> int:
    """CFS load weight for a nice level."""
    return PRIO_TO_WEIGHT[nice + 20]


class CFSQueue:
    """Per-CPU CFS state: the timeline tree + aggregate load."""

    __slots__ = ("tree", "nodes", "min_vruntime", "total_weight")

    def __init__(self) -> None:
        self.tree = RBTree()
        self.nodes: Dict[int, RBNode] = {}  # pid -> node handle
        self.min_vruntime = 0.0
        self.total_weight = 0

    def insert(self, task: "Task") -> None:
        """Place a task on the timeline at its current vruntime."""
        node = self.tree.insert((task.vruntime, task.pid), task)
        self.nodes[task.pid] = node
        self.total_weight += nice_to_weight(task.nice)

    def remove(self, task: "Task") -> None:
        """Take a queued task off the timeline."""
        node = self.nodes.pop(task.pid)
        self.tree.delete(node)
        self.total_weight -= nice_to_weight(task.nice)

    def leftmost(self) -> Optional["Task"]:
        """The task with the smallest vruntime (next to run)."""
        node = self.tree.minimum()
        return node.value if node is not None else None


class FairClass(SchedClass):
    """CFS: the class for normal tasks."""

    name = "fair"
    policies = FAIR_POLICIES

    def __init__(self, kernel) -> None:
        super().__init__(kernel)
        kernel.tunables.subscribe(self._refresh_tunable_cache)

    def _refresh_tunable_cache(self) -> None:
        """Cache the CFS knobs read on every enqueue/tick/wakeup."""
        get = self.kernel.tunables.get
        self._latency = get("kernel/sched_latency")
        self._min_gran = get("kernel/sched_min_granularity")
        self._wakeup_gran = get("kernel/sched_wakeup_granularity")

    def create_queue(self) -> CFSQueue:
        return CFSQueue()

    # ------------------------------------------------------------------
    # Queue operations
    # ------------------------------------------------------------------
    def enqueue_task(self, rq: "RunQueue", task: "Task") -> None:
        q = rq.queue_for(self)
        if task.pid in q.nodes:
            raise ValueError(f"{task!r} double-enqueued in CFS")
        q.insert(task)
        self._update_min_vruntime(rq)

    def dequeue_task(self, rq: "RunQueue", task: "Task") -> None:
        rq.queue_for(self).remove(task)

    def pick_next_task(self, rq: "RunQueue") -> Optional["Task"]:
        q = rq.class_queues.get(self.name)
        if q is None:
            return None
        node = q.tree.pop_min()
        if node is None:
            return None
        task = node.value
        del q.nodes[task.pid]
        q.total_weight -= nice_to_weight(task.nice)
        return task

    def nr_queued(self, rq: "RunQueue") -> int:
        q = rq.class_queues.get(self.name)
        return 0 if q is None else len(q.tree)

    # ------------------------------------------------------------------
    # Accounting & preemption
    # ------------------------------------------------------------------
    def account(self, rq: "RunQueue", task: "Task", delta: float) -> None:
        task.vruntime += delta * NICE_0_LOAD / nice_to_weight(task.nice)
        oracles = self.kernel.oracles
        if oracles is not None:
            oracles.on_vruntime(task)
        self._update_min_vruntime(rq)

    def on_wakeup(self, task: "Task") -> None:
        # place_entity(): a long sleeper must not starve the queue by
        # returning with an ancient vruntime, nor get punished for having
        # slept — give it min_vruntime minus one latency period of credit.
        pass  # placement happens in task_placed() once the CPU is known

    def task_placed(self, rq: "RunQueue", task: "Task") -> None:
        """Normalize a woken/new task's vruntime against this queue.

        Reads ``min_vruntime``, which ticks advance via ``update_curr``
        even for a solo running task — this observation is why the
        fast-forward engine never elides ticks on a *busy* CPU (its
        inertness witness is strictly "the CPU is idle"): deferring the
        accrual would place a waker against a stale floor.
        """
        q = rq.queue_for(self)
        floor = q.min_vruntime - self._latency
        if task.vruntime < floor:
            task.vruntime = floor
        oracles = self.kernel.oracles
        if oracles is not None:
            oracles.on_vruntime_placed(task)

    def task_tick(self, rq: "RunQueue", task: "Task") -> None:
        if self.nr_queued(rq) == 0:
            return
        now = self.kernel.sim.now
        ran = now - rq.curr_switched_in_at
        if ran >= self._ideal_slice(rq, task):
            self.kernel.resched(rq.cpu)
            return
        # Even within the slice, a sufficiently starved leftmost task
        # preempts once the minimum granularity has elapsed.
        q = rq.queue_for(self)
        left = q.leftmost()
        min_gran = self._min_gran
        if left is not None and ran >= min_gran and left.vruntime < task.vruntime:
            self.kernel.resched(rq.cpu)

    def check_preempt(self, rq: "RunQueue", woken: "Task") -> bool:
        cur = rq.current
        if cur is None:
            return True
        vgran = self._wakeup_gran * NICE_0_LOAD / nice_to_weight(woken.nice)
        return woken.vruntime + vgran < cur.vruntime

    def put_prev_task(self, rq: "RunQueue", task: "Task") -> None:
        # The task returns to the tree via the core's enqueue path.
        pass

    def pull_candidates(self, rq: "RunQueue") -> List["Task"]:
        # Rightmost (least urgent) tasks are the cheapest to migrate.
        q = rq.queue_for(self)
        return [t for _, t in q.tree.items()][::-1]

    # ------------------------------------------------------------------
    def _ideal_slice(self, rq: "RunQueue", task: "Task") -> float:
        latency = self._latency
        min_gran = self._min_gran
        q = rq.queue_for(self)
        w = nice_to_weight(task.nice)
        total = q.total_weight + w
        if total <= 0:
            return latency
        return max(min_gran, latency * w / total)

    def _update_min_vruntime(self, rq: "RunQueue") -> None:
        q = rq.queue_for(self)
        candidates = []
        left = q.leftmost()
        if left is not None:
            candidates.append(left.vruntime)
        cur = rq.current
        if cur is not None and cur.policy in self.policies:
            candidates.append(cur.vruntime)
        if candidates:
            q.min_vruntime = max(q.min_vruntime, min(candidates))
        oracles = self.kernel.oracles
        if oracles is not None:
            oracles.on_min_vruntime(rq.cpu, q.min_vruntime)
