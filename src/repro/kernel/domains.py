"""Scheduling domains derived from the machine topology.

Linux organizes CPUs into nested domains (SMT siblings, cores of a
package, the whole system); load balancing walks them from the smallest
to the largest so work migrates the shortest distance necessary.  We
build the same structure from :class:`repro.power5.machine.Machine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.power5.machine import Machine

#: Domain levels in balancing order (innermost first).
LEVELS: Tuple[str, ...] = ("context", "core", "chip")

#: Shared hierarchies keyed by topology (see :func:`hierarchy_for`).
_HIERARCHY_CACHE: Dict["object", "DomainHierarchy"] = {}


def hierarchy_for(machine: Machine) -> "DomainHierarchy":
    """A shared :class:`DomainHierarchy` for ``machine``'s topology.

    CPU ids are machine-local (every machine of a given topology numbers
    them 0..n identically) and the hierarchy is immutable after
    construction, so machines with equal topology can share one
    instance — a cluster constructing hundreds of identical nodes pays
    the domain build once.
    """
    key = machine.topology
    h = _HIERARCHY_CACHE.get(key)
    if h is None:
        h = DomainHierarchy(machine)
        _HIERARCHY_CACHE[key] = h
    return h


@dataclass(frozen=True)
class Domain:
    """A group of CPUs at one topology level."""

    level: str
    cpus: Tuple[int, ...]

    def __contains__(self, cpu: int) -> bool:
        return cpu in self.cpus


class DomainHierarchy:
    """Per-CPU chain of enclosing domains, innermost first."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        raw = machine.domains()
        self._by_cpu: Dict[int, List[Domain]] = {cpu: [] for cpu in machine.cpu_ids}
        self.domains: List[Domain] = []
        for level in LEVELS:
            for group in raw.get(level, []):
                dom = Domain(level, tuple(sorted(group)))
                self.domains.append(dom)
                for cpu in dom.cpus:
                    self._by_cpu[cpu].append(dom)

    def for_cpu(self, cpu: int) -> Sequence[Domain]:
        """Enclosing domains of ``cpu``, innermost (SMT siblings) first."""
        return self._by_cpu[cpu]

    def peers(self, cpu: int, level: str) -> Tuple[int, ...]:
        """CPUs sharing the given domain level with ``cpu`` (inclusive)."""
        for dom in self._by_cpu[cpu]:
            if dom.level == level:
                return dom.cpus
        return (cpu,)

    def distance(self, a: int, b: int) -> int:
        """Topological distance: index of the smallest shared level
        (0 = same core, 1 = same chip, 2 = same system, ...)."""
        if a == b:
            return -1
        for i, dom in enumerate(self._by_cpu[a]):
            if b in dom.cpus:
                return i
        return len(LEVELS)
