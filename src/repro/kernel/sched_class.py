"""The Scheduling Class interface (paper §III).

The Scheduler Core treats classes as objects and calls their methods for
every low-level operation: enqueue/dequeue, picking the next task,
accounting a tick, wakeup-preemption decisions.  Classes provide their
own per-CPU queue data structure (priority arrays for RT, a red-black
tree for CFS, round-robin lists for HPC), which is exactly the property
the paper exploits to add HPCSched without touching the other classes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, FrozenSet, List, Optional

from repro.kernel.policies import SchedPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core_sched import Kernel
    from repro.kernel.runqueue import RunQueue
    from repro.kernel.task import Task


class SchedClass(ABC):
    """A scheduling class: policy container + queueing discipline."""

    #: Human-readable name used in traces and figures.
    name: str = "abstract"
    #: Policies this class serves.
    policies: FrozenSet[SchedPolicy] = frozenset()

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel

    # -- queue management -------------------------------------------
    @abstractmethod
    def create_queue(self) -> Any:
        """Build this class's per-CPU queue object."""

    @abstractmethod
    def enqueue_task(self, rq: "RunQueue", task: "Task") -> None:
        """Add a runnable task to the CPU's queue."""

    @abstractmethod
    def dequeue_task(self, rq: "RunQueue", task: "Task") -> None:
        """Remove a task from the CPU's queue."""

    @abstractmethod
    def pick_next_task(self, rq: "RunQueue") -> Optional["Task"]:
        """Select (and remove) the best task, or None if empty."""

    @abstractmethod
    def nr_queued(self, rq: "RunQueue") -> int:
        """Number of tasks waiting in this class's queue on ``rq``."""

    # -- scheduling behaviour ----------------------------------------
    def account(self, rq: "RunQueue", task: "Task", delta: float) -> None:
        """Charge ``delta`` seconds of CPU occupancy to the running task
        (CFS turns this into virtual runtime)."""

    def task_tick(self, rq: "RunQueue", task: "Task") -> None:
        """Periodic-tick accounting for the running ``task``."""

    def check_preempt(self, rq: "RunQueue", woken: "Task") -> bool:
        """Should ``woken`` preempt ``rq.current`` (same-class decision)?"""
        return False

    def needs_tick(self, rq: "RunQueue", task: "Task") -> bool:
        """Whether the running ``task`` requires periodic ticks (NOHZ
        hint).  Default: tick only when someone is waiting."""
        return self.nr_queued(rq) > 0

    def yield_task(self, rq: "RunQueue", task: "Task") -> None:
        """``sched_yield`` semantics; default round-trips the queue."""
        self.dequeue_task(rq, task)
        self.enqueue_task(rq, task)

    # -- migration support --------------------------------------------
    def pull_candidates(self, rq: "RunQueue") -> List["Task"]:
        """Queued tasks eligible for migration off this CPU, in order of
        preference (used by load balancing).  Default: none."""
        return []

    # -- lifecycle hooks ----------------------------------------------
    def task_new(self, rq: "RunQueue", task: "Task") -> None:
        """Called when a task enters this class (fork or setscheduler)."""

    def task_exit(self, rq: "RunQueue", task: "Task") -> None:
        """Called when a task leaves this class."""

    def on_block(self, rq: "RunQueue", task: "Task", reason: str, is_wait: bool) -> None:
        """The running task just blocked (before the switch)."""

    def on_wakeup(self, task: "Task") -> None:
        """``task`` (belonging to this class) was just woken."""

    def task_placed(self, rq: "RunQueue", task: "Task") -> None:
        """Called right before enqueueing a woken/new/migrated task on
        ``rq`` (CFS renormalizes vruntime here)."""

    def put_prev_task(self, rq: "RunQueue", task: "Task") -> None:
        """Accounting hook when the running task is switched out while
        still runnable (preemption)."""

    def __repr__(self) -> str:  # pragma: no cover
        return f"<SchedClass {self.name}>"
