"""Workload balancing across CPUs and domains.

Two triggers, as in the kernel (paper §IV-A): an **idle pull** when a
CPU is about to run its idle task, and a **periodic** check per CPU.
Balancing walks the domain hierarchy innermost-first and equalizes the
number of runnable tasks across the groups of each level, pulling from
the busiest eligible CPU.  Classes expose migration candidates through
:meth:`SchedClass.pull_candidates`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.kernel.domains import hierarchy_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core_sched import Kernel
    from repro.kernel.task import Task


class LoadBalancer:
    """Idle-pull + periodic task-count balancer."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self.hierarchy = hierarchy_for(kernel.machine)

    # ------------------------------------------------------------------
    # CPU selection for new / woken tasks
    # ------------------------------------------------------------------
    def select_cpu(self, task: "Task", prefer: Optional[int] = None) -> int:
        """Pick the CPU with the fewest runnable tasks among the allowed
        ones, preferring topological proximity to ``prefer`` on ties."""
        kernel = self.kernel
        allowed = [c for c in kernel.machine.cpu_ids if task.allows_cpu(c)]
        if not allowed:
            raise ValueError(f"{task!r} has an empty CPU mask")
        if prefer is not None and prefer in allowed:
            if kernel.rqs[prefer].nr_running == 0:
                return prefer

        def key(cpu: int):
            load = kernel.rqs[cpu].nr_running
            dist = (
                self.hierarchy.distance(prefer, cpu) if prefer is not None else 0
            )
            return (load, dist, cpu)

        return min(allowed, key=key)

    # ------------------------------------------------------------------
    # Pulling
    # ------------------------------------------------------------------
    def idle_pull(self, cpu: int) -> Optional["Task"]:
        """A CPU is going idle: steal one queued task from the busiest
        peer, nearest domain first.  Returns the migrated task (already
        enqueued on ``cpu``) or None."""
        return self._pull(cpu, min_imbalance=1)

    def periodic(self, cpu: int) -> Optional["Task"]:
        """Periodic balance: pull only when the imbalance is real (the
        busiest peer has at least 2 more runnable tasks)."""
        return self._pull(cpu, min_imbalance=2)

    def _pull(self, cpu: int, min_imbalance: int) -> Optional["Task"]:
        kernel = self.kernel
        my_load = kernel.rqs[cpu].nr_running
        for dom in self.hierarchy.for_cpu(cpu):
            busiest = None
            busiest_load = my_load
            for peer in dom.cpus:
                if peer == cpu:
                    continue
                load = kernel.rqs[peer].nr_running
                if load > busiest_load:
                    busiest = peer
                    busiest_load = load
            if busiest is None or busiest_load - my_load < min_imbalance:
                continue
            if busiest_load < 2:
                # Never strip a CPU of its only runnable task: it is
                # about to run there (a pending reschedule will pick it).
                continue
            task = self._steal(busiest, cpu)
            if task is not None:
                return task
        return None

    def _steal(self, src: int, dst: int) -> Optional["Task"]:
        kernel = self.kernel
        src_rq = kernel.rqs[src]
        for sched_class in kernel.classes:
            for task in sched_class.pull_candidates(src_rq):
                if task.allows_cpu(dst):
                    kernel.migrate(task, dst)
                    return task
        return None
