"""Sysfs-like runtime tunable registry.

The paper exposes HPCSched's knobs (HIGH_UTIL, LOW_UTIL, MIN_PRIO,
MAX_PRIO, the Adaptive G/L weights) "through specific entries in the
sysfs filesystem" (§IV-B).  :class:`Tunables` plays that role for the
whole simulated kernel: a flat, typed, path-addressed key/value store
with range validation, so experiments tune the scheduler the same way a
user would on the real system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional


class TunableError(KeyError):
    """Unknown tunable or invalid value."""


@dataclass
class _Entry:
    value: Any
    kind: type
    validate: Optional[Callable[[Any], bool]]
    doc: str


class Tunables:
    """Typed key/value registry addressed by sysfs-like paths.

    Hot-path consumers (the scheduler core, CFS, the HPC detector) do
    not call :meth:`get` per use — they cache values as plain attributes
    and register a refresh hook via :meth:`subscribe`, which fires after
    every successful :meth:`set`/:meth:`register`.  That keeps writes as
    flexible as sysfs while reads cost one attribute load.
    """

    #: Default entries shared copy-on-write across instances: almost no
    #: kernel ever *writes* a tunable, so cluster-scale construction
    #: (hundreds of kernels) reuses one frozen default table and only a
    #: first write pays for a private copy.
    _proto_entries: Optional[Dict[str, _Entry]] = None

    def __init__(self) -> None:
        self._subscribers: List[Callable[[], None]] = []
        if type(self) is Tunables:
            if Tunables._proto_entries is None:
                self._entries: Dict[str, _Entry] = {}
                self._owns_entries = True
                self._register_defaults()
                Tunables._proto_entries = {
                    path: _Entry(e.value, e.kind, e.validate, e.doc)
                    for path, e in self._entries.items()
                }
            else:
                self._entries = Tunables._proto_entries
                self._owns_entries = False
        else:
            # Subclasses may override _register_defaults; never share.
            self._entries = {}
            self._owns_entries = True
            self._register_defaults()

    def _own_entries(self) -> None:
        """Detach from the shared default table before any write."""
        if not self._owns_entries:
            self._entries = {
                path: _Entry(e.value, e.kind, e.validate, e.doc)
                for path, e in self._entries.items()
            }
            self._owns_entries = True

    def subscribe(self, callback: Callable[[], None]) -> None:
        """Register a zero-argument hook invoked after every successful
        write, so consumers can refresh cached tunable values.  The hook
        is also invoked once immediately (subscribe == sync now).

        Hooks run *synchronously inside* :meth:`set`, before the writing
        event returns — the fast-forward engine depends on this: a
        period change re-times parked timer chains at the exact change
        instant (``ChainFamily.retime``), so elided fires before the
        write use the old interval and the first fire after it the new
        one, exactly like an armed chain reading the tunable at fire
        time."""
        self._subscribers.append(callback)
        callback()

    def _notify(self) -> None:
        for callback in self._subscribers:
            callback()

    def register(
        self,
        path: str,
        default: Any,
        kind: Optional[type] = None,
        validate: Optional[Callable[[Any], bool]] = None,
        doc: str = "",
    ) -> None:
        """Declare a tunable with its default value."""
        self._own_entries()
        self._entries[path] = _Entry(default, kind or type(default), validate, doc)
        if self._subscribers:
            self._notify()

    def get(self, path: str) -> Any:
        """Current value of the tunable at ``path``."""
        try:
            return self._entries[path].value
        except KeyError:
            raise TunableError(f"unknown tunable {path!r}") from None

    def set(self, path: str, value: Any) -> None:
        """Write a tunable, enforcing its type and range validator."""
        try:
            entry = self._entries[path]
        except KeyError:
            raise TunableError(f"unknown tunable {path!r}") from None
        if entry.kind is float and isinstance(value, int):
            value = float(value)
        if not isinstance(value, entry.kind):
            raise TunableError(
                f"tunable {path!r} expects {entry.kind.__name__}, "
                f"got {type(value).__name__}"
            )
        if entry.validate is not None and not entry.validate(value):
            raise TunableError(f"value {value!r} rejected for tunable {path!r}")
        if not self._owns_entries:
            self._own_entries()
            entry = self._entries[path]
        entry.value = value
        self._notify()

    def paths(self):
        """All registered tunable paths, sorted."""
        return sorted(self._entries)

    def describe(self, path: str) -> str:
        """Human-readable description of a tunable."""
        return self._entries[path].doc

    # ------------------------------------------------------------------
    def _register_defaults(self) -> None:
        pos = lambda v: v > 0  # noqa: E731
        nonneg = lambda v: v >= 0  # noqa: E731
        frac = lambda v: 0.0 <= v <= 1.0  # noqa: E731

        # Core / CFS knobs (Linux 2.6.24-era defaults).
        self.register(
            "kernel/sched_latency", 0.020, float, pos,
            "CFS scheduling period: max time a runnable task waits (20 ms).",
        )
        self.register(
            "kernel/sched_min_granularity", 0.004, float, pos,
            "CFS minimum preemption granularity.",
        )
        self.register(
            "kernel/sched_wakeup_granularity", 0.001, float, nonneg,
            "CFS wakeup-preemption vruntime margin.",
        )
        self.register(
            "kernel/sched_rr_timeslice", 0.100, float, pos,
            "Round-robin time slice for SCHED_RR (100 ms).",
        )
        self.register(
            "kernel/context_switch_cost", 2e-6, float, nonneg,
            "Direct cost charged per context switch.",
        )
        self.register(
            "kernel/tick_period", 0.001, float, pos,
            "Scheduler tick period (HZ=1000).",
        )
        self.register(
            "kernel/full_ticks", False, bool, None,
            "Disable the NOHZ optimization and tick unconditionally.",
        )
        self.register(
            "kernel/loadbalance_interval", 0.064, float, pos,
            "Periodic load-balance interval per CPU.",
        )

        # HPCSched knobs (paper §IV-B defaults).
        self.register(
            "hpcsched/high_util", 85.0, float, frac_pct := (lambda v: 0 <= v <= 100),
            "Utilization (%) above which a task is 'high utilization'.",
        )
        self.register(
            "hpcsched/low_util", 65.0, float, frac_pct,
            "Utilization (%) below which a task is 'low utilization'.",
        )
        self.register(
            "hpcsched/min_prio", 4, int, lambda v: 0 <= v <= 7,
            "Lowest hardware priority HPCSched assigns (paper: 4).",
        )
        self.register(
            "hpcsched/max_prio", 6, int, lambda v: 0 <= v <= 7,
            "Highest hardware priority HPCSched assigns (paper: 6).",
        )
        self.register(
            "hpcsched/adaptive_g", 0.10, float, frac,
            "Adaptive heuristic weight of the global utilization history.",
        )
        self.register(
            "hpcsched/adaptive_l", 0.90, float, frac,
            "Adaptive heuristic weight of the last iteration.",
        )
        self.register(
            "hpcsched/rr_timeslice", 0.100, float, pos,
            "Round-robin slice of the HPC class RR policy.",
        )
        self.register(
            "hpcsched/policy_mode", "rr", str, lambda v: v in ("rr", "fifo"),
            "HPC class queueing discipline (paper evaluates 'rr').",
        )
        self.register(
            "hpcsched/prio_step_mode", "jump", str, lambda v: v in ("jump", "step"),
            "Apply target priorities at once ('jump') or one level per "
            "iteration ('step').",
        )
        self.register(
            "hpcsched/balance_spread", 10.0, float, frac_pct,
            "Max utilization spread (percentage points) at which the "
            "application counts as balanced.",
        )
        self.register(
            "hpcsched/rebalance_delta", 12.0, float, frac_pct,
            "Per-task utilization change that re-triggers balancing once "
            "the detector declared the application stable.",
        )
        self.register(
            "hpcsched/min_iter_time", 1e-4, float, pos,
            "Iterations shorter than this are ignored by the detector "
            "(filters spurious wakeups).",
        )
