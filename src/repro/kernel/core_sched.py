"""The Scheduler Core (paper §III) plus the task execution engine.

The core walks an ordered list of scheduling classes to find the next
task; the order (real-time > [HPC] > fair > idle) provides the implicit
prioritization the paper's Figure 1 shows.  On top of the classic
scheduler duties (wakeups, preemption, ticks, load balancing, context
switches) this module also *executes* the tasks: programs are Python
generators yielding requests, and compute phases progress at a fluid
rate determined by the POWER5 SMT state of the core they run on.

Rates change only at discrete events — a context switch on either SMT
context, a hardware-priority change, a sibling going idle — and each
such event banks the accrued work and revalidates the phase-completion
event, which makes the fluid model exact.  Revalidation is *lazy* (see
DESIGN §8): rate changes within one delivered event are batched into a
single per-core drain, an unchanged rate leaves the pending completion
event untouched, and a slowdown lets the now-early event ride in the
heap — an epoch counter marks it stale and delivery re-pushes one
corrected event at the authoritative ETA.  Only a speedup, whose true
completion would precede the pending event, pays a cancel + re-push.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Generator, Iterable, List, Optional

from repro.kernel.fair import FairClass
from repro.kernel.idlecls import IdleClass
from repro.kernel.latency import LatencyStats
from repro.kernel.loadbalance import LoadBalancer
from repro.kernel.policies import SchedPolicy, TaskState
from repro.kernel.rt import RTClass
from repro.kernel.runqueue import RunQueue
from repro.kernel.sched_class import SchedClass
from repro.kernel.syscalls import Compute, Exit, KernelRequest
from repro.kernel.task import Task
from repro.kernel.tunables import Tunables
from repro.power5.machine import Machine
from repro.power5.perfmodel import CPU_BOUND, PerfProfile
from repro.power5.priorities import (
    PrivilegeLevel,
    PriorityError,
    can_set_priority,
)
from repro.simcore.engine import Simulator
from repro.simcore.fastforward import ChainFamily, fastforward_enabled

# Event priorities: lower fires first at equal timestamps.  Phase
# completions and wakeups run before deferred reschedules so that a
# reschedule sees the final runqueue state of the instant.
EVPRIO_PHASE = 0
EVPRIO_WAKEUP = 1
EVPRIO_TICK = 2
EVPRIO_RESCHED = 5
EVPRIO_BALANCE = 6

#: Work remainders below this are treated as completed (float dust).
_WORK_EPSILON = 1e-12


class Kernel:
    """Simulated kernel: scheduler core + execution engine."""

    def __init__(
        self,
        machine: Optional[Machine] = None,
        sim: Optional[Simulator] = None,
        tunables: Optional[Tunables] = None,
        trace: Optional[Any] = None,
        fastforward: Optional[bool] = None,
    ) -> None:
        self.sim = sim or Simulator()
        self.machine = machine or Machine()
        self.tunables = tunables or Tunables()
        self.trace = trace
        self.latency_stats = LatencyStats()
        #: Fast-forward engine flag (see repro.simcore.fastforward):
        #: provably-inert balance-timer and full-tick fires are elided
        #: analytically instead of executed.  Default follows the
        #: REPRO_FASTFORWARD environment variable (on).
        self.fastforward = fastforward_enabled(fastforward)
        #: Parked-timer families (None until the matching chains start).
        self._ff_balance: Optional[ChainFamily] = None
        self._ff_tick: Optional[ChainFamily] = None

        self.rqs: Dict[int, RunQueue] = {
            cpu: RunQueue(cpu) for cpu in self.machine.cpu_ids
        }

        # Hot-path caches.  Hardware contexts never change after machine
        # construction, and the per-event label strings are interned here
        # once instead of being re-formatted per context switch.  Hot
        # tunables are cached as attributes and refreshed through the
        # registry's subscriber hook whenever any tunable is written.
        self._ctxs: Dict[int, Any] = {
            cpu: self.machine.context(cpu) for cpu in self.machine.cpu_ids
        }
        self._lbl_resched = {c: f"resched/{c}" for c in self.machine.cpu_ids}
        self._lbl_tick = {c: f"tick/{c}" for c in self.machine.cpu_ids}
        self._lbl_balance = {c: f"balance/{c}" for c in self.machine.cpu_ids}
        #: One reschedule closure per CPU, built once — resched() is the
        #: hottest event producer and per-call lambda allocation shows up
        #: in profiles.
        self._resched_fns = {
            c: (lambda c=c: self._resched_fire(c)) for c in self.machine.cpu_ids
        }
        #: Cancel a CPU's still-pending resched event when __schedule
        #: runs through a direct path (exit/block/migrate) — the event
        #: would fire as a need_resched=False no-op anyway.  Only the
        #: accelerated core does this: cancelling frees a bucket slot
        #: there, while the heap core's lazy-deletion queue gains nothing
        #: over the no-op delivery.
        self._coalesce_resched = getattr(self.sim, "core", "heap") == "fast"
        self.tunables.subscribe(self._refresh_tunable_cache)

        #: Simulated performance counters (decode shares, ST time, ...),
        #: built lazily on first access: counters start at zero and the
        #: model never reads the clock at construction, so a kernel that
        #: is never inspected (a cluster node) skips the build entirely.
        self._pmu: Optional[Any] = None
        #: Whether the PMU is advanced on rate changes.  Pure
        #: observability — it never feeds back into scheduling — so a
        #: multi-node driver that reads no counters (the cluster, by
        #: default) can turn it off and skip the per-switch attribution.
        self.pmu_enabled = True

        self.rt = RTClass(self)
        self.fair = FairClass(self)
        self.idle_class = IdleClass(self)
        self.classes: List[SchedClass] = [self.rt, self.fair, self.idle_class]

        self.balancer = LoadBalancer(self)
        #: Class -> rank in the priority order, rebuilt on
        #: register_class; _check_preempt is too hot for list.index.
        self._class_rank: Dict[int, int] = {
            id(c): i for i, c in enumerate(self.classes)
        }

        #: Runtime invariant oracles (repro.validate.invariants); None in
        #: production so every hook site costs one attribute test.
        self.oracles: Optional[Any] = None
        if os.environ.get("REPRO_VALIDATE"):
            from repro.validate.invariants import maybe_install

            self.oracles = maybe_install(self)

        self.tasks: Dict[int, Task] = {}
        self._next_pid = 1
        #: Live (started, not exited) non-daemon tasks; the run loop
        #: stops when this reaches zero.
        self.live_tasks = 0
        #: Optional observer of live-task count changes, called with the
        #: delta (+1 start, -1 exit).  A multi-kernel driver (the cluster)
        #: uses it to keep an O(1) aggregate stop predicate instead of
        #: scanning every node's kernel after every event.
        self.on_live_change: Optional[Any] = None
        #: Tasks queued on any runqueue (sum of ``rq.nr_queued``); lets
        #: the balance timer and the idle-pull path skip whole-machine
        #: scans when nothing is waiting anywhere.
        self._queued_total = 0
        #: Optional observer fired when ``_queued_total`` transitions
        #: 0 → 1.  The sharded cluster runner parks this kernel's
        #: provably-inert balance timers off the event heap and uses
        #: this edge to reinstate them the instant they could matter.
        self.on_queued_nonempty: Optional[Any] = None
        #: Started-and-not-exited tasks whose CPU mask permits more than
        #: one CPU.  While zero, no load-balance pull can ever move a
        #: task (``_steal`` requires ``task.allows_cpu(dst)`` for a
        #: second CPU), so periodic balance rounds are provably inert.
        self._migratable = 0
        #: Optional observer of the ``_migratable`` 0 → 1 edge — the
        #: second half of the sharded runner's parking soundness
        #: argument (see ``on_queued_nonempty``).
        self.on_migratable: Optional[Any] = None
        self.context_switches = 0
        self.migrations = 0
        self._balance_started = False
        #: Cores whose SMT state changed during the event being
        #: processed, keyed by core id → (core, skip_ctx); drained once
        #: per delivered event via ``Simulator.defer``.
        self._dirty_cores: Dict[int, Any] = {}

        self._boot()

    # ------------------------------------------------------------------
    # Boot / configuration
    # ------------------------------------------------------------------
    def _refresh_tunable_cache(self) -> None:
        """Re-read the hot tunables consumed on every context switch,
        tick and balance round (invoked via ``Tunables.subscribe``).

        Fast-forward chain families re-time here: subscribers run
        synchronously inside ``Tunables.set``, so a parked chain's
        anchor is walked forward with the *old* interval exactly up to
        the change instant before the new interval is adopted — the
        same old/new split the serial at-fire-time reads produce."""
        get = self.tunables.get
        self._cs_cost = get("kernel/context_switch_cost")
        self._tick_period = get("kernel/tick_period")
        self._full_ticks = get("kernel/full_ticks")
        self._lb_interval = get("kernel/loadbalance_interval")
        fam = self._ff_balance
        if fam is not None and fam.interval != self._lb_interval:
            fam.retime(self._lb_interval)
        fam = self._ff_tick
        if fam is not None:
            if not self._full_ticks:
                # Leaving the always-tick regime: dissolve the chains
                # and let stock NOHZ arming take over on demand.
                fam.dissolve()
                self._ff_tick = None
            elif fam.interval != self._tick_period:
                fam.retime(self._tick_period)

    def _boot(self) -> None:
        """Create and install the per-CPU idle tasks."""
        for cpu in self.machine.cpu_ids:
            idle = Task(pid=-(cpu + 1), name=f"swapper/{cpu}")
            idle.policy = SchedPolicy.IDLE
            idle.sched_class = self.idle_class  # type: ignore[attr-defined]
            self.idle_class.register_idle_task(cpu, idle)
            idle.state = TaskState.RUNNING
            idle.cpu = cpu
            self.rqs[cpu].current = idle
            self.machine.context(cpu).idle()

    @property
    def pmu(self):
        """Simulated performance counters (lazily constructed)."""
        if self._pmu is None:
            from repro.power5.pmu import MachinePMU

            self._pmu = MachinePMU(self.machine)
        return self._pmu

    def register_class(self, sched_class: SchedClass, before: str = "fair") -> None:
        """Insert a new scheduling class (e.g. HPCSched) before the class
        named ``before`` — the paper places HPCSched between the
        real-time and the CFS class (Fig. 1b)."""
        names = [c.name for c in self.classes]
        if sched_class.name in names:
            raise ValueError(f"class {sched_class.name!r} already registered")
        try:
            idx = names.index(before)
        except ValueError:
            raise ValueError(f"no scheduling class named {before!r}") from None
        self.classes.insert(idx, sched_class)
        self._class_rank = {id(c): i for i, c in enumerate(self.classes)}

    def class_for_policy(self, policy: SchedPolicy) -> SchedClass:
        """The scheduling class serving ``policy``."""
        for cls in self.classes:
            if policy in cls.policies:
                return cls
        raise ValueError(
            f"no scheduling class handles policy {policy!r} "
            "(is the HPC class registered?)"
        )

    def class_index(self, sched_class: SchedClass) -> int:
        """Rank of a class in the priority order (lower beats higher)."""
        return self._class_rank[id(sched_class)]

    # ------------------------------------------------------------------
    # Task lifecycle
    # ------------------------------------------------------------------
    def create_task(
        self,
        name: str,
        program: Optional[Generator] = None,
        policy: SchedPolicy = SchedPolicy.NORMAL,
        nice: int = 0,
        rt_priority: int = 0,
        perf_profile: PerfProfile = CPU_BOUND,
        cpus_allowed: Optional[Iterable[int]] = None,
        daemon: bool = False,
    ) -> Task:
        """Allocate a task descriptor (not yet runnable)."""
        task = Task(
            pid=self._next_pid,
            name=name,
            program=program,
            policy=policy,
            nice=nice,
            rt_priority=rt_priority,
            perf_profile=perf_profile,
            cpus_allowed=cpus_allowed,
        )
        self._next_pid += 1
        task.daemon = daemon  # type: ignore[attr-defined]
        task.wakeup_pending = False  # type: ignore[attr-defined]
        self.tasks[task.pid] = task
        return task

    def start_task(self, task: Task, cpu: Optional[int] = None) -> None:
        """Make a NEW task runnable (fork + wake_up_new_task)."""
        if task.state != TaskState.NEW:
            raise ValueError(f"{task!r} already started")
        task.sched_class = self.class_for_policy(task.policy)  # type: ignore[attr-defined]
        if cpu is None:
            cpu = self.balancer.select_cpu(task)
        elif not task.allows_cpu(cpu):
            raise ValueError(f"{task!r} not allowed on cpu{cpu}")
        task.state = TaskState.READY
        task.sched_class.task_new(self.rqs[cpu], task)
        if not task.daemon:
            self.live_tasks += 1
            if self.live_tasks == 1:
                fam = self._ff_balance
                if fam is not None and fam.dead_at is not None:
                    # Revival: kill exactly the parked chains whose next
                    # serial fire fell in the dead window (where the
                    # serial chain stopped re-arming).
                    fam.reap(self.sim.now)
            if self.on_live_change is not None:
                self.on_live_change(1)
        mask = task.cpus_allowed
        if mask is None or len(mask) > 1:
            self._migratable += 1
            if self._migratable == 1:
                fam = self._ff_balance
                if fam is not None and fam.parked and self._queued_total:
                    fam.unpark_ready()
                if self.on_migratable is not None:
                    self.on_migratable()
        if self.trace is not None:
            self._trace(task, "wake", cpu=cpu)
        self._enqueue(task, cpu, wakeup=False)
        self._check_preempt(cpu, task)
        self._ensure_periodic_balance()

    def spawn(self, name: str, program: Generator, **kwargs) -> Task:
        """create_task + start_task in one call."""
        cpu = kwargs.pop("cpu", None)
        task = self.create_task(name, program, **kwargs)
        self.start_task(task, cpu=cpu)
        return task

    def _exit_task(self, cpu: int, task: Task) -> None:
        rq = self.rqs[cpu]
        assert rq.current is task
        self.update_curr(rq)
        task.bank_progress(self.sim.now)
        task.cancel_phase_event()
        task.state = TaskState.EXITED
        task.sched_class.task_exit(rq, task)
        if self.trace is not None:
            self._trace(task, "exit", cpu=cpu)
        rq.current = None
        if not task.daemon:
            self.live_tasks -= 1
            if self.live_tasks == 0:
                fam = self._ff_balance
                if fam is not None and fam.parked:
                    # Parked chains cannot observe the death at a fire;
                    # record the window so a revival can reap exactly
                    # the chains whose serial twin would have died.
                    fam.mark_dead(self.sim.now)
            if self.on_live_change is not None:
                self.on_live_change(-1)
        mask = task.cpus_allowed
        if mask is None or len(mask) > 1:
            self._migratable -= 1
        if task.on_exit is not None:
            task.on_exit(task)
        self.__schedule(cpu)

    # ------------------------------------------------------------------
    # Wakeups and sleeps
    # ------------------------------------------------------------------
    def wake_up(self, task: Task) -> bool:
        """Transition a sleeping task to runnable; returns False if the
        task was not sleeping (spurious wakeup)."""
        if task.state != TaskState.SLEEPING:
            return False
        task.state = TaskState.READY
        cpu = self._select_wake_cpu(task)
        task.wakeup_pending = True  # type: ignore[attr-defined]
        # The class hook runs before the task is queued so the HPC
        # detector can adjust hardware priorities for the new iteration.
        task.sched_class.on_wakeup(task)
        if self.trace is not None:
            self._trace(task, "wake", cpu=cpu)
        self._enqueue(task, cpu, wakeup=True)
        self._check_preempt(cpu, task)
        return True

    def _select_wake_cpu(self, task: Task) -> int:
        """Wake placement: the previous CPU if it is free (cache-affine,
        and what keeps one MPI rank per CPU stable); otherwise the
        topologically nearest idle allowed CPU (select_idle_sibling);
        otherwise stay on the previous CPU and queue."""
        prev = task.cpu
        if prev is not None and task.allows_cpu(prev):
            rq = self.rqs[prev]
            cur = rq.current
            if rq.nr_queued == 0 and (cur is None or cur.is_idle_task):
                return prev
        elif prev is None or not task.allows_cpu(prev):
            return self.balancer.select_cpu(task, prefer=prev)
        candidates = [
            c
            for c in self.machine.cpu_ids
            if c != prev and task.allows_cpu(c) and self.rqs[c].nr_running == 0
        ]
        if candidates:
            hier = self.balancer.hierarchy
            return min(candidates, key=lambda c: (hier.distance(prev, c), c))
        return prev

    def _block_current(self, cpu: int, task: Task, req: KernelRequest) -> None:
        rq = self.rqs[cpu]
        assert rq.current is task
        self.update_curr(rq)
        task.bank_progress(self.sim.now)
        task.cancel_phase_event()
        task.state = TaskState.SLEEPING
        task.sleep_reason = req.sleep_reason
        task.sleeping_on_wait = req.is_wait
        task.sched_class.on_block(rq, task, req.sleep_reason, req.is_wait)
        if self.trace is not None:
            self._trace(task, "block", cpu=cpu, reason=req.sleep_reason, wait=req.is_wait)
        rq.current = None
        self.__schedule(cpu)

    # ------------------------------------------------------------------
    # Enqueue / dequeue / migration
    # ------------------------------------------------------------------
    def _enqueue(self, task: Task, cpu: int, wakeup: bool) -> None:
        rq = self.rqs[cpu]
        task.cpu = cpu
        task.sched_class.task_placed(rq, task)
        task.sched_class.enqueue_task(rq, task)
        rq.nr_queued += 1
        self._queued_total += 1
        if self._queued_total == 1:
            fam = self._ff_balance
            if fam is not None and fam.parked:
                fam.unpark_ready()
            if self.on_queued_nonempty is not None:
                self.on_queued_nonempty()
        task.last_enqueue_time = self.sim.now
        self._update_tick(cpu)

    def _dequeue(self, task: Task) -> None:
        assert task.cpu is not None
        rq = self.rqs[task.cpu]
        task.sched_class.dequeue_task(rq, task)
        rq.nr_queued -= 1
        self._queued_total -= 1

    def migrate(self, task: Task, dst: int) -> None:
        """Move a READY or RUNNING task to another CPU's runqueue.

        A queued task is simply dequeued and re-enqueued.  A running
        task is switched out first — occupancy charged, phase progress
        banked, completion event dropped — and its source CPU picks a
        replacement *before* the task lands on ``dst``, so the source's
        idle pull cannot immediately steal it back.
        """
        if not task.allows_cpu(dst):
            raise ValueError(f"{task!r} not allowed on cpu{dst}")
        if task.cpu == dst:
            return
        if task.state == TaskState.READY:
            self._dequeue(task)
        elif task.state == TaskState.RUNNING:
            src = task.cpu
            assert src is not None
            rq = self.rqs[src]
            assert rq.current is task
            self.update_curr(rq)
            task.bank_progress(self.sim.now)
            task.cancel_phase_event()
            task.state = TaskState.READY
            task.sched_class.put_prev_task(rq, task)
            if self.trace is not None:
                self._trace(task, "preempted", cpu=src)
            rq.current = None
            self._schedule(src)
        else:
            raise ValueError(
                f"can only migrate READY or RUNNING tasks, not {task!r}"
            )
        self.migrations += 1
        if self.trace is not None:
            self._trace(task, "migrate", cpu=dst)
        self._enqueue(task, dst, wakeup=False)
        self._check_preempt(dst, task)

    def set_affinity(self, task: Task, cpus: Optional[set]) -> None:
        """Replace the task's CPU mask, migrating it off a now-forbidden
        CPU (queued tasks immediately, running ones at reschedule)."""
        old = task.cpus_allowed
        task.cpus_allowed = set(cpus) if cpus is not None else None
        if task.state not in (TaskState.NEW, TaskState.EXITED):
            # Keep the migratable-task census exact across mask changes
            # (started tasks were counted by start_task).
            was = old is None or len(old) > 1
            now = task.cpus_allowed is None or len(task.cpus_allowed) > 1
            if now and not was:
                self._migratable += 1
                if self._migratable == 1:
                    fam = self._ff_balance
                    if fam is not None and fam.parked and self._queued_total:
                        fam.unpark_ready()
                    if self.on_migratable is not None:
                        self.on_migratable()
            elif was and not now:
                self._migratable -= 1
        if task.cpus_allowed is None:
            return
        if task.state == TaskState.READY and task.cpu not in task.cpus_allowed:
            self.migrate(task, self.balancer.select_cpu(task))
        elif task.state == TaskState.RUNNING and task.cpu not in task.cpus_allowed:
            self.resched(task.cpu)  # moved off at the next reschedule

    # ------------------------------------------------------------------
    # Policy changes
    # ------------------------------------------------------------------
    def sched_setscheduler(
        self, task: Task, policy: SchedPolicy, rt_priority: int = 0
    ) -> None:
        """Move a task to another policy (and scheduling class)."""
        new_class = self.class_for_policy(policy)
        old_class = getattr(task, "sched_class", None)
        rq = self.rqs[task.cpu] if task.cpu is not None else None
        was_queued = task.state == TaskState.READY
        if was_queued:
            self._dequeue(task)
        if old_class is not None and rq is not None and old_class is not new_class:
            old_class.task_exit(rq, task)
        task.policy = policy
        task.rt_priority = rt_priority
        task.sched_class = new_class  # type: ignore[attr-defined]
        if rq is not None and old_class is not new_class:
            new_class.task_new(rq, task)
        self._trace(task, "setscheduler", policy=policy.name)
        if was_queued:
            assert task.cpu is not None
            self._enqueue(task, task.cpu, wakeup=False)
            self._check_preempt(task.cpu, task)
        elif task.state == TaskState.RUNNING:
            assert task.cpu is not None
            self.resched(task.cpu)

    def yield_current(self, task: Task) -> None:
        """``sched_yield``: reschedule, sending the caller to the tail
        of its queue."""
        if task.state == TaskState.RUNNING and task.cpu is not None:
            task._sched_yield = True  # type: ignore[attr-defined]
            self.resched(task.cpu)

    # ------------------------------------------------------------------
    # Hardware priority mechanism entry point
    # ------------------------------------------------------------------
    def set_hw_priority(
        self,
        task: Task,
        priority: int,
        privilege: PrivilegeLevel = PrivilegeLevel.SUPERVISOR,
    ) -> None:
        """Program a task's POWER5 hardware thread priority.

        Applied to the context immediately if the task is running,
        otherwise restored at the next context switch — mirroring how a
        kernel would save/restore the priority in the task context.
        """
        if not can_set_priority(priority, privilege):
            raise PriorityError(
                f"privilege {privilege.name} cannot set priority {priority}"
            )
        if task.hw_priority == int(priority):
            return
        task.hw_priority = int(priority)
        self._trace(task, "hw_priority", priority=int(priority))
        if task.state == TaskState.RUNNING and task.cpu is not None:
            ctx = self._ctxs[task.cpu]
            ctx.set_priority(priority)
            self._rates_changed(ctx.core)

    # ------------------------------------------------------------------
    # The scheduler proper
    # ------------------------------------------------------------------
    def resched(self, cpu: int) -> None:
        """Flag ``cpu`` for rescheduling (deferred to event boundary)."""
        rq = self.rqs[cpu]
        rq.need_resched = True
        if rq.resched_event is None or rq.resched_event.cancelled:
            rq.resched_event = self.sim.at(
                self.sim.now,
                self._resched_fns[cpu],
                priority=EVPRIO_RESCHED,
                label=self._lbl_resched[cpu],
            )

    def _resched_fire(self, cpu: int) -> None:
        rq = self.rqs[cpu]
        rq.resched_event = None
        if rq.need_resched:
            self.__schedule(cpu)

    def _check_preempt(self, cpu: int, woken: Task) -> None:
        rq = self.rqs[cpu]
        cur = rq.current
        if cur is None or cur.is_idle_task:
            self.resched(cpu)
            return
        rank = self._class_rank
        wi = rank[id(woken.sched_class)]
        ci = rank[id(cur.sched_class)]
        if wi < ci:
            self.resched(cpu)
        elif wi == ci and woken.sched_class.check_preempt(rq, woken):
            self.resched(cpu)

    def __schedule(self, cpu: int) -> None:
        """Pick the best runnable task on ``cpu`` and switch to it."""
        rq = self.rqs[cpu]
        rq.need_resched = False
        if self._coalesce_resched:
            ev = rq.resched_event
            if ev is not None:
                rq.resched_event = None
                ev.cancel()
        prev = rq.current

        # A still-runnable prev (preemption path) goes back to its queue —
        # or to an allowed CPU if its affinity mask no longer covers this
        # one (sched_setaffinity while running).
        if prev is not None and prev.state == TaskState.RUNNING and not prev.is_idle_task:
            self.update_curr(rq)
            prev.bank_progress(self.sim.now)
            prev.cancel_phase_event()
            prev.state = TaskState.READY
            prev.sched_class.put_prev_task(rq, prev)
            if self.trace is not None:
                self._trace(prev, "preempted", cpu=cpu)
            if prev.allows_cpu(cpu):
                self._enqueue(prev, cpu, wakeup=False)
            else:
                dst = self.balancer.select_cpu(prev, prefer=cpu)
                self.migrations += 1
                self._enqueue(prev, dst, wakeup=False)
                self._check_preempt(dst, prev)

        next_task = self._pick_next(rq)
        if next_task.is_idle_task and rq.nr_queued == 0 and self._queued_total:
            pulled = self.balancer.idle_pull(cpu)
            if pulled is not None:
                next_task = self._pick_next(rq)

        same = next_task is prev
        rq.current = next_task
        if not same:
            self.context_switches += 1
        cost = 0.0 if same else self._cs_cost
        self._install(cpu, next_task, cost)

    # Name-mangled alias so subsystems inside the package can call it.
    _schedule = __schedule

    def _pick_next(self, rq: RunQueue) -> Task:
        if rq.nr_queued == 0:
            # ``nr_queued`` is the exact sum of the class queues (the
            # only mutators are _enqueue/_dequeue/_pick_next and the
            # balanced requeue), so every class is empty: fall through
            # to the never-empty idle class directly.
            task = self.idle_class.pick_next_task(rq)
            if task is not None:
                return task
        else:
            for cls in self.classes:
                task = cls.pick_next_task(rq)
                if task is not None:
                    if not task.is_idle_task:
                        rq.nr_queued -= 1
                        self._queued_total -= 1
                    return task
        raise RuntimeError("scheduler found no task (idle class broken)")

    def _install(self, cpu: int, task: Task, cost: float) -> None:
        """Load ``task`` on the CPU's hardware context and resume it."""
        rq = self.rqs[cpu]
        now = self.sim.now
        rq.curr_switched_in_at = now
        ctx = self._ctxs[cpu]

        if task.is_idle_task:
            task.state = TaskState.RUNNING
            task.cpu = cpu
            ctx.idle()
            self._rates_changed(ctx.core, skip_ctx=ctx)
            if self.trace is not None:
                self._trace(task, "run_idle", cpu=cpu)
            self._update_tick(cpu)
            return

        task.state = TaskState.RUNNING
        task.cpu = cpu
        task.exec_start = now
        if task.wakeup_pending and task.last_enqueue_time is not None:
            self.latency_stats.record(task, now - task.last_enqueue_time)
            task.wakeup_pending = False  # type: ignore[attr-defined]
        ctx.load(task, task.hw_priority, busy=True)
        # The freshly installed context is excluded from the rebase: its
        # task's phase is (re)started by _start_phase below, and its
        # progress was already banked when it left the CPU.
        self._rates_changed(ctx.core, skip_ctx=ctx)
        if self.trace is not None:
            self._trace(task, "run", cpu=cpu)
        if task.phase_remaining > _WORK_EPSILON:
            self._start_phase(cpu, task, delay=cost)
        else:
            self._advance_program(cpu, task)
        self._update_tick(cpu)

    # ------------------------------------------------------------------
    # Fluid-rate compute phases
    # ------------------------------------------------------------------
    def _task_rate(self, cpu: int, task: Task) -> float:
        ctx = self._ctxs[cpu]
        return ctx.core.context_speed(ctx.thread_index, task.perf_profile)

    def _start_phase(self, cpu: int, task: Task, delay: float = 0.0) -> None:
        now = self.sim.now
        ctx = self._ctxs[cpu]
        rate = ctx.core.context_speed(ctx.thread_index, task.perf_profile)
        task.phase_rate = rate
        task.phase_started_at = now + delay
        task.cancel_phase_event()
        if rate <= 0.0:
            return  # stalled; a future rate change restarts the phase
        eta = now + delay + task.phase_remaining / rate
        epoch = task.phase_epoch + 1
        task.phase_epoch = epoch
        task.phase_eta = eta
        task.phase_event = self.sim.at(
            eta,
            lambda: self._phase_complete(cpu, task, epoch),
            priority=EVPRIO_PHASE,
            label=task.phase_label,
        )

    def _phase_complete(self, cpu: int, task: Task, epoch: int) -> None:
        task.phase_event = None
        if task.state != TaskState.RUNNING or task.cpu != cpu:
            return  # stale event (defensive; cancels should prevent this)
        if epoch != task.phase_epoch:
            # The authoritative ETA moved later while this event rode in
            # the heap (a slowdown; see _rebase_phase).  Re-push the one
            # corrected completion at the true ETA.
            eta = task.phase_eta
            if eta is None:
                return  # phase stalled meanwhile; no completion owed
            if eta > self.sim.now:
                cur = task.phase_epoch
                task.phase_event = self.sim.at(
                    eta,
                    lambda: self._phase_complete(cpu, task, cur),
                    priority=EVPRIO_PHASE,
                    label=task.phase_label,
                )
                return
            # eta == now: the corrected ETA lands on this very instant —
            # fall through and complete.
        if self.oracles is not None:
            self.oracles.on_phase_complete(task, self.sim.now)
        task.phase_remaining = 0.0
        task.phase_rate = 0.0
        task.phase_started_at = None
        task.phase_eta = None
        self.update_curr(self.rqs[cpu])
        self._advance_program(cpu, task)

    def _rates_changed(self, core, skip_ctx=None) -> None:
        """SMT state of ``core`` changed: mark it dirty; the rebase runs
        once, after the current event's callback returns.

        Several rate-changing actions often land on the same core within
        one delivered event (an install plus the sibling going idle, a
        preempt cascade, a priority sweep).  Batching them into a single
        deferred drain pays the PMU attribution and the sibling walk
        once per core per event instead of once per action.

        ``skip_ctx`` names a context whose phase the caller manages
        itself (the one a task was just installed on): its progress was
        banked when it left the CPU and ``_start_phase`` below (re)arms
        it.  The *last* mark of an instant wins; that is equivalent to
        the eager per-call skip because a context an earlier action
        switched out is no longer RUNNING by drain time and the state
        filter in :meth:`_drain_rate_changes` drops it.
        """
        dirty = self._dirty_cores
        if not dirty:
            self.sim.defer(self._drain_rate_changes)
        dirty[core.core_id] = (core, skip_ctx)

    def _drain_rate_changes(self) -> None:
        """Rebase the phases of every dirty core's contexts (deferred
        from :meth:`_rates_changed`; runs once per delivered event).

        The dirty set is drained in batches: snapshot, clear, process —
        same insertion order as the previous one-at-a-time pop, but the
        dict is touched twice per drain instead of twice per core.  When
        both of a core's contexts carry a running mid-phase task, their
        rates come from one :meth:`SMTCore.context_speeds` pair call
        (one memo hit in the table-driven model) instead of two mirrored
        ``context_speed`` calls; rebasing never mutates SMT state, so
        computing both rates up front is exact.
        """
        dirty = self._dirty_cores
        now = self.sim.now
        advance = self.pmu.advance_core if self.pmu_enabled else None
        running = TaskState.RUNNING
        while dirty:
            batch = list(dirty.values())
            dirty.clear()
            for core, skip_ctx in batch:
                if advance is not None:
                    # Attribute the elapsed interval to the pre-change
                    # state.
                    advance(core, now)
                c0, c1 = core.contexts
                t0 = c0.task if c0 is not skip_ctx else None
                if t0 is not None and (
                    not c0.busy
                    or t0.state != running
                    or t0.phase_started_at is None
                ):
                    t0 = None
                t1 = c1.task if c1 is not skip_ctx else None
                if t1 is not None and (
                    not c1.busy
                    or t1.state != running
                    or t1.phase_started_at is None
                ):
                    t1 = None
                if t0 is not None:
                    if t1 is not None:
                        r0, r1 = core.context_speeds(
                            t0.perf_profile, t1.perf_profile
                        )
                        self._rebase_phase(c0.cpu_id, t0, r0)
                        self._rebase_phase(c1.cpu_id, t1, r1)
                    else:
                        self._rebase_phase(c0.cpu_id, t0)
                elif t1 is not None:
                    self._rebase_phase(c1.cpu_id, t1)

    def _rebase_phase(
        self, cpu: int, task: Task, rate: Optional[float] = None
    ) -> None:
        """Re-anchor a RUNNING task's in-flight phase to its context's
        current speed, reusing the pending completion event when it can
        still fire (lazy ETA revalidation, DESIGN §8).

        * unchanged rate: the pending completion is still exact — zero
          work (the common case: most SMT flips on a sibling leave this
          context's speed alone).  Not taken while the phase start is
          still pending (context-switch delay): the rebase must restamp
          the anchor to ``now`` exactly as the eager path did.
        * speedup: the true ETA moves *earlier* than the pending event,
          which therefore cannot be ridden — cancel and re-push.
        * slowdown: the true ETA moves later; the pending event rides,
          the epoch bump marks it stale, and its delivery re-pushes one
          corrected event at :attr:`Task.phase_eta`.
        * stall (rate 0): no completion is owed until a future change.
        """
        now = self.sim.now
        if rate is None:
            ctx = self._ctxs[cpu]
            rate = ctx.core.context_speed(ctx.thread_index, task.perf_profile)
        started = task.phase_started_at
        if rate == task.phase_rate and started is not None and started <= now:
            return
        task.bank_progress(now)
        if task.phase_remaining <= _WORK_EPSILON:
            task.phase_remaining = 0.0
        task.phase_rate = rate
        task.phase_started_at = now
        ev = task.phase_event
        if rate <= 0.0:
            task.cancel_phase_event()
            return  # stalled; a future rate change restarts the phase
        eta = now + task.phase_remaining / rate
        if ev is None or ev.cancelled:
            # Restarting out of a stall: no pending event to reuse.
            epoch = task.phase_epoch + 1
            task.phase_epoch = epoch
            task.phase_eta = eta
            task.phase_event = self.sim.at(
                eta,
                lambda: self._phase_complete(cpu, task, epoch),
                priority=EVPRIO_PHASE,
                label=task.phase_label,
            )
            return
        if eta == task.phase_eta:
            return  # authoritative ETA unchanged: free ride
        if eta < ev.time:
            # Speedup past the pending event: it would fire too late.
            task.cancel_phase_event()
            epoch = task.phase_epoch + 1
            task.phase_epoch = epoch
            task.phase_eta = eta
            task.phase_event = self.sim.at(
                eta,
                lambda: self._phase_complete(cpu, task, epoch),
                priority=EVPRIO_PHASE,
                label=task.phase_label,
            )
            return
        # Slowdown: the pending event fires first; mark it stale and let
        # delivery re-push at the authoritative ETA.
        task.phase_epoch += 1
        task.phase_eta = eta

    # ------------------------------------------------------------------
    # Program driver
    # ------------------------------------------------------------------
    def _advance_program(self, cpu: int, task: Task) -> None:
        """Fetch and dispatch requests until the task computes, blocks
        or exits."""
        rq = self.rqs[cpu]
        while True:
            if task.program is None:
                self._exit_task(cpu, task)
                return
            try:
                # The yield expression evaluates to the pending request's
                # result (e.g. a received payload); None for plain ops.
                result, task._syscall_result = task._syscall_result, None
                req = task.program.send(result)
            except StopIteration:
                self._exit_task(cpu, task)
                return
            if isinstance(req, Exit):
                self._exit_task(cpu, task)
                return
            if isinstance(req, Compute):
                if req.work <= 0.0:
                    continue
                task.phase_remaining = req.work
                self._start_phase(cpu, task)
                return
            if isinstance(req, KernelRequest):
                cont = req.execute(self, task)
                if not cont:
                    self._block_current(cpu, task, req)
                    return
                if rq.current is not task or task.state != TaskState.RUNNING:
                    return  # the request displaced us
                if rq.need_resched:
                    return  # preemption point (yield, priority change...)
                continue
            raise TypeError(f"task program yielded unsupported {req!r}")

    # ------------------------------------------------------------------
    # Accounting and ticks
    # ------------------------------------------------------------------
    def update_curr(self, rq: RunQueue) -> None:
        """Charge the running task's elapsed occupancy (and let its
        class account it, e.g. as CFS vruntime)."""
        cur = rq.current
        if cur is None or cur.is_idle_task or cur.exec_start is None:
            return
        delta = self.sim.now - cur.exec_start
        if delta <= 0.0:
            return
        cur.sum_exec_runtime += delta
        cur.exec_start = self.sim.now
        cur.sched_class.account(rq, cur, delta)
        if self.oracles is not None:
            self.oracles.on_account(rq.cpu, cur, delta, self.sim.now)

    def _update_tick(self, cpu: int) -> None:
        rq = self.rqs[cpu]
        cur = rq.current
        if self._full_ticks and self.fastforward:
            # Always-tick regime under fast-forward: the tick is an
            # immortal chain whose fire is a provable no-op while the
            # CPU runs its idle task (the body touches only ``current``,
            # and linear occupancy accrual is banked by update_curr at
            # every decision point anyway).  Parked while idle; this
            # call site is the invalidation edge — every install lands
            # here (see _install), so a CPU going non-idle reinstates
            # its chain inside the installing event.
            self._ff_tick_update(cpu, rq, cur)
            return
        # Every class's needs_tick requires its own queue to be
        # non-empty (RT: a queued best priority; HPC/fair: queued
        # tasks), so an empty runqueue can never need a tick — skip
        # the class dispatch on the common nothing-waiting path.
        needed = self._full_ticks or (
            rq.nr_queued > 0
            and cur is not None
            and not cur.is_idle_task
            and cur.sched_class.needs_tick(rq, cur)
        )
        if needed and (rq.tick_event is None or rq.tick_event.cancelled):
            rq.tick_event = self.sim.after(
                self._tick_period,
                lambda: self._tick(cpu),
                priority=EVPRIO_TICK,
                label=self._lbl_tick[cpu],
            )

    def _ff_tick_update(self, cpu: int, rq: RunQueue, cur: Optional[Task]) -> None:
        """Create / reinstate the fast-forward tick chain for ``cpu``
        (full_ticks mode only; see :meth:`_update_tick`)."""
        fam = self._ff_tick
        if fam is None:
            fam = ChainFamily(self.sim, self._tick_period, EVPRIO_TICK)
            self._ff_tick = fam
        chain = fam.chains.get(cpu)
        idle = cur is None or cur.is_idle_task
        if chain is None:
            if rq.tick_event is not None and not rq.tick_event.cancelled:
                # A stock NOHZ tick armed before full_ticks was switched
                # on mid-run: the chain replaces it.
                rq.tick_event.cancel()
                rq.tick_event = None
            chain = fam.add(
                cpu,
                self._lbl_tick[cpu],
                self.sim.now + fam.interval,
                self._tick_inert(rq),
            )
            chain.fire = self._tick_chain_fire(cpu, chain)
            if idle:
                fam.park(chain)
            else:
                fam.arm(chain)
        elif chain.event is None and not idle:
            fam.unpark_one(chain)

    @staticmethod
    def _tick_inert(rq: RunQueue):
        def inert() -> bool:
            cur = rq.current
            return cur is None or cur.is_idle_task

        return inert

    def _tick_chain_fire(self, cpu: int, chain) -> Any:
        """The fast-forward twin of :meth:`_tick`: identical body,
        park-or-arm re-arm (bit-exact ``now + period`` chain points)."""
        sim = self.sim
        fam = chain.family
        rq = self.rqs[cpu]

        def fire() -> None:
            chain.event = None
            cur = rq.current
            if cur is not None and not cur.is_idle_task:
                self.update_curr(rq)
                cur.sched_class.task_tick(rq, cur)
            t = sim.now + fam.interval
            chain.next_time = t
            cur = rq.current
            if cur is None or cur.is_idle_task:
                fam.park(chain)
            else:
                chain.event = sim.at(
                    t, fire, priority=EVPRIO_TICK, label=chain.label
                )

        return fire

    def _tick(self, cpu: int) -> None:
        rq = self.rqs[cpu]
        rq.tick_event = None
        cur = rq.current
        if cur is not None and not cur.is_idle_task:
            self.update_curr(rq)
            cur.sched_class.task_tick(rq, cur)
        self._update_tick(cpu)

    # ------------------------------------------------------------------
    # Periodic load balancing
    # ------------------------------------------------------------------
    def _ensure_periodic_balance(self) -> None:
        if self._balance_started:
            return
        self._balance_started = True
        interval = self._lb_interval
        if self.fastforward:
            # Fast-forward chains: arm times, chain arithmetic
            # (``now + interval`` per re-arm) and the acting path are
            # bit-identical to the stock chain's; fires are elided only
            # while the inertness witness holds (nothing queued anywhere
            # or no migratable task — _steal can then never move work,
            # so the fire is provably a no-op re-arm).
            fam = ChainFamily(self.sim, interval, EVPRIO_BALANCE)
            self._ff_balance = fam
            now = self.sim.now
            inert = self._balance_inert
            for i, cpu in enumerate(self.machine.cpu_ids):
                offset = interval * (i + 1) / (len(self.machine.cpu_ids) + 1)
                chain = fam.add(
                    cpu, self._lbl_balance[cpu], now + offset, inert
                )
                chain.fire = self._balance_chain_fire(cpu, chain)
                if inert():
                    fam.park(chain)  # born inert: never touches the heap
                else:
                    fam.arm(chain)
            return
        for i, cpu in enumerate(self.machine.cpu_ids):
            offset = interval * (i + 1) / (len(self.machine.cpu_ids) + 1)
            self.sim.after(
                offset,
                lambda c=cpu: self._periodic_balance(c),
                priority=EVPRIO_BALANCE,
                label=self._lbl_balance[cpu],
            )

    def _balance_inert(self) -> bool:
        """Witness that a balance fire is a no-op re-arm: with nothing
        queued there is nothing to pull, and with no migratable task
        ``_steal`` cannot move anything (see ``_migratable``)."""
        return self._queued_total == 0 or self._migratable == 0

    def _balance_chain_fire(self, cpu: int, chain) -> Any:
        """The fast-forward twin of :meth:`_periodic_balance`: identical
        guards and acting path, park-or-arm re-arm."""
        sim = self.sim
        fam = chain.family

        def fire() -> None:
            chain.event = None
            if self.live_tasks <= 0:
                fam.kill(chain)  # quiesce, as the serial fire would
                return
            if self._queued_total:
                self.balancer.periodic(cpu)
            t = sim.now + fam.interval
            chain.next_time = t
            if self._queued_total == 0 or self._migratable == 0:
                fam.park(chain)
            else:
                chain.event = sim.at(
                    t, fire, priority=EVPRIO_BALANCE, label=chain.label
                )

        return fire

    def _periodic_balance(self, cpu: int) -> None:
        if self.live_tasks <= 0:
            return  # quiesce: no work left, stop re-arming
        # With nothing queued anywhere there is nothing to pull; skip the
        # whole-machine busiest-queue scan but keep the timer armed (the
        # event stream is identical either way).
        if self._queued_total:
            self.balancer.periodic(cpu)
        self.sim.after(
            self._lb_interval,
            lambda: self._periodic_balance(cpu),
            priority=EVPRIO_BALANCE,
            label=self._lbl_balance[cpu],
        )

    # ------------------------------------------------------------------
    # Run loop and tracing
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run the simulation until all non-daemon tasks exit (or until
        the optional time horizon)."""
        end = self.sim.run(until=until, stop_when=lambda: self.live_tasks == 0)
        self.pmu.finalize(end)
        if self.oracles is not None:
            self.oracles.on_run_end(end)
        return end

    def _trace(self, task: Task, kind: str, **info) -> None:
        if self.trace is not None:
            self.trace.record(self.sim.now, task, kind, **info)

    @property
    def now(self) -> float:
        return self.sim.now
