"""Simulated Linux 2.6.24-era scheduler framework.

This package rebuilds, at simulation fidelity, the pieces of the Linux
scheduler the paper's HPCSched is defined against (paper §III):

* a **Scheduler Core** (:mod:`repro.kernel.core_sched`) that walks an
  ordered list of *Scheduling Classes* and always finds a runnable task,
* the **real-time class** (:mod:`repro.kernel.rt`): 100 FIFO/RR priority
  queues, the old O(1)-style algorithm,
* the **CFS class** (:mod:`repro.kernel.fair`): a genuine red-black tree
  keyed by virtual runtime, nice-weight table, sched_latency /
  min_granularity / wakeup_granularity semantics,
* the **idle class** (:mod:`repro.kernel.idlecls`),
* per-CPU run queues, scheduling domains derived from the machine
  topology, an idle-pull + periodic load balancer, a tickless (NOHZ-style)
  timer tick, wakeup-latency accounting and a sysfs-like tunable registry.

Tasks are Python generators yielding request objects (compute, sleep,
MPI operations, sched_setscheduler, ...); the kernel drives them exactly
like the real kernel drives user processes through the syscall boundary.
"""

from repro.kernel.policies import SchedPolicy, TaskState
from repro.kernel.task import Task
from repro.kernel.core_sched import Kernel
from repro.kernel.tunables import Tunables
from repro.kernel.syscalls import (
    Compute,
    Sleep,
    SetScheduler,
    SetAffinity,
    SetNice,
    YieldCPU,
    Exit,
)

__all__ = [
    "SchedPolicy",
    "TaskState",
    "Task",
    "Kernel",
    "Tunables",
    "Compute",
    "Sleep",
    "SetScheduler",
    "SetAffinity",
    "SetNice",
    "YieldCPU",
    "Exit",
]
