"""Scheduling policies and task states.

Policy numbering follows the Linux uapi values where they exist;
``SCHED_HPC`` is the new policy introduced by the paper (we pick the
first free slot after the historical ones).
"""

from __future__ import annotations

from enum import Enum, IntEnum


class SchedPolicy(IntEnum):
    """POSIX/Linux scheduling policies plus the paper's SCHED_HPC."""

    NORMAL = 0  # SCHED_OTHER / SCHED_NORMAL -> CFS
    FIFO = 1  # real-time, run-to-block
    RR = 2  # real-time, round-robin
    BATCH = 3  # CFS, batch hint
    IDLE = 5  # CFS idle policy (we route it to the idle class)
    HPC = 6  # the paper's new policy for HPC (MPI) tasks


#: Policies served by the real-time scheduling class.
RT_POLICIES = frozenset({SchedPolicy.FIFO, SchedPolicy.RR})

#: Policies served by the CFS scheduling class.
FAIR_POLICIES = frozenset({SchedPolicy.NORMAL, SchedPolicy.BATCH})

#: Policies served by the HPC scheduling class.
HPC_POLICIES = frozenset({SchedPolicy.HPC})


class TaskState(Enum):
    """Lifecycle states of a simulated task."""

    NEW = "new"  # created, never started
    READY = "ready"  # runnable, waiting in a run queue
    RUNNING = "running"  # currently loaded on a CPU context
    SLEEPING = "sleeping"  # blocked (MPI wait, sleep, ...)
    EXITED = "exited"  # program finished


#: Valid rt_priority range for FIFO/RR tasks (POSIX semantics: larger wins).
RT_PRIO_MIN = 1
RT_PRIO_MAX = 99

#: Nice range for CFS tasks.
NICE_MIN = -20
NICE_MAX = 19
