"""The simulated task descriptor (``struct task_struct``).

A task's behaviour is a Python generator yielding request objects
(:mod:`repro.kernel.syscalls`, MPI operations from :mod:`repro.mpi`).
The kernel drives the generator; a ``Compute`` request turns into a
fluid-rate execution phase on a POWER5 context, blocking requests put
the task to sleep until the owning subsystem wakes it.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Optional, Set

from repro.kernel.policies import (
    NICE_MAX,
    NICE_MIN,
    SchedPolicy,
    TaskState,
)
from repro.power5.perfmodel import CPU_BOUND, PerfProfile
from repro.power5.priorities import DEFAULT_PRIORITY


class Task:
    """A schedulable entity."""

    #: Overridden to True on per-CPU idle tasks.
    is_idle_task = False

    def __init__(
        self,
        pid: int,
        name: str,
        program: Optional[Generator] = None,
        policy: SchedPolicy = SchedPolicy.NORMAL,
        nice: int = 0,
        rt_priority: int = 0,
        perf_profile: PerfProfile = CPU_BOUND,
        cpus_allowed: Optional[Iterable[int]] = None,
    ) -> None:
        if not NICE_MIN <= nice <= NICE_MAX:
            raise ValueError(f"nice {nice} out of range")
        self.pid = pid
        self.name = name
        self.program = program
        self.policy = policy
        self.nice = nice
        self.rt_priority = rt_priority
        self.perf_profile = perf_profile
        self.cpus_allowed: Optional[Set[int]] = (
            set(cpus_allowed) if cpus_allowed is not None else None
        )

        self.state = TaskState.NEW
        #: CPU the task last ran on / is queued on.
        self.cpu: Optional[int] = None
        #: POWER5 hardware thread priority restored on context switch.
        self.hw_priority: int = int(DEFAULT_PRIORITY)
        #: Pre-formatted label for phase-completion events (the kernel
        #: schedules one per compute phase; formatting it per event is
        #: measurable on the hot path).
        self.phase_label = f"phase/{pid}"

        # -- accounting ------------------------------------------------
        #: Total CPU time consumed (seconds of occupancy, regardless of
        #: the SMT execution rate).
        self.sum_exec_runtime = 0.0
        #: Wall-clock instant the current on-CPU stint started.
        self.exec_start: Optional[float] = None
        #: CFS virtual runtime.
        self.vruntime = 0.0
        #: Remaining round-robin slice (RT RR and HPC RR policies).
        self.rr_slice_left = 0.0

        # -- wakeup / latency -----------------------------------------
        self.last_enqueue_time: Optional[float] = None
        #: Set between a wakeup and the next install (latency tracking).
        self.wakeup_pending = False
        #: Excluded from the live-task stop condition when True.
        self.daemon = False
        #: sched_yield marker consumed by RT put_prev_task.
        self._sched_yield = False
        self.sleep_reason: Optional[str] = None
        #: Set when the task blocked on an MPI wait (iteration boundary
        #: marker for the HPC load-imbalance detector).
        self.sleeping_on_wait = False

        # -- current execution phase (fluid compute model) -------------
        self.phase_remaining = 0.0  # work units left in the phase
        self.phase_rate = 0.0  # current work-units/second
        self.phase_started_at: Optional[float] = None
        self.phase_event: Optional[Any] = None  # completion Event handle
        #: Generation counter for lazy ETA revalidation: bumped whenever
        #: the authoritative completion time changes.  Each completion
        #: event carries the epoch it was pushed under; on delivery a
        #: mismatch means the ETA moved later while the event rode in
        #: the heap, and the handler re-pushes at :attr:`phase_eta`.
        self.phase_epoch = 0
        #: Authoritative completion instant of the in-flight phase
        #: (``None`` when no completion is owed, e.g. stalled at rate 0).
        self.phase_eta: Optional[float] = None

        #: Value delivered to the program at its next resume (the result
        #: of the request it yielded, e.g. a received message payload).
        self._syscall_result: Any = None
        #: Opaque per-class state (e.g. HPC iteration statistics).
        self.class_data: Any = None
        #: Callback invoked when the task exits, e.g. for join semantics.
        self.on_exit: Optional[Callable[["Task"], None]] = None

    # ------------------------------------------------------------------
    # Convenience predicates
    # ------------------------------------------------------------------
    @property
    def runnable(self) -> bool:
        return self.state in (TaskState.READY, TaskState.RUNNING)

    @property
    def alive(self) -> bool:
        return self.state != TaskState.EXITED

    def allows_cpu(self, cpu: int) -> bool:
        """Whether the affinity mask permits running on ``cpu``."""
        return self.cpus_allowed is None or cpu in self.cpus_allowed

    # ------------------------------------------------------------------
    # Phase bookkeeping helpers (used by the kernel core)
    # ------------------------------------------------------------------
    def bank_progress(self, now: float) -> None:
        """Credit work done since ``phase_started_at`` at ``phase_rate``
        against the current compute phase."""
        if self.phase_started_at is not None and self.phase_rate > 0.0:
            # The phase may have been scheduled to start slightly in the
            # future (context-switch cost); no work accrues before then.
            done = max(0.0, (now - self.phase_started_at) * self.phase_rate)
            self.phase_remaining = max(0.0, self.phase_remaining - done)
        self.phase_started_at = None
        self.phase_rate = 0.0

    def cancel_phase_event(self) -> None:
        """Drop the pending phase-completion event, if any, and with it
        the owed completion time."""
        if self.phase_event is not None:
            self.phase_event.cancel()
            self.phase_event = None
        self.phase_eta = None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<Task {self.pid} {self.name!r} {self.policy.name} "
            f"{self.state.value} cpu={self.cpu} hw={self.hw_priority}>"
        )
