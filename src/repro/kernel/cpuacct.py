"""Per-scheduling-class CPU accounting (cpuacct-style).

Answers "where did the CPU time go?" — e.g. how much the OS-noise
daemons (CFS) consumed versus the application (HPC class) in the
SIESTA/extrinsic experiments.  Computed post-hoc from task occupancy
counters, grouped by the class serving each task's final policy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core_sched import Kernel


def class_cpu_time(kernel: "Kernel") -> Dict[str, float]:
    """Total CPU occupancy per scheduling class (seconds)."""
    out: Dict[str, float] = {cls.name: 0.0 for cls in kernel.classes}
    for task in kernel.tasks.values():
        cls = kernel.class_for_policy(task.policy)
        out[cls.name] += task.sum_exec_runtime
    return out


def class_cpu_share(kernel: "Kernel") -> Dict[str, float]:
    """Fraction of total machine-busy time per scheduling class."""
    times = class_cpu_time(kernel)
    total = sum(times.values())
    if total <= 0:
        return {name: 0.0 for name in times}
    return {name: t / total for name, t in times.items()}


def task_cpu_time(kernel: "Kernel") -> Dict[str, float]:
    """CPU occupancy per task name (seconds)."""
    return {t.name: t.sum_exec_runtime for t in kernel.tasks.values()}
