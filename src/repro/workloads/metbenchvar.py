"""MetBenchVar — MetBench with behaviour reversal every k iterations
(paper §V-B).

At iteration ``k`` the small-load workers take over the large load and
vice versa, reversing the imbalance at run time; at ``2k`` they switch
back, and so on.  The paper uses ``k = 15`` over 45 iterations (three
periods) with loads ~4.5x MetBench's, giving a 368 s baseline.

This is the workload that defeats the static IPDPS'08 prioritization
(perfect in periods 1 and 3, inverted in period 2) and separates the
Uniform and Adaptive heuristics' responsiveness.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.power5.perfmodel import CPU_BOUND, PerfProfile
from repro.workloads.metbench import MetBench

#: MetBenchVar loads: scaled so the 45-iteration baseline lands near the
#: paper's 368 s.
DEFAULT_SMALL_LOAD = 2.073
DEFAULT_BIG_LOAD = 14.90
DEFAULT_ITERATIONS = 45
DEFAULT_K = 15


class MetBenchVar(MetBench):
    """MetBench whose workers swap loads every ``k`` iterations."""

    name = "metbenchvar"

    def __init__(
        self,
        loads: Optional[Sequence[float]] = None,
        iterations: int = DEFAULT_ITERATIONS,
        k: int = DEFAULT_K,
        profile: PerfProfile = CPU_BOUND,
        cpus: Optional[Sequence[int]] = None,
        master_cpu: int = 0,
    ) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        super().__init__(
            loads=list(
                loads
                if loads is not None
                else [
                    DEFAULT_SMALL_LOAD,
                    DEFAULT_BIG_LOAD,
                    DEFAULT_SMALL_LOAD,
                    DEFAULT_BIG_LOAD,
                ]
            ),
            iterations=iterations,
            profile=profile,
            cpus=cpus,
            master_cpu=master_cpu,
        )
        self.k = k

    def worker_load(self, worker: int, iteration: int) -> float:
        """Odd periods run each worker's partner's load."""
        period = iteration // self.k
        if period % 2 == 1:
            partner = worker ^ 1  # the other worker of the same core pair
            return self.loads[partner]
        return self.loads[worker]
