"""MetBench — BSC's Minimum Execution Time Benchmark (paper §V-A).

A framework of one master and several workers: each worker executes its
assigned load and then waits on an ``mpi_barrier`` for all the others;
the master keeps the workers strictly synchronized and starts the next
iteration.  Master and workers exchange data only during initialization.

Imbalance is introduced by assigning a larger load to one worker of
each SMT core pair: the small-load worker spends ~75% of its time
waiting (paper Table III: %Comp 25.3 / 100.0 / 25.3 / 100.0).

Default loads are calibrated against the paper's Table III (see
EXPERIMENTS.md): ``big/small`` work ratio such that at equal priority
the small worker computes ~25% of the iteration, and absolute sizes
such that the 45-iteration baseline run takes ~82 simulated seconds.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence

from repro.mpi.process import MPIRank
from repro.power5.perfmodel import CPU_BOUND, PerfProfile
from repro.workloads.base import RankSpec, Workload

#: Calibrated defaults (see DESIGN.md §2 for the back-solve).
DEFAULT_SMALL_LOAD = 0.4604
DEFAULT_BIG_LOAD = 3.310
DEFAULT_ITERATIONS = 45
#: The master's per-iteration coordination work (negligible, as in the
#: real MetBench where the master only synchronizes).
MASTER_WORK = 1e-5


class MetBench(Workload):
    """Master + ``n_workers`` workers with per-worker loads."""

    name = "metbench"

    def __init__(
        self,
        loads: Optional[Sequence[float]] = None,
        iterations: int = DEFAULT_ITERATIONS,
        profile: PerfProfile = CPU_BOUND,
        profiles: Optional[Sequence[PerfProfile]] = None,
        cpus: Optional[Sequence[int]] = None,
        master_cpu: int = 0,
    ) -> None:
        #: Per-worker loads; the default alternates small/big so that
        #: each POWER5 core hosts one small and one big worker.
        self.loads: List[float] = list(
            loads
            if loads is not None
            else [
                DEFAULT_SMALL_LOAD,
                DEFAULT_BIG_LOAD,
                DEFAULT_SMALL_LOAD,
                DEFAULT_BIG_LOAD,
            ]
        )
        self.iterations = iterations
        self.profile = profile
        #: Optional per-worker profiles — the real MetBench ships several
        #: load kinds (integer, FP, memory-streaming); mixing profiles
        #: lets experiments study prioritization of heterogeneous pairs.
        self.profiles: List[PerfProfile] = (
            list(profiles)
            if profiles is not None
            else [profile] * len(self.loads)
        )
        if len(self.profiles) != len(self.loads):
            raise ValueError("profiles and loads must have equal length")
        self.cpus = list(cpus) if cpus is not None else list(range(len(self.loads)))
        self.master_cpu = master_cpu

    # ------------------------------------------------------------------
    def worker_load(self, worker: int, iteration: int) -> float:
        """Load of ``worker`` (0-based) in ``iteration`` (0-based).

        Constant in plain MetBench; MetBenchVar overrides this.
        """
        return self.loads[worker]

    def _worker_program(self, worker: int):
        def factory(mpi: MPIRank) -> Generator:
            def prog():
                # Initialization: configuration broadcast from the master.
                yield mpi.bcast()
                for it in range(self.iterations):
                    yield mpi.compute(self.worker_load(worker, it))
                    yield mpi.barrier()

            return prog()

        return factory

    def _master_program(self):
        def factory(mpi: MPIRank) -> Generator:
            def prog():
                yield mpi.bcast()
                for _ in range(self.iterations):
                    yield mpi.compute(MASTER_WORK)
                    yield mpi.barrier()

            return prog()

        return factory

    def rank_specs(self) -> List[RankSpec]:
        """The master plus one pinned worker per load."""
        specs = [
            RankSpec(
                name="master",
                factory=self._master_program(),
                profile=self.profile,
                cpu=self.master_cpu,
                measured=False,
            )
        ]
        for w, cpu in enumerate(self.cpus):
            specs.append(
                RankSpec(
                    name=f"P{w + 1}",
                    factory=self._worker_program(w),
                    profile=self.profiles[w],
                    cpu=cpu,
                )
            )
        return specs
