"""Parameterized imbalance generators (the ``synth`` workload family).

The paper's workloads hit a handful of fixed imbalance shapes; this
module generates imbalance *on demand*, in the style of the
cluster-dlb-benchmarks suite ("Two-level Dynamic Load Balancing for
High Performance Scientific Applications"):

* :func:`calculate_work` — a closed-form split of ``ranks * mean_work``
  total work such that the realized **imbalance factor**
  ``max(work) / mean(work)`` equals a requested target exactly (to
  float precision).  The worst rank is pinned at ``I * mean_work``; the
  remainder is stick-broken uniformly at random over the other ranks,
  capped at the worst rank's share, with the slack-sampling trick that
  keeps resampling cheap at high imbalance.
* :class:`SyntheticScatter` — N barrier-synchronized ranks running a
  :func:`calculate_work` distribution, pinned one per logical CPU.
  ``placement="paired"`` (default) co-schedules heavy-with-light on
  each SMT core — the regime the POWER5 priority mechanism can fix.
* :class:`LocalBad` — the same distribution under a *pathological*
  placement: similar loads share a core (heavy-with-heavy), so local
  priority shifting has nothing to trade.  The stressor for placement
  sensitivity.
* :class:`SyntheticConvergence` — a step change at a known iteration:
  every SMT pair runs (heavy, light) until ``step_at``, then swaps (and
  optionally swaps back at ``revert_at``).  Together with
  :mod:`repro.analysis.convergence` this measures *reaction speed* —
  how many detector epochs the Uniform/Adaptive heuristics need to
  rebalance — not just where wall time ends up.
* :class:`OffloadLatency` — many tiny request/response messages per
  iteration between core-pair partners: the wakeup-latency stressor
  (SIESTA's failure mode, made parametric).
* :func:`unbalanced_sweep` — the (imbalance x rank-count) grid
  expansion used by the ``synth-sweep`` campaign preset.

Everything is byte-deterministic under a fixed seed: the same
``(seed, ranks, imbalance, mean_work)`` always yields the same floats.
"""

from __future__ import annotations

import math
import struct
from typing import Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.mpi.process import MPIRank
from repro.power5.machine import MachineTopology
from repro.power5.perfmodel import CPU_BOUND, PerfProfile
from repro.workloads.base import RankSpec, Workload

#: Default per-rank mean work in simulated seconds.  Large against the
#: detector's ``hpcsched/min_iter_time`` (1e-4) so every compute+barrier
#: cycle closes a real iteration.
DEFAULT_MEAN_WORK = 1.0
DEFAULT_ITERATIONS = 10

#: Salt mixed into the seed sequence so synth streams never collide
#: with other seeded users of the same small integers.
_SEED_SALT = 0x53594E54  # "SYNT"

#: Placement policies for mapping a load distribution onto SMT cores.
PLACEMENTS = ("paired", "bad", "shuffled")


def _entropy_for(seed: int, ranks: int, imbalance: float, mean_work: float) -> Tuple[int, ...]:
    """A SeedSequence entropy tuple covering every generator parameter,
    so distinct configurations draw independent streams."""
    return (
        _SEED_SALT,
        seed,
        ranks,
        int.from_bytes(struct.pack("<d", float(imbalance)), "little"),
        int.from_bytes(struct.pack("<d", float(mean_work)), "little"),
    )


def _stick_break(
    rng: np.random.Generator, m: int, total: float, cap: float
) -> List[float]:
    """``m`` non-negative pieces summing to ``total``, each ``<= cap``.

    Classic stick breaking: sort ``m - 1`` uniform cuts on
    ``[0, total]`` and take the gaps.  A draw with a gap above ``cap``
    is rejected and resampled; after a bounded number of rejections the
    even split (always feasible: ``total <= m * cap`` by construction)
    is returned so the generator can never spin.
    """
    if m <= 0:
        return []
    if m == 1:
        return [total]
    if total <= 0.0:
        return [0.0] * m
    for _ in range(1000):
        cuts = np.sort(rng.uniform(0.0, total, m - 1))
        edges = np.concatenate(([0.0], cuts, [total]))
        pieces = np.diff(edges)
        if float(pieces.max()) <= cap:
            return [float(p) for p in pieces]
    return [total / m] * m


def calculate_work(
    ranks: int,
    imbalance: float,
    mean_work: float = DEFAULT_MEAN_WORK,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> List[float]:
    """Per-rank work with an exact target imbalance factor.

    The imbalance factor is the classic ``max(work) / mean(work)``;
    feasible targets are ``1.0 <= imbalance <= ranks`` (at ``ranks``
    one rank holds *all* the work).  The worst rank receives exactly
    ``imbalance * mean_work``; the remaining
    ``(ranks - imbalance) * mean_work`` is split uniformly at random
    over the other ranks, every share capped at the worst rank's.
    When the cap makes rejection likely (``rest`` close to the cap
    ceiling) the *slack* is sampled instead and subtracted — the
    cluster-dlb-benchmarks trick that keeps sampling cheap at any
    target.

    Returns the loads in randomized rank order (the worst rank is not
    always rank 0).  Deterministic: a fixed ``seed`` (or an explicit
    ``rng``) always produces byte-identical floats.
    """
    if ranks < 1:
        raise ValueError(f"need at least one rank, got {ranks}")
    if mean_work <= 0:
        raise ValueError(f"mean_work must be positive, got {mean_work}")
    if not 1.0 <= imbalance <= ranks:
        raise ValueError(
            f"imbalance factor {imbalance} infeasible on {ranks} ranks "
            f"(feasible range is [1.0, {ranks}])"
        )
    if ranks == 1 or imbalance == 1.0:
        return [mean_work] * ranks
    if rng is None:
        rng = np.random.default_rng(
            np.random.SeedSequence(_entropy_for(seed, ranks, imbalance, mean_work))
        )
    worst = imbalance * mean_work
    rest = ranks * mean_work - worst  # work left for the other ranks
    slack = (ranks - 1) * worst - rest  # headroom below the cap
    if rest <= slack:
        others = _stick_break(rng, ranks - 1, rest, worst)
    else:
        # Near-balanced targets: sampling the (smaller) slack and
        # subtracting from a full allocation rarely violates the cap.
        others = [worst - s for s in _stick_break(rng, ranks - 1, slack, worst)]
    loads = [worst] + others
    order = rng.permutation(ranks)
    return [loads[i] for i in order]


def realized_imbalance(loads: Sequence[float]) -> float:
    """The imbalance factor a work distribution actually realizes."""
    loads = list(loads)
    if not loads or sum(loads) == 0:
        return 1.0
    return max(loads) / (sum(loads) / len(loads))


def _paired_order(loads: Sequence[float]) -> List[float]:
    """Heavy-with-light per SMT core: sorted loads interleaved so core
    ``k`` hosts the k-th lightest and k-th heaviest rank."""
    asc = sorted(loads)
    out: List[float] = []
    lo, hi = 0, len(asc) - 1
    while lo < hi:
        out.extend((asc[lo], asc[hi]))
        lo += 1
        hi -= 1
    if lo == hi:
        out.append(asc[lo])
    return out


def _bad_order(loads: Sequence[float]) -> List[float]:
    """Heavy-with-heavy per SMT core: sorted loads placed consecutively,
    so both siblings of a core want the high priority — the local
    balancing worst case."""
    return sorted(loads)


class SyntheticScatter(Workload):
    """N barrier-synchronized ranks with an exact target imbalance.

    One rank per logical CPU (``topology()`` sizes the machine), each
    iterating ``compute(load)`` + ``barrier``.  ``placement`` maps the
    generated distribution onto SMT cores: ``paired`` (fixable by
    priorities), ``bad`` (pathological), ``shuffled`` (as generated).
    """

    name = "synthetic_scatter"

    def __init__(
        self,
        imbalance: float = 2.0,
        ranks: int = 8,
        iterations: int = DEFAULT_ITERATIONS,
        mean_work: float = DEFAULT_MEAN_WORK,
        seed: int = 0,
        placement: str = "paired",
        loads: Optional[Sequence[float]] = None,
        profile: PerfProfile = CPU_BOUND,
    ) -> None:
        if ranks < 2:
            raise ValueError(f"need at least two ranks, got {ranks}")
        if iterations < 1:
            raise ValueError(f"need at least one iteration, got {iterations}")
        if placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {placement!r}; pick from {PLACEMENTS}"
            )
        self.imbalance = imbalance
        self.ranks = ranks
        self.iterations = iterations
        self.mean_work = mean_work
        self.seed = seed
        self.placement = placement
        self.profile = profile
        raw = (
            list(loads)
            if loads is not None
            else calculate_work(ranks, imbalance, mean_work=mean_work, seed=seed)
        )
        if len(raw) != ranks:
            raise ValueError(f"got {len(raw)} loads for {ranks} ranks")
        if placement == "paired":
            self.loads = _paired_order(raw)
        elif placement == "bad":
            self.loads = _bad_order(raw)
        else:
            self.loads = list(raw)
        self.cpus = list(range(ranks))

    # ------------------------------------------------------------------
    def worker_load(self, worker: int, iteration: int) -> float:
        """Load of ``worker`` in ``iteration`` (both 0-based)."""
        return self.loads[worker]

    def topology(self) -> MachineTopology:
        """The smallest paper-shaped machine that pins one rank per
        logical CPU (4 CPUs per chip)."""
        per_chip = MachineTopology().n_cpus
        return MachineTopology(chips=max(1, math.ceil(self.ranks / per_chip)))

    def _program(self, worker: int):
        def factory(mpi: MPIRank) -> Generator:
            def prog():
                for it in range(self.iterations):
                    yield mpi.compute(self.worker_load(worker, it))
                    yield mpi.barrier()

            return prog()

        return factory

    def rank_specs(self) -> List[RankSpec]:
        return [
            RankSpec(
                name=f"R{w + 1}",
                factory=self._program(w),
                profile=self.profile,
                cpu=cpu,
            )
            for w, cpu in enumerate(self.cpus)
        ]


class LocalBad(SyntheticScatter):
    """:class:`SyntheticScatter` under the pathological placement:
    similar loads share each SMT core, so the in-core priority window
    has no heavy/light pair to trade between."""

    name = "local_bad"

    def __init__(
        self,
        imbalance: float = 2.0,
        ranks: int = 8,
        iterations: int = DEFAULT_ITERATIONS,
        mean_work: float = DEFAULT_MEAN_WORK,
        seed: int = 0,
        loads: Optional[Sequence[float]] = None,
        profile: PerfProfile = CPU_BOUND,
    ) -> None:
        super().__init__(
            imbalance=imbalance,
            ranks=ranks,
            iterations=iterations,
            mean_work=mean_work,
            seed=seed,
            placement="bad",
            loads=loads,
            profile=profile,
        )


class SyntheticConvergence(SyntheticScatter):
    """A step change in load at a known iteration.

    Every SMT core pair runs (light, heavy) = ``((2 - I) * mean_work,
    I * mean_work)`` — per-pair mean ``mean_work``, pair imbalance
    factor exactly ``I`` — until iteration ``step_at``, at which point
    partners swap loads (and swap back at ``revert_at``, if given: the
    MetBenchVar-style reversal).  Because the *distribution* is
    identical before and after the step, any post-step slowdown is
    purely the balancer's reaction time — the quantity
    :mod:`repro.analysis.convergence` extracts.

    Feasible pair targets are ``1.0 <= imbalance <= 2.0`` (at 2.0 the
    light partner has zero work).
    """

    name = "synthetic_convergence"

    def __init__(
        self,
        ranks: int = 16,
        imbalance: float = 1.5,
        iterations: int = 12,
        step_at: Optional[int] = None,
        revert_at: Optional[int] = None,
        mean_work: float = DEFAULT_MEAN_WORK,
        profile: PerfProfile = CPU_BOUND,
    ) -> None:
        if ranks < 2 or ranks % 2:
            raise ValueError(f"ranks must be even and >= 2, got {ranks}")
        if not 1.0 <= imbalance <= 2.0:
            raise ValueError(
                f"pair imbalance factor {imbalance} infeasible "
                "(feasible range is [1.0, 2.0])"
            )
        step_at = iterations // 2 if step_at is None else step_at
        if not 0 < step_at < iterations:
            raise ValueError(
                f"step_at {step_at} outside (0, {iterations})"
            )
        if revert_at is not None and not step_at < revert_at < iterations:
            raise ValueError(
                f"revert_at {revert_at} outside ({step_at}, {iterations})"
            )
        light = (2.0 - imbalance) * mean_work
        heavy = imbalance * mean_work
        loads = [light, heavy] * (ranks // 2)
        super().__init__(
            imbalance=imbalance,
            ranks=ranks,
            iterations=iterations,
            mean_work=mean_work,
            seed=0,
            placement="shuffled",  # the pair structure IS the placement
            loads=loads,
            profile=profile,
        )
        self.step_at = step_at
        self.revert_at = revert_at

    def worker_load(self, worker: int, iteration: int) -> float:
        """Partners swap loads at ``step_at`` (and back at ``revert_at``)."""
        swapped = iteration >= self.step_at
        if self.revert_at is not None and iteration >= self.revert_at:
            swapped = not swapped
        return self.loads[worker ^ 1] if swapped else self.loads[worker]


class OffloadLatency(Workload):
    """Many tiny request/response messages: the wakeup-latency stressor.

    Ranks are paired per SMT core.  Each iteration, the even rank
    (*origin*) computes a base load and then offloads ``messages``
    tiny work items to its partner, blocking for each response; the
    partner blocks for each request, computes the tiny chunk, and
    replies.  Per message the scheduler sees two sleeps and two
    wakeups, so per-message cost is dominated by wakeup latency —
    exactly what SCHED_HPC's run-immediately semantics buy (SIESTA's
    regime, paper Table VI), made parametric.
    """

    name = "offload_latency"

    #: Request/response tags.
    _REQ, _RSP = 101, 102

    def __init__(
        self,
        ranks: int = 8,
        iterations: int = 4,
        messages: int = 16,
        chunk_work: float = 1e-3,
        origin_work: float = 0.05,
        profile: PerfProfile = CPU_BOUND,
    ) -> None:
        if ranks < 2 or ranks % 2:
            raise ValueError(f"ranks must be even and >= 2, got {ranks}")
        if messages < 1:
            raise ValueError(f"need at least one message, got {messages}")
        self.ranks = ranks
        self.iterations = iterations
        self.messages = messages
        self.chunk_work = chunk_work
        self.origin_work = origin_work
        self.profile = profile
        self.cpus = list(range(ranks))

    def _origin(self, rank: int):
        partner = rank + 1

        def factory(mpi: MPIRank) -> Generator:
            def prog():
                for _ in range(self.iterations):
                    yield mpi.compute(self.origin_work)
                    for _ in range(self.messages):
                        yield mpi.send(partner, tag=self._REQ)
                        yield mpi.recv(partner, tag=self._RSP)
                    yield mpi.barrier()

            return prog()

        return factory

    def _worker(self, rank: int):
        partner = rank - 1

        def factory(mpi: MPIRank) -> Generator:
            def prog():
                for _ in range(self.iterations):
                    for _ in range(self.messages):
                        yield mpi.recv(partner, tag=self._REQ)
                        yield mpi.compute(self.chunk_work)
                        yield mpi.send(partner, tag=self._RSP)
                    yield mpi.barrier()

            return prog()

        return factory

    def topology(self) -> MachineTopology:
        """The smallest paper-shaped machine that pins one rank per
        logical CPU (4 CPUs per chip)."""
        per_chip = MachineTopology().n_cpus
        return MachineTopology(chips=max(1, math.ceil(self.ranks / per_chip)))

    def rank_specs(self) -> List[RankSpec]:
        specs: List[RankSpec] = []
        for rank, cpu in enumerate(self.cpus):
            factory = self._origin(rank) if rank % 2 == 0 else self._worker(rank)
            specs.append(
                RankSpec(
                    name=f"R{rank + 1}",
                    factory=factory,
                    profile=self.profile,
                    cpu=cpu,
                )
            )
        return specs


def unbalanced_sweep(
    imbalances: Sequence[float] = (1.0, 1.5, 2.0, 4.0),
    ranks: Sequence[int] = (4, 16, 64),
) -> List[Dict[str, object]]:
    """The (imbalance x rank-count) grid, infeasible cells dropped.

    Each cell is a parameter dict consumable as campaign ``params`` for
    the ``synth_scatter`` experiment (or directly by
    :class:`SyntheticScatter`).
    """
    grid: List[Dict[str, object]] = []
    for n in ranks:
        for imbalance in imbalances:
            if 1.0 <= imbalance <= n:
                grid.append({"imbalance": float(imbalance), "ranks": int(n)})
    return grid
