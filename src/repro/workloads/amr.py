"""An AMR-like workload: gradually drifting load (paper §II-A, [11]).

Adaptive-mesh-refinement applications concentrate work where the
physics is interesting, and that concentration *moves*: a shock front
crossing the domain shifts load smoothly from one rank to the next over
many iterations.  This is a different dynamic regime from
MetBenchVar's step reversal — there is no single behaviour-change event
to detect, the detector must re-balance repeatedly as the drift crosses
its thresholds.

The model: total per-iteration work is constant; a Gaussian "refinement
front" centred at a position that advances every iteration distributes
the work across ranks.  With the front starting on rank 0 and ending on
rank N-1, every rank is the hot spot for a while.
"""

from __future__ import annotations

import math
from typing import Generator, List, Optional, Sequence

from repro.mpi.process import MPIRank
from repro.power5.perfmodel import CPU_BOUND, PerfProfile
from repro.workloads.base import RankSpec, Workload

DEFAULT_RANKS = 4
DEFAULT_ITERATIONS = 60
#: Total work per iteration (seconds at SMT-equal speed), all ranks.
DEFAULT_TOTAL_WORK = 4.0
#: Width of the refinement front in rank units.
DEFAULT_WIDTH = 0.9
#: Baseline work floor per rank (un-refined coarse mesh).
DEFAULT_FLOOR = 0.12


class AMRDrift(Workload):
    """SPMD solver whose hot spot drifts across ranks."""

    name = "amr-drift"

    def __init__(
        self,
        ranks: int = DEFAULT_RANKS,
        iterations: int = DEFAULT_ITERATIONS,
        total_work: float = DEFAULT_TOTAL_WORK,
        width: float = DEFAULT_WIDTH,
        floor: float = DEFAULT_FLOOR,
        profile: PerfProfile = CPU_BOUND,
        cpus: Optional[Sequence[int]] = None,
    ) -> None:
        if ranks < 2:
            raise ValueError("AMR drift needs at least 2 ranks")
        self.ranks = ranks
        self.iterations = iterations
        self.total_work = total_work
        self.width = width
        self.floor = floor
        self.profile = profile
        self.cpus = list(cpus) if cpus is not None else list(range(ranks))

    # ------------------------------------------------------------------
    def front_position(self, iteration: int) -> float:
        """Centre of the refinement front, sweeping rank 0 -> N-1."""
        if self.iterations <= 1:
            return 0.0
        return (self.ranks - 1) * iteration / (self.iterations - 1)

    def work_of(self, rank: int, iteration: int) -> float:
        """Rank's share of the iteration's work: floor + its slice of a
        Gaussian centred on the front."""
        pos = self.front_position(iteration)
        weights = [
            math.exp(-((r - pos) ** 2) / (2 * self.width**2))
            for r in range(self.ranks)
        ]
        total_weight = sum(weights)
        refined = self.total_work - self.floor * self.ranks
        return self.floor + refined * weights[rank] / total_weight

    def _program(self, rank: int):
        def factory(mpi: MPIRank) -> Generator:
            def prog():
                for it in range(self.iterations):
                    yield mpi.compute(self.work_of(rank, it))
                    yield mpi.barrier()

            return prog()

        return factory

    def rank_specs(self) -> List[RankSpec]:
        """One pinned rank per mesh partition."""
        return [
            RankSpec(
                name=f"P{r + 1}",
                factory=self._program(r),
                profile=self.profile,
                cpu=self.cpus[r],
            )
            for r in range(self.ranks)
        ]
