"""BT-MZ — a NAS Multi-Zone Block-Tridiagonal-like workload (paper §V-C).

BT-MZ partitions the discretization mesh into zones of uneven size; each
rank advances its zones for one time step, exchanges boundary data with
its neighbors *asynchronously* (``mpi_isend``/``mpi_irecv``) and then
waits for the exchange with ``mpi_waitall`` — so ranks synchronize only
with their neighbors, not globally.  The paper runs class A for 200
iterations; its baseline per-rank %Comp is (17.6, 29.9, 66.1, 99.9) —
rank 4 owns the heaviest zones and paces the whole computation through
the neighbor chain.

The default zone works are calibrated so the simulated baseline matches
that utilization ladder and a ~95 s execution time; the MIXED
performance profile reflects BT-MZ's memory-heavy CFD character (the
prioritized task gains, the de-prioritized one barely loses).
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence

from repro.mpi.process import MPIRank
from repro.power5.perfmodel import MIXED, PerfProfile
from repro.workloads.base import RankSpec, Workload

#: Calibrated per-rank zone works (seconds at SMT-equal speed).
DEFAULT_ZONE_WORKS = [0.110, 0.186, 0.314, 0.5315]
DEFAULT_ITERATIONS = 200

#: Boundary-exchange message size (bytes) — the paper reports the
#: communication phase is ~0.1% of execution time.
BOUNDARY_BYTES = 64 * 1024


class BTMZ(Workload):
    """Multi-zone SPMD solver with ring neighbor exchange."""

    name = "bt-mz"

    @classmethod
    def sp_mz_like(
        cls,
        iterations: int = DEFAULT_ITERATIONS,
        ranks: int = 4,
        profile: PerfProfile = MIXED,
    ) -> "BTMZ":
        """An SP-MZ-like configuration: *equal* zone sizes.

        NPB's SP-MZ partitions the mesh into equally-sized zones, so the
        application is intrinsically balanced — the negative control for
        HPCSched: a correct balancer must leave it alone (and must not
        slow it down).
        """
        per_rank = sum(DEFAULT_ZONE_WORKS) / len(DEFAULT_ZONE_WORKS)
        wl = cls(
            zone_works=[per_rank] * ranks,
            iterations=iterations,
            profile=profile,
        )
        wl.name = "sp-mz"
        return wl

    def __init__(
        self,
        zone_works: Optional[Sequence[float]] = None,
        iterations: int = DEFAULT_ITERATIONS,
        profile: PerfProfile = MIXED,
        cpus: Optional[Sequence[int]] = None,
    ) -> None:
        self.zone_works: List[float] = list(
            zone_works if zone_works is not None else DEFAULT_ZONE_WORKS
        )
        if len(self.zone_works) < 2:
            raise ValueError("BT-MZ needs at least two ranks")
        self.iterations = iterations
        self.profile = profile
        self.cpus = (
            list(cpus) if cpus is not None else list(range(len(self.zone_works)))
        )

    def neighbors(self, rank: int) -> List[int]:
        """Ring topology: boundary zones touch the adjacent ranks'."""
        n = len(self.zone_works)
        return sorted({(rank - 1) % n, (rank + 1) % n} - {rank})

    def _program(self, rank: int):
        work = self.zone_works[rank]
        nbrs = self.neighbors(rank)

        def factory(mpi: MPIRank) -> Generator:
            def prog():
                for it in range(self.iterations):
                    # Post boundary receives up front (tagged by
                    # iteration so a fast neighbor's next-step data
                    # cannot satisfy this step's receive).
                    recvs = [mpi.irecv(n, tag=it) for n in nbrs]
                    yield mpi.compute(work)
                    sends = [
                        mpi.isend(n, tag=it, size=BOUNDARY_BYTES) for n in nbrs
                    ]
                    yield mpi.waitall(recvs + sends)

            return prog()

        return factory

    def rank_specs(self) -> List[RankSpec]:
        """One pinned rank per zone set."""
        return [
            RankSpec(
                name=f"P{r + 1}",
                factory=self._program(r),
                profile=self.profile,
                cpu=self.cpus[r],
            )
            for r in range(len(self.zone_works))
        ]
