"""The paper's evaluation workloads, rebuilt as simulated MPI programs.

* :mod:`repro.workloads.metbench` — BSC's MetBench microbenchmark suite
  (master + workers, strict barrier, intrinsic load imbalance),
* :mod:`repro.workloads.metbenchvar` — MetBenchVar: the imbalance is
  reversed every ``k`` iterations (dynamic behaviour),
* :mod:`repro.workloads.btmz` — a NAS BT-MZ-like multi-zone solver:
  uneven per-rank zones, asynchronous neighbor exchange + waitall,
* :mod:`repro.workloads.siesta` — a SIESTA-like irregular
  self-consistency loop: short variable compute chunks, frequent global
  reductions, extreme sensitivity to scheduler latency,
* :mod:`repro.workloads.synth` — parameterized imbalance generators
  (exact target imbalance factor, step-change convergence probe,
  offload-latency and bad-placement stressors),
* :mod:`repro.workloads.noise` — OS noise daemons (the extrinsic
  imbalance source).

Each workload is described by :class:`repro.workloads.base.RankSpec`
entries and launched with :func:`repro.workloads.base.launch_workload`.
Workload *classes* are listed in :data:`WORKLOADS` keyed by their
``name`` attribute; :func:`resolve` looks one up with an error message
that names the valid choices.
"""

from typing import Dict, Tuple, Type

from repro.workloads.base import (
    RankSpec,
    Workload,
    LaunchedWorkload,
    launch_workload,
)
from repro.workloads.metbench import MetBench
from repro.workloads.metbenchvar import MetBenchVar
from repro.workloads.btmz import BTMZ
from repro.workloads.siesta import Siesta
from repro.workloads.amr import AMRDrift
from repro.workloads.noise import NoiseDaemons, spawn_noise
from repro.workloads.synth import (
    LocalBad,
    OffloadLatency,
    SyntheticConvergence,
    SyntheticScatter,
    calculate_work,
    realized_imbalance,
    unbalanced_sweep,
)

#: Every launchable workload class, keyed by its ``name`` attribute.
WORKLOADS: Dict[str, Type[Workload]] = {
    cls.name: cls
    for cls in (
        MetBench,
        MetBenchVar,
        BTMZ,
        Siesta,
        AMRDrift,
        SyntheticScatter,
        SyntheticConvergence,
        LocalBad,
        OffloadLatency,
    )
}


def available() -> Tuple[str, ...]:
    """The registered workload names, sorted."""
    return tuple(sorted(WORKLOADS))


def resolve(name: str) -> Type[Workload]:
    """Look up a workload class by its registered name.

    Raises :class:`KeyError` naming the valid workloads, so a typo in a
    CLI flag or campaign spec is self-diagnosing.
    """
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; valid workloads: "
            + ", ".join(available())
        ) from None


__all__ = [
    "RankSpec",
    "Workload",
    "LaunchedWorkload",
    "launch_workload",
    "MetBench",
    "MetBenchVar",
    "BTMZ",
    "Siesta",
    "AMRDrift",
    "NoiseDaemons",
    "spawn_noise",
    "SyntheticScatter",
    "SyntheticConvergence",
    "LocalBad",
    "OffloadLatency",
    "calculate_work",
    "realized_imbalance",
    "unbalanced_sweep",
    "WORKLOADS",
    "available",
    "resolve",
]
