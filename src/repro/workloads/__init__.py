"""The paper's evaluation workloads, rebuilt as simulated MPI programs.

* :mod:`repro.workloads.metbench` — BSC's MetBench microbenchmark suite
  (master + workers, strict barrier, intrinsic load imbalance),
* :mod:`repro.workloads.metbenchvar` — MetBenchVar: the imbalance is
  reversed every ``k`` iterations (dynamic behaviour),
* :mod:`repro.workloads.btmz` — a NAS BT-MZ-like multi-zone solver:
  uneven per-rank zones, asynchronous neighbor exchange + waitall,
* :mod:`repro.workloads.siesta` — a SIESTA-like irregular
  self-consistency loop: short variable compute chunks, frequent global
  reductions, extreme sensitivity to scheduler latency,
* :mod:`repro.workloads.noise` — OS noise daemons (the extrinsic
  imbalance source).

Each workload is described by :class:`repro.workloads.base.RankSpec`
entries and launched with :func:`repro.workloads.base.launch_workload`.
"""

from repro.workloads.base import (
    RankSpec,
    Workload,
    LaunchedWorkload,
    launch_workload,
)
from repro.workloads.metbench import MetBench
from repro.workloads.metbenchvar import MetBenchVar
from repro.workloads.btmz import BTMZ
from repro.workloads.siesta import Siesta
from repro.workloads.amr import AMRDrift
from repro.workloads.noise import NoiseDaemons, spawn_noise

__all__ = [
    "RankSpec",
    "Workload",
    "LaunchedWorkload",
    "launch_workload",
    "MetBench",
    "MetBenchVar",
    "BTMZ",
    "Siesta",
    "AMRDrift",
    "NoiseDaemons",
    "spawn_noise",
]
