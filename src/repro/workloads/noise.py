"""OS noise daemons — the extrinsic imbalance source (paper §I, [9]).

System daemons and kernel threads periodically steal the CPU from HPC
tasks.  Under CFS an HPC task must *share* with them (and a waking task
with accumulated vruntime does not win wakeup preemption against a
fresh daemon, so it also waits out daemon bursts — the scheduler
latency of §V-D).  Under SCHED_HPC the class ordering starves the
daemons whenever HPC work is runnable.

A :class:`NoiseDaemons` config spawns one CFS daemon per CPU with a
given duty cycle; daemons are marked ``daemon=True`` so the simulation
still terminates when the application does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence

import numpy as np

from repro.kernel.core_sched import Kernel
from repro.kernel.syscalls import Compute, Sleep
from repro.kernel.task import Task
from repro.power5.perfmodel import CPU_BOUND


@dataclass
class NoiseDaemons:
    """Per-CPU periodic daemon description."""

    #: Mean period between daemon activations (seconds).
    period: float = 0.010
    #: Mean burst length per activation (seconds of work at baseline
    #: speed); duty cycle = burst / period.
    burst: float = 0.0007
    #: Relative jitter applied to period and burst (uniform +-).
    jitter: float = 0.5
    seed: int = 97

    @property
    def duty(self) -> float:
        return self.burst / self.period


def _daemon_program(cfg: NoiseDaemons, rng: np.random.Generator) -> Generator:
    def prog():
        while True:
            j1 = 1.0 + cfg.jitter * (2.0 * rng.random() - 1.0)
            j2 = 1.0 + cfg.jitter * (2.0 * rng.random() - 1.0)
            yield Compute(cfg.burst * j1)
            yield Sleep(max(1e-5, cfg.period * j2 - cfg.burst * j1))

    return prog()


def spawn_noise(
    kernel: Kernel,
    cfg: Optional[NoiseDaemons] = None,
    cpus: Optional[Sequence[int]] = None,
) -> List[Task]:
    """Start one noise daemon per CPU; returns the daemon tasks."""
    cfg = cfg or NoiseDaemons()
    cpus = list(cpus) if cpus is not None else list(kernel.machine.cpu_ids)
    rng = np.random.default_rng(cfg.seed)
    tasks = []
    for cpu in cpus:
        task = kernel.create_task(
            name=f"kdaemon/{cpu}",
            program=_daemon_program(cfg, rng),
            perf_profile=CPU_BOUND,
            cpus_allowed=[cpu],
            daemon=True,
        )
        kernel.start_task(task, cpu=cpu)
        tasks.append(task)
    return tasks
