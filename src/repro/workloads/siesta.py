"""A SIESTA-like irregular workload (paper §V-D).

SIESTA (ab-initio order-N materials simulation) on the benzene input
shows, per the paper's trace: imbalance caused by both algorithm and
input (per-rank %Comp 98.9 / 52.8 / 28.5 / 20.0), *non-constant*
iterations (iteration i is not representative of i+1, defeating the
static approach and mostly defeating the heuristics), very short
execution phases and many small messages — making the application
highly sensitive to scheduler latency, which is where HPCSched's ~6%
improvement comes from.

The model: an SCF (self-consistent field) outer loop; each step runs
many short sub-iterations — a rank-dependent, randomly varying compute
chunk followed by a global ``allreduce`` (the residual reduction).  The
per-rank mean chunk sizes encode the intrinsic imbalance; a seeded
lognormal factor per (rank, sub-iteration) plus a per-step modulation
provide the non-representative dynamics.  The MEM_BOUND performance
profile makes hardware prioritization nearly ineffective, as measured.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence

import numpy as np

from repro.mpi.process import MPIRank
from repro.power5.perfmodel import MEM_BOUND, PerfProfile
from repro.workloads.base import RankSpec, Workload

#: Mean compute chunk per rank (seconds at SMT-equal speed), encoding the
#: benzene-input imbalance ladder of Table VI.
DEFAULT_CHUNK_MEANS = [0.0160, 0.0085, 0.0046, 0.0032]
DEFAULT_SCF_STEPS = 20
DEFAULT_SUBITERS = 250
#: Lognormal sigma of the per-chunk variation, per rank.  The heavy
#: rank's work (dense orbital blocks) is steadier than the light ranks'
#: (scattered sparse work), matching the paper's trace where P1 computes
#: ~99% of the time while the others fluctuate.
DEFAULT_SIGMA = (0.10, 0.35, 0.35, 0.35)
#: Residual message size for the allreduce.
RESIDUAL_BYTES = 4096


class Siesta(Workload):
    """Irregular SCF loop with frequent global reductions."""

    name = "siesta"

    def __init__(
        self,
        chunk_means: Optional[Sequence[float]] = None,
        scf_steps: int = DEFAULT_SCF_STEPS,
        subiters: int = DEFAULT_SUBITERS,
        sigma=DEFAULT_SIGMA,
        seed: int = 20080415,
        profile: PerfProfile = MEM_BOUND,
        cpus: Optional[Sequence[int]] = None,
    ) -> None:
        self.chunk_means: List[float] = list(
            chunk_means if chunk_means is not None else DEFAULT_CHUNK_MEANS
        )
        self.scf_steps = scf_steps
        self.subiters = subiters
        n = len(self.chunk_means)
        if isinstance(sigma, (int, float)):
            self.sigma = [float(sigma)] * n
        else:
            self.sigma = list(sigma)[:n]
            self.sigma += [self.sigma[-1]] * (n - len(self.sigma))
        self.seed = seed
        self.profile = profile
        self.cpus = (
            list(cpus) if cpus is not None else list(range(len(self.chunk_means)))
        )
        self._chunks = self._generate_chunks()

    # ------------------------------------------------------------------
    def _generate_chunks(self) -> np.ndarray:
        """Pre-generate every rank's chunk sizes, deterministically.

        Shape: (ranks, scf_steps, subiters).  A per-(step, rank)
        modulation makes whole phases heavier or lighter — iteration i
        genuinely does not predict iteration i+1.
        """
        rng = np.random.default_rng(self.seed)
        n = len(self.chunk_means)
        base = np.asarray(self.chunk_means)[:, None, None]
        sigma = np.asarray(self.sigma)[:, None, None]
        gauss = rng.normal(size=(n, self.scf_steps, self.subiters))
        # Lognormal with per-rank sigma, normalized to preserve means.
        noise = np.exp(sigma * gauss - sigma**2 / 2.0)
        step_mod = rng.uniform(0.8, 1.2, size=(n, self.scf_steps, 1))
        return base * noise * step_mod

    def chunk(self, rank: int, step: int, sub: int) -> float:
        """The pre-generated compute chunk of one sub-iteration."""
        return float(self._chunks[rank, step, sub])

    def total_work(self, rank: int) -> float:
        """Total work units a rank executes over the whole run."""
        return float(self._chunks[rank].sum())

    # ------------------------------------------------------------------
    def _program(self, rank: int):
        def factory(mpi: MPIRank) -> Generator:
            def prog():
                for step in range(self.scf_steps):
                    for sub in range(self.subiters):
                        yield mpi.compute(self.chunk(rank, step, sub))
                        yield mpi.allreduce()

            return prog()

        return factory

    def rank_specs(self) -> List[RankSpec]:
        """One pinned rank per chunk-mean entry."""
        return [
            RankSpec(
                name=f"P{r + 1}",
                factory=self._program(r),
                profile=self.profile,
                cpu=self.cpus[r],
            )
            for r in range(len(self.chunk_means))
        ]
