"""Workload descriptions and the MPI job launcher.

A workload enumerates its ranks as :class:`RankSpec` objects — name,
program factory, performance profile, CPU pinning — mirroring how
``mpirun`` + a host file lay processes out on the paper's OpenPower 710
(one MPI process per logical CPU, paper §IV-A).

:func:`launch_workload` instantiates the rank programs against a kernel
+ MPI runtime.  ``use_hpc=True`` makes every rank issue
``sched_setscheduler(SCHED_HPC)`` as its first action — the one-line
opt-in the paper requires from applications.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional

from repro.kernel.core_sched import Kernel
from repro.kernel.policies import SchedPolicy
from repro.kernel.task import Task
from repro.mpi.process import MPIRank
from repro.mpi.runtime import MPIRuntime
from repro.power5.perfmodel import CPU_BOUND, PerfProfile

#: A rank program factory: gets the rank's MPI handle, returns the
#: generator the kernel will drive.
ProgramFactory = Callable[[MPIRank], Generator]


@dataclass
class RankSpec:
    """One MPI process of a workload."""

    name: str
    factory: ProgramFactory
    profile: PerfProfile = CPU_BOUND
    cpu: Optional[int] = None
    #: Pin the rank to its CPU via the affinity mask (the standard HPC
    #: deployment: one MPI process per logical CPU, paper §IV-A).
    pin: bool = True
    #: Ranks the paper's tables report on (workers, not helpers).
    measured: bool = True


class Workload(ABC):
    """A complete MPI application description."""

    name: str = "workload"

    @abstractmethod
    def rank_specs(self) -> List[RankSpec]:
        """The ranks to launch, in rank order."""

    def measured_names(self) -> List[str]:
        """Names of the ranks the paper's tables report on."""
        return [s.name for s in self.rank_specs() if s.measured]


@dataclass
class LaunchedWorkload:
    """Handles of a launched workload."""

    workload: Workload
    runtime: MPIRuntime
    tasks: Dict[str, Task] = field(default_factory=dict)

    def task(self, name: str) -> Task:
        """The kernel task behind the rank named ``name``."""
        return self.tasks[name]


def _with_hpc_optin(factory: ProgramFactory) -> ProgramFactory:
    """Wrap a program so its first action is the SCHED_HPC opt-in."""

    def wrapped(mpi: MPIRank) -> Generator:
        def prog():
            yield mpi.setscheduler_hpc()
            yield from factory(mpi)

        return prog()

    return wrapped


def launch_workload(
    kernel: Kernel,
    workload: Workload,
    use_hpc: bool = False,
    runtime: Optional[MPIRuntime] = None,
) -> LaunchedWorkload:
    """Create, bind and start every rank of ``workload``."""
    runtime = runtime or MPIRuntime(kernel)
    launched = LaunchedWorkload(workload=workload, runtime=runtime)
    specs = workload.rank_specs()
    # Bind all ranks before starting any task so early sends resolve.
    pending = []
    for rank, spec in enumerate(specs):
        factory = _with_hpc_optin(spec.factory) if use_hpc else spec.factory
        mpi = MPIRank(runtime, rank)
        task = kernel.create_task(
            spec.name,
            program=None,
            policy=SchedPolicy.NORMAL,
            perf_profile=spec.profile,
            cpus_allowed=(
                [spec.cpu] if spec.pin and spec.cpu is not None else None
            ),
        )
        task.program = factory(mpi)
        runtime.bind(rank, task)
        launched.tasks[spec.name] = task
        pending.append((task, spec.cpu))
    for task, cpu in pending:
        kernel.start_task(task, cpu=cpu)
    return launched
