"""repro — HPCSched: a full reproduction of
*"A Dynamic Scheduler for Balancing HPC Applications"*
(Boneti, Gioiosa, Cazorla, Valero — SC 2008) as a discrete-event
simulation stack.

The paper's contribution (a Linux scheduling class that balances MPI
applications by driving the IBM POWER5's hardware thread priorities)
and everything it stands on are rebuilt in pure Python:

* :mod:`repro.simcore`   — discrete-event engine,
* :mod:`repro.power5`    — POWER5 chip model: priorities, decode
  arbitration, performance models, topology,
* :mod:`repro.kernel`    — Linux 2.6.24-style scheduler framework
  (scheduler core, RT class, CFS with a real red-black tree, idle
  class, domains, load balancing, tunables),
* :mod:`repro.hpcsched`  — the paper's HPCSched: SCHED_HPC class, Load
  Imbalance Detector, Uniform/Adaptive heuristics, POWER5 mechanism,
* :mod:`repro.mpi`       — simulated MPI runtime (p2p, waitall,
  collectives),
* :mod:`repro.workloads` — MetBench, MetBenchVar, BT-MZ, SIESTA, OS
  noise,
* :mod:`repro.trace`     — PARAVER-like tracing, %Comp stats, ASCII
  Gantt rendering,
* :mod:`repro.experiments` — the paper's full evaluation (Tables I-VI,
  Figures 1-6, ablations).

Quickstart::

    from repro import MetBench, run_experiment

    baseline = run_experiment(MetBench(), "cfs")
    dynamic = run_experiment(MetBench(), "uniform")
    print(dynamic.improvement_over(baseline), "% faster")
"""

from repro.experiments.common import (
    ExperimentResult,
    TaskResult,
    build_kernel,
    run_experiment,
)
from repro.hpcsched import (
    AdaptiveHeuristic,
    HPCSchedClass,
    LoadImbalanceDetector,
    UniformHeuristic,
    attach_hpcsched,
)
from repro.kernel import Kernel, SchedPolicy, Task
from repro.mpi import MPIRank, MPIRuntime
from repro.power5 import (
    CPU_BOUND,
    MEM_BOUND,
    MIXED,
    HWPriority,
    Machine,
    MachineTopology,
    decode_shares,
)
from repro.trace import TraceCollector, compute_stats, render_gantt
from repro.workloads import (
    BTMZ,
    MetBench,
    MetBenchVar,
    NoiseDaemons,
    Siesta,
    launch_workload,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # experiments
    "ExperimentResult",
    "TaskResult",
    "build_kernel",
    "run_experiment",
    # hpcsched
    "AdaptiveHeuristic",
    "HPCSchedClass",
    "LoadImbalanceDetector",
    "UniformHeuristic",
    "attach_hpcsched",
    # kernel
    "Kernel",
    "SchedPolicy",
    "Task",
    # mpi
    "MPIRank",
    "MPIRuntime",
    # power5
    "CPU_BOUND",
    "MEM_BOUND",
    "MIXED",
    "HWPriority",
    "Machine",
    "MachineTopology",
    "decode_shares",
    # trace
    "TraceCollector",
    "compute_stats",
    "render_gantt",
    # workloads
    "BTMZ",
    "MetBench",
    "MetBenchVar",
    "NoiseDaemons",
    "Siesta",
    "launch_workload",
]
