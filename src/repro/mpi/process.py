"""The per-rank MPI API used by task programs.

A program receives an :class:`MPIRank` and is written as a generator::

    def worker(mpi: MPIRank):
        yield mpi.setscheduler_hpc()      # opt into HPCSched (one line!)
        for _ in range(iterations):
            yield mpi.compute(load)
            yield mpi.barrier()

Blocking operations (``recv``, ``waitall``, collectives) are *yielded*;
immediate operations (``isend``, ``irecv``) are plain method calls that
return request handles, exactly like their MPI counterparts return
``MPI_Request``::

    reqs = [mpi.isend(n, tag=7) for n in neighbors]
    reqs += [mpi.irecv(n, tag=7) for n in neighbors]
    yield mpi.compute(zone_work)
    yield mpi.waitall(reqs)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.kernel.policies import SchedPolicy
from repro.kernel.syscalls import Compute, KernelRequest, SetScheduler, Sleep
from repro.mpi.comm import ANY_SOURCE, ANY_TAG, Communicator
from repro.mpi.requests import RequestHandle

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core_sched import Kernel
    from repro.kernel.task import Task
    from repro.mpi.runtime import MPIRuntime


class SendRequest(KernelRequest):
    """Eager blocking send: posts the message and continues."""

    def __init__(
        self,
        runtime: "MPIRuntime",
        src: int,
        dst: int,
        tag: int,
        size: int,
        payload=None,
    ) -> None:
        self.runtime, self.src, self.dst = runtime, src, dst
        self.tag, self.size, self.payload = tag, size, payload

    def execute(self, kernel, task) -> bool:
        self.runtime.post_send(
            self.src, self.dst, self.tag, self.size, payload=self.payload
        )
        return True

    sleep_reason = "mpi_send"


class RecvRequest(KernelRequest):
    """Blocking receive: sleeps until a matching message is delivered.

    The yield expression evaluates to the message payload::

        value = yield mpi.recv(0, tag=1)
    """

    is_wait = True
    sleep_reason = "mpi_recv"

    def __init__(self, runtime: "MPIRuntime", rank: int, source: int, tag: int) -> None:
        self.runtime, self.rank, self.source, self.tag = runtime, rank, source, tag

    def execute(self, kernel, task) -> bool:
        msg = self.runtime.try_recv(self.rank, self.source, self.tag)
        if msg is not None:
            task._syscall_result = msg.payload
            return True
        self.runtime.set_blocking_recv(self.rank, self.source, self.tag)
        return False


class WaitallRequest(KernelRequest):
    """MPI_Waitall: sleeps until every handle has completed."""

    is_wait = True
    sleep_reason = "mpi_waitall"

    def __init__(self, runtime: "MPIRuntime", rank: int, handles: Sequence[RequestHandle]) -> None:
        self.runtime, self.rank, self.handles = runtime, rank, list(handles)

    def execute(self, kernel, task) -> bool:
        if self.runtime.waitall_ready(self.handles):
            return True
        self.runtime.set_waitall(self.rank, self.handles)
        return False


class CollectiveRequest(KernelRequest):
    """Barrier/bcast/reduce/allreduce arrival."""

    is_wait = True

    def __init__(self, runtime: "MPIRuntime", comm: Communicator, kind: str, rank: int) -> None:
        self.runtime, self.comm, self.kind, self.rank = runtime, comm, kind, rank

    def execute(self, kernel, task) -> bool:
        return self.runtime.collective_arrive(self.comm, self.kind, self.rank)

    @property
    def sleep_reason(self) -> str:
        return f"mpi_{self.kind}"


class MPIRank:
    """The handle a rank program uses to talk to MPI and the kernel."""

    def __init__(self, runtime: "MPIRuntime", rank: int) -> None:
        self.runtime = runtime
        self.rank = rank

    # -- environment ----------------------------------------------------
    @property
    def world(self) -> Communicator:
        assert self.runtime.world is not None
        return self.runtime.world

    @property
    def size(self) -> int:
        return self.world.size

    # -- compute / kernel -------------------------------------------------
    def compute(self, work: float) -> Compute:
        """Execute ``work`` units (seconds at SMT-equal baseline speed)."""
        return Compute(work)

    def sleep(self, duration: float) -> Sleep:
        """Block for ``duration`` simulated seconds (non-MPI sleep)."""
        return Sleep(duration)

    def setscheduler_hpc(self) -> SetScheduler:
        """Opt into the SCHED_HPC policy — the single source change an
        application needs (paper §IV-A)."""
        return SetScheduler(SchedPolicy.HPC)

    # -- point-to-point ---------------------------------------------------
    def send(
        self, dest: int, tag: int = 0, size: int = 0, payload=None
    ) -> SendRequest:
        """Eager send: the message is posted and the sender continues."""
        return SendRequest(self.runtime, self.rank, dest, tag, size, payload)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> RecvRequest:
        """Blocking receive; ``yield``s the message payload."""
        return RecvRequest(self.runtime, self.rank, source, tag)

    def isend(self, dest: int, tag: int = 0, size: int = 0) -> RequestHandle:
        """Immediate send; the handle completes when the message is
        delivered (rendezvous/ack semantics).  Plain call — do not
        yield."""
        handle = RequestHandle("isend", self.rank)
        self.runtime.post_send(self.rank, dest, tag, size, isend_handle=handle)
        return handle

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> RequestHandle:
        """Immediate receive posting; completes when a matching message
        is delivered.  Plain call — do not yield."""
        return self.runtime.post_irecv(self.rank, source, tag)

    def waitall(self, handles: Sequence[RequestHandle]) -> WaitallRequest:
        """MPI_Waitall: block until every handle has completed."""
        return WaitallRequest(self.runtime, self.rank, handles)

    def wait(self, handle: RequestHandle) -> WaitallRequest:
        """MPI_Wait: block until one request completes."""
        return WaitallRequest(self.runtime, self.rank, [handle])

    def sendrecv(
        self,
        dest: int,
        source: int = ANY_SOURCE,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
        size: int = 0,
    ) -> WaitallRequest:
        """MPI_Sendrecv: simultaneous exchange (deadlock-free by
        construction: both transfers are posted before blocking)."""
        handles = [
            self.isend(dest, tag=sendtag, size=size),
            self.irecv(source, tag=recvtag),
        ]
        return WaitallRequest(self.runtime, self.rank, handles)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """MPI_Iprobe: is a matching message already delivered?
        Plain call — do not yield."""
        return self.runtime.has_message(self.rank, source, tag)

    # -- collectives --------------------------------------------------------
    def barrier(self, comm: Optional[Communicator] = None) -> CollectiveRequest:
        """MPI_Barrier over ``comm`` (default: world)."""
        return CollectiveRequest(self.runtime, comm or self.world, "barrier", self.rank)

    def bcast(self, comm: Optional[Communicator] = None) -> CollectiveRequest:
        """MPI_Bcast (timing only; data is not modelled)."""
        return CollectiveRequest(self.runtime, comm or self.world, "bcast", self.rank)

    def reduce(self, comm: Optional[Communicator] = None) -> CollectiveRequest:
        """MPI_Reduce (timing only)."""
        return CollectiveRequest(self.runtime, comm or self.world, "reduce", self.rank)

    def allreduce(self, comm: Optional[Communicator] = None) -> CollectiveRequest:
        """MPI_Allreduce (timing only)."""
        return CollectiveRequest(self.runtime, comm or self.world, "allreduce", self.rank)

    def gather(self, comm: Optional[Communicator] = None) -> CollectiveRequest:
        """MPI_Gather (timing only)."""
        return CollectiveRequest(self.runtime, comm or self.world, "gather", self.rank)

    def scatter(self, comm: Optional[Communicator] = None) -> CollectiveRequest:
        """MPI_Scatter (timing only)."""
        return CollectiveRequest(self.runtime, comm or self.world, "scatter", self.rank)

    def alltoall(self, comm: Optional[Communicator] = None) -> CollectiveRequest:
        """MPI_Alltoall (timing only)."""
        return CollectiveRequest(self.runtime, comm or self.world, "alltoall", self.rank)
