"""The MPI runtime: matching engine, blocking semantics, collectives.

One :class:`MPIRuntime` binds a set of ranks (kernel tasks) together.
All operations funnel through it:

* ``post_send`` schedules a delivery event after the latency model's
  delay; on delivery the message either satisfies a posted receive
  (waking the receiver if it sleeps on it) or lands in the unexpected
  queue,
* ``post_irecv`` matches against the unexpected queue first, then
  parks,
* blocking ``recv``/``waitall``/collectives put the caller to sleep and
  the runtime wakes it when the condition is satisfied — these sleeps
  are flagged ``is_wait`` so the HPCSched detector sees the iteration
  boundary.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Sequence, Tuple

from repro.mpi.comm import Communicator
from repro.mpi.messages import LatencyModel, Message
from repro.mpi.requests import RequestHandle

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core_sched import Kernel
    from repro.kernel.task import Task

#: Event priority for message deliveries/wakeups (after phase completions).
_EVPRIO_DELIVERY = 1


class _RankState:
    """Per-rank matching state."""

    __slots__ = ("unexpected", "posted_recvs", "blocking_recv", "waitall")

    def __init__(self) -> None:
        #: Delivered messages with no matching receive yet.
        self.unexpected: Deque[Message] = deque()
        #: Posted irecv handles awaiting a message, in post order.
        self.posted_recvs: List[RequestHandle] = []
        #: (source, tag) of an in-progress blocking recv, or None.
        self.blocking_recv: Optional[Tuple[int, int]] = None
        #: Handles an in-progress waitall is sleeping on, or None.
        self.waitall: Optional[List[RequestHandle]] = None


class _CollectiveState:
    """Arrival bookkeeping for one in-flight collective operation."""

    __slots__ = ("arrived", "waiters")

    def __init__(self) -> None:
        self.arrived: set = set()
        self.waiters: List[int] = []  # ranks sleeping on the collective


class MPIRuntime:
    """Binds ranks to the kernel and implements MPI semantics."""

    def __init__(
        self,
        kernel: "Kernel",
        latency: Optional[LatencyModel] = None,
        route_delay=None,
    ) -> None:
        self.kernel = kernel
        self.latency = latency or LatencyModel()
        #: Optional ``(src, dst, size) -> seconds`` override used by the
        #: cluster extension to model slower inter-node links.
        self.route_delay = route_delay
        self.tasks: Dict[int, "Task"] = {}
        #: Kernel owning each rank's task (multi-node clusters bind
        #: ranks living on different nodes; all share one Simulator).
        self._kernels: Dict[int, "Kernel"] = {}
        self._states: Dict[int, _RankState] = {}
        self._collectives: Dict[Tuple[int, str, int], _CollectiveState] = {}
        self._collective_round: Dict[Tuple[int, str], int] = {}
        self._msg_seq = 0
        self.world: Optional[Communicator] = None
        #: Counters for analysis.
        self.messages_sent = 0
        self.messages_delivered = 0

    # ------------------------------------------------------------------
    # Rank registration
    # ------------------------------------------------------------------
    def bind(self, rank: int, task: "Task", kernel: Optional["Kernel"] = None) -> None:
        """Associate ``rank`` with a kernel task (and, for multi-node
        clusters, the kernel that owns it)."""
        if rank in self.tasks:
            raise ValueError(f"rank {rank} already bound")
        self.tasks[rank] = task
        self._kernels[rank] = kernel or self.kernel
        self._states[rank] = _RankState()
        self.world = Communicator(sorted(self.tasks), name="world")

    def state(self, rank: int) -> _RankState:
        """The rank's matching state (mostly for tests/inspection)."""
        return self._states[rank]

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def post_send(
        self,
        src: int,
        dst: int,
        tag: int,
        size: int,
        payload=None,
        isend_handle: Optional[RequestHandle] = None,
    ) -> Message:
        """Eager send: schedule delivery, sender continues immediately.

        If ``isend_handle`` is given it completes at *delivery* time
        (rendezvous/ack semantics), so a ``waitall`` over isends blocks
        at least for the interconnect latency.
        """
        if dst not in self.tasks:
            raise ValueError(f"send to unknown rank {dst}")
        now = self.kernel.now
        delay = (
            self.route_delay(src, dst, size)
            if self.route_delay is not None
            else self.latency.delay(size)
        )
        msg = Message(
            src=src,
            dst=dst,
            tag=tag,
            size=size,
            send_time=now,
            arrival_time=now + delay,
            payload=payload,
            seq=self._msg_seq,
            isend_handle=isend_handle,
        )
        self._msg_seq += 1
        self.messages_sent += 1
        self.kernel.sim.at(
            msg.arrival_time,
            lambda: self._deliver(msg),
            priority=_EVPRIO_DELIVERY,
            label=f"mpi-deliver/{src}->{dst}",
        )
        return msg

    def post_irecv(self, rank: int, source: int, tag: int) -> RequestHandle:
        """Post a non-blocking receive; may complete immediately from
        the unexpected queue."""
        handle = RequestHandle("irecv", rank, source, tag)
        st = self._states[rank]
        msg = self._match_unexpected(st, source, tag)
        if msg is not None:
            handle.finish(msg)
        else:
            st.posted_recvs.append(handle)
        return handle

    def try_recv(self, rank: int, source: int, tag: int) -> Optional[Message]:
        """Consume a matching delivered message, if any (blocking-recv
        fast path)."""
        return self._match_unexpected(self._states[rank], source, tag)

    def has_message(self, rank: int, source: int, tag: int) -> bool:
        """Non-consuming probe of the delivered-message queue."""
        return any(
            msg.matches(source, tag) for msg in self._states[rank].unexpected
        )

    def set_blocking_recv(self, rank: int, source: int, tag: int) -> None:
        """Park ``rank`` on a blocking receive for (source, tag)."""
        self._states[rank].blocking_recv = (source, tag)

    def waitall_ready(self, handles: Sequence[RequestHandle]) -> bool:
        """Whether every handle has already completed."""
        return all(h.complete for h in handles)

    def set_waitall(self, rank: int, handles: Sequence[RequestHandle]) -> None:
        """Park ``rank`` until all ``handles`` complete."""
        self._states[rank].waitall = list(handles)

    # ------------------------------------------------------------------
    # Delivery and wakeups
    # ------------------------------------------------------------------
    def _deliver(self, msg: Message) -> None:
        self.messages_delivered += 1
        if msg.isend_handle is not None:
            msg.isend_handle.finish(msg)
            self._check_waitall(msg.src)
        st = self._states[msg.dst]

        # 1. A sleeping blocking recv has absolute priority.
        if st.blocking_recv is not None:
            source, tag = st.blocking_recv
            if msg.matches(source, tag):
                st.blocking_recv = None
                # the receiver's yield expression evaluates to the payload
                self.tasks[msg.dst]._syscall_result = msg.payload
                self._wake(msg.dst)
                return

        # 2. Earliest matching posted irecv.
        for handle in st.posted_recvs:
            if not handle.complete and msg.matches(handle.source, handle.tag):
                handle.finish(msg)
                st.posted_recvs.remove(handle)
                self._check_waitall(msg.dst)
                return

        # 3. Unexpected message queue.
        st.unexpected.append(msg)

    def _check_waitall(self, rank: int) -> None:
        st = self._states[rank]
        if st.waitall is not None and all(h.complete for h in st.waitall):
            st.waitall = None
            self._wake(rank)

    def _wake(self, rank: int) -> None:
        self._kernels[rank].wake_up(self.tasks[rank])

    def _match_unexpected(
        self, st: _RankState, source: int, tag: int
    ) -> Optional[Message]:
        for msg in st.unexpected:
            if msg.matches(source, tag):
                st.unexpected.remove(msg)
                return msg
        return None

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def collective_arrive(
        self, comm: Communicator, kind: str, rank: int
    ) -> bool:
        """Record ``rank``'s arrival at a collective.

        Every participant blocks — including the last arriver, which
        still has to wait for the release message to travel the
        reduction tree.  (This also means every rank observes a proper
        wait/wakeup cycle per collective, which is what the HPCSched
        detector counts iterations with.)  Always returns ``False``.
        """
        if rank not in comm:
            raise ValueError(f"rank {rank} not in {comm!r}")
        round_key = (comm.cid, kind)
        rnd = self._collective_round.setdefault(round_key, 0)
        key = (comm.cid, kind, rnd)
        cs = self._collectives.setdefault(key, _CollectiveState())
        cs.arrived.add(rank)
        cs.waiters.append(rank)
        if len(cs.arrived) == comm.size:
            # Complete: release everyone after the tree latency.
            self._collective_round[round_key] = rnd + 1
            del self._collectives[key]
            delay = self._tree_delay(comm.size)
            for waiter in cs.waiters:
                self.kernel.sim.after(
                    delay,
                    lambda r=waiter: self._wake(r),
                    priority=_EVPRIO_DELIVERY,
                    label=f"mpi-{kind}-release/{waiter}",
                )
        return False

    def _tree_delay(self, size: int) -> float:
        depth = max(1, (size - 1).bit_length())
        return depth * self.latency.base
