"""Non-blocking request handles (MPI_Request equivalents)."""

from __future__ import annotations

from typing import Optional

from repro.mpi.messages import Message


class RequestHandle:
    """Returned by ``isend``/``irecv``; completed by the runtime."""

    _next_id = 0

    def __init__(self, kind: str, rank: int, source: int = -2, tag: int = -2) -> None:
        self.kind = kind  # "isend" | "irecv"
        self.rank = rank  # owner rank
        self.source = source  # irecv matching
        self.tag = tag
        self.complete = False
        self.message: Optional[Message] = None
        self.rid = RequestHandle._next_id
        RequestHandle._next_id += 1

    def finish(self, message: Optional[Message] = None) -> None:
        """Mark the request complete (with the matched message, for
        receives)."""
        self.complete = True
        self.message = message

    def __repr__(self) -> str:  # pragma: no cover
        state = "done" if self.complete else "pending"
        return f"<Request {self.kind} r{self.rank} {state}>"
