"""Simulated MPI runtime.

MPI ranks are kernel tasks whose programs yield MPI operations; the
runtime turns those into the blocking/wakeup behaviour the scheduler
observes (the paper's tasks "sleep while waiting for an incoming
message and need to be woken up as soon as the message arrives", §V-D).

Semantics implemented:

* eager point-to-point ``send``/``recv`` with (source, tag) matching,
  ``ANY_SOURCE``/``ANY_TAG`` wildcards and per-channel FIFO ordering,
* non-blocking ``isend``/``irecv`` returning request handles and
  ``waitall`` (BT-MZ's neighbor-exchange pattern),
* collectives: ``barrier`` (MetBench's synchronization), ``bcast``,
  ``reduce`` and ``allreduce`` with log2-tree latency models,
* a configurable latency model (base latency + size/bandwidth).
"""

from repro.mpi.comm import Communicator, ANY_SOURCE, ANY_TAG
from repro.mpi.messages import Message, LatencyModel
from repro.mpi.requests import RequestHandle
from repro.mpi.runtime import MPIRuntime
from repro.mpi.process import MPIRank

__all__ = [
    "Communicator",
    "ANY_SOURCE",
    "ANY_TAG",
    "Message",
    "LatencyModel",
    "RequestHandle",
    "MPIRuntime",
    "MPIRank",
]
