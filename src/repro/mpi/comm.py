"""Communicators and matching wildcards."""

from __future__ import annotations

from typing import Sequence, Tuple

#: Wildcards for receive matching, as in MPI.
ANY_SOURCE = -1
ANY_TAG = -1


class Communicator:
    """A group of ranks sharing collectives (MPI_COMM_WORLD et al.)."""

    _next_id = 0

    def __init__(self, ranks: Sequence[int], name: str = "world") -> None:
        if len(set(ranks)) != len(ranks):
            raise ValueError("duplicate ranks in communicator")
        self.ranks: Tuple[int, ...] = tuple(ranks)
        self.name = name
        self.cid = Communicator._next_id
        Communicator._next_id += 1

    @property
    def size(self) -> int:
        return len(self.ranks)

    def __contains__(self, rank: int) -> bool:
        return rank in self.ranks

    def split(self, color_of) -> "dict":
        """MPI_Comm_split: partition ranks by ``color_of(rank)``.

        Returns ``{color: Communicator}``; every member must use the
        *same* returned communicator objects (split once at the root of
        the program, not per rank).
        """
        groups: dict = {}
        for rank in self.ranks:
            groups.setdefault(color_of(rank), []).append(rank)
        return {
            color: Communicator(ranks, name=f"{self.name}/split{color}")
            for color, ranks in groups.items()
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Communicator {self.name!r} size={self.size}>"
