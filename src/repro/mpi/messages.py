"""Messages and the interconnect latency model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass(frozen=True)
class LatencyModel:
    """Point-to-point delivery time: ``base + size / bandwidth``.

    Defaults approximate an intra-node MPICH-over-shared-memory path on
    2008-era hardware: a few microseconds of base latency and ~1 GB/s
    of copy bandwidth.
    """

    base: float = 5e-6
    bandwidth: float = 1e9  # bytes/second

    def __post_init__(self) -> None:
        # A non-positive base silently breaks the sharded runner's PDES
        # lookahead (and yields zero/negative delays nothing else
        # diagnoses), so reject degenerate models at construction.
        if not self.base > 0.0:
            raise ValueError(
                f"LatencyModel.base must be positive, got {self.base!r}"
            )
        if not self.bandwidth > 0.0:
            raise ValueError(
                f"LatencyModel.bandwidth must be positive, "
                f"got {self.bandwidth!r}"
            )

    def delay(self, size: int) -> float:
        """Delivery time for a ``size``-byte message."""
        return self.base + (size / self.bandwidth if size > 0 else 0.0)


@dataclass
class Message:
    """An in-flight or delivered point-to-point message."""

    src: int
    dst: int
    tag: int
    size: int
    send_time: float
    arrival_time: float
    payload: Any = None
    #: Monotonic sequence used to keep matching deterministic.
    seq: int = field(default=0)
    #: The sender's isend handle, completed at delivery time (models
    #: the rendezvous/ack completion semantics of MPI_Isend: even a
    #: rank whose partners are all waiting blocks for the handshake).
    isend_handle: Optional[Any] = None

    def matches(self, source: int, tag: int) -> bool:
        """Whether a receive posted for (source, tag) accepts this
        message (wildcards allowed)."""
        from repro.mpi.comm import ANY_SOURCE, ANY_TAG

        return (source == ANY_SOURCE or source == self.src) and (
            tag == ANY_TAG or tag == self.tag
        )
