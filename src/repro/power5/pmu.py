"""Performance Monitoring Unit (PMU) counters for the SMT cores.

The paper's companion characterization study (reference [4], Boneti et
al. ISCA'08) measured how hardware priorities shift core resources
using the POWER5's performance counters.  This module provides the
simulated equivalent: per-context, time-integrated counters

* ``busy_time``             — seconds the context executed a task,
* ``st_time``               — seconds of that in single-thread mode
                              (sibling idle),
* ``decode_share_integral`` — ∫ decode_share dt while busy (so
                              ``decode_share_integral / busy_time`` is
                              the average decode share received),
* ``work_done``             — work units retired (the simulated IPC
                              integral).

Accumulation is exact and event-driven: the kernel calls
:meth:`CorePMU.advance` at every SMT-state change (context switch,
priority change, sibling idle/busy transition); the interval since the
previous call is attributed to the state snapshotted then.

Known approximation: the few microseconds of context-switch cost are
attributed to the incoming task at its nominal rate (a real PMU would
similarly count pipeline-restart cycles), so ``work_done`` can exceed
the program-visible retired work by ``switches x cost x speed``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.power5 import decode


@dataclass
class ContextCounters:
    """Accumulated counters of one SMT context."""

    busy_time: float = 0.0
    st_time: float = 0.0
    decode_share_integral: float = 0.0
    work_done: float = 0.0

    @property
    def avg_decode_share(self) -> float:
        """Mean decode share while busy (0..1)."""
        return (
            self.decode_share_integral / self.busy_time
            if self.busy_time > 0
            else 0.0
        )

    @property
    def smt_time(self) -> float:
        """Busy time spent sharing the core with an active sibling."""
        return self.busy_time - self.st_time


@dataclass
class _Snapshot:
    busy: bool = False
    st_mode: bool = False
    share: float = 0.0
    rate: float = 0.0


class CorePMU:
    """Counters + state snapshot for one core's two contexts."""

    def __init__(self, core) -> None:
        self.core = core
        self.counters: List[ContextCounters] = [
            ContextCounters() for _ in core.contexts
        ]
        self._snap: List[_Snapshot] = [_Snapshot() for _ in core.contexts]
        self._last_time = 0.0

    def advance(self, now: float) -> None:
        """Attribute the elapsed interval to the previous snapshot, then
        re-snapshot the core's current SMT state."""
        dt = now - self._last_time
        if dt > 0:
            for ctr, snap in zip(self.counters, self._snap):
                if not snap.busy:
                    continue
                ctr.busy_time += dt
                ctr.decode_share_integral += snap.share * dt
                ctr.work_done += snap.rate * dt
                if snap.st_mode:
                    ctr.st_time += dt
        self._last_time = now
        self._resnapshot()

    def _resnapshot(self) -> None:
        ctxs = self.core.contexts
        busy = [c.busy for c in ctxs]
        for i, ctx in enumerate(ctxs):
            snap = self._snap[i]
            snap.busy = busy[i]
            if not busy[i]:
                snap.st_mode = False
                snap.share = 0.0
                snap.rate = 0.0
                continue
            sibling_busy = busy[1 - i]
            snap.st_mode = not sibling_busy
            if sibling_busy:
                # Module-attribute call so the validated implementation
                # installed by decode.enable_validation() is observed.
                snap.share, _ = decode.decode_shares(
                    int(ctxs[i].priority), int(ctxs[1 - i].priority)
                )
            else:
                snap.share = 1.0
            task = ctx.task
            if task is not None and getattr(task, "perf_profile", None) is not None:
                snap.rate = self.core.context_speed(i, task.perf_profile)
            else:
                snap.rate = 0.0


class MachinePMU:
    """PMU aggregation over a whole machine."""

    def __init__(self, machine) -> None:
        self.machine = machine
        self.cores: Dict[int, CorePMU] = {
            core.core_id: CorePMU(core) for core in machine.cores()
        }

    def pmu_for_core(self, core) -> CorePMU:
        """The per-core PMU instance."""
        return self.cores[core.core_id]

    def advance_core(self, core, now: float) -> None:
        """Advance one core's counters to ``now`` (kernel hook)."""
        self.cores[core.core_id].advance(now)

    def finalize(self, now: float) -> None:
        """Flush every core's counters at end of run (idempotent)."""
        for pmu in self.cores.values():
            pmu.advance(now)

    def context_counters(self, cpu_id: int) -> ContextCounters:
        """Accumulated counters of the context behind ``cpu_id``."""
        ctx = self.machine.context(cpu_id)
        return self.cores[ctx.core.core_id].counters[ctx.thread_index]
