"""SMT core and hardware-context model.

An :class:`SMTCore` owns two :class:`SMTContext` slots.  The simulated
kernel loads at most one task onto each context; the core answers "how
fast is the task on context X progressing right now?" by combining both
contexts' hardware priorities and busy states through a
:class:`~repro.power5.perfmodel.PerformanceModel`.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.power5.perfmodel import PerformanceModel, PerfProfile, TableDrivenModel
from repro.power5.priorities import (
    DEFAULT_PRIORITY,
    HWPriority,
    PriorityError,
    coerce_priority,
)


class SMTContext:
    """One hardware thread (what the OS sees as a logical CPU)."""

    __slots__ = ("cpu_id", "core", "thread_index", "priority", "task", "busy")

    def __init__(self, cpu_id: int, core: "SMTCore", thread_index: int) -> None:
        self.cpu_id = cpu_id
        self.core = core
        self.thread_index = thread_index
        #: Hardware thread priority currently programmed on the context.
        self.priority: HWPriority = DEFAULT_PRIORITY
        #: Opaque handle to the task the kernel loaded (None = idle).
        self.task: Optional[Any] = None
        #: Whether the context is executing useful work.  The Linux idle
        #: loop snoozes at very low priority, so an idle context does not
        #: count as busy for SMT resource purposes.
        self.busy: bool = False

    @property
    def sibling(self) -> "SMTContext":
        return self.core.contexts[1 - self.thread_index]

    def load(self, task: Any, priority: int, busy: bool = True) -> None:
        """Install ``task`` on the context with hardware ``priority``."""
        self.task = task
        self.priority = coerce_priority(priority)
        self.busy = busy

    def idle(self) -> None:
        """Return the context to the idle loop (snooze priority)."""
        self.task = None
        self.busy = False
        self.priority = HWPriority.VERY_LOW

    def set_priority(self, priority: int) -> None:
        """Reprogram the context's hardware thread priority."""
        self.priority = coerce_priority(priority)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "busy" if self.busy else "idle"
        return f"<ctx cpu{self.cpu_id} prio={int(self.priority)} {state}>"


class SMTCore:
    """A 2-way SMT POWER5 core."""

    def __init__(
        self,
        core_id: int,
        first_cpu_id: int,
        perf_model: Optional[PerformanceModel] = None,
        threads: int = 2,
    ) -> None:
        if threads != 2:
            raise PriorityError("the POWER5 core model is strictly 2-way SMT")
        self.core_id = core_id
        self.perf_model = perf_model or TableDrivenModel()
        self.contexts: List[SMTContext] = [
            SMTContext(first_cpu_id + i, self, i) for i in range(threads)
        ]

    def context_speed(self, thread_index: int, profile: PerfProfile) -> float:
        """Current execution speed of the task on ``thread_index``.

        Speed is a multiplier relative to the SMT-equal baseline (both
        contexts busy, equal priority -> 1.0).
        """
        ctx = self.contexts[thread_index]
        sib = ctx.sibling
        return self.perf_model.speed(
            profile,
            own_priority=int(ctx.priority),
            sibling_priority=int(sib.priority),
            sibling_busy=sib.busy,
        )

    def context_speeds(
        self, profile0: PerfProfile, profile1: PerfProfile
    ) -> "tuple[float, float]":
        """Both contexts' current speeds in one model call (the
        rate-propagation drain's dual-running fast path).  Exactly
        equivalent to ``(context_speed(0, profile0),
        context_speed(1, profile1))``."""
        c0, c1 = self.contexts
        return self.perf_model.speed_pair(
            profile0,
            profile1,
            int(c0.priority),
            int(c1.priority),
            c0.busy,
            c1.busy,
        )

    def st_mode(self) -> bool:
        """Whether the core is effectively running a single thread."""
        busy = [ctx for ctx in self.contexts if ctx.busy]
        return len(busy) <= 1

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<SMTCore {self.core_id} {self.contexts!r}>"
