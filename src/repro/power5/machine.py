"""Whole-machine topology: chips -> cores -> contexts (logical CPUs).

The paper's testbed is an IBM OpenPower 710 with one POWER5 chip:
2 cores x 2 SMT contexts = 4 logical CPUs.  :class:`Machine` builds that
hierarchy (generalized to N chips) and derives the **scheduling domains**
the Linux workload balancer operates on: context level (the 2 CPUs of a
core), core level (the cores of a chip) and chip level (all chips).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.power5.chip import POWER5Chip
from repro.power5.core import SMTContext, SMTCore
from repro.power5.perfmodel import PerformanceModel


@dataclass(frozen=True)
class MachineTopology:
    """Shape of the simulated machine."""

    chips: int = 1
    cores_per_chip: int = 2
    threads_per_core: int = 2

    @property
    def n_cpus(self) -> int:
        return self.chips * self.cores_per_chip * self.threads_per_core

    @property
    def n_cores(self) -> int:
        return self.chips * self.cores_per_chip


class Machine:
    """The hardware the simulated kernel runs on."""

    def __init__(
        self,
        topology: Optional[MachineTopology] = None,
        perf_model: Optional[PerformanceModel] = None,
    ) -> None:
        self.topology = topology or MachineTopology()
        self.chips: List[POWER5Chip] = []
        t = self.topology
        for chip_id in range(t.chips):
            self.chips.append(
                POWER5Chip(
                    chip_id=chip_id,
                    first_core_id=chip_id * t.cores_per_chip,
                    first_cpu_id=chip_id * t.cores_per_chip * t.threads_per_core,
                    perf_model=perf_model,
                    cores=t.cores_per_chip,
                    threads_per_core=t.threads_per_core,
                )
            )
        self._contexts: Dict[int, SMTContext] = {}
        for chip in self.chips:
            for ctx in chip.contexts:
                self._contexts[ctx.cpu_id] = ctx
        # Topology is immutable after construction; precompute the
        # orderings that hot paths (wake placement, balancing, kernel
        # construction) would otherwise re-derive per call.
        self._cpu_ids: tuple = tuple(sorted(self._contexts))
        self._cores: List[SMTCore] = [
            core for chip in self.chips for core in chip.cores
        ]
        self._domains: Optional[Dict[str, List[List[int]]]] = None

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    @property
    def n_cpus(self) -> int:
        return self.topology.n_cpus

    @property
    def cpu_ids(self) -> Sequence[int]:
        return self._cpu_ids

    def context(self, cpu_id: int) -> SMTContext:
        """The hardware context behind logical CPU ``cpu_id``."""
        return self._contexts[cpu_id]

    def core_of(self, cpu_id: int) -> SMTCore:
        """The physical core owning logical CPU ``cpu_id``."""
        return self._contexts[cpu_id].core

    def sibling_cpu(self, cpu_id: int) -> int:
        """The other logical CPU of the same core."""
        return self._contexts[cpu_id].sibling.cpu_id

    def cores(self) -> List[SMTCore]:
        """All physical cores, across chips, in id order."""
        return self._cores

    # ------------------------------------------------------------------
    # Scheduling domains
    # ------------------------------------------------------------------
    def domains(self) -> Dict[str, List[List[int]]]:
        """CPU groups per domain level, ordered context < core < chip.

        Each level maps to a list of *groups*; balancing a level means
        equalizing runnable-task counts across the groups of that level
        (paper §IV-A: "our workload balancer tries to balance the number
        of tasks at each domain level").  Memoized: the topology is
        frozen at construction.
        """
        if self._domains is not None:
            return self._domains
        context_level = [
            [ctx.cpu_id for ctx in core.contexts] for core in self.cores()
        ]
        core_level = [
            [ctx.cpu_id for core in chip.cores for ctx in core.contexts]
            for chip in self.chips
        ]
        chip_level = [list(self._cpu_ids)]
        self._domains = {
            "context": context_level,
            "core": core_level,
            "chip": chip_level,
        }
        return self._domains

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        t = self.topology
        return (
            f"<Machine {t.chips} chip(s) x {t.cores_per_chip} core(s) x "
            f"{t.threads_per_core} thread(s) = {t.n_cpus} CPUs>"
        )
