"""POWER5 chip: two SMT cores sharing the off-core hierarchy."""

from __future__ import annotations

from typing import List, Optional

from repro.power5.core import SMTCore
from repro.power5.perfmodel import PerformanceModel


class POWER5Chip:
    """A dual-core POWER5 chip (4 logical CPUs)."""

    def __init__(
        self,
        chip_id: int,
        first_core_id: int,
        first_cpu_id: int,
        perf_model: Optional[PerformanceModel] = None,
        cores: int = 2,
        threads_per_core: int = 2,
    ) -> None:
        self.chip_id = chip_id
        self.cores: List[SMTCore] = []
        for i in range(cores):
            self.cores.append(
                SMTCore(
                    core_id=first_core_id + i,
                    first_cpu_id=first_cpu_id + i * threads_per_core,
                    perf_model=perf_model,
                    threads=threads_per_core,
                )
            )

    @property
    def contexts(self):
        for core in self.cores:
            yield from core.contexts

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<POWER5Chip {self.chip_id} cores={len(self.cores)}>"
