"""Hardware thread priorities and the ``or X,X,X`` interface (paper Table II).

A POWER5 context's hardware priority is an integer in ``0..7``:

====  ============  ==========  =============
Prio  Name          Privilege   or-nop
====  ============  ==========  =============
0     Thread off    Hypervisor  (none)
1     Very low      Supervisor  ``or 31,31,31``
2     Low           User        ``or 1,1,1``
3     Medium-low    User        ``or 6,6,6``
4     Medium        User        ``or 2,2,2``
5     Medium-high   Supervisor  ``or 5,5,5``
6     High          Supervisor  ``or 3,3,3``
7     Very high     Hypervisor  ``or 7,7,7``
====  ============  ==========  =============

The OS (supervisor) can set priorities 1..6; unprivileged user code can set
only 2..4; the hypervisor spans the full range.  The paper's HPCSched runs
in the kernel, i.e. at supervisor level, and confines itself to ``[4, 6]``
so the priority *difference* within a core never exceeds 2.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Dict


class PriorityError(ValueError):
    """Invalid hardware-priority operation (range or privilege)."""


class HWPriority(IntEnum):
    """POWER5 hardware thread priority levels."""

    THREAD_OFF = 0
    VERY_LOW = 1
    LOW = 2
    MEDIUM_LOW = 3
    MEDIUM = 4
    MEDIUM_HIGH = 5
    HIGH = 6
    VERY_HIGH = 7


class PrivilegeLevel(IntEnum):
    """Execution privilege, ordered so that higher values may do more."""

    USER = 0
    SUPERVISOR = 1
    HYPERVISOR = 2


#: or-nop register number encoding each settable priority (Table II).
#: ``or X,X,X`` with these register numbers is an architectural no-op that
#: only changes the issuing thread's hardware priority.
OR_NOP_REGISTER: Dict[HWPriority, int] = {
    HWPriority.VERY_LOW: 31,
    HWPriority.LOW: 1,
    HWPriority.MEDIUM_LOW: 6,
    HWPriority.MEDIUM: 2,
    HWPriority.MEDIUM_HIGH: 5,
    HWPriority.HIGH: 3,
    HWPriority.VERY_HIGH: 7,
}

_REGISTER_TO_PRIORITY = {reg: prio for prio, reg in OR_NOP_REGISTER.items()}

#: Minimum privilege required to set each priority level (Table II).
_REQUIRED_PRIVILEGE: Dict[HWPriority, PrivilegeLevel] = {
    HWPriority.THREAD_OFF: PrivilegeLevel.HYPERVISOR,
    HWPriority.VERY_LOW: PrivilegeLevel.SUPERVISOR,
    HWPriority.LOW: PrivilegeLevel.USER,
    HWPriority.MEDIUM_LOW: PrivilegeLevel.USER,
    HWPriority.MEDIUM: PrivilegeLevel.USER,
    HWPriority.MEDIUM_HIGH: PrivilegeLevel.SUPERVISOR,
    HWPriority.HIGH: PrivilegeLevel.SUPERVISOR,
    HWPriority.VERY_HIGH: PrivilegeLevel.HYPERVISOR,
}

#: Default priority each context boots with (the paper's "normal" priority).
DEFAULT_PRIORITY = HWPriority.MEDIUM


def coerce_priority(value: int) -> HWPriority:
    """Validate and convert an integer to :class:`HWPriority`."""
    if type(value) is HWPriority:
        return value  # hot path: already coerced (context switches)
    try:
        return HWPriority(value)
    except ValueError as exc:
        raise PriorityError(f"hardware priority {value!r} not in 0..7") from exc


def or_nop_for_priority(priority: int) -> str:
    """Return the ``or X,X,X`` mnemonic that sets ``priority``.

    Raises :class:`PriorityError` for priority 0, which cannot be entered
    via the or-nop interface (the hypervisor switches threads off through
    a different mechanism).
    """
    prio = coerce_priority(priority)
    if prio not in OR_NOP_REGISTER:
        raise PriorityError(f"priority {prio} has no or-nop encoding")
    reg = OR_NOP_REGISTER[prio]
    return f"or {reg},{reg},{reg}"


def priority_for_or_nop(register: int) -> HWPriority:
    """Decode the priority set by ``or register,register,register``.

    Raises :class:`PriorityError` if the register number is not one of the
    special priority-setting encodings (in which case the instruction is a
    plain no-op with no priority effect on real hardware).
    """
    try:
        return _REGISTER_TO_PRIORITY[register]
    except KeyError as exc:
        raise PriorityError(
            f"or {register},{register},{register} does not encode a priority"
        ) from exc


def required_privilege(priority: int) -> PrivilegeLevel:
    """Minimum privilege level required to set ``priority`` (Table II)."""
    return _REQUIRED_PRIVILEGE[coerce_priority(priority)]


def can_set_priority(priority: int, privilege: PrivilegeLevel) -> bool:
    """Whether code at ``privilege`` may set ``priority``."""
    return privilege >= required_privilege(priority)


def settable_range(privilege: PrivilegeLevel) -> range:
    """The contiguous priority range settable at ``privilege``.

    User: 2..4, Supervisor: 1..6, Hypervisor: 0..7 — matching Table II.
    """
    if privilege == PrivilegeLevel.USER:
        return range(2, 5)
    if privilege == PrivilegeLevel.SUPERVISOR:
        return range(1, 7)
    return range(0, 8)
