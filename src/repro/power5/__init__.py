"""IBM POWER5 processor model.

The POWER5 is a dual-core chip whose cores are 2-way SMT.  Each hardware
thread (*context*) carries a **hardware thread priority** in ``0..7`` that
biases the core's instruction-decode arbitration: every window of ``R``
cycles the lower-priority context receives 1 decode cycle and the higher
priority context receives ``R - 1``, with ``R = 2**(|dP| + 1)`` (paper
Table I).  Priorities 0, 1 and 7 have special semantics (thread off,
background thread, single-thread mode).

This package models exactly the pieces the paper's scheduler interacts
with: the priority registers and their privilege rules (Table II), the
decode-share arithmetic (Table I), the chip topology (chip -> core ->
context) used to build scheduling domains, and pluggable performance
models translating a decode share into a task execution rate.
"""

from repro.power5.priorities import (
    HWPriority,
    PrivilegeLevel,
    PriorityError,
    OR_NOP_REGISTER,
    or_nop_for_priority,
    priority_for_or_nop,
    required_privilege,
    can_set_priority,
)
from repro.power5.decode import (
    decode_window,
    DECODE_TABLE,
)
from repro.power5 import decode as _decode


def decode_cycles(prio_a, prio_b):
    """Decode cycles per window granted to (task A, task B).

    Thin dispatcher: ``decode.enable_validation()`` swaps the underlying
    implementation, and this wrapper always calls the current one.
    """
    return _decode.decode_cycles(prio_a, prio_b)


def decode_shares(prio_a, prio_b):
    """Fraction of decode bandwidth granted to each context (dispatches
    to the currently installed implementation, see
    :func:`repro.power5.decode.enable_validation`)."""
    return _decode.decode_shares(prio_a, prio_b)
from repro.power5.perfmodel import (
    PerformanceModel,
    DecodeShareModel,
    TableDrivenModel,
    PerfProfile,
    CPU_BOUND,
    MEM_BOUND,
    MIXED,
)
from repro.power5.core import SMTCore, SMTContext
from repro.power5.chip import POWER5Chip
from repro.power5.machine import Machine, MachineTopology

__all__ = [
    "HWPriority",
    "PrivilegeLevel",
    "PriorityError",
    "OR_NOP_REGISTER",
    "or_nop_for_priority",
    "priority_for_or_nop",
    "required_privilege",
    "can_set_priority",
    "decode_window",
    "decode_cycles",
    "decode_shares",
    "DECODE_TABLE",
    "PerformanceModel",
    "DecodeShareModel",
    "TableDrivenModel",
    "PerfProfile",
    "CPU_BOUND",
    "MEM_BOUND",
    "MIXED",
    "SMTCore",
    "SMTContext",
    "POWER5Chip",
    "Machine",
    "MachineTopology",
]
