"""Priority-mechanism variants: POWER5, POWER6 and the CELL SPEs.

Paper §I: the POWER5 is not isolated — the IBM POWER6 provides "a
similar prioritization mechanism" and the CELL exposes 3 levels of
hardware priority per running task.  This module generalizes the
priority-to-resource-share mapping behind a small
:class:`PriorityArchitecture` abstraction, so the analytic
:class:`~repro.power5.perfmodel.DecodeShareModel` (and experiments that
want to ask "what if this ran on a CELL-style 3-level mechanism?") can
swap architectures.

Only the *mechanism* varies; the scheduler, detector and heuristics are
architecture-independent by design (paper §IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

from repro.power5.decode import decode_shares as _power5_shares
from repro.power5.priorities import PriorityError


@dataclass(frozen=True)
class PriorityArchitecture:
    """A hardware prioritization scheme.

    Attributes
    ----------
    name:
        Identifier ("power5", "power6", "cell-spe").
    n_levels:
        Number of hardware priority levels (priorities are
        ``0..n_levels-1``).
    default_priority:
        The "normal" level tasks start at.
    shares_fn:
        ``(prio_a, prio_b) -> (share_a, share_b)`` resource split for
        two co-scheduled tasks.
    """

    name: str
    n_levels: int
    default_priority: int
    shares_fn: Callable[[int, int], Tuple[float, float]]

    def validate(self, priority: int) -> int:
        """Range-check a priority for this architecture."""
        if not 0 <= priority < self.n_levels:
            raise PriorityError(
                f"{self.name}: priority {priority} not in 0..{self.n_levels - 1}"
            )
        return priority

    def shares(self, prio_a: int, prio_b: int) -> Tuple[float, float]:
        """Resource split for two co-scheduled tasks (validated)."""
        self.validate(prio_a)
        self.validate(prio_b)
        return self.shares_fn(prio_a, prio_b)


def _power6_shares(prio_a: int, prio_b: int) -> Tuple[float, float]:
    """POWER6 keeps the POWER5 software interface; the dispatch-rate
    bias is the same exponential family (Le et al., IBM JRD 2007)."""
    return _power5_shares(prio_a, prio_b)


#: CELL-style weights: 3 levels with a 4x span between consecutive
#: levels — coarser than POWER5's windows but the same monotonic idea.
_CELL_WEIGHTS = (1.0, 4.0, 16.0)


def _cell_shares(prio_a: int, prio_b: int) -> Tuple[float, float]:
    wa, wb = _CELL_WEIGHTS[prio_a], _CELL_WEIGHTS[prio_b]
    total = wa + wb
    return (wa / total, wb / total)


POWER5_ARCH = PriorityArchitecture(
    name="power5",
    n_levels=8,
    default_priority=4,
    shares_fn=_power5_shares,
)

POWER6_ARCH = PriorityArchitecture(
    name="power6",
    n_levels=8,
    default_priority=4,
    shares_fn=_power6_shares,
)

CELL_SPE_ARCH = PriorityArchitecture(
    name="cell-spe",
    n_levels=3,
    default_priority=1,
    shares_fn=_cell_shares,
)

ARCHITECTURES = {
    arch.name: arch for arch in (POWER5_ARCH, POWER6_ARCH, CELL_SPE_ARCH)
}
