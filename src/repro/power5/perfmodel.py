"""Task performance as a function of SMT decode allocation.

The scheduler does not care about micro-architecture per se — it observes
only *how fast a task progresses* given (a) the hardware-priority
difference with its core sibling and (b) whether the sibling context is
busy at all.  The paper relies on the empirical characterization of
Boneti et al. (ISCA 2008, reference [4]) for that mapping; since that
characterization is data we do not have, we substitute two models:

:class:`TableDrivenModel`
    A per-profile lookup ``priority difference -> speed multiplier``
    calibrated so the paper's reported behaviour is reproduced:

    * conclusion 1 of [4]: speeding one task up by X% can slow the
      sibling by ~10X% (strong asymmetry),
    * conclusion 2 of [4]: a priority difference of +2 yields ~95% of the
      maximum (single-thread-mode) improvement,
    * Table III of the paper: a CPU-bound task running in ST mode is
      about twice as fast as when sharing the core 50/50 (this is what
      makes the static-balance arithmetic of Table III come out).

:class:`DecodeShareModel`
    An analytic Amdahl-style alternative: a ``decode_fraction`` of the
    task's work scales inversely with its decode share, the rest (memory
    stalls) does not.  Used for ablations and as a sanity cross-check.

All speeds are multipliers relative to the *SMT-equal* baseline: a task
with both contexts busy at equal priority progresses at speed 1.0, i.e.
one work unit per simulated second.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict

from repro.power5 import decode
from repro.power5.priorities import HWPriority


@dataclass(frozen=True)
class PerfProfile:
    """Workload character used by the performance models.

    Attributes
    ----------
    name:
        Identifier (also used in traces).
    st_speedup:
        Speed in single-thread mode (sibling context idle/off) relative
        to the SMT-equal baseline.
    decode_fraction:
        Fraction of execution limited by decode bandwidth, used by
        :class:`DecodeShareModel` (0 = fully memory-bound, 1 = fully
        decode-bound).
    dprio_speed:
        Calibrated speed multiplier per priority difference (this task's
        priority minus the sibling's), used by :class:`TableDrivenModel`.
        Missing differences are clamped to the nearest table edge.
    """

    name: str
    st_speedup: float
    decode_fraction: float
    dprio_speed: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # The calibrated range never changes after construction; caching
        # the bounds keeps table_speed — called once per rate change —
        # from re-scanning the dict.  (object.__setattr__ because the
        # dataclass is frozen.)
        bounds = (
            (min(self.dprio_speed), max(self.dprio_speed))
            if self.dprio_speed
            else (0, 0)
        )
        object.__setattr__(self, "_dprio_bounds", bounds)

    def table_speed(self, dprio: int) -> float:
        """Lookup with clamping to the calibrated range."""
        if not self.dprio_speed:
            return 1.0
        lo, hi = self._dprio_bounds
        return self.dprio_speed[max(lo, min(hi, dprio))]


#: CPU/decode-bound profile (MetBench-style synthetic loads).  ST mode is
#: ~2x the SMT-equal speed; +2 priority difference reaches ~95% of that
#: improvement; the de-prioritized sibling collapses to ~0.29x — numbers
#: back-solved from the paper's Table III (see DESIGN.md §2).
CPU_BOUND = PerfProfile(
    name="cpu_bound",
    st_speedup=2.10,
    decode_fraction=0.95,
    dprio_speed={
        -4: 0.12,
        -3: 0.18,
        -2: 0.29,
        -1: 0.45,
        0: 1.0,
        1: 1.70,
        2: 2.05,
        3: 2.07,
        4: 2.08,
    },
)

#: Mixed compute/memory profile (BT-MZ-style CFD): the prioritized task
#: gains substantially (its decode-bound portion) while the
#: de-prioritized sibling barely slows (its memory stalls hide the
#: decode starvation) — the favourable asymmetry the paper exploits on
#: BT-MZ (16% gain with priorities (4,4,5,6), Table V).
MIXED = PerfProfile(
    name="mixed",
    st_speedup=1.33,
    decode_fraction=0.55,
    dprio_speed={
        -4: 0.88,
        -3: 0.90,
        -2: 0.93,
        -1: 0.96,
        0: 1.0,
        1: 1.30,
        2: 1.32,
        3: 1.33,
        4: 1.33,
    },
)

#: Memory-bound profile (SIESTA-style sparse linear algebra): decode
#: priorities barely matter, so balancing via prioritization is nearly
#: ineffective — SIESTA's gains must come from scheduling latency
#: instead (paper §V-D).
MEM_BOUND = PerfProfile(
    name="mem_bound",
    st_speedup=1.05,
    decode_fraction=0.08,
    dprio_speed={
        -4: 0.95,
        -3: 0.96,
        -2: 0.975,
        -1: 0.99,
        0: 1.0,
        1: 1.01,
        2: 1.02,
        3: 1.03,
        4: 1.035,
    },
)


class PerformanceModel(ABC):
    """Maps (profile, core SMT state) to a task execution rate."""

    @abstractmethod
    def speed(
        self,
        profile: PerfProfile,
        own_priority: int,
        sibling_priority: int,
        sibling_busy: bool,
    ) -> float:
        """Speed multiplier for a task on one context of a core.

        ``sibling_busy`` is ``False`` when the other context has no
        runnable work (the Linux idle loop snoozes at very low priority,
        effectively putting the core in single-thread mode).
        """

    def st_speed(self, profile: PerfProfile) -> float:
        """Speed when the core is effectively in single-thread mode."""
        return profile.st_speedup

    def speed_pair(
        self,
        profile_a: PerfProfile,
        profile_b: PerfProfile,
        prio_a: int,
        prio_b: int,
        busy_a: bool,
        busy_b: bool,
    ) -> "tuple[float, float]":
        """Both contexts' speeds in one call — the rate-propagation drain
        uses this when a core has two running tasks, so implementations
        can answer the pair from a single lookup instead of two
        independent ``speed`` calls with mirrored arguments.  The default
        simply composes :meth:`speed` twice (exactness by construction
        for any model)."""
        return (
            self.speed(profile_a, prio_a, prio_b, busy_b),
            self.speed(profile_b, prio_b, prio_a, busy_a),
        )


class TableDrivenModel(PerformanceModel):
    """Calibrated lookup on the priority difference (primary model)."""

    def __init__(self) -> None:
        # The model is a pure function of (profile, priorities, busy);
        # memoize per profile *identity* — the pinned reference list
        # keeps every keyed profile alive so an id cannot be recycled.
        self._memo: dict = {}
        self._memo_pins: list = []
        #: Pair-call memo (see :meth:`speed_pair`): one dict hit answers
        #: both contexts of a dual-running core.
        self._pair_memo: dict = {}

    def speed(
        self,
        profile: PerfProfile,
        own_priority: int,
        sibling_priority: int,
        sibling_busy: bool,
    ) -> float:
        key = (id(profile), own_priority, sibling_priority, sibling_busy)
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        v = self._speed(profile, own_priority, sibling_priority, sibling_busy)
        self._memo[key] = v
        self._memo_pins.append(profile)
        return v

    def _speed(
        self,
        profile: PerfProfile,
        own_priority: int,
        sibling_priority: int,
        sibling_busy: bool,
    ) -> float:
        if not sibling_busy:
            return self.st_speed(profile)
        if sibling_priority == HWPriority.THREAD_OFF:
            return self.st_speed(profile)
        if own_priority == HWPriority.THREAD_OFF:
            return 0.0
        if own_priority == HWPriority.VERY_HIGH:
            return self.st_speed(profile)
        dprio = int(own_priority) - int(sibling_priority)
        return profile.table_speed(dprio)

    def speed_pair(
        self,
        profile_a: PerfProfile,
        profile_b: PerfProfile,
        prio_a: int,
        prio_b: int,
        busy_a: bool,
        busy_b: bool,
    ) -> "tuple[float, float]":
        key = (id(profile_a), id(profile_b), prio_a, prio_b, busy_a, busy_b)
        hit = self._pair_memo.get(key)
        if hit is not None:
            return hit
        pair = (
            self.speed(profile_a, prio_a, prio_b, busy_b),
            self.speed(profile_b, prio_b, prio_a, busy_a),
        )
        self._pair_memo[key] = pair
        self._memo_pins.append(profile_a)
        self._memo_pins.append(profile_b)
        return pair


class DecodeShareModel(PerformanceModel):
    """Analytic Amdahl-style model on the exact Table I decode share.

    The time per unit of work is split into a decode-limited fraction
    ``f`` that scales inversely with the decode share ``s`` (normalized
    to the equal split ``s = 0.5``) and a residual fraction ``1 - f``
    that does not::

        time(s) = (1 - f) + f * (0.5 / s)        speed(s) = 1 / time(s)

    Single-thread mode uses the profile's ``st_speedup`` directly, since
    an idle sibling frees more than decode slots (queues, cache, ...).

    An alternative :class:`~repro.power5.variants.PriorityArchitecture`
    (POWER6, CELL-style 3-level) may be supplied to study the paper's
    "other processors provide a similar mechanism" claim (§I).
    """

    def __init__(self, architecture=None) -> None:
        #: None = the native POWER5 Table I arithmetic.
        self.architecture = architecture

    def speed(
        self,
        profile: PerfProfile,
        own_priority: int,
        sibling_priority: int,
        sibling_busy: bool,
    ) -> float:
        if not sibling_busy:
            return self.st_speed(profile)
        if self.architecture is not None:
            share_self, _ = self.architecture.shares(
                own_priority, sibling_priority
            )
        else:
            # Module-attribute call: observes the validated/unvalidated
            # implementation swap done by decode.enable_validation().
            share_self, _ = decode.decode_shares(own_priority, sibling_priority)
        if share_self <= 0.0:
            return 0.0
        if share_self >= 1.0:
            return self.st_speed(profile)
        f = profile.decode_fraction
        time_per_unit = (1.0 - f) + f * (0.5 / share_self)
        speed = 1.0 / time_per_unit
        # An idle-ish sibling share cannot make a thread faster than the
        # true single-thread mode.
        return min(speed, self.st_speed(profile))
