"""Decode-slot arbitration between the two SMT contexts (paper Table I).

With both contexts active at priorities ``pa`` and ``pb`` the core repeats
a window of ``R = 2**(|pa - pb| + 1)`` decode cycles: the lower-priority
context receives exactly 1 cycle of the window and the higher-priority
context the remaining ``R - 1``.  Equal priorities degenerate to the fair
1-of-2 split.

Special levels bypass the window arithmetic (paper §II-B):

* priority 0 — the context is **off**; the sibling runs in ST mode,
* priority 7 — the context runs in **ST mode** (the sibling must be off),
* priority 1 — the context is a **background** thread that only consumes
  resources left over by the foreground sibling; we model the background
  share as a small constant :data:`BACKGROUND_SHARE`.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

from repro.power5.priorities import HWPriority, PriorityError, coerce_priority

#: Self-check flag (see :func:`enable_validation`); pre-armed by the
#: ``REPRO_VALIDATE`` environment flag so even standalone decode calls
#: are validated under a validation run.
_VALIDATE = os.environ.get("REPRO_VALIDATE", "").strip() in (
    "1", "true", "yes", "on",
)

_SHARE_EPS = 1e-12


class DecodeShareError(AssertionError):
    """The decode-share self-check caught invalid arbitration output."""


#: Fraction of decode bandwidth a priority-1 ("background") context scavenges
#: when the foreground sibling is busy.  The architecture gives a background
#: thread only cycles the foreground cannot use; a few percent is a
#: representative figure for a busy foreground thread.
BACKGROUND_SHARE = 0.04

#: Paper Table I: priority difference -> (R, cycles for the favoured task,
#: cycles for the other task).
DECODE_TABLE: Dict[int, Tuple[int, int, int]] = {
    0: (2, 1, 1),
    1: (4, 3, 1),
    2: (8, 7, 1),
    3: (16, 15, 1),
    4: (32, 31, 1),
    5: (64, 63, 1),
}


def decode_window(prio_a: int, prio_b: int) -> int:
    """Length ``R`` of the decode window for two *normal* priorities.

    Only meaningful for priorities in 2..6 on both contexts (the window
    arithmetic applies to the "normal" prioritized-SMT regime).
    """
    pa, pb = coerce_priority(prio_a), coerce_priority(prio_b)
    _check_normal(pa)
    _check_normal(pb)
    return 2 ** (abs(int(pa) - int(pb)) + 1)


def _decode_cycles_fast(prio_a: int, prio_b: int) -> Tuple[int, int]:
    """Decode cycles per window granted to (task A, task B).

    Implements Table I exactly: the higher-priority task receives ``R - 1``
    cycles, the other receives 1; equal priorities split 1/1.
    """
    r = decode_window(prio_a, prio_b)
    if prio_a == prio_b:
        return (1, 1)
    if prio_a > prio_b:
        return (r - 1, 1)
    return (1, r - 1)


def _decode_cycles_checked(prio_a: int, prio_b: int) -> Tuple[int, int]:
    """Validated variant of :func:`decode_cycles`: asserts the granted
    cycles exactly fill the ``R``-cycle window."""
    r = decode_window(prio_a, prio_b)
    pair = _decode_cycles_fast(prio_a, prio_b)
    if pair[0] + pair[1] != r:
        raise DecodeShareError(
            f"decode cycles {pair} for priorities ({prio_a}, {prio_b}) "
            f"do not fill the R={r} window"
        )
    return pair


def _shares(pa: HWPriority, pb: HWPriority) -> Tuple[float, float]:
    if pa == HWPriority.THREAD_OFF and pb == HWPriority.THREAD_OFF:
        return (0.0, 0.0)
    if pa == HWPriority.THREAD_OFF:
        return (0.0, 1.0)
    if pb == HWPriority.THREAD_OFF:
        return (1.0, 0.0)

    if pa == HWPriority.VERY_HIGH or pb == HWPriority.VERY_HIGH:
        # ST mode: the architecture requires the sibling to be off; if a
        # caller models both as "on", the very-high thread still dominates
        # completely.
        if pa == pb:
            return (0.5, 0.5)
        return (1.0, 0.0) if pa == HWPriority.VERY_HIGH else (0.0, 1.0)

    if pa == HWPriority.VERY_LOW and pb == HWPriority.VERY_LOW:
        return (0.5, 0.5)
    if pa == HWPriority.VERY_LOW:
        return (BACKGROUND_SHARE, 1.0 - BACKGROUND_SHARE)
    if pb == HWPriority.VERY_LOW:
        return (1.0 - BACKGROUND_SHARE, BACKGROUND_SHARE)

    ca, cb = _decode_cycles_fast(pa, pb)
    r = ca + cb
    return (ca / r, cb / r)


def _decode_shares_fast(prio_a: int, prio_b: int) -> Tuple[float, float]:
    """Fraction of decode bandwidth granted to each context.

    Handles the special levels 0, 1 and 7 as described in the module
    docstring, then falls back to the Table I window arithmetic — all
    precomputed in :data:`_SHARES_TABLE`.
    """
    pair = _SHARES_TABLE.get((prio_a, prio_b))
    if pair is None:
        # Non-integer or out-of-range input: coerce (which raises the
        # canonical PriorityError for invalid levels) and retry.
        pa, pb = coerce_priority(prio_a), coerce_priority(prio_b)
        pair = _SHARES_TABLE[(int(pa), int(pb))]
    return pair


def _decode_shares_checked(prio_a: int, prio_b: int) -> Tuple[float, float]:
    """Validated variant of :func:`decode_shares`: recomputes the pair
    from first principles (so a corrupted constant is caught, not masked
    by the precomputed table) and self-checks the output."""
    pa, pb = coerce_priority(prio_a), coerce_priority(prio_b)
    pair = _shares(pa, pb)
    _check_shares(pa, pb, pair)
    return pair


def _check_shares(
    pa: HWPriority, pb: HWPriority, pair: Tuple[float, float]
) -> None:
    fa, fb = pair
    if not (0.0 <= fa <= 1.0 and 0.0 <= fb <= 1.0):
        raise DecodeShareError(
            f"decode shares {pair} for priorities ({int(pa)}, {int(pb)}) "
            "outside [0, 1]"
        )
    total = fa + fb
    expect = (
        0.0
        if pa == HWPriority.THREAD_OFF and pb == HWPriority.THREAD_OFF
        else 1.0
    )
    if abs(total - expect) > _SHARE_EPS:
        raise DecodeShareError(
            f"decode shares {pair} for priorities ({int(pa)}, {int(pb)}) "
            f"sum to {total}, expected {expect}"
        )


def _check_normal(prio: HWPriority) -> None:
    if prio in (HWPriority.THREAD_OFF, HWPriority.VERY_LOW, HWPriority.VERY_HIGH):
        raise PriorityError(
            f"priority {int(prio)} is special; Table I window arithmetic "
            "only covers the normal regime (2..6)"
        )


#: Priorities form a closed set (0..7), so the full 8×8 arbitration
#: outcome is precomputed once at import; the production
#: ``decode_shares`` is a single dict lookup.  ``HWPriority`` is an
#: ``IntEnum``, so enum and plain-int arguments hash identically.
_SHARES_TABLE: Dict[Tuple[int, int], Tuple[float, float]] = {
    (a, b): _shares(HWPriority(a), HWPriority(b))
    for a in range(8)
    for b in range(8)
}

# ----------------------------------------------------------------------
# Implementation dispatch.  The public names are *module attributes*
# rebound by enable/disable_validation, so production calls carry zero
# per-call "is validation on?" branching.  Hot-path callers (perfmodel,
# pmu) resolve them through the module object (``decode.decode_shares``)
# so they observe the swap.
# ----------------------------------------------------------------------
decode_cycles = _decode_cycles_checked if _VALIDATE else _decode_cycles_fast
decode_shares = _decode_shares_checked if _VALIDATE else _decode_shares_fast


def enable_validation() -> None:
    """Swap in the self-checking decode arbitration implementations.

    With validation on, :func:`decode_cycles` verifies that the granted
    cycles exactly fill the ``R``-cycle window and :func:`decode_shares`
    recomputes each pair from first principles and verifies that both
    fractions lie in ``[0, 1]`` and sum to 1 (or to 0 when both contexts
    are off).  Called by :func:`repro.validate.invariants.install`.
    """
    global _VALIDATE, decode_cycles, decode_shares
    _VALIDATE = True
    decode_cycles = _decode_cycles_checked
    decode_shares = _decode_shares_checked


def disable_validation() -> None:
    """Swap the unchecked table-driven implementations back in (see
    :func:`enable_validation`)."""
    global _VALIDATE, decode_cycles, decode_shares
    _VALIDATE = False
    decode_cycles = _decode_cycles_fast
    decode_shares = _decode_shares_fast
