"""Gang placement strategies.

A *placement* maps MPI ranks to ``(node, cpu)`` slots.  The interesting
strategy is the HPCSched-aware one: the local scheduler can speed one
task of an SMT core pair up (and slow the other down) within the ±2
hardware-priority window, so the cluster scheduler should compose core
pairs whose load ratio falls inside what that window can absorb —
i.e. pair the heaviest remaining rank with the lightest remaining rank
— and spread the pair-sums evenly across nodes so inter-node imbalance
(which no local scheduler can fix) is minimized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class Slot:
    """A logical CPU of the cluster."""

    node: int
    cpu: int


@dataclass
class GangPlacement:
    """rank -> slot assignment plus bookkeeping for analysis."""

    slots: Dict[int, Slot] = field(default_factory=dict)
    #: (rank, rank) pairs sharing an SMT core, for analysis.
    core_pairs: List[Tuple[int, int]] = field(default_factory=list)

    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank``."""
        return self.slots[rank].node

    def node_loads(self, loads: Sequence[float]) -> Dict[int, float]:
        """Total estimated load per node under this placement."""
        out: Dict[int, float] = {}
        for rank, slot in self.slots.items():
            out[slot.node] = out.get(slot.node, 0.0) + loads[rank]
        return out


def block_placement(
    n_ranks: int, n_nodes: int, cpus_per_node: int
) -> GangPlacement:
    """Naive contiguous placement: ranks 0..k-1 on node 0, etc. —
    what ``mpirun`` does with a sorted host file."""
    if n_ranks > n_nodes * cpus_per_node:
        raise ValueError("more ranks than cluster slots")
    placement = GangPlacement()
    for rank in range(n_ranks):
        node, cpu = divmod(rank, cpus_per_node)
        placement.slots[rank] = Slot(node, cpu)
    _derive_core_pairs(placement, cpus_per_node)
    return placement


def gang_placement(
    loads: Sequence[float], n_nodes: int, cpus_per_node: int
) -> GangPlacement:
    """HPCSched-aware placement.

    1. Sort ranks by estimated load; pair heaviest with lightest (the
       SMT core pairs HPCSched can balance internally).
    2. Distribute pairs over nodes greedily by descending pair load
       (LPT), equalizing the per-node totals.
    """
    n_ranks = len(loads)
    if n_ranks > n_nodes * cpus_per_node:
        raise ValueError("more ranks than cluster slots")
    if cpus_per_node % 2 != 0:
        raise ValueError("SMT pairing requires an even cpus_per_node")

    order = sorted(range(n_ranks), key=lambda r: loads[r])
    pairs: List[Tuple[int, ...]] = []
    lo, hi = 0, n_ranks - 1
    while lo < hi:
        pairs.append((order[hi], order[lo]))  # heavy first
        lo += 1
        hi -= 1
    if lo == hi:
        pairs.append((order[lo],))

    # LPT over nodes.
    pair_load = lambda p: sum(loads[r] for r in p)  # noqa: E731
    pairs.sort(key=pair_load, reverse=True)
    node_total = [0.0] * n_nodes
    node_next_cpu = [0] * n_nodes
    placement = GangPlacement()
    cores_per_node = cpus_per_node // 2
    for pair in pairs:
        candidates = [
            n for n in range(n_nodes) if node_next_cpu[n] // 2 < cores_per_node
        ]
        node = min(candidates, key=lambda n: node_total[n])
        base_cpu = node_next_cpu[node]
        for i, rank in enumerate(pair):
            placement.slots[rank] = Slot(node, base_cpu + i)
        node_next_cpu[node] = base_cpu + 2  # one core consumed
        node_total[node] += pair_load(pair)
        if len(pair) == 2:
            placement.core_pairs.append((pair[0], pair[1]))
    return placement


def _derive_core_pairs(placement: GangPlacement, cpus_per_node: int) -> None:
    by_core: Dict[Tuple[int, int], List[int]] = {}
    for rank, slot in placement.slots.items():
        by_core.setdefault((slot.node, slot.cpu // 2), []).append(rank)
    for ranks in by_core.values():
        if len(ranks) == 2:
            placement.core_pairs.append((ranks[0], ranks[1]))
