"""Cluster-level gang scheduling — the paper's §VI future work.

"HPCSched is a task scheduler able to balance HPC applications inside a
node, but modern Supercomputers consist of thousands of nodes.  In this
case there is another level of load balancing which consists of
assigning the correct group of tasks to each node (gang scheduling)
considering that the local scheduler is able to dynamically assign more
or less hardware resources to each task."

This package implements exactly that layer on top of the per-node
simulated kernels:

* :class:`~repro.cluster.cluster.Cluster` — N nodes (one kernel each,
  HPCSched attached per node) sharing a single simulated clock, with an
  interconnect that charges higher latency for inter-node messages;
* :mod:`repro.cluster.gang` — placement strategies: naive ``block``
  placement versus HPCSched-aware ``gang`` placement, which pairs heavy
  and light ranks on each SMT core (so the ±2 hardware-priority window
  can absorb the pair's imbalance) and equalizes total load per node.
"""

from repro.cluster.cluster import Cluster, ClusterNode, InterconnectModel
from repro.cluster.gang import GangPlacement, block_placement, gang_placement

__all__ = [
    "Cluster",
    "ClusterNode",
    "InterconnectModel",
    "GangPlacement",
    "block_placement",
    "gang_placement",
]
