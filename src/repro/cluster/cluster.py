"""A multi-node cluster of simulated machines sharing one clock.

Each node owns a full kernel (its own POWER5 machine, runqueues and —
optionally — an HPCSched instance with its own detector, exactly like a
real deployment would run one HPCSched per node).  A single
:class:`~repro.simcore.engine.Simulator` drives all nodes, and one MPI
runtime spans them with an interconnect model that charges inter-node
messages a higher latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional, Sequence

from repro.cluster.gang import GangPlacement
from repro.hpcsched import UniformHeuristic, attach_hpcsched
from repro.hpcsched.heuristics import Heuristic
from repro.kernel.core_sched import Kernel
from repro.mpi.messages import LatencyModel
from repro.mpi.process import MPIRank
from repro.mpi.runtime import MPIRuntime
from repro.power5.machine import Machine, MachineTopology
from repro.power5.perfmodel import CPU_BOUND, PerfProfile, TableDrivenModel
from repro.simcore.engine import Simulator
from repro.trace.collector import TraceCollector


@dataclass(frozen=True)
class InterconnectModel:
    """Intra-node vs inter-node message delays."""

    intra: LatencyModel = LatencyModel(base=5e-6, bandwidth=1e9)
    inter: LatencyModel = LatencyModel(base=50e-6, bandwidth=2.5e8)

    def __post_init__(self) -> None:
        # LatencyModel validates its own fields at construction; guard
        # here against models smuggled in through other means (subclass,
        # object.__setattr__, raw floats) because the sharded runner's
        # conservative lookahead is derived from ``inter.base``.
        for name in ("intra", "inter"):
            model = getattr(self, name)
            base = getattr(model, "base", None)
            bandwidth = getattr(model, "bandwidth", None)
            if base is None or not base > 0.0:
                raise ValueError(
                    f"InterconnectModel.{name}.base must be positive, "
                    f"got {base!r}"
                )
            if bandwidth is None or not bandwidth > 0.0:
                raise ValueError(
                    f"InterconnectModel.{name}.bandwidth must be "
                    f"positive, got {bandwidth!r}"
                )


class ClusterNode:
    """One node: kernel + optional HPCSched."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        heuristic_factory: Optional[Callable[[], Heuristic]],
        topology: MachineTopology,
        collect_traces: bool = False,
        collect_pmu: bool = False,
    ) -> None:
        self.node_id = node_id
        machine = Machine(topology, TableDrivenModel())
        # Tracing and PMU attribution are opt-in at cluster scale:
        # recording every context switch / wake / block (and advancing
        # per-core counters on every rate change) across hundreds of
        # CPUs costs real wall time, and nothing consumes the per-node
        # streams or counters by default.
        trace = TraceCollector() if collect_traces else None
        self.kernel = Kernel(machine=machine, sim=sim, trace=trace)
        self.kernel.pmu_enabled = collect_pmu
        self.hpc_class = None
        if heuristic_factory is not None:
            self.hpc_class = attach_hpcsched(self.kernel, heuristic_factory())


class Cluster:
    """N simulated nodes + a spanning MPI runtime."""

    def __init__(
        self,
        n_nodes: int,
        heuristic_factory: Optional[Callable[[], Heuristic]] = UniformHeuristic,
        topology: Optional[MachineTopology] = None,
        interconnect: Optional[InterconnectModel] = None,
        collect_traces: bool = False,
        collect_pmu: bool = False,
    ) -> None:
        self.sim = Simulator()
        self.topology = topology or MachineTopology()
        self.interconnect = interconnect or InterconnectModel()
        self.nodes: List[ClusterNode] = [
            ClusterNode(
                i,
                self.sim,
                heuristic_factory,
                self.topology,
                collect_traces,
                collect_pmu,
            )
            for i in range(n_nodes)
        ]
        self._rank_node: Dict[int, int] = {}
        self.runtime = MPIRuntime(
            self.nodes[0].kernel, route_delay=self._route_delay
        )
        self.use_hpc = heuristic_factory is not None
        #: Aggregate live-task count across all nodes, maintained by the
        #: kernels' on_live_change hooks so :meth:`run` can stop on an
        #: O(1) counter test instead of scanning every node per event.
        self._live_total = 0
        for node in self.nodes:
            node.kernel.on_live_change = self._note_live_change
        #: Simulated time each rank's task exited, recorded by the
        #: task ``on_exit`` hooks :meth:`launch` installs.  These are
        #: the per-rank completion times the sharded runner's parity
        #: oracle compares bit-for-bit against a sharded run.
        self.rank_exit: Dict[int, float] = {}

    def _note_live_change(self, delta: int) -> None:
        self._live_total += delta

    # ------------------------------------------------------------------
    @property
    def cpus_per_node(self) -> int:
        return self.topology.n_cpus

    def _route_delay(self, src: int, dst: int, size: int) -> float:
        same_node = self._rank_node.get(src) == self._rank_node.get(dst)
        model = self.interconnect.intra if same_node else self.interconnect.inter
        return model.delay(size)

    # ------------------------------------------------------------------
    def launch(
        self,
        programs: Sequence[Callable[[MPIRank], Generator]],
        placement: GangPlacement,
        profile: PerfProfile = CPU_BOUND,
        names: Optional[Sequence[str]] = None,
    ) -> Dict[int, object]:
        """Start one task per rank program according to ``placement``."""
        if len(placement.slots) < len(programs):
            raise ValueError("placement does not cover every rank")
        tasks = {}
        pending = []
        for rank, factory in enumerate(programs):
            slot = placement.slots[rank]
            node = self.nodes[slot.node]
            self._rank_node[rank] = slot.node
            mpi = MPIRank(self.runtime, rank)
            name = names[rank] if names else f"rank{rank}"
            task = node.kernel.create_task(
                name,
                perf_profile=profile,
                cpus_allowed=[slot.cpu],
            )
            task.program = self._wrap(factory, mpi) if self.use_hpc else factory(mpi)
            task.on_exit = self._exit_recorder(rank)
            self.runtime.bind(rank, task, kernel=node.kernel)
            tasks[rank] = task
            pending.append((node.kernel, task, slot.cpu))
        for kernel, task, cpu in pending:
            kernel.start_task(task, cpu=cpu)
        return tasks

    def _exit_recorder(self, rank: int):
        def record(_task) -> None:
            self.rank_exit[rank] = self.sim.now

        return record

    @staticmethod
    def _wrap(factory, mpi: MPIRank) -> Generator:
        def prog():
            yield mpi.setscheduler_hpc()
            yield from factory(mpi)

        return prog()

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run until every node's application tasks exited."""
        return self.sim.run(
            until=until,
            stop_when=lambda: self._live_total == 0,
        )
