"""Sharded cluster simulation: conservative PDES across workers.

The single-process :class:`~repro.cluster.cluster.Cluster` funnels every
node through one :class:`~repro.simcore.engine.Simulator`.  But nodes
interact *only* through MPI messages, and the interconnect charges every
inter-node message at least ``interconnect.inter.base`` seconds — which
is exactly the **lookahead** a conservative parallel discrete-event
simulation needs: if every shard has advanced to time ``T``, no shard
can receive a new cross-shard event before ``T + lookahead``.

This module partitions the cluster's nodes into ``K`` shards, each
owning its own simulator + kernels, and advances them in lock-step time
windows:

* within a window each shard runs its event loop independently;
* cross-shard MPI traffic is intercepted at the ``MPIRuntime`` boundary
  (:class:`ShardMPIRuntime`) and *externalized* into an outbox instead
  of being scheduled locally;
* at the window barrier the coordinator routes outboxes to their
  destination shards, completes cross-shard collectives, and grants the
  next window; destinations inject the traffic as ordinary events.

**Adaptive windows.**  Fixed ``lookahead``-wide windows would need one
barrier per 40–50 µs of simulated time — hundreds of thousands of
round-trips for a multi-second run.  Each shard therefore reports *two*
sound lower bounds per window: ``next_action`` (the earliest instant it
can execute any event — the classic conservative bound) and
``next_send`` (the earliest instant it can *emit a cross-shard
directive*; compute phases are floored at ``now + remaining_work /
rate_ceiling`` and bookkeeping events — ticks, resched slots, balance
fires — are skipped).  The coordinator grants::

    bound     = min(next_action over shards, earliest fresh directive)
    safe_send = min(next_send  over shards, earliest fresh directive)
    H         = min(max(bound, safe_send) + L,  bound + scale * L)

``max(bound, safe_send)`` keeps the horizon at or above ``bound + L``
(the minimum-time shard is always stepped, so progress is guaranteed)
while the earliest-send bound proves no cross-shard directive can be
born before ``safe_send`` — hence none can *arrive* before
``safe_send + L >= H``, and injections never land in a shard's past
(:meth:`ShardMPIRuntime._guard_injection` enforces this at runtime).
``scale`` ramps multiplicatively: it doubles after every quiet window
(no cross-shard traffic observed) and halves on a miss, so sync rounds
per simulated second collapse during compute phases and snap back tight
around communication bursts.

**Wire protocol + delta reports.**  In the process transport each
grant/report crossing a pipe is a single compact binary frame
(:mod:`repro.cluster.wire`): struct-packed arrays keyed by
``(send_time, src, seq)``, fixed-size headers, one ``send_bytes`` /
``recv_bytes`` syscall per window per worker per direction.  Reports
are *deltas* — the persistent worker keeps all simulator state and
ships only the window's new cross-shard messages plus its two bounds;
full per-rank results are fetched once, at the end of the run.  The
coordinator accumulates ``sync_rounds`` (window barriers) and
``wire_bytes`` (total frame bytes both directions) so bench runs can
attribute scaling wins.

**Parked balance timers.**  The dominant event class at cluster scale
is the per-CPU load-balance timer (priority ``EVPRIO_BALANCE``), which
is a pure no-op re-arm while its kernel has nothing queued
(``Kernel._queued_total == 0``; the fire cannot pull or migrate).
Since PR 8 the parking itself lives in the kernel's fast-forward engine
(:mod:`repro.simcore.fastforward`, enabled by default): every kernel —
serial or sharded — parks provably-inert chains off the heap and
reinstates them at bit-exact chain points the instant an invalidation
edge (queued 0→1, migratable 0→1) could make a fire actionable.  This
module therefore only needs to *account* for the chains the kernels
manage themselves: parked chains are absent from the heap by
construction, and the window-horizon scan below skips armed balance
fires that cannot act yet.  The elision removes the ~90 % of cluster
events that are inert, and shrinks the heap every other event pays to
sift through.

**Determinism.**  Cross-shard messages are sorted by ``(send_time,
src_rank, seq)`` before injection; collective waiters are released in
``(arrival_time, rank)`` order; window horizons are pure functions of
reported state.  A sharded run is a deterministic function of its
inputs, and :mod:`repro.validate.sharded_parity` asserts per-rank
completion times and aggregate metrics match the single-process run
bit-for-bit.

Two transports share all of the above logic: *inline* (every shard in
the coordinating process — the right choice on few-core hosts, where
the win comes from parking inert timers) and *process* (one forked
worker per shard exchanging grants/reports over pipes — true
parallelism on multi-core hosts).  ``workers="auto"`` picks between
them from the host CPU count.

Limitations (documented, asserted where cheap): a communicator spanning
shards must have a reduction-tree delay of at least the lookahead (true
for MPI_COMM_WORLD by construction of ``L``); two *distinct* live
communicators over the identical rank set running the same collective
kind concurrently are indistinguishable to the coordinator; same-instant
cross-shard wake ordering is deterministic but only guaranteed to match
the serial schedule when the woken ranks live on distinct CPUs (true
for the one-rank-per-CPU placements this repository studies); a
reinstated balance fire that collides to the exact instant of another
kernel's never-parked fire runs after it rather than in original arm
order (harmless: balance rounds on distinct kernels touch disjoint
state and commute).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Generator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.cluster.cluster import ClusterNode, InterconnectModel
from repro.kernel.core_sched import _WORK_EPSILON
from repro.cluster.gang import GangPlacement
from repro.hpcsched.heuristics import Heuristic
from repro.mpi.comm import Communicator
from repro.mpi.messages import Message
from repro.mpi.process import MPIRank
from repro.mpi.runtime import _EVPRIO_DELIVERY, MPIRuntime
from repro.power5.machine import MachineTopology
from repro.power5.perfmodel import CPU_BOUND, PerfProfile
from repro.simcore.engine import Simulator

_INF = math.inf

#: Event labels that can never *emit* a cross-shard directive by
#: themselves: scheduler bookkeeping (ticks, resched slots, balance
#: fires) only reorders tasks, and a compute-phase completion is
#: already lower-bounded by the earliest-send work floor (see
#: ``ShardEngine._bounds``).  Everything else — MPI deliveries, isend
#: acks, collective releases, sleep ends, unknown labels — counts as a
#: potential send instant.
_SEND_INERT_PREFIXES = ("tick/", "resched/", "balance/", "phase/")

#: Ceiling on the adaptive window scale (the earliest-send bound is the
#: real safety cap; this only bounds the integer).
_SCALE_MAX = 1 << 20


def _inert_label(label) -> bool:
    return label is not None and label.startswith(_SEND_INERT_PREFIXES)


class ShardedRunError(RuntimeError):
    """Raised when a sharded run cannot proceed (deadlock, or a
    configuration that would violate the conservative lookahead)."""


# ----------------------------------------------------------------------
# Shard planning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardPlan:
    """Partition of cluster nodes into contiguous shard blocks.

    Nodes are never split: all CPUs (and hence all ranks, and all SMT
    core pairs of a :class:`GangPlacement`) of one node live on one
    shard, so intra-node traffic never crosses a shard boundary and the
    inter-node base latency lower-bounds every cross-shard message.
    """

    n_nodes: int
    node_shard: Tuple[int, ...]  # node id -> shard id

    @property
    def n_shards(self) -> int:
        return max(self.node_shard) + 1 if self.node_shard else 0

    def nodes_of(self, shard: int) -> Tuple[int, ...]:
        """Global node ids owned by ``shard``, ascending."""
        return tuple(
            n for n, s in enumerate(self.node_shard) if s == shard
        )


def plan_shards(n_nodes: int, n_shards: int) -> ShardPlan:
    """Split ``n_nodes`` into ``n_shards`` contiguous, balanced blocks."""
    if n_shards <= 0:
        raise ValueError(f"need at least one shard, got {n_shards}")
    if n_nodes <= 0:
        raise ValueError(f"need at least one node, got {n_nodes}")
    n_shards = min(n_shards, n_nodes)
    assignment = []
    for node in range(n_nodes):
        assignment.append(node * n_shards // n_nodes)
    return ShardPlan(n_nodes=n_nodes, node_shard=tuple(assignment))


# ----------------------------------------------------------------------
# Wire records — shared with the binary codec (re-exported here under
# their historical names; see repro.cluster.wire for the frame layout)
# ----------------------------------------------------------------------
from repro.cluster.wire import (  # noqa: E402  (re-export)
    ShardResult,
    WindowGrant,
    WindowReport,
    WireArrival,
    WireCodec,
    WireSend,
    FRAME_ERROR,
    FRAME_STOP,
)


# ----------------------------------------------------------------------
# The MPI runtime with message externalization hooks
# ----------------------------------------------------------------------
class ShardMPIRuntime(MPIRuntime):
    """An :class:`MPIRuntime` that owns only its shard's ranks.

    Local traffic takes the inherited (serial) code paths unchanged.
    Cross-shard traffic is externalized: ``post_send`` to a remote rank
    appends a :class:`WireSend` to the outbox (scheduling only the local
    isend-completion event), and ``collective_arrive`` on a communicator
    spanning shards appends a :class:`WireArrival` and parks the caller
    exactly as the serial runtime would.
    """

    def __init__(
        self,
        kernel,
        world_ranks: Sequence[int],
        local_ranks: Sequence[int],
        route_delay,
    ) -> None:
        super().__init__(kernel, route_delay=route_delay)
        self._local_ranks = frozenset(local_ranks)
        self.world = Communicator(sorted(world_ranks), name="world")
        self.outbox_sends: List[WireSend] = []
        self.outbox_arrivals: List[WireArrival] = []
        # Communicator membership never changes after construction, so
        # the is-fully-local test is cached per communicator object.
        # Keyed by ``id``; the strong-ref list pins each keyed object so
        # the id cannot be recycled.
        self._comm_local: Dict[int, bool] = {}
        self._comm_refs: List[object] = []

    # -- registration ---------------------------------------------------
    def bind(self, rank, task, kernel=None) -> None:
        """Bind a *local* rank.  Unlike the serial runtime this must not
        rebuild ``world`` from the bound ranks: the world communicator
        spans every shard and was fixed at construction."""
        if rank in self.tasks:
            raise ValueError(f"rank {rank} already bound")
        if rank not in self._local_ranks:
            raise ValueError(f"rank {rank} is not local to this shard")
        from repro.mpi.runtime import _RankState

        self.tasks[rank] = task
        self._kernels[rank] = kernel or self.kernel
        self._states[rank] = _RankState()

    # -- point-to-point -------------------------------------------------
    def post_send(
        self, src, dst, tag, size, payload=None, isend_handle=None
    ) -> Message:
        if dst in self._local_ranks:
            return super().post_send(
                src, dst, tag, size, payload=payload,
                isend_handle=isend_handle,
            )
        if dst not in self.world:
            raise ValueError(f"send to unknown rank {dst}")
        # Remote: same Message construction (identical delay/arrival
        # float expressions as the serial runtime), but delivery is the
        # destination shard's business — externalize the wire form.
        now = self.kernel.now
        delay = (
            self.route_delay(src, dst, size)
            if self.route_delay is not None
            else self.latency.delay(size)
        )
        msg = Message(
            src=src,
            dst=dst,
            tag=tag,
            size=size,
            send_time=now,
            arrival_time=now + delay,
            payload=payload,
            seq=self._msg_seq,
            isend_handle=isend_handle,
        )
        self._msg_seq += 1
        self.messages_sent += 1
        self.outbox_sends.append(
            WireSend(
                src=src,
                dst=dst,
                tag=tag,
                size=size,
                send_time=msg.send_time,
                arrival_time=msg.arrival_time,
                seq=msg.seq,
                payload=payload,
            )
        )
        if isend_handle is not None:
            # The serial runtime completes the isend handle at the
            # delivery event; replicate the completion locally at the
            # same (time, priority).
            self.kernel.sim.at(
                msg.arrival_time,
                lambda: self._ack_remote(msg),
                priority=_EVPRIO_DELIVERY,
                label="mpi-ack",
            )
        return msg

    def _ack_remote(self, msg: Message) -> None:
        msg.isend_handle.finish(msg)
        self._check_waitall(msg.src)

    # -- collectives ----------------------------------------------------
    def collective_arrive(self, comm, kind, rank) -> bool:
        local = self._comm_local.get(id(comm))
        if local is None:
            local = set(comm.ranks) <= self._local_ranks
            self._comm_local[id(comm)] = local
            self._comm_refs.append(comm)
        if local:
            return super().collective_arrive(comm, kind, rank)
        if rank not in comm:
            raise ValueError(f"rank {rank} not in {comm!r}")
        self.outbox_arrivals.append(
            WireArrival(
                ckey=comm.ranks,
                kind=kind,
                rank=rank,
                time=self.kernel.now,
                comm_size=comm.size,
            )
        )
        return False  # park, like every serial collective arrival

    # -- injection (destination side) -----------------------------------
    def _guard_injection(self, time: float, what: str) -> None:
        """A directive landing in the shard's past would silently warp
        the schedule; the conservative horizon protocol guarantees it
        cannot happen, so a violation is a windowing bug — fail loudly
        instead of drifting out of parity."""
        if time < self.kernel.sim.now:
            raise ShardedRunError(
                f"conservative-window violation: {what} at t={time!r} "
                f"injected into a shard already at t={self.kernel.sim.now!r}"
            )

    def inject_delivery(self, wire: WireSend):
        """Schedule a cross-shard message's delivery locally; returns
        the event."""
        self._guard_injection(wire.arrival_time, "message delivery")
        msg = Message(
            src=wire.src,
            dst=wire.dst,
            tag=wire.tag,
            size=wire.size,
            send_time=wire.send_time,
            arrival_time=wire.arrival_time,
            payload=wire.payload,
            seq=wire.seq,
        )
        return self.kernel.sim.at(
            wire.arrival_time,
            lambda: self._deliver(msg),
            priority=_EVPRIO_DELIVERY,
            label="mpi-deliver",
        )

    def inject_wake(self, time: float, rank: int, kind: str):
        """Schedule a coordinator-computed collective release locally;
        returns the event."""
        self._guard_injection(time, f"{kind} release")
        return self.kernel.sim.at(
            time,
            lambda: self._wake(rank),
            priority=_EVPRIO_DELIVERY,
            label="mpi-release",
        )


# ----------------------------------------------------------------------
# One shard: nodes + kernels + windowed execution
# ----------------------------------------------------------------------
class ShardEngine:
    """Builds and drives one shard of the cluster.

    Used directly by the inline transport and inside the forked worker
    by the process transport — the windowed execution logic is identical
    either way.
    """

    def __init__(
        self,
        shard_id: int,
        node_ids: Sequence[int],
        programs: Sequence[Callable[[MPIRank], Generator]],
        placement: GangPlacement,
        heuristic_factory: Optional[Callable[[], Heuristic]],
        topology: Optional[MachineTopology] = None,
        interconnect: Optional[InterconnectModel] = None,
        profile: PerfProfile = CPU_BOUND,
        windowed: bool = True,
    ) -> None:
        self.shard_id = shard_id
        self.sim = Simulator()
        self.topology = topology or MachineTopology()
        self.interconnect = interconnect or InterconnectModel()
        self.nodes: Dict[int, ClusterNode] = {
            nid: ClusterNode(nid, self.sim, heuristic_factory, self.topology)
            for nid in node_ids
        }
        self._node_set = frozenset(node_ids)
        self._rank_node: Dict[int, int] = {
            rank: slot.node for rank, slot in placement.slots.items()
        }
        world_ranks = range(len(programs))
        local_ranks = [
            r for r in world_ranks if self._rank_node[r] in self._node_set
        ]
        first = next(iter(self.nodes.values()))
        self.runtime = ShardMPIRuntime(
            first.kernel,
            world_ranks=world_ranks,
            local_ranks=local_ranks,
            route_delay=self._route_delay,
        )
        self.use_hpc = heuristic_factory is not None
        self.live = 0
        self.kernels = [n.kernel for n in self.nodes.values()]
        for kernel in self.kernels:
            kernel.on_live_change = self._note_live_change
        self.rank_exit: Dict[int, float] = {}
        self._fresh_exits: Dict[int, float] = {}
        self._injected: List[object] = []  # unfired directive events
        # Balance chains are parked by each kernel's own fast-forward
        # engine (repro.simcore.fastforward); this engine only needs to
        # recognize the *armed* ones in the window-horizon scan.  Labels
        # are uniquified per node before launch — the stock per-kernel
        # labels collide across the kernels sharing this shard's
        # simulator — so `_next_action` can map a heap entry back to
        # its kernel.  With fast-forward disabled (REPRO_FASTFORWARD=0)
        # the chains stay armed and the scan alone keeps windows sound.
        self._label_kernel: Dict[str, object] = {}
        self.windowed = windowed
        if windowed:
            for nid, node in self.nodes.items():
                kernel = node.kernel
                kernel._lbl_balance = {
                    c: f"balance/{nid}/{c}"
                    for c in kernel.machine.cpu_ids
                }
                for lbl in kernel._lbl_balance.values():
                    self._label_kernel[lbl] = kernel
        self._launch(programs, placement, profile)
        # Hard ceiling on any rank task's execution rate, for the
        # earliest-send work floor (`_bounds`).  Both performance models
        # clamp a thread's speed to the profile's single-thread mode
        # (TableDrivenModel returns st_speed or a table entry;
        # DecodeShareModel takes min(speed, st_speed)), so the fastest a
        # profile can ever run is max(st_speedup, table entries).  The
        # 1e-9 relative slack swamps float rounding in the floor
        # division without costing measurable width (lookahead is ~µs,
        # the slack ~ns of a typical phase).
        ceiling = 1.0
        for task in self.runtime.tasks.values():
            prof = task.perf_profile
            ceiling = max(
                ceiling,
                prof.st_speedup,
                max(prof.dprio_speed.values(), default=1.0),
            )
        self._rate_ceiling = ceiling * (1.0 + 1e-9)

    # -- construction helpers -------------------------------------------
    def _note_live_change(self, delta: int) -> None:
        self.live += delta
        if self.live == 0 and delta < 0:
            # Stop the engine after the current event, replacing a
            # per-event ``stop_when`` predicate.  Same stop instant:
            # ``stop_when`` was evaluated after each event + deferreds,
            # and ``stop()`` is honoured at exactly that point.
            self.sim.stop()

    def _route_delay(self, src: int, dst: int, size: int) -> float:
        same_node = self._rank_node.get(src) == self._rank_node.get(dst)
        model = self.interconnect.intra if same_node else self.interconnect.inter
        return model.delay(size)

    def _launch(self, programs, placement: GangPlacement, profile) -> None:
        """Create and start the shard-local ranks, in the same relative
        (ascending-rank) order the serial :meth:`Cluster.launch` uses."""
        pending = []
        for rank, factory in enumerate(programs):
            slot = placement.slots[rank]
            if slot.node not in self._node_set:
                continue
            node = self.nodes[slot.node]
            mpi = MPIRank(self.runtime, rank)
            task = node.kernel.create_task(
                f"rank{rank}",
                perf_profile=profile,
                cpus_allowed=[slot.cpu],
            )
            task.program = (
                self._wrap(factory, mpi) if self.use_hpc else factory(mpi)
            )
            task.on_exit = self._exit_recorder(rank)
            self.runtime.bind(rank, task, kernel=node.kernel)
            pending.append((node.kernel, task, slot.cpu))
        for kernel, task, cpu in pending:
            kernel.start_task(task, cpu=cpu)

    @staticmethod
    def _wrap(factory, mpi: MPIRank) -> Generator:
        def prog():
            yield mpi.setscheduler_hpc()
            yield from factory(mpi)

        return prog()

    def _exit_recorder(self, rank: int):
        def record(_task) -> None:
            self.rank_exit[rank] = self.sim.now
            self._fresh_exits[rank] = self.sim.now

        return record

    # -- window protocol ------------------------------------------------
    def initial_report(self) -> WindowReport:
        """The pre-first-window report: nothing executed yet, so the
        coordinator sees launch-time state only."""
        return self._report()

    def step(self, grant: WindowGrant) -> WindowReport:
        """Inject the grant's directives, run one window, report."""
        rt = self.runtime
        for wire in grant.deliveries:  # pre-sorted by the coordinator
            self._injected.append(rt.inject_delivery(wire))
        for time, rank, kind in grant.wakes:
            self._injected.append(rt.inject_wake(time, rank, kind))
        if self.live > 0:
            # No stop_when: _note_live_change calls sim.stop() when the
            # last local rank exits, at the same post-event point the
            # predicate used to be tested.
            self.sim.run(until=grant.horizon, until_exclusive=True)
        elif self._unfired_directives():
            # Locally drained, but cross-shard deliveries the serial run
            # would still execute (e.g. a message to a rank that already
            # exited) are pending — fire them for counter parity.
            self.sim.run(until=grant.horizon, until_exclusive=True)
        return self._report()

    def run_direct(self) -> None:
        """The 1-shard special case: no windows — the exact serial
        drive, so the run is byte-identical to :meth:`Cluster.run`
        (same event stream, same counters: the kernels' fast-forward
        engines make identical park/elide decisions in both, and the
        stop arrives via ``sim.stop()`` from ``_note_live_change`` at
        the same post-event instant the serial predicate fires)."""
        if self.live > 0:
            self.sim.run()

    def result(self) -> ShardResult:
        """Final accounting, collected after the global stop."""
        return ShardResult(
            shard_id=self.shard_id,
            rank_exit=dict(self.rank_exit),
            events_processed=self.sim.events_processed,
            messages_sent=self.runtime.messages_sent,
            messages_delivered=self.runtime.messages_delivered,
        )

    # -- action bound and balance-timer parking -------------------------
    def _unfired_directives(self) -> List[object]:
        self._injected = [
            ev
            for ev in self._injected
            if ev._queue is not None and not ev.cancelled
        ]
        return self._injected

    def _bounds(self) -> Tuple[float, float]:
        """``(next_action, next_send)`` — two sound lower bounds.

        ``next_action`` is the classic conservative bound: the earliest
        pending heap event (parked balance chains are absent from the
        heap by construction, and an armed balance fire on a
        currently-idle kernel is skipped — it cannot act unless some
        earlier-or-equal counted event enqueues work first).  Every
        observable action happens at an event, so nothing can occur
        below it — but it counts *inert* local timers (ticks, resched
        slots), which pins windows to the ~10 ms tick period.

        ``next_send`` bounds only what other shards can observe: the
        earliest instant a cross-shard message or collective arrival can
        be emitted.  Sends happen when a rank's *program* advances —
        at a compute-phase completion or at a wakeup — never inside
        tick/resched/balance bookkeeping.  For every runnable rank task
        with phase work left, its program cannot advance before
        ``now + remaining / rate_ceiling`` no matter how events reorder
        or rates change (rates are capped by the profile's single-thread
        mode, see ``_rate_ceiling``); wakeups (message deliveries, isend
        acks, collective releases, sleep ends) are real heap events and
        are counted directly.  A runnable rank task *without* phase work
        (at launch, or mid instant-advance) can act at any scheduling
        event, so its presence collapses ``next_send`` back to the
        all-events bound — sound, just no wider than ``next_action``.
        """
        if self.live <= 0:
            pending = self._unfired_directives()
            t = min((ev.time for ev in pending), default=_INF)
            return t, t
        now = self.sim.now
        ceiling = self._rate_ceiling
        floor_all = False  # a rank may act at *any* scheduling event
        send = _INF
        for task in self.runtime.tasks.values():
            if not task.runnable:
                continue  # sleeping ranks wake only at counted events
            rem = task.phase_remaining
            started = task.phase_started_at
            if started is not None and task.phase_rate > 0.0:
                # Mirror Task.bank_progress's float expressions exactly:
                # the true remaining work at `now` under the current
                # (constant-since-rebase) rate.
                rem = max(0.0, rem - max(0.0, (now - started) * task.phase_rate))
            if rem > _WORK_EPSILON:
                floor = now + rem / ceiling
                if floor < send:
                    send = floor
            else:
                floor_all = True
        label_kernel = self._label_kernel
        action = _INF
        for t, ev in self.sim.queue.iter_entries():
            if t >= action and (floor_all or t >= send):
                continue
            kernel = label_kernel.get(ev.label)
            if kernel is not None and kernel._queued_total == 0:
                continue  # armed balance fire on an idle kernel: inert
            if t < action:
                action = t
            if not floor_all and t < send and not _inert_label(ev.label):
                send = t
        if floor_all or send < action:
            # Every send is an action, so next_action is itself a sound
            # send bound; never report the weaker of the two.
            send = action
        return action, send

    def _report(self) -> WindowReport:
        rt = self.runtime
        sends, rt.outbox_sends = rt.outbox_sends, []
        arrivals, rt.outbox_arrivals = rt.outbox_arrivals, []
        exits, self._fresh_exits = self._fresh_exits, {}
        next_action, next_send = self._bounds()
        return WindowReport(
            shard_id=self.shard_id,
            now=self.sim.now,
            next_action=next_action,
            live=self.live,
            sends=sends,
            arrivals=arrivals,
            exits=exits,
            next_send=next_send,
        )


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
class _CollectivePending:
    __slots__ = ("arrivals",)

    def __init__(self) -> None:
        self.arrivals: List[WireArrival] = []


class _Coordinator:
    """Routes outboxes, completes cross-shard collectives, computes
    window horizons, and decides the global stop."""

    def __init__(
        self,
        n_shards: int,
        lookahead: float,
        rank_shard: Dict[int, int],
        tree_base: float,
    ) -> None:
        self.n_shards = n_shards
        self.lookahead = lookahead
        self.rank_shard = rank_shard
        self.tree_base = tree_base
        self._pending: Dict[Tuple[Tuple[int, ...], str], _CollectivePending] = {}
        self.all_exits: Dict[int, float] = {}
        self.windows = 0

    def _tree_delay(self, size: int) -> float:
        # Must match MPIRuntime._tree_delay bit-for-bit.
        depth = max(1, (size - 1).bit_length())
        return depth * self.tree_base

    def route(
        self, reports: Sequence[WindowReport]
    ) -> Tuple[List[WindowGrant], float]:
        """Consume the reports' outboxes; returns per-shard grants (with
        horizon still unset) and the earliest fresh directive time."""
        deliveries: List[List[WireSend]] = [[] for _ in range(self.n_shards)]
        wakes: List[List[Tuple[float, int, str]]] = [
            [] for _ in range(self.n_shards)
        ]
        directive_min = _INF
        for report in reports:
            self.all_exits.update(report.exits)
            for wire in report.sends:
                deliveries[self.rank_shard[wire.dst]].append(wire)
                if wire.arrival_time < directive_min:
                    directive_min = wire.arrival_time
            for arrival in report.arrivals:
                key = (arrival.ckey, arrival.kind)
                pend = self._pending.setdefault(key, _CollectivePending())
                pend.arrivals.append(arrival)
                if len(pend.arrivals) == arrival.comm_size:
                    del self._pending[key]
                    release_min = self._complete_collective(
                        arrival, pend.arrivals, wakes
                    )
                    if release_min < directive_min:
                        directive_min = release_min
        grants = []
        for shard in range(self.n_shards):
            batch = deliveries[shard]
            if len(batch) > 1:
                batch.sort(key=lambda w: (w.send_time, w.src, w.seq))
            grants.append(
                WindowGrant(
                    horizon=_INF, deliveries=batch, wakes=wakes[shard]
                )
            )
        return grants, directive_min

    def _complete_collective(
        self,
        last: WireArrival,
        arrivals: List[WireArrival],
        wakes: List[List[Tuple[float, int, str]]],
    ) -> float:
        delay = self._tree_delay(last.comm_size)
        if delay < self.lookahead:
            raise ShardedRunError(
                f"collective over {last.comm_size} ranks spanning shards "
                f"has tree delay {delay:.2e}s < lookahead "
                f"{self.lookahead:.2e}s; such sub-communicators are not "
                "supported by the conservative window protocol — reduce "
                "the shard count or keep the communicator within a shard"
            )
        # Serial semantics: everyone is released tree-delay after the
        # last arrival, in arrival order; same-instant arrival ties are
        # broken by rank (equivalent for the one-rank-per-CPU placements
        # this repository studies — see module docstring).
        ordered = sorted(arrivals, key=lambda a: (a.time, a.rank))
        t_last = ordered[-1].time
        release = t_last + delay
        for arrival in ordered:
            wakes[self.rank_shard[arrival.rank]].append(
                (release, arrival.rank, arrival.kind)
            )
        return release

    def incomplete_collectives(self) -> int:
        return len(self._pending)


# ----------------------------------------------------------------------
# Transports
# ----------------------------------------------------------------------
class _InlineWorkers:
    """All shards in this process, stepped round-robin.

    A ``None`` grant skips that shard this window (its previous report
    is still exact, so the caller keeps it): the shard has nothing to
    inject and nothing to execute below the horizon.
    """

    name = "inline"

    def __init__(self, builders: Sequence[Callable[[], ShardEngine]]) -> None:
        self.engines = [build() for build in builders]

    def initial(self) -> List[WindowReport]:
        return [e.initial_report() for e in self.engines]

    def step(
        self, grants: Sequence[Optional[WindowGrant]]
    ) -> List[Optional[WindowReport]]:
        return [
            e.step(g) if g is not None else None
            for e, g in zip(self.engines, grants)
        ]

    def finish(self) -> List[ShardResult]:
        return [e.result() for e in self.engines]

    def close(self) -> None:
        pass


def _process_worker_main(builder, conn, world) -> None:
    """Forked worker: build the shard, then serve grant→report rounds
    until the stop frame.  Every exchange is one binary frame over
    ``send_bytes``/``recv_bytes`` — a single write per window."""
    codec = WireCodec(world)
    try:
        engine = builder()
        conn.send_bytes(codec.encode_report(engine.initial_report()))
        while True:
            ftype, value = codec.decode(conn.recv_bytes())
            if ftype == FRAME_STOP:
                conn.send_bytes(codec.encode_result(engine.result()))
                return
            conn.send_bytes(codec.encode_report(engine.step(value)))
    except (EOFError, BrokenPipeError):  # parent is gone; just exit
        raise
    except BaseException as exc:  # surface the traceback to the parent
        import traceback

        try:
            conn.send_bytes(
                codec.encode_error(f"{exc}\n{traceback.format_exc()}")
            )
        except (OSError, ValueError):  # pragma: no cover - pipe closed
            pass
        raise
    finally:
        conn.close()


class _ProcessWorkers:
    """One forked worker per shard; grants/reports travel over pipes as
    single binary frames (:mod:`repro.cluster.wire`).

    Fork (not spawn) start method: worker arguments — including task
    program closures — are inherited, never pickled.  Only wire frames
    cross the pipes, and :attr:`wire_bytes` counts every byte in both
    directions.

    A worker that dies mid-window (killed, OOM, crash) surfaces as
    :class:`ShardedRunError` carrying either the worker's own traceback
    (sent as an error frame before re-raising) or its exit code (pipe
    EOF without a frame); either way :meth:`close` reliably terminates
    and joins every surviving worker, so no orphans outlive the run.
    """

    name = "process"

    def __init__(
        self,
        builders: Sequence[Callable[[], ShardEngine]],
        world: Sequence[int],
    ) -> None:
        import multiprocessing as mp

        ctx = mp.get_context("fork")
        self.codec = WireCodec(world)
        self.wire_bytes = 0
        self.conns = []
        self.procs = []
        for builder in builders:
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_process_worker_main,
                args=(builder, child, tuple(world)),
                daemon=True,
            )
            proc.start()
            child.close()
            self.conns.append(parent)
            self.procs.append(proc)

    def _send(self, conn, frame: bytes) -> None:
        self.wire_bytes += len(frame)
        conn.send_bytes(frame)

    def _recv(self, index: int):
        try:
            frame = self.conns[index].recv_bytes()
        except (EOFError, OSError):
            self._fail(index, None)
        self.wire_bytes += len(frame)
        ftype, value = self.codec.decode(frame)
        if ftype == FRAME_ERROR:
            self._fail(index, value)
        return value

    def _fail(self, index: int, detail: Optional[str]) -> None:
        """A worker died or reported an exception: reap everything,
        then raise with the best diagnostics available."""
        proc = self.procs[index]
        self.close()
        if detail is None:
            code = proc.exitcode
            detail = (
                f"worker process exited with code {code} without a "
                "report (killed or crashed mid-window)"
            )
        raise ShardedRunError(f"shard {index} worker failed:\n{detail}")

    def initial(self) -> List[WindowReport]:
        return [self._recv(i) for i in range(len(self.conns))]

    def step(
        self, grants: Sequence[Optional[WindowGrant]]
    ) -> List[Optional[WindowReport]]:
        # All grants go out before any report is awaited, so every
        # granted worker runs its window concurrently; a skipped shard
        # (None grant) costs no pipe round-trip at all.
        for conn, grant in zip(self.conns, grants):
            if grant is not None:
                self._send(conn, self.codec.encode_grant(grant))
        return [
            self._recv(i) if grant is not None else None
            for i, grant in enumerate(grants)
        ]

    def finish(self) -> List[ShardResult]:
        stop = self.codec.encode_stop()
        for conn in self.conns:
            self._send(conn, stop)
        results = [self._recv(i) for i in range(len(self.conns))]
        self.close()
        return results

    def close(self) -> None:
        """Idempotent teardown: close pipes (workers blocked in
        ``recv_bytes`` see EOF and exit), then join, escalating to
        terminate/kill so a wedged worker can never be orphaned."""
        for conn in self.conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for proc in self.procs:
            proc.join(timeout=1)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - unkillable worker
                proc.kill()
                proc.join()


def _resolve_workers(workers: str, n_shards: int) -> str:
    """auto → process only when the host has CPUs for it.

    Two inline cutoffs: a <2-CPU host gains nothing from forking at
    all, and a host with fewer than ``n_shards / 2`` usable CPUs would
    time-slice so many workers per core that the per-window barrier
    (every round waits for the *slowest* worker) eats the win — the
    fork/pipe overhead then just makes the inline path slower.  At
    ``cpus >= n_shards / 2`` each barrier round overlaps at least two
    shards per core, which measures out ahead of inline.
    """
    if workers not in ("auto", "inline", "process"):
        raise ValueError(
            f"workers must be auto, inline or process, got {workers!r}"
        )
    if workers != "auto":
        return workers
    if n_shards < 2:
        return "inline"
    cpus = _usable_cpus()
    if cpus < 2 or 2 * cpus < n_shards or not hasattr(os, "fork"):
        return "inline"
    return "process"


def _usable_cpus() -> int:
    """CPUs this process may actually run on.  ``os.cpu_count()`` reports
    the whole machine, which overcounts inside cpuset-restricted
    containers (a 1-CPU cgroup on a 64-CPU host would fork 64-way and
    thrash); prefer the scheduling affinity mask where available."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


# ----------------------------------------------------------------------
# Top-level runner
# ----------------------------------------------------------------------
@dataclass
class ShardedRunResult:
    """Outcome of a sharded cluster run (parity-comparable fields)."""

    exec_time: float
    rank_exit: Dict[int, float]
    events: int
    messages_sent: int
    messages_delivered: int
    n_shards: int
    workers: str
    windows: int
    lookahead: float
    #: Coordinator barrier rounds (== ``windows``; the bench-facing
    #: name — the quantity the adaptive lookahead exists to minimize).
    sync_rounds: int = 0
    #: Total frame bytes exchanged over the process transport, both
    #: directions (0 for inline: nothing is encoded in-process).
    wire_bytes: int = 0


def run_sharded(
    n_nodes: int,
    programs: Sequence[Callable[[MPIRank], Generator]],
    placement: GangPlacement,
    heuristic_factory: Optional[Callable[[], Heuristic]] = None,
    shards: int = 2,
    workers: str = "auto",
    topology: Optional[MachineTopology] = None,
    interconnect: Optional[InterconnectModel] = None,
    profile: PerfProfile = CPU_BOUND,
) -> ShardedRunResult:
    """Run a cluster application sharded over ``shards`` simulators.

    Semantically equivalent to building a :class:`Cluster`, calling
    ``launch(programs, placement)`` and ``run()`` — the parity oracle
    holds the two to bit-identical per-rank completion times.
    """
    if len(placement.slots) < len(programs):
        raise ValueError("placement does not cover every rank")
    interconnect = interconnect or InterconnectModel()
    plan = plan_shards(n_nodes, shards)
    n_shards = plan.n_shards
    rank_shard = {
        rank: plan.node_shard[slot.node]
        for rank, slot in placement.slots.items()
        if rank < len(programs)
    }
    # Conservative lookahead: no cross-shard p2p message can arrive
    # sooner than the inter-node base latency, and no cross-shard
    # collective can release sooner than the world reduction-tree delay.
    from repro.mpi.messages import LatencyModel

    runtime_base = LatencyModel().base
    depth = max(1, (len(programs) - 1).bit_length())
    lookahead = min(interconnect.inter.base, depth * runtime_base)

    def make_builder(shard_id: int) -> Callable[[], ShardEngine]:
        node_ids = plan.nodes_of(shard_id)

        def build() -> ShardEngine:
            return ShardEngine(
                shard_id,
                node_ids,
                programs,
                placement,
                heuristic_factory,
                topology=topology,
                interconnect=interconnect,
                profile=profile,
                windowed=n_shards > 1,
            )

        return build

    builders = [make_builder(s) for s in range(n_shards)]

    mode = _resolve_workers(workers, n_shards)
    if n_shards == 1:
        # Byte-identical special case: one shard is the serial run.
        engine = builders[0]()
        engine.run_direct()
        result = engine.result()
        return ShardedRunResult(
            exec_time=engine.sim.now,
            rank_exit=result.rank_exit,
            events=result.events_processed,
            messages_sent=result.messages_sent,
            messages_delivered=result.messages_delivered,
            n_shards=1,
            workers="inline",
            windows=0,
            lookahead=lookahead,
        )

    pool = (
        _ProcessWorkers(builders, range(len(programs)))
        if mode == "process"
        else _InlineWorkers(builders)
    )
    coord = _Coordinator(
        n_shards=n_shards,
        lookahead=lookahead,
        rank_shard=rank_shard,
        tree_base=runtime_base,
    )
    # Adaptive window scale W: the horizon is allowed to run up to
    # W * lookahead past the classic conservative bound, capped by the
    # earliest-send bound which makes any width safe.  W doubles on a
    # quiet round (no cross-shard traffic observed) and halves on a
    # miss, so sustained compute stretches converge to earliest-send
    # width within log2 rounds while communication-dense stretches
    # fall back toward the classic one-lookahead window.
    scale = 1
    try:
        reports = pool.initial()
        fresh = reports
        while True:
            # Route only the *fresh* reports: a skipped shard's report
            # was already consumed (its outbox routed) in the window
            # that produced it.
            traffic = any(r.sends or r.arrivals for r in fresh)
            grants, directive_min = coord.route(fresh)
            total_live = sum(r.live for r in reports)
            action_min = min(r.next_action for r in reports)
            send_min = min(r.next_send for r in reports)
            bound = min(action_min, directive_min)
            if total_live == 0:
                t_stop = max(coord.all_exits.values(), default=0.0)
                if bound >= t_stop:
                    break
                # Deliveries the serial run would still execute before
                # its stop instant: drain them.
                horizon = t_stop
            else:
                if bound == _INF:
                    raise ShardedRunError(
                        f"sharded run deadlocked: {total_live} tasks "
                        f"alive, no shard can act, "
                        f"{coord.incomplete_collectives()} collective(s) "
                        "incomplete"
                    )
                scale = max(1, scale // 2) if traffic else min(scale * 2, _SCALE_MAX)
                # No shard can *send* below safe_send (see _bounds; a
                # directive granted this round can trigger an immediate
                # reply, hence the directive_min term), so every
                # message generated inside the window arrives at or
                # after safe_send + lookahead >= horizon — injectable
                # next barrier, never in a shard's past.  bound is
                # itself a send lower bound (sends happen at events),
                # so take the wider of the two; and since
                # horizon >= bound + lookahead always, the shard
                # holding the minimum event is always stepped:
                # guaranteed progress.
                safe_send = min(send_min, directive_min)
                horizon = min(
                    max(bound, safe_send) + coord.lookahead,
                    bound + scale * coord.lookahead,
                )
            # Step only the shards this window can touch: something to
            # inject, or an event below the horizon.  A skipped shard's
            # event stream is unaffected — windows bound how far ahead
            # a shard may run, never what it executes — so its previous
            # report stays exact (and in process mode the skip saves
            # the pipe round-trip).
            step_grants: List[Optional[WindowGrant]] = []
            for grant, report in zip(grants, reports):
                if (
                    grant.deliveries
                    or grant.wakes
                    or report.next_action < horizon
                ):
                    grant.horizon = horizon
                    step_grants.append(grant)
                else:
                    step_grants.append(None)
            coord.windows += 1
            stepped = pool.step(step_grants)
            fresh = [r for r in stepped if r is not None]
            reports = [
                new if new is not None else old
                for new, old in zip(stepped, reports)
            ]
        results = pool.finish()
    except BaseException:
        pool.close()
        raise

    rank_exit: Dict[int, float] = {}
    for res in results:
        rank_exit.update(res.rank_exit)
    return ShardedRunResult(
        exec_time=max(rank_exit.values(), default=0.0),
        rank_exit=rank_exit,
        events=sum(r.events_processed for r in results),
        messages_sent=sum(r.messages_sent for r in results),
        messages_delivered=sum(r.messages_delivered for r in results),
        n_shards=n_shards,
        workers=mode,
        windows=coord.windows,
        lookahead=lookahead,
        sync_rounds=coord.windows,
        wire_bytes=getattr(pool, "wire_bytes", 0),
    )
