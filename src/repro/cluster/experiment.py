"""Cluster gang-scheduling experiment (paper §VI future work).

A MetBench-style application with an ascending load ladder across 8
ranks on 2 nodes.  Naive block placement puts all light ranks on node 0
and all heavy ranks on node 1 — pairing heavy-with-heavy on each SMT
core, which the local HPCSched *cannot* fix (both siblings want the
high priority) — while gang placement pairs heavy-with-light per core
(inside the ±2 window's ~7x absorbable speed ratio) and equalizes node
totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.gang import GangPlacement, block_placement, gang_placement
from repro.hpcsched import UniformHeuristic
from repro.mpi.process import MPIRank

#: Ascending ladder: light ranks first (the worst case for block
#: placement).  The heavy/light ratio ~7 matches what the ±2 priority
#: window can absorb.
DEFAULT_LOADS = [0.45, 0.47, 0.49, 0.51, 3.15, 3.29, 3.43, 3.57]
DEFAULT_ITERATIONS = 10


def ladder_loads(n_ranks: int) -> list:
    """The 8-rank paper ladder generalized to ``n_ranks``: cycle the
    base loads and sort ascending, so the first half stays light and
    the per-node heavy/light mix matches the paper's at any scale."""
    if n_ranks <= 0:
        raise ValueError(f"need at least one rank, got {n_ranks}")
    base = DEFAULT_LOADS
    return sorted(base[i % len(base)] for i in range(n_ranks))


@dataclass
class ClusterRunResult:
    placement: GangPlacement
    exec_time: float
    node_loads: Dict[int, float]
    #: Simulation events the shared engine delivered for this run.
    events: int = 0
    #: Simulated time each rank's task exited — the bit-exact quantity
    #: the sharded parity oracle compares.
    rank_exit: Dict[int, float] = field(default_factory=dict)
    messages_sent: int = 0
    messages_delivered: int = 0
    #: Scale-out bookkeeping: 1/serial for the single-process path.
    shards: int = 1
    workers: str = "serial"
    windows: int = 0
    #: Window barriers (== windows; the bench-facing name) and total
    #: wire-protocol bytes crossing worker pipes (0 for inline/serial).
    sync_rounds: int = 0
    wire_bytes: int = 0


def _worker(load: float, iterations: int):
    def factory(mpi: MPIRank) -> Generator:
        def prog():
            for _ in range(iterations):
                yield mpi.compute(load)
                yield mpi.barrier()

        return prog()

    return factory


def _placement_for(strategy, loads, n_nodes, cpn) -> GangPlacement:
    if strategy == "block":
        return block_placement(len(loads), n_nodes, cpn)
    if strategy == "gang":
        return gang_placement(loads, n_nodes, cpn)
    raise ValueError(f"unknown placement strategy {strategy!r}")


def run_cluster(
    strategy: str,
    loads: Optional[Sequence[float]] = None,
    iterations: int = DEFAULT_ITERATIONS,
    n_nodes: int = 2,
    use_hpc: bool = True,
) -> ClusterRunResult:
    """Run the ladder workload under one placement strategy."""
    loads = list(loads if loads is not None else DEFAULT_LOADS)
    cluster = Cluster(
        n_nodes=n_nodes,
        heuristic_factory=UniformHeuristic if use_hpc else None,
    )
    placement = _placement_for(
        strategy, loads, n_nodes, cluster.cpus_per_node
    )
    programs = [_worker(load, iterations) for load in loads]
    cluster.launch(programs, placement)
    exec_time = cluster.run()
    return ClusterRunResult(
        placement=placement,
        exec_time=exec_time,
        node_loads=placement.node_loads(loads),
        events=cluster.sim.events_processed,
        rank_exit=dict(cluster.rank_exit),
        messages_sent=cluster.runtime.messages_sent,
        messages_delivered=cluster.runtime.messages_delivered,
    )


def run_cluster_sharded(
    strategy: str,
    loads: Optional[Sequence[float]] = None,
    iterations: int = DEFAULT_ITERATIONS,
    n_nodes: int = 2,
    use_hpc: bool = True,
    shards: int = 2,
    workers: str = "auto",
) -> ClusterRunResult:
    """The sharded-PDES twin of :func:`run_cluster`: same workload,
    same placement, the cluster partitioned over ``shards`` simulators
    (see :mod:`repro.cluster.sharded`).  Per-rank completion times are
    bit-identical to the serial run's."""
    from repro.cluster.sharded import run_sharded
    from repro.power5.machine import MachineTopology

    loads = list(loads if loads is not None else DEFAULT_LOADS)
    cpn = MachineTopology().n_cpus
    placement = _placement_for(strategy, loads, n_nodes, cpn)
    programs = [_worker(load, iterations) for load in loads]
    result = run_sharded(
        n_nodes=n_nodes,
        programs=programs,
        placement=placement,
        heuristic_factory=UniformHeuristic if use_hpc else None,
        shards=shards,
        workers=workers,
    )
    return ClusterRunResult(
        placement=placement,
        exec_time=result.exec_time,
        node_loads=placement.node_loads(loads),
        events=result.events,
        rank_exit=dict(result.rank_exit),
        messages_sent=result.messages_sent,
        messages_delivered=result.messages_delivered,
        shards=result.n_shards,
        workers=result.workers,
        windows=result.windows,
        sync_rounds=result.sync_rounds,
        wire_bytes=result.wire_bytes,
    )
