"""Compact binary wire protocol for the sharded PDES transport.

The process transport of :mod:`repro.cluster.sharded` exchanges one
report and one grant per shard per window.  Pickling the dataclasses
directly costs ~200 bytes per cross-shard message plus a full object
graph walk per window — measurable overhead at tens of thousands of
windows.  This module packs the window records into flat struct arrays:

* every frame starts with a one-byte type tag
  (:data:`FRAME_GRANT` … :data:`FRAME_ERROR`) followed by a fixed-size
  header, so a worker can decode with a single ``struct`` unpack per
  section — no per-field dispatch, no pickle machinery on the hot path;
* cross-shard point-to-point messages are 48-byte records keyed by
  ``(send_time, src, seq)`` — exactly the coordinator's deterministic
  sort key — with times as raw IEEE-754 doubles (bit-exact round-trip,
  a parity requirement, including ``inf`` bounds);
* collective kinds and communicator rank-sets are interned into small
  per-frame tables; the world communicator (by far the common case) is
  a one-byte sentinel instead of an explicit rank array;
* message payloads are rare (the repository's workloads send
  zero-payload synchronization messages), so they ride in one trailing
  pickle blob of ``(record_index, payload)`` pairs — an empty blob costs
  4 bytes.

Encode→decode is the identity on every record type (property-tested in
``tests/cluster/test_wire.py``); :class:`WireCodec` counts the bytes it
produces and parses so the transport can report ``wire_bytes``.

The window dataclasses live here (not in ``sharded``) so the codec and
the runner share them without a circular import; ``repro.cluster
.sharded`` re-exports them under their historical names.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "WireSend",
    "WireArrival",
    "WindowReport",
    "WindowGrant",
    "ShardResult",
    "WireCodec",
    "WireFormatError",
    "FRAME_GRANT",
    "FRAME_REPORT",
    "FRAME_RESULT",
    "FRAME_STOP",
    "FRAME_ERROR",
]


# ----------------------------------------------------------------------
# Window records (shared by both transports)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WireSend:
    """A cross-shard point-to-point message, as externalized by the
    source shard.  ``arrival_time`` was computed by the source (which
    knows the full rank→node map), with the identical float expression
    the serial runtime uses."""

    src: int
    dst: int
    tag: int
    size: int
    send_time: float
    arrival_time: float
    seq: int  # source-shard message sequence, for deterministic ties
    payload: object = None


@dataclass(frozen=True)
class WireArrival:
    """One rank's arrival at a collective that spans shards."""

    ckey: Tuple[int, ...]  # the communicator's rank tuple
    kind: str
    rank: int
    time: float
    comm_size: int


@dataclass
class WindowReport:
    """What a shard tells the coordinator at a window barrier.

    A report is a *delta*: the sends/arrivals/exits lists hold only
    what happened since the previous barrier (the shard keeps all
    cumulative state; final totals travel once, in a
    :class:`ShardResult`)."""

    shard_id: int
    now: float
    #: Lower bound on the next instant this shard can act (inf when
    #: drained).  See the sharded module docstring's horizon argument.
    next_action: float
    live: int
    sends: List[WireSend] = field(default_factory=list)
    arrivals: List[WireArrival] = field(default_factory=list)
    exits: Dict[int, float] = field(default_factory=dict)
    #: Lower bound on the next instant this shard can *send* (emit a
    #: cross-shard message or collective arrival).  Always >= the true
    #: earliest send; usually far above ``next_action``, which also
    #: counts inert local timers.  Drives the adaptive window widening.
    next_send: float = 0.0


@dataclass
class WindowGrant:
    """What the coordinator tells a shard at a window barrier."""

    horizon: float
    #: Sorted by (send_time, src_rank, seq) — the determinism rule.
    deliveries: List[WireSend] = field(default_factory=list)
    #: (release_time, rank, kind), in (arrival_time, rank) order.
    wakes: List[Tuple[float, int, str]] = field(default_factory=list)


@dataclass
class ShardResult:
    """Final per-shard accounting returned after the stop sentinel."""

    shard_id: int
    rank_exit: Dict[int, float]
    events_processed: int
    messages_sent: int
    messages_delivered: int


# ----------------------------------------------------------------------
# Frame layout
# ----------------------------------------------------------------------
FRAME_GRANT = 1
FRAME_REPORT = 2
FRAME_RESULT = 3
FRAME_STOP = 4
FRAME_ERROR = 5

#: One point-to-point record: send_time, arrival_time (f64 — bit-exact),
#: tag (i64: MPI tags may be negative sentinels), size, seq (u64),
#: src, dst (u32).
_SEND = struct.Struct("<ddqQQII")
#: One collective wake: release_time, rank, kind-table index.
_WAKE = struct.Struct("<dIB")
#: One collective arrival: time, rank, comm_size, kind index, comm index.
_ARRIVAL = struct.Struct("<dIIBH")
#: One rank exit: time, rank.
_EXIT = struct.Struct("<dI")

_GRANT_HDR = struct.Struct("<BdII")  # type, horizon, n_deliveries, n_wakes
_REPORT_HDR = struct.Struct("<BIdddIIIII")
# type, shard_id, now, next_action, next_send, live,
# n_sends, n_arrivals, n_exits, n_comms
_RESULT_HDR = struct.Struct("<BIQQQI")
# type, shard_id, events, messages_sent, messages_delivered, n_exits
_U8 = struct.Struct("<B")
_U32 = struct.Struct("<I")

#: Communicator-table entry flag: the world communicator, encoded as a
#: sentinel instead of an explicit rank array.
_COMM_WORLD = 1
_COMM_EXPLICIT = 0


class WireFormatError(ValueError):
    """A frame does not decode as the expected type/layout."""


class _Writer:
    """Append-only frame builder over a bytearray."""

    __slots__ = ("buf",)

    def __init__(self) -> None:
        self.buf = bytearray()

    def pack(self, st: struct.Struct, *values) -> None:
        self.buf += st.pack(*values)

    def string(self, text: str) -> None:
        raw = text.encode("utf-8")
        if len(raw) > 0xFF:
            raise WireFormatError(f"string too long for table: {text!r}")
        self.buf += _U8.pack(len(raw))
        self.buf += raw

    def blob(self, raw: bytes) -> None:
        self.buf += _U32.pack(len(raw))
        self.buf += raw


class _Reader:
    """Sequential frame parser with bounds checking."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes, pos: int = 0) -> None:
        self.data = data
        self.pos = pos

    def unpack(self, st: struct.Struct):
        end = self.pos + st.size
        if end > len(self.data):
            raise WireFormatError("truncated frame")
        values = st.unpack_from(self.data, self.pos)
        self.pos = end
        return values

    def string(self) -> str:
        (n,) = self.unpack(_U8)
        end = self.pos + n
        if end > len(self.data):
            raise WireFormatError("truncated string")
        text = self.data[self.pos:end].decode("utf-8")
        self.pos = end
        return text

    def blob(self) -> bytes:
        (n,) = self.unpack(_U32)
        end = self.pos + n
        if end > len(self.data):
            raise WireFormatError("truncated blob")
        raw = self.data[self.pos:end]
        self.pos = end
        return bytes(raw)


def _encode_kind_table(writer: _Writer, kinds: Sequence[str]) -> Dict[str, int]:
    if len(kinds) > 0xFF:
        raise WireFormatError(f"{len(kinds)} collective kinds in one frame")
    writer.pack(_U8, len(kinds))
    index: Dict[str, int] = {}
    for i, kind in enumerate(kinds):
        writer.string(kind)
        index[kind] = i
    return index


def _decode_kind_table(reader: _Reader) -> List[str]:
    (n,) = reader.unpack(_U8)
    return [reader.string() for _ in range(n)]


def _encode_payloads(writer: _Writer, sends: Sequence[WireSend]) -> None:
    pairs = [(i, w.payload) for i, w in enumerate(sends) if w.payload is not None]
    writer.blob(pickle.dumps(pairs, protocol=pickle.HIGHEST_PROTOCOL) if pairs else b"")


def _decode_payloads(reader: _Reader, sends: List[WireSend]) -> None:
    raw = reader.blob()
    if not raw:
        return
    for i, payload in pickle.loads(raw):
        w = sends[i]
        sends[i] = WireSend(
            src=w.src,
            dst=w.dst,
            tag=w.tag,
            size=w.size,
            send_time=w.send_time,
            arrival_time=w.arrival_time,
            seq=w.seq,
            payload=payload,
        )


class WireCodec:
    """Symmetric encoder/decoder for the sharded window protocol.

    Both endpoints construct it with the identical ``world_ranks``
    sequence (the full rank id space, known to every shard at build
    time), which lets the common world communicator travel as a
    one-byte sentinel.
    """

    def __init__(self, world_ranks: Sequence[int]) -> None:
        self._world: Tuple[int, ...] = tuple(world_ranks)

    # -- grants ---------------------------------------------------------
    def encode_grant(self, grant: WindowGrant) -> bytes:
        """One grant frame: header, kind table, deliveries, wakes, payloads."""
        w = _Writer()
        w.pack(
            _GRANT_HDR,
            FRAME_GRANT,
            grant.horizon,
            len(grant.deliveries),
            len(grant.wakes),
        )
        kinds = _dedup(k for _, _, k in grant.wakes)
        kind_idx = _encode_kind_table(w, kinds)
        for s in grant.deliveries:
            w.pack(
                _SEND, s.send_time, s.arrival_time, s.tag, s.size, s.seq,
                s.src, s.dst,
            )
        for time, rank, kind in grant.wakes:
            w.pack(_WAKE, time, rank, kind_idx[kind])
        _encode_payloads(w, grant.deliveries)
        return bytes(w.buf)

    def _decode_grant(self, r: _Reader) -> WindowGrant:
        _type, horizon, n_deliveries, n_wakes = r.unpack(_GRANT_HDR)
        kinds = _decode_kind_table(r)
        deliveries: List[WireSend] = []
        for _ in range(n_deliveries):
            send_time, arrival, tag, size, seq, src, dst = r.unpack(_SEND)
            deliveries.append(
                WireSend(
                    src=src, dst=dst, tag=tag, size=size,
                    send_time=send_time, arrival_time=arrival, seq=seq,
                )
            )
        wakes: List[Tuple[float, int, str]] = []
        for _ in range(n_wakes):
            time, rank, ki = r.unpack(_WAKE)
            wakes.append((time, rank, kinds[ki]))
        _decode_payloads(r, deliveries)
        return WindowGrant(horizon=horizon, deliveries=deliveries, wakes=wakes)

    # -- reports --------------------------------------------------------
    def encode_report(self, report: WindowReport) -> bytes:
        """One report frame: header, kind/comm tables, sends, arrivals,
        exits (sorted by rank), payloads."""
        w = _Writer()
        comms = _dedup(a.ckey for a in report.arrivals)
        if len(comms) > 0xFFFF:
            raise WireFormatError(f"{len(comms)} communicators in one frame")
        w.pack(
            _REPORT_HDR,
            FRAME_REPORT,
            report.shard_id,
            report.now,
            report.next_action,
            report.next_send,
            report.live,
            len(report.sends),
            len(report.arrivals),
            len(report.exits),
            len(comms),
        )
        kinds = _dedup(a.kind for a in report.arrivals)
        kind_idx = _encode_kind_table(w, kinds)
        comm_idx: Dict[Tuple[int, ...], int] = {}
        for i, ckey in enumerate(comms):
            comm_idx[ckey] = i
            if ckey == self._world:
                w.pack(_U8, _COMM_WORLD)
            else:
                w.pack(_U8, _COMM_EXPLICIT)
                w.pack(_U32, len(ckey))
                for rank in ckey:
                    w.pack(_U32, rank)
        for s in report.sends:
            w.pack(
                _SEND, s.send_time, s.arrival_time, s.tag, s.size, s.seq,
                s.src, s.dst,
            )
        for a in report.arrivals:
            w.pack(
                _ARRIVAL, a.time, a.rank, a.comm_size, kind_idx[a.kind],
                comm_idx[a.ckey],
            )
        for rank in sorted(report.exits):
            w.pack(_EXIT, report.exits[rank], rank)
        _encode_payloads(w, report.sends)
        return bytes(w.buf)

    def _decode_report(self, r: _Reader) -> WindowReport:
        (
            _type, shard_id, now, next_action, next_send, live,
            n_sends, n_arrivals, n_exits, n_comms,
        ) = r.unpack(_REPORT_HDR)
        kinds = _decode_kind_table(r)
        comms: List[Tuple[int, ...]] = []
        for _ in range(n_comms):
            (flag,) = r.unpack(_U8)
            if flag == _COMM_WORLD:
                comms.append(self._world)
            else:
                (count,) = r.unpack(_U32)
                comms.append(
                    tuple(r.unpack(_U32)[0] for _ in range(count))
                )
        sends: List[WireSend] = []
        for _ in range(n_sends):
            send_time, arrival, tag, size, seq, src, dst = r.unpack(_SEND)
            sends.append(
                WireSend(
                    src=src, dst=dst, tag=tag, size=size,
                    send_time=send_time, arrival_time=arrival, seq=seq,
                )
            )
        arrivals: List[WireArrival] = []
        for _ in range(n_arrivals):
            time, rank, comm_size, ki, ci = r.unpack(_ARRIVAL)
            arrivals.append(
                WireArrival(
                    ckey=comms[ci], kind=kinds[ki], rank=rank, time=time,
                    comm_size=comm_size,
                )
            )
        exits: Dict[int, float] = {}
        for _ in range(n_exits):
            time, rank = r.unpack(_EXIT)
            exits[rank] = time
        _decode_payloads(r, sends)
        return WindowReport(
            shard_id=shard_id,
            now=now,
            next_action=next_action,
            live=live,
            sends=sends,
            arrivals=arrivals,
            exits=exits,
            next_send=next_send,
        )

    # -- results / control ----------------------------------------------
    def encode_result(self, result: ShardResult) -> bytes:
        """One final-result frame: totals header + per-rank exit times."""
        w = _Writer()
        w.pack(
            _RESULT_HDR,
            FRAME_RESULT,
            result.shard_id,
            result.events_processed,
            result.messages_sent,
            result.messages_delivered,
            len(result.rank_exit),
        )
        for rank in sorted(result.rank_exit):
            w.pack(_EXIT, result.rank_exit[rank], rank)
        return bytes(w.buf)

    def _decode_result(self, r: _Reader) -> ShardResult:
        _type, shard_id, events, sent, delivered, n_exits = r.unpack(
            _RESULT_HDR
        )
        rank_exit: Dict[int, float] = {}
        for _ in range(n_exits):
            time, rank = r.unpack(_EXIT)
            rank_exit[rank] = time
        return ShardResult(
            shard_id=shard_id,
            rank_exit=rank_exit,
            events_processed=events,
            messages_sent=sent,
            messages_delivered=delivered,
        )

    def encode_stop(self) -> bytes:
        """The one-byte stop sentinel (worker: send result and exit)."""
        return bytes((FRAME_STOP,))

    def encode_error(self, message: str) -> bytes:
        """A worker-failure frame carrying the formatted traceback."""
        return bytes((FRAME_ERROR,)) + message.encode("utf-8", "replace")

    # -- dispatch -------------------------------------------------------
    def decode(self, data: bytes):
        """``(frame_type, value)`` for any frame; value is ``None`` for
        stop frames and the message string for error frames."""
        if not data:
            raise WireFormatError("empty frame")
        ftype = data[0]
        r = _Reader(data)
        if ftype == FRAME_GRANT:
            return FRAME_GRANT, self._decode_grant(r)
        if ftype == FRAME_REPORT:
            return FRAME_REPORT, self._decode_report(r)
        if ftype == FRAME_RESULT:
            return FRAME_RESULT, self._decode_result(r)
        if ftype == FRAME_STOP:
            return FRAME_STOP, None
        if ftype == FRAME_ERROR:
            return FRAME_ERROR, data[1:].decode("utf-8", "replace")
        raise WireFormatError(f"unknown frame type {ftype}")


def _dedup(items) -> List:
    """First-occurrence-ordered unique items (dict preserves order)."""
    return list(dict.fromkeys(items))
