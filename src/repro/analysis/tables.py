"""Paper-style table rendering.

Tables III-VI of the paper share one format: per scheduler
configuration, one row per process with %Comp and (static) priority,
plus the total execution time.  :func:`format_characterization_table`
renders exactly that; :func:`format_comparison` adds the paper's
numbers side by side so EXPERIMENTS.md and the benchmarks print
reproduction deltas directly.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.experiments.common import ExperimentResult

_LABEL = {
    "cfs": "Baseline 2.6.24",
    "static": "Static",
    "uniform": "Uniform",
    "adaptive": "Adaptive",
}


def format_characterization_table(
    results: Sequence[ExperimentResult],
    title: str = "",
) -> str:
    """Render results in the paper's Table III-VI layout."""
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'Test':<18}{'Proc':<7}{'% Comp':>8}  {'Priority':>8}  {'Exec. Time':>11}")
    lines.append("-" * 56)
    for res in results:
        label = _LABEL.get(res.scheduler, res.scheduler)
        first = True
        for name in sorted(res.tasks, key=_proc_key):
            tr = res.tasks[name]
            prio = str(tr.priority) if tr.priority is not None else "-"
            exec_s = f"{res.exec_time:.2f}s" if first else ""
            lines.append(
                f"{label if first else '':<18}{name:<7}{tr.pct_comp:>8.2f}  {prio:>8}  {exec_s:>11}"
            )
            first = False
    return "\n".join(lines)


def format_comparison(
    results: Mapping[str, ExperimentResult],
    paper_exec: Mapping[str, float],
    paper_comp: Optional[Mapping[str, Mapping[str, float]]] = None,
    title: str = "",
) -> str:
    """Measured-vs-paper summary for a whole experiment."""
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"{'Scheduler':<12}{'exec (sim)':>12}{'exec (paper)':>14}{'delta':>9}"
    )
    lines.append("-" * 47)
    base = results.get("cfs")
    for sched, res in results.items():
        paper = paper_exec.get(sched)
        delta = (
            f"{100.0 * (res.exec_time - paper) / paper:+.1f}%"
            if paper
            else "n/a"
        )
        lines.append(
            f"{sched:<12}{res.exec_time:>11.2f}s{(f'{paper:.2f}s' if paper else 'n/a'):>14}{delta:>9}"
        )
    if base is not None:
        for sched, res in results.items():
            if sched == "cfs":
                continue
            lines.append(
                f"  improvement {sched} over cfs: {res.improvement_over(base):.1f}%"
            )
    if paper_comp:
        lines.append("")
        lines.append("per-process %Comp (sim / paper):")
        for sched, res in results.items():
            comp = paper_comp.get(sched)
            if not comp:
                continue
            cells = ", ".join(
                f"{n}={res.tasks[n].pct_comp:.1f}/{comp[n]:.1f}"
                for n in sorted(comp, key=_proc_key)
                if n in res.tasks
            )
            lines.append(f"  {sched}: {cells}")
    return "\n".join(lines)


def _proc_key(name: str):
    digits = "".join(c for c in name if c.isdigit())
    return (name.rstrip("0123456789"), int(digits) if digits else -1)
