"""Performance and imbalance metrics."""

from __future__ import annotations

from typing import Iterable, Sequence


def speedup(baseline_time: float, new_time: float) -> float:
    """Classic speedup ``t_base / t_new``."""
    if new_time <= 0:
        raise ValueError("new_time must be positive")
    return baseline_time / new_time


def percent_improvement(baseline_time: float, new_time: float) -> float:
    """The paper's headline metric: % execution-time reduction."""
    if baseline_time <= 0:
        raise ValueError("baseline_time must be positive")
    return 100.0 * (baseline_time - new_time) / baseline_time


def imbalance_percent(utils: Sequence[float]) -> float:
    """Load imbalance as the spread of per-task utilization (points).

    0 for a perfectly balanced application; ~75 for baseline MetBench.
    """
    if not utils:
        return 0.0
    return (max(utils) - min(utils)) * (
        100.0 if max(utils) <= 1.0 + 1e-9 else 1.0
    )


def critical_path_bound(works: Iterable[float], speed: float = 1.0) -> float:
    """Lower bound on iteration time: the largest per-task work at the
    given execution speed (useful for sanity-checking experiments)."""
    works = list(works)
    if not works:
        return 0.0
    if speed <= 0:
        raise ValueError("speed must be positive")
    return max(works) / speed
