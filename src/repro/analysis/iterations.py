"""Iteration analytics: convergence and stability from traces.

The detector emits an ``iteration`` trace event (index + utilization)
every time a task closes an iteration.  These helpers turn that stream
into the quantities the paper argues with:

* per-task iteration series (time, utilization),
* :func:`iterations_to_balance` — "the scheduler is able to detect the
  correct hardware priority quickly (in one or two iterations)" (§I),
* :func:`rebalance_latencies` — "after the switching ... the scheduler
  needs two more iterations to detect and correct the new load
  imbalance" (§V-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.trace.collector import TraceCollector


@dataclass(frozen=True)
class IterationSample:
    """One closed iteration of one task."""

    time: float
    index: int
    util: float


def iteration_series(
    trace: TraceCollector, names: Optional[Sequence[str]] = None
) -> Dict[str, List[IterationSample]]:
    """Per-task iteration samples, in time order."""
    wanted = set(names) if names is not None else None
    out: Dict[str, List[IterationSample]] = {}
    for ev in trace.events_of_kind("iteration"):
        if wanted is not None and ev.name not in wanted:
            continue
        out.setdefault(ev.name, []).append(
            IterationSample(ev.time, ev.info["index"], ev.info["util"])
        )
    return out


def balance_series(
    trace: TraceCollector, names: Optional[Sequence[str]] = None
) -> List[float]:
    """Utilization spread (max-min, in points) per completed round.

    Rounds are formed by aligning each task's i-th iteration; the spread
    of round i is the application's imbalance during it.
    """
    series = iteration_series(trace, names)
    if not series:
        return []
    rounds = min(len(s) for s in series.values())
    spreads = []
    for i in range(rounds):
        utils = [s[i].util for s in series.values()]
        spreads.append((max(utils) - min(utils)) * 100.0)
    return spreads


def iterations_to_balance(
    trace: TraceCollector,
    names: Optional[Sequence[str]] = None,
    threshold: float = 10.0,
) -> Optional[int]:
    """1-based index of the first round whose utilization spread is
    below ``threshold`` points, or None if never balanced."""
    for i, spread in enumerate(balance_series(trace, names)):
        if spread <= threshold:
            return i + 1
    return None


def rebalance_latencies(
    trace: TraceCollector,
    names: Optional[Sequence[str]] = None,
    threshold: float = 10.0,
    broken: float = 30.0,
) -> List[int]:
    """Rounds needed to return below ``threshold`` after each excursion
    above ``broken`` (a behaviour change).  One entry per excursion that
    was eventually corrected."""
    spreads = balance_series(trace, names)
    latencies: List[int] = []
    excursion_start: Optional[int] = None
    for i, spread in enumerate(spreads):
        if excursion_start is None:
            if spread >= broken:
                excursion_start = i
        elif spread <= threshold:
            latencies.append(i - excursion_start)
            excursion_start = None
    return latencies
