"""Analysis utilities: metrics, table formatting, model calibration,
convergence-time extraction."""

from repro.analysis.metrics import (
    speedup,
    percent_improvement,
    imbalance_percent,
    critical_path_bound,
)
from repro.analysis.tables import format_characterization_table, format_comparison
from repro.analysis.convergence import (
    DEFAULT_EPS,
    ConvergenceMetrics,
    EpochSample,
    auto_eps,
    convergence_from_result,
    convergence_metrics,
    epoch_samples,
    spread_floor,
)

__all__ = [
    "speedup",
    "percent_improvement",
    "imbalance_percent",
    "critical_path_bound",
    "format_characterization_table",
    "format_comparison",
    "DEFAULT_EPS",
    "ConvergenceMetrics",
    "EpochSample",
    "auto_eps",
    "convergence_from_result",
    "convergence_metrics",
    "epoch_samples",
    "spread_floor",
]
