"""Analysis utilities: metrics, table formatting, model calibration."""

from repro.analysis.metrics import (
    speedup,
    percent_improvement,
    imbalance_percent,
    critical_path_bound,
)
from repro.analysis.tables import format_characterization_table, format_comparison

__all__ = [
    "speedup",
    "percent_improvement",
    "imbalance_percent",
    "critical_path_bound",
    "format_characterization_table",
    "format_comparison",
]
