"""Workload calibration: back-solving sizes from published numbers.

The paper reports, per workload, the baseline execution time and the
per-process %Comp.  Given a performance profile, these functions invert
the simulator's timing model to recover the work parameters — the same
arithmetic used to derive the repository's default workload constants
(see EXPERIMENTS.md, "Calibration provenance").  Keeping it as code
makes the provenance executable: tests assert that calibrating against
the paper's Table III/Table V rows reproduces the shipped defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.power5.perfmodel import CPU_BOUND, MIXED, PerfProfile


@dataclass(frozen=True)
class MetBenchCalibration:
    """Derived MetBench parameters."""

    small_load: float
    big_load: float
    iteration_time: float
    #: Speed ratio the hardware priorities must deliver for balance.
    required_balance_ratio: float
    #: Whether the profile's ±(max-min) window can deliver it.
    balanceable: bool


def calibrate_metbench(
    baseline_exec: float = 81.78,
    iterations: int = 45,
    small_pct_comp: float = 25.34,
    profile: PerfProfile = CPU_BOUND,
    dprio_window: int = 2,
) -> MetBenchCalibration:
    """Solve MetBench's loads from the paper's baseline row.

    Model: both workers start computing together at SMT-equal speed 1;
    the small worker finishes after ``W_s`` seconds (its utilization is
    therefore ``W_s / T``); the big worker then runs alone at the
    profile's ST speed for the remainder::

        T  = W_s + (W_b - W_s) / st_speedup
        W_s = pct_comp * T
    """
    t_iter = baseline_exec / iterations
    w_small = (small_pct_comp / 100.0) * t_iter
    w_big = w_small + profile.st_speedup * (t_iter - w_small)
    ratio = w_big / w_small
    achievable = (
        profile.table_speed(dprio_window) / profile.table_speed(-dprio_window)
    )
    return MetBenchCalibration(
        small_load=w_small,
        big_load=w_big,
        iteration_time=t_iter,
        required_balance_ratio=ratio,
        balanceable=achievable >= ratio * 0.98,
    )


def calibrate_btmz_zones(
    baseline_exec: float = 94.97,
    iterations: int = 200,
    pct_comps: Sequence[float] = (17.63, 29.85, 66.09, 99.85),
    profile: PerfProfile = MIXED,
) -> List[float]:
    """Approximate per-rank zone works from the paper's baseline ladder.

    Ranks pair (0,1) and (2,3) on the two SMT cores.  A rank computes at
    speed 1 while its sibling also computes and at the ST speed once the
    sibling has finished; with utilizations ``u`` (fraction of the
    iteration spent computing) and iteration time ``T``::

        W = T * (min(u, u_sib) + max(0, u - u_sib) * st_speedup)

    This ignores sub-iteration phase alignment, so expect the result to
    match empirically-tuned constants to ~15%, not exactly.
    """
    t_iter = baseline_exec / iterations
    utils = [p / 100.0 for p in pct_comps]
    works = []
    for i, u in enumerate(utils):
        sib = utils[i ^ 1]
        overlapped = min(u, sib)
        solo = max(0.0, u - sib)
        works.append(t_iter * (overlapped + solo * profile.st_speedup))
    return works


def required_priority_window(
    work_ratio: float, profile: PerfProfile
) -> Tuple[int, bool]:
    """Smallest symmetric priority window ±d whose speed ratio covers a
    given work ratio; second element is False if even the profile's
    full table cannot balance it (the paper's 'oscillation' regime)."""
    if work_ratio <= 0:
        raise ValueError("work_ratio must be positive")
    if work_ratio < 1:
        work_ratio = 1.0 / work_ratio
    max_d = max(profile.dprio_speed) if profile.dprio_speed else 0
    for d in range(0, max_d + 1):
        ratio = profile.table_speed(d) / profile.table_speed(-d)
        if ratio >= work_ratio:
            return d, True
    return max_d, False
