"""Convergence-time metrics: how fast a balancer reacts, not just
where it ends up.

The Load Imbalance Detector traces one ``iteration`` event per task at
every iteration boundary (time, measured utilization).  This module
folds those events into *epochs* — epoch ``e`` collects every tracked
task's ``e``-th closed iteration, counted by each task's own event
*ordinal* (the detector's traced ``index`` resets on behaviour
changes, so it is not a global counter) — and derives, per epoch, the
detector's measured imbalance:

* **spread** — ``(max - min) * 100`` utilization points, the same
  quantity the detector's own ``application_balanced()`` thresholds
  (tunable ``hpcsched/balance_spread``, default 10 points);
* **factor** — ``max(util) / mean(util)``, the classic imbalance
  factor over the epoch's utilizations.

From the epoch series, :func:`convergence_metrics` answers the
reaction-speed question: after a disturbance at epoch ``after_index``
(0 = application start; a :class:`~repro.workloads.synth
.SyntheticConvergence` step at iteration ``s`` lands at epoch ``s``),
how many epochs and simulated seconds pass until the measured
imbalance falls — *and stays* — below ``eps``, and what residual
imbalance remains in the converged tail.

Everything reads the existing trace output; no new instrumentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.trace.collector import TraceCollector

#: Default convergence threshold in utilization points — the detector's
#: own ``hpcsched/balance_spread`` default.
DEFAULT_EPS = 10.0


@dataclass(frozen=True)
class EpochSample:
    """One complete epoch: every tracked task's ``index``-th iteration."""

    index: int  # 1-based epoch ordinal (the e-th closed iteration)
    time: float  # simulated time the slowest member closed it
    utils: Dict[str, float] = field(default_factory=dict)

    @property
    def spread(self) -> float:
        """Utilization spread in points (the detector's balance test)."""
        if not self.utils:
            return 0.0
        vals = list(self.utils.values())
        return (max(vals) - min(vals)) * 100.0

    @property
    def factor(self) -> float:
        """Imbalance factor ``max / mean`` over the epoch utilizations."""
        vals = list(self.utils.values())
        if not vals or sum(vals) == 0:
            return 1.0
        return max(vals) / (sum(vals) / len(vals))


@dataclass(frozen=True)
class ConvergenceMetrics:
    """Reaction-speed summary of one (run, disturbance) pair."""

    #: Whether the imbalance fell and stayed below ``eps``.
    converged: bool
    #: Epochs after the disturbance until convergence (1 = the first
    #: post-disturbance epoch was already balanced); None if never.
    epochs: Optional[int]
    #: Simulated seconds from the disturbance epoch's close to the
    #: converging epoch's close; None if never converged.
    sim_time: Optional[float]
    #: Mean spread (points) over the converged tail — the steady-state
    #: residual imbalance.  Mean over *all* post-disturbance epochs
    #: when the run never converged.
    residual_spread: float
    #: Mean imbalance factor over the same tail.
    residual_factor: float
    #: Threshold used (utilization points).
    eps: float
    #: Epochs observed after the disturbance.
    epochs_observed: int

    def to_payload(self) -> Dict[str, object]:
        """JSON-able form (campaign result payloads, goldens)."""
        return {
            "converged": self.converged,
            "epochs": self.epochs,
            "sim_time": self.sim_time,
            "residual_spread": self.residual_spread,
            "residual_factor": self.residual_factor,
            "eps": self.eps,
            "epochs_observed": self.epochs_observed,
        }


def epoch_samples(
    trace: TraceCollector, names: Optional[Iterable[str]] = None
) -> List[EpochSample]:
    """Fold the trace's ``iteration`` events into complete epochs.

    Epoch ``e`` holds each task's ``e``-th iteration event in time
    order (the per-task *ordinal*; the traced ``index`` is unusable
    here because the detector resets it when a behaviour change
    discards history).  ``names`` restricts the fold to the given
    tasks (default: every task that traced at least one iteration).
    Only *complete* epochs — every member present — are returned, in
    order: a task that exits early (or folds a short wakeup into the
    previous iteration under ``min_iter_time``) truncates the series
    rather than skewing the spread.
    """
    events = trace.events_of_kind("iteration")
    wanted = set(names) if names is not None else None
    counts: Dict[str, int] = {}
    by_index: Dict[int, Dict[str, float]] = {}
    times: Dict[int, float] = {}
    for ev in events:
        if wanted is not None and ev.name not in wanted:
            continue
        ordinal = counts.get(ev.name, 0) + 1
        counts[ev.name] = ordinal
        by_index.setdefault(ordinal, {})[ev.name] = ev.info["util"]
        times[ordinal] = max(times.get(ordinal, 0.0), ev.time)
    if not counts:
        return []
    members = set(counts)
    return [
        EpochSample(index=i, time=times[i], utils=dict(utils))
        for i, utils in sorted(by_index.items())
        if set(utils) == members
    ]


def convergence_metrics(
    samples: Sequence[EpochSample],
    eps: float = DEFAULT_EPS,
    after_index: int = 0,
    until_index: Optional[int] = None,
) -> ConvergenceMetrics:
    """Time-to-threshold convergence over an epoch series.

    Considers epochs with ``after_index < index``, bounded by
    ``index <= until_index`` when given (so a later disturbance — e.g.
    a reversal step — does not pollute the window).  The run
    *converged* at the first epoch ``e*`` from which every remaining
    windowed epoch's spread is ``<= eps`` (fall **and stay** below — a
    single lucky epoch in an oscillating run does not count); at least
    one epoch must sit at or beyond ``e*``.  ``epochs`` counts
    post-disturbance epochs up to and including ``e*``; ``sim_time``
    measures from the disturbance epoch's close time (or 0.0 when
    ``after_index`` precedes the series, i.e. convergence from
    application start).
    """
    if eps < 0:
        raise ValueError(f"eps must be non-negative, got {eps}")
    base_time = 0.0
    for s in samples:
        if s.index == after_index:
            base_time = s.time
            break
    tail = [
        s
        for s in samples
        if s.index > after_index
        and (until_index is None or s.index <= until_index)
    ]
    if not tail:
        return ConvergenceMetrics(
            converged=False,
            epochs=None,
            sim_time=None,
            residual_spread=0.0,
            residual_factor=1.0,
            eps=eps,
            epochs_observed=0,
        )
    # First position from which every spread stays <= eps.
    settle: Optional[int] = None
    for pos in range(len(tail)):
        if all(s.spread <= eps for s in tail[pos:]):
            settle = pos
            break
    if settle is None:
        return ConvergenceMetrics(
            converged=False,
            epochs=None,
            sim_time=None,
            residual_spread=sum(s.spread for s in tail) / len(tail),
            residual_factor=sum(s.factor for s in tail) / len(tail),
            eps=eps,
            epochs_observed=len(tail),
        )
    settled = tail[settle:]
    return ConvergenceMetrics(
        converged=True,
        epochs=settle + 1,
        sim_time=tail[settle].time - base_time,
        residual_spread=sum(s.spread for s in settled) / len(settled),
        residual_factor=sum(s.factor for s in settled) / len(settled),
        eps=eps,
        epochs_observed=len(tail),
    )


def spread_floor(
    samples: Sequence[EpochSample],
    after_index: int = 0,
    until_index: Optional[int] = None,
) -> Optional[float]:
    """The best (minimum) spread achieved in a window of epochs.

    The POWER5 priority mechanism is discrete, so a perfectly even
    utilization is generally unreachable; the floor over the pre-step
    steady state is the balance the mechanism *can* hold, and hence the
    natural convergence threshold for a step-change run ("recovered the
    pre-disturbance balance").  Returns ``None`` on an empty window.
    """
    window = [
        s.spread
        for s in samples
        if s.index > after_index
        and (until_index is None or s.index <= until_index)
    ]
    return min(window) if window else None


def auto_eps(
    samples: Sequence[EpochSample],
    after_index: int = 0,
    until_index: Optional[int] = None,
    slack: float = 0.5,
) -> float:
    """A threshold the run can provably re-reach: the window's
    :func:`spread_floor` plus ``slack`` points, never below
    :data:`DEFAULT_EPS` (the detector's own balance band)."""
    floor = spread_floor(samples, after_index=after_index, until_index=until_index)
    if floor is None:
        return DEFAULT_EPS
    return max(DEFAULT_EPS, floor + slack)


def convergence_from_result(
    result,
    eps: float = DEFAULT_EPS,
    after_index: int = 0,
    until_index: Optional[int] = None,
    names: Optional[Iterable[str]] = None,
) -> ConvergenceMetrics:
    """Convergence metrics straight from an ``ExperimentResult``.

    Requires the run to have kept its trace (``keep_trace=True``).
    ``names`` defaults to the result's measured tasks.
    """
    trace = getattr(result, "trace", None)
    if trace is None:
        raise ValueError(
            "result has no trace; run the experiment with keep_trace=True"
        )
    if names is None:
        names = list(result.tasks) or None
    return convergence_metrics(
        epoch_samples(trace, names=names),
        eps=eps,
        after_index=after_index,
        until_index=until_index,
    )
