"""A brute-force small-step reference simulator for the fluid engine.

The production engine (:mod:`repro.kernel.core_sched`) is *event
driven*: a compute phase of ``W`` work at rate ``r`` completes at
``t + W/r``, and every rate change banks accrued progress and
reschedules the completion event.  That is fast and exact — if the
banking arithmetic and the event plumbing are right.

This module is the oracle for that "if".  :class:`ReferenceSimulator`
integrates the same scenario with a **fixed time quantum** ``dt`` and no
shortcuts whatsoever:

* every quantum, each running task's rate is recomputed from the live
  SMT state of its core (same :mod:`repro.power5.perfmodel` tables — the
  pure rate *functions* are unit-tested against the paper separately;
  what differs here is the *engine* around them),
* progress advances by ``rate * dt``; sleeps burn down by ``dt``,
* op transitions (phase completion, sleep expiry, priority writes,
  barrier releases) happen only at quantum boundaries.

Nothing is banked, nothing is rescheduled, there is no event queue to
get wrong.  The price is an ``O(dt)`` quantization error per transition,
which the differential harness bounds explicitly; the payoff is an
implementation simple enough to be verified by eye.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.validate.scenario import (
    BarrierOp,
    ComputeOp,
    Scenario,
    SetPrioOp,
    SleepOp,
    profile_by_name,
)

#: Work/time remainders below this count as finished (float dust; the
#: fluid engine uses the same notion for banked remainders).
_EPSILON = 1e-12

# Task states recorded in the reference state-interval trace.
RUN = "RUN"
SLEEP = "SLEEP"
WAIT = "WAIT"
DONE = "DONE"


@dataclass
class _RefTask:
    """Mutable interpreter state of one scenario task."""

    name: str
    cpu: int
    ops: tuple
    profile: object
    priority: int
    op_index: int = 0
    phase_remaining: float = 0.0
    sleep_remaining: float = 0.0
    state: str = RUN
    log: List[Tuple[int, float]] = field(default_factory=list)
    intervals: List[Tuple[str, float, float]] = field(default_factory=list)
    _state_since: float = 0.0

    @property
    def done(self) -> bool:
        return self.state == DONE

    @property
    def running(self) -> bool:
        return self.state == RUN

    def set_state(self, state: str, now: float) -> None:
        if state == self.state:
            return
        if now > self._state_since:
            self.intervals.append((self.state, self._state_since, now))
        self.state = state
        self._state_since = now

    def close_intervals(self, now: float) -> None:
        if now > self._state_since:
            self.intervals.append((self.state, self._state_since, now))
            self._state_since = now


@dataclass
class ReferenceResult:
    """Event logs + state traces of one reference run."""

    logs: Dict[str, List[Tuple[int, float]]]
    intervals: Dict[str, List[Tuple[str, float, float]]]
    exec_time: float
    steps: int
    deadlocked: Tuple[str, ...] = ()


class ReferenceDeadlock(RuntimeError):
    """The scenario can never finish (mismatched barrier arrivals)."""


class ReferenceSimulator:
    """Fixed-quantum interpreter for a :class:`Scenario`."""

    def __init__(self, scenario: Scenario, dt: float = 2e-5) -> None:
        if dt <= 0:
            raise ValueError(f"non-positive quantum {dt}")
        scenario.validate()
        self.scenario = scenario
        self.dt = dt
        self.now = 0.0
        self.steps = 0
        self.tasks: List[_RefTask] = [
            _RefTask(
                name=spec.name,
                cpu=spec.cpu,
                ops=tuple(spec.ops),
                profile=profile_by_name(spec.profile),
                priority=spec.hw_priority,
            )
            for spec in scenario.tasks
        ]
        self._by_cpu: Dict[int, _RefTask] = {t.cpu: t for t in self.tasks}
        #: barrier group -> list of tasks currently arrived and waiting.
        self._arrived: Dict[int, List[_RefTask]] = {}
        self._group_sizes: Dict[int, int] = {}
        for spec in scenario.tasks:
            for op in spec.ops:
                if isinstance(op, BarrierOp):
                    self._group_sizes.setdefault(op.group, 0)
        for group in self._group_sizes:
            self._group_sizes[group] = sum(
                1
                for spec in scenario.tasks
                if any(
                    isinstance(op, BarrierOp) and op.group == group
                    for op in spec.ops
                )
            )
        from repro.power5.perfmodel import TableDrivenModel

        self.perf_model = TableDrivenModel()
        self._rate_cache: Dict[Tuple, float] = {}

    # ------------------------------------------------------------------
    # SMT state mirror
    # ------------------------------------------------------------------
    def _sibling_cpu(self, cpu: int) -> int:
        return cpu ^ 1  # contexts are laid out pairwise, 2 per core

    def _rate(self, task: _RefTask) -> float:
        sib = self._by_cpu.get(self._sibling_cpu(task.cpu))
        sib_busy = sib is not None and sib.running
        sib_prio = sib.priority if sib_busy else 0
        key = (id(task.profile), task.priority, sib_prio, sib_busy)
        rate = self._rate_cache.get(key)
        if rate is None:
            rate = self.perf_model.speed(
                task.profile,
                own_priority=task.priority,
                sibling_priority=sib_prio if sib_busy else task.priority,
                sibling_busy=sib_busy,
            )
            self._rate_cache[key] = rate
        return rate

    # ------------------------------------------------------------------
    # Zero-time transition settling
    # ------------------------------------------------------------------
    def _begin_op(self, task: _RefTask) -> None:
        """Load the interpreter state for the task's current op."""
        if task.op_index >= len(task.ops):
            task.set_state(DONE, self.now)
            return
        op = task.ops[task.op_index]
        if isinstance(op, ComputeOp):
            if op.work <= _EPSILON:
                # The fluid engine skips empty phases without blocking.
                self._complete_op(task)
                return
            task.phase_remaining = op.work
            task.set_state(RUN, self.now)
        elif isinstance(op, SleepOp):
            if op.duration <= _EPSILON:
                self._complete_op(task)
                return
            task.sleep_remaining = op.duration
            task.set_state(SLEEP, self.now)
        elif isinstance(op, BarrierOp):
            waiting = self._arrived.setdefault(op.group, [])
            waiting.append(task)
            if len(waiting) >= self._group_sizes[op.group]:
                # Copy-then-clear: completing a member may re-arrive at
                # this same group (next round) and must land in a fresh
                # arrival list, not the one being drained.
                members = list(waiting)
                waiting.clear()
                for member in members:
                    self._complete_op(member)
            else:
                task.set_state(WAIT, self.now)
        elif isinstance(op, SetPrioOp):
            task.priority = op.priority
            self._complete_op(task)
        else:  # pragma: no cover - scenario.validate rejects these
            raise TypeError(f"unknown op {op!r}")

    def _complete_op(self, task: _RefTask) -> None:
        task.log.append((task.op_index, self.now))
        task.op_index += 1
        task.phase_remaining = 0.0
        task.sleep_remaining = 0.0
        if task.op_index >= len(task.ops):
            task.set_state(DONE, self.now)
        else:
            task.set_state(RUN, self.now)
            self._begin_op(task)

    def _settle(self) -> None:
        """Complete every compute phase that reached zero at ``now``."""
        for task in self.tasks:
            if task.running and task.op_index < len(task.ops):
                op = task.ops[task.op_index]
                if isinstance(op, ComputeOp) and task.phase_remaining <= _EPSILON:
                    self._complete_op(task)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, max_steps: Optional[int] = None) -> ReferenceResult:
        """Integrate until every task finished its program."""
        if max_steps is None:
            max_steps = self._default_step_budget()
        # Boot: every task starts its first op at t = 0.
        for task in self.tasks:
            self._begin_op(task)
        dt = self.dt
        while not all(t.done for t in self.tasks):
            if self.steps >= max_steps:
                stuck = tuple(t.name for t in self.tasks if not t.done)
                if all(t.state in (WAIT, DONE) for t in self.tasks):
                    raise ReferenceDeadlock(
                        f"barrier deadlock: {stuck} wait forever"
                    )
                raise RuntimeError(
                    f"step budget {max_steps} exhausted at t={self.now:.6f} "
                    f"(unfinished: {stuck})"
                )
            # Deadlock fast-path: nobody can make progress without time
            # advancing, and nothing is consuming time.
            if all(t.state in (WAIT, DONE) for t in self.tasks):
                stuck = tuple(t.name for t in self.tasks if not t.done)
                raise ReferenceDeadlock(f"barrier deadlock: {stuck} wait forever")
            for task in self.tasks:
                if task.running:
                    op = task.ops[task.op_index]
                    if isinstance(op, ComputeOp):
                        task.phase_remaining -= self._rate(task) * dt
                elif task.state == SLEEP:
                    task.sleep_remaining -= dt
                    if task.sleep_remaining <= _EPSILON:
                        # expire at the boundary we are about to reach
                        task.sleep_remaining = 0.0
            self.now += dt
            self.steps += 1
            # Boundary transitions: expired sleeps resume, finished
            # phases complete; both may cascade (zero-work ops,
            # barrier releases) inside _complete_op/_begin_op.
            for task in self.tasks:
                if task.state == SLEEP and task.sleep_remaining <= _EPSILON:
                    self._complete_op(task)
            self._settle()
        exec_time = self.now
        for task in self.tasks:
            task.close_intervals(exec_time)
        return ReferenceResult(
            logs={t.name: list(t.log) for t in self.tasks},
            intervals={t.name: list(t.intervals) for t in self.tasks},
            exec_time=exec_time,
            steps=self.steps,
        )

    # ------------------------------------------------------------------
    def _default_step_budget(self) -> int:
        """Generous upper bound on quanta: total work at the slowest
        modeled rate plus all sleeps, with slack for quantization."""
        work = 0.0
        sleeps = 0.0
        for spec in self.scenario.tasks:
            for op in spec.ops:
                if isinstance(op, ComputeOp):
                    work += op.work
                elif isinstance(op, SleepOp):
                    sleeps += op.duration
        slowest_rate = 0.1  # below every table entry's minimum speed
        horizon = work / slowest_rate + sleeps + 1.0
        return int(horizon / self.dt) + self.scenario.total_ops() * 4 + 64
