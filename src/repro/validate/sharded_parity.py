"""Serial-vs-sharded parity oracle (conservative PDES correctness).

The sharded cluster runner (:mod:`repro.cluster.sharded`) promises that
partitioning a cluster over K shard simulators is *unobservable*: every
rank finishes at the bit-identical simulated instant the single-process
run produces, and the MPI runtime delivers the bit-identical message
set.  This module checks that promise directly: run the same workload
through :func:`repro.cluster.experiment.run_cluster` and
:func:`~repro.cluster.experiment.run_cluster_sharded` and compare

* per-rank completion times (``rank_exit``) — ``==`` on floats, no
  tolerance: conservative PDES with lookahead windows must not perturb
  the schedule at all;  since PR 8 both sides also run the kernel-level
  fast-forward engine (parked balance/tick chains), so a green suite
  doubles as the proof that timer elision is semantics-preserving at
  cluster scale;
* the MPI message counters (sent/delivered);
* the reported makespan (``exec_time``).

Two entry points: :func:`check_parity` for one configuration, and
:func:`run_parity_suite` for the fixed paper configurations
(``cluster_metbench_16`` / ``cluster_metbench_64``, block and gang)
plus ``fuzz`` randomized cluster scenarios (node counts, shard counts,
iteration counts, perturbed load ladders) from a seeded generator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence


@dataclass
class ParityCase:
    """One serial-vs-sharded comparison."""

    label: str
    strategy: str
    n_nodes: int
    shards: int
    iterations: int
    ok: bool
    mismatches: List[str] = field(default_factory=list)
    events_serial: int = 0
    events_sharded: int = 0
    windows: int = 0
    #: Transport the sharded side ran under ("inline" or "process").
    workers: str = "inline"


@dataclass
class ParityReport:
    """All cases of one ``sharded-parity`` run."""

    cases: List[ParityCase] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(case.ok for case in self.cases)

    @property
    def failures(self) -> int:
        return sum(1 for case in self.cases if not case.ok)

    def summary(self) -> str:
        """One-line verdict for CLI/CI output."""
        verdict = "OK" if self.ok else "PARITY BROKEN"
        return (
            f"sharded-parity: {len(self.cases) - self.failures}/"
            f"{len(self.cases)} cases bit-identical — {verdict}"
        )


def check_parity(
    strategy: str = "block",
    n_nodes: int = 16,
    shards: int = 4,
    iterations: int = 2,
    loads: Optional[Sequence[float]] = None,
    use_hpc: bool = True,
    label: Optional[str] = None,
    workers: str = "inline",
) -> ParityCase:
    """Compare one serial run against its sharded twin bit-for-bit.

    ``workers`` selects the sharded transport — ``"process"`` forces the
    forked-worker wire-protocol path even on 1-CPU hosts, so CI can
    prove the binary frames round-trip bit-exactly.
    """
    from repro.cluster.experiment import (
        ladder_loads,
        run_cluster,
        run_cluster_sharded,
    )

    loads = list(loads if loads is not None else ladder_loads(4 * n_nodes))
    kwargs = dict(
        loads=loads, iterations=iterations, n_nodes=n_nodes, use_hpc=use_hpc
    )
    serial = run_cluster(strategy, **kwargs)
    sharded = run_cluster_sharded(
        strategy, shards=shards, workers=workers, **kwargs
    )

    mismatches: List[str] = []
    if serial.rank_exit != sharded.rank_exit:
        diverging = [
            rank
            for rank in sorted(serial.rank_exit)
            if serial.rank_exit[rank] != sharded.rank_exit.get(rank)
        ]
        mismatches.append(
            f"rank_exit differs for {len(diverging)} rank(s), first "
            f"rank {diverging[0] if diverging else '?'}: serial "
            f"{serial.rank_exit.get(diverging[0]) if diverging else '?'} "
            f"vs sharded "
            f"{sharded.rank_exit.get(diverging[0]) if diverging else '?'}"
        )
    if serial.exec_time != sharded.exec_time:
        mismatches.append(
            f"exec_time {serial.exec_time!r} != {sharded.exec_time!r}"
        )
    if serial.messages_sent != sharded.messages_sent:
        mismatches.append(
            f"messages_sent {serial.messages_sent} != "
            f"{sharded.messages_sent}"
        )
    if serial.messages_delivered != sharded.messages_delivered:
        mismatches.append(
            f"messages_delivered {serial.messages_delivered} != "
            f"{sharded.messages_delivered}"
        )
    return ParityCase(
        label=label or f"{strategy}/{n_nodes}n/{shards}s",
        strategy=strategy,
        n_nodes=n_nodes,
        shards=shards,
        iterations=iterations,
        ok=not mismatches,
        mismatches=mismatches,
        events_serial=serial.events,
        events_sharded=sharded.events,
        windows=sharded.windows,
        workers=sharded.workers,
    )


def _fuzz_configs(count: int, seed: int):
    """Seeded random cluster configurations: node/shard/iteration counts
    and a perturbed load ladder (heavier noise than the paper ladder, so
    phase completions land on irregular instants)."""
    from repro.cluster.experiment import ladder_loads

    rng = random.Random(seed)
    for index in range(count):
        n_nodes = rng.choice([2, 3, 4, 6, 8])
        shards = rng.randint(1, max(1, n_nodes))
        iterations = rng.randint(1, 3)
        strategy = rng.choice(["block", "gang"])
        use_hpc = rng.random() < 0.8
        loads = [
            load * rng.uniform(0.7, 1.3)
            for load in ladder_loads(4 * n_nodes)
        ]
        yield dict(
            label=f"fuzz{index}/{strategy}/{n_nodes}n/{shards}s",
            strategy=strategy,
            n_nodes=n_nodes,
            shards=shards,
            iterations=iterations,
            loads=loads,
            use_hpc=use_hpc,
        )


def run_parity_suite(
    fuzz: int = 10,
    seed: int = 0,
    include_fixed: bool = True,
    nodes_fixed: Sequence[int] = (16, 64),
    shards_fixed: Optional[int] = None,
    on_case: Optional[Callable[[ParityCase], None]] = None,
    workers: str = "inline",
) -> ParityReport:
    """The full ``sharded-parity`` check: the paper's fixed
    ``cluster_metbench`` configurations under both placements plus
    ``fuzz`` randomized cluster scenarios.  ``workers`` is forwarded to
    every case (``"process"`` exercises the wire-protocol transport)."""
    report = ParityReport()

    def run(**kwargs) -> None:
        case = check_parity(workers=workers, **kwargs)
        report.cases.append(case)
        if on_case is not None:
            on_case(case)

    if include_fixed:
        for n_nodes in nodes_fixed:
            for strategy in ("block", "gang"):
                shards = shards_fixed or (8 if n_nodes >= 8 else 2)
                run(
                    strategy=strategy,
                    n_nodes=n_nodes,
                    shards=shards,
                    iterations=2,
                    label=f"metbench/{strategy}/{n_nodes}n",
                )
    for config in _fuzz_configs(fuzz, seed):
        run(**config)
    return report
