"""The scenario language shared by the fluid engine and the reference.

A :class:`Scenario` is a machine shape plus a set of tasks, each pinned
to one logical CPU and running a straight-line program of four
primitives: compute, sleep, hardware-priority change, barrier.  The
domain is deliberately the paper's operating regime — one task per
logical CPU (§IV-A: one MPI process per context) — so that *scheduling
decisions* are forced and identical in both engines, and any timing
divergence isolates a defect in the **fluid-rate execution engine**
(rate arithmetic, progress banking, sleep/wakeup timing, SMT state
transitions), which is exactly the component the differential oracle
exists to prove correct.

The same :class:`Scenario` object is consumed by

* :func:`build_kernel_run` — translated into generator programs driven
  by the real :class:`repro.kernel.core_sched.Kernel`, and
* :class:`repro.validate.reference.ReferenceSimulator` — interpreted
  directly by the small-step engine.

Both record, per task, the simulated time at which every program op
completed; that list is the *event log* the differential harness diffs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.kernel.syscalls import Compute, KernelRequest, Sleep

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core_sched import Kernel
    from repro.kernel.task import Task

#: Hardware-priority range scenarios may use: the "normal" prioritized
#: SMT regime of paper Table I (special levels 0/1/7 are exercised by
#: the power5 unit suite; the engine treats them via separate paths).
PRIO_MIN, PRIO_MAX = 2, 6


@dataclass(frozen=True)
class ComputeOp:
    """Run for ``work`` fluid work units."""

    work: float

    def describe(self) -> str:
        """Human-readable op label for scenario dumps."""
        return f"compute({self.work:.6g})"


@dataclass(frozen=True)
class SleepOp:
    """Block for a fixed simulated duration."""

    duration: float

    def describe(self) -> str:
        """Human-readable op label for scenario dumps."""
        return f"sleep({self.duration:.6g})"


@dataclass(frozen=True)
class SetPrioOp:
    """Reprogram the task's own POWER5 hardware thread priority."""

    priority: int

    def describe(self) -> str:
        """Human-readable op label for scenario dumps."""
        return f"setprio({self.priority})"


@dataclass(frozen=True)
class BarrierOp:
    """Synchronize with every other task that carries the same group."""

    group: int = 0

    def describe(self) -> str:
        """Human-readable op label for scenario dumps."""
        return f"barrier({self.group})"


Op = object  # any of the four dataclasses above


@dataclass(frozen=True)
class TaskSpec:
    """One pinned task of a scenario."""

    name: str
    cpu: int
    ops: Tuple[Op, ...]
    profile: str = "cpu_bound"  # cpu_bound | mixed | mem_bound
    hw_priority: int = 4

    def describe(self) -> str:
        """One-line dump: placement, priority, profile, program."""
        prog = ", ".join(op.describe() for op in self.ops)
        return (
            f"{self.name}@cpu{self.cpu} prio={self.hw_priority} "
            f"{self.profile}: [{prog}]"
        )


@dataclass(frozen=True)
class Scenario:
    """A complete, self-contained differential-test case."""

    tasks: Tuple[TaskSpec, ...]
    chips: int = 1
    cores_per_chip: int = 2
    label: str = ""

    def describe(self) -> str:
        """Multi-line dump: machine shape plus every task's program."""
        head = (
            f"scenario {self.label or '<anon>'}: {self.chips} chip(s) x "
            f"{self.cores_per_chip} core(s) x 2 threads"
        )
        return "\n".join([head] + [f"  {t.describe()}" for t in self.tasks])

    @property
    def n_cpus(self) -> int:
        return self.chips * self.cores_per_chip * 2

    def total_ops(self) -> int:
        """Number of program ops (= loggable events) across all tasks."""
        return sum(len(t.ops) for t in self.tasks)

    def validate(self) -> None:
        """Reject scenarios outside the differential domain."""
        seen_cpus = set()
        groups: Dict[int, List[int]] = {}
        for spec in self.tasks:
            if not 0 <= spec.cpu < self.n_cpus:
                raise ValueError(f"{spec.name}: cpu{spec.cpu} not on the machine")
            if spec.cpu in seen_cpus:
                raise ValueError(
                    f"cpu{spec.cpu} hosts two tasks; the differential domain "
                    "is one pinned task per logical CPU"
                )
            seen_cpus.add(spec.cpu)
            if not PRIO_MIN <= spec.hw_priority <= PRIO_MAX:
                raise ValueError(f"{spec.name}: priority {spec.hw_priority}")
            if spec.profile not in PROFILES:
                raise ValueError(f"{spec.name}: unknown profile {spec.profile!r}")
            for op in spec.ops:
                if isinstance(op, SetPrioOp) and not PRIO_MIN <= op.priority <= PRIO_MAX:
                    raise ValueError(f"{spec.name}: {op.describe()} out of range")
                if isinstance(op, BarrierOp):
                    groups.setdefault(op.group, []).append(id(spec))
        # Barrier counts must match across members or both engines
        # deadlock (a degenerate scenario, not a divergence).
        for group in groups:
            counts = {
                spec.name: sum(
                    1
                    for op in spec.ops
                    if isinstance(op, BarrierOp) and op.group == group
                )
                for spec in self.tasks
            }
            arrivals = {c for c in counts.values() if c > 0}
            if len(arrivals) > 1:
                raise ValueError(
                    f"barrier group {group}: mismatched arrival counts {counts}"
                )


#: Profile names -> PerfProfile objects (resolved lazily to avoid an
#: import cycle through power5 at module load).
def profile_by_name(name: str):
    """Resolve a scenario profile name to its PerfProfile object."""
    from repro.power5.perfmodel import CPU_BOUND, MEM_BOUND, MIXED

    return {"cpu_bound": CPU_BOUND, "mixed": MIXED, "mem_bound": MEM_BOUND}[name]


PROFILES = ("cpu_bound", "mixed", "mem_bound")


# ----------------------------------------------------------------------
# Translation to the fluid-rate engine
# ----------------------------------------------------------------------
class _SetHwPriority(KernelRequest):
    """Request wrapper around :meth:`Kernel.set_hw_priority`."""

    def __init__(self, priority: int) -> None:
        self.priority = priority

    def execute(self, kernel: "Kernel", task: "Task") -> bool:
        kernel.set_hw_priority(task, self.priority)
        return True


class _BarrierState:
    """One barrier group instance shared by its member tasks."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.waiting: List["Task"] = []


class _BarrierWait(KernelRequest):
    """Block until every member of the group has arrived."""

    is_wait = True  # an MPI-style wait phase (iteration boundary)

    def __init__(self, state: _BarrierState) -> None:
        self.state = state

    @property
    def sleep_reason(self) -> str:
        return "barrier"

    def execute(self, kernel: "Kernel", task: "Task") -> bool:
        if len(self.state.waiting) + 1 >= self.state.size:
            waiters, self.state.waiting = self.state.waiting, []
            for waiter in waiters:
                kernel.wake_up(waiter)
            return True
        self.state.waiting.append(task)
        return False


@dataclass
class KernelRunResult:
    """Event logs of a scenario run through the fluid-rate engine."""

    #: task name -> [(op index, completion time), ...]
    logs: Dict[str, List[Tuple[int, float]]] = field(default_factory=dict)
    exec_time: float = 0.0


def build_kernel_run(
    scenario: Scenario,
    perf_model=None,
    mutate_task=None,
) -> KernelRunResult:
    """Run ``scenario`` through the real fluid-rate kernel engine.

    ``mutate_task`` is a hook for the mutation tests: called with each
    created :class:`Task` before the run starts (e.g. to install a
    buggy ``bank_progress``).  Context-switch cost is zeroed so that the
    only timing difference against the reference is quantization.
    """
    from repro.kernel.core_sched import Kernel
    from repro.kernel.tunables import Tunables
    from repro.power5.machine import Machine, MachineTopology
    from repro.power5.perfmodel import TableDrivenModel

    scenario.validate()
    topology = MachineTopology(
        chips=scenario.chips, cores_per_chip=scenario.cores_per_chip
    )
    machine = Machine(topology, perf_model or TableDrivenModel())
    tunables = Tunables()
    tunables.set("kernel/context_switch_cost", 0.0)
    kernel = Kernel(machine=machine, tunables=tunables)

    group_sizes: Dict[int, int] = {}
    for spec in scenario.tasks:
        for op in spec.ops:
            if isinstance(op, BarrierOp):
                group_sizes[op.group] = group_sizes.get(op.group, 0)
    for group in group_sizes:
        group_sizes[group] = sum(
            1
            for spec in scenario.tasks
            if any(isinstance(op, BarrierOp) and op.group == group for op in spec.ops)
        )
    barriers = {g: _BarrierState(size) for g, size in group_sizes.items()}

    result = KernelRunResult()

    def make_program(spec: TaskSpec, log: List[Tuple[int, float]]):
        def prog():
            for index, op in enumerate(spec.ops):
                if isinstance(op, ComputeOp):
                    yield Compute(op.work)
                elif isinstance(op, SleepOp):
                    yield Sleep(op.duration)
                elif isinstance(op, SetPrioOp):
                    yield _SetHwPriority(op.priority)
                elif isinstance(op, BarrierOp):
                    yield _BarrierWait(barriers[op.group])
                else:  # pragma: no cover - scenario.validate rejects these
                    raise TypeError(f"unknown op {op!r}")
                log.append((index, kernel.sim.now))

        return prog()

    for spec in scenario.tasks:
        log: List[Tuple[int, float]] = []
        result.logs[spec.name] = log
        task = kernel.create_task(
            spec.name,
            program=make_program(spec, log),
            perf_profile=profile_by_name(spec.profile),
            cpus_allowed=[spec.cpu],
        )
        task.hw_priority = spec.hw_priority
        if mutate_task is not None:
            mutate_task(task)
        kernel.start_task(task, cpu=spec.cpu)

    result.exec_time = kernel.run()
    return result


# ----------------------------------------------------------------------
# Structural editing helpers (used by the shrinker and the fuzzer)
# ----------------------------------------------------------------------
def without_task(scenario: Scenario, name: str) -> Scenario:
    """Drop one task (keeping barrier groups consistent)."""
    kept = tuple(t for t in scenario.tasks if t.name != name)
    return replace(scenario, tasks=_prune_degenerate_barriers(kept))


def truncate_ops(scenario: Scenario, limits: Dict[str, int]) -> Scenario:
    """Cut each task's program to its first ``limits[name]`` ops."""
    kept = tuple(
        replace(t, ops=t.ops[: limits.get(t.name, len(t.ops))])
        for t in scenario.tasks
    )
    return replace(scenario, tasks=_balance_barriers(kept))


def _prune_degenerate_barriers(tasks: Tuple[TaskSpec, ...]) -> Tuple[TaskSpec, ...]:
    """Remove barrier ops whose group has fewer than two members left."""
    members: Dict[int, int] = {}
    for t in tasks:
        for g in {op.group for op in t.ops if isinstance(op, BarrierOp)}:
            members[g] = members.get(g, 0) + 1
    lonely = {g for g, n in members.items() if n < 2}
    if not lonely:
        return tasks
    return tuple(
        replace(
            t,
            ops=tuple(
                op
                for op in t.ops
                if not (isinstance(op, BarrierOp) and op.group in lonely)
            ),
        )
        for t in tasks
    )


def _balance_barriers(tasks: Tuple[TaskSpec, ...]) -> Tuple[TaskSpec, ...]:
    """Equalize per-group barrier arrival counts after truncation by
    dropping the excess arrivals from the tail of longer programs."""
    counts: Dict[int, List[int]] = {}
    for t in tasks:
        for op in t.ops:
            if isinstance(op, BarrierOp):
                counts.setdefault(op.group, []).append(0)
    floor: Dict[int, int] = {}
    for g in counts:
        per_task = [
            sum(1 for op in t.ops if isinstance(op, BarrierOp) and op.group == g)
            for t in tasks
            if any(isinstance(op, BarrierOp) and op.group == g for op in t.ops)
        ]
        floor[g] = min(per_task) if per_task else 0
    out = []
    for t in tasks:
        seen: Dict[int, int] = {}
        ops = []
        for op in t.ops:
            if isinstance(op, BarrierOp):
                seen[op.group] = seen.get(op.group, 0) + 1
                if seen[op.group] > floor.get(op.group, 0):
                    continue
            ops.append(op)
        out.append(replace(t, ops=tuple(ops)))
    return _prune_degenerate_barriers(tuple(out))
