"""Runtime invariant oracles for the live simulation stack.

When the ``REPRO_VALIDATE=1`` environment flag is set (or a test calls
:func:`install` explicitly), a :class:`KernelOracles` instance rides
along with every :class:`~repro.kernel.core_sched.Kernel` and checks,
*while real experiments run*:

* **simcore** — the event clock never moves backwards, a cancelled
  event is never delivered, and the queue's O(1) live pending count
  (what ``len()`` reports) agrees with a scan of the heap;
* **kernel core** — CPU-time conservation: the occupancy charged to
  tasks on a logical CPU never exceeds the wall-clock time that CPU has
  existed (and per-task ``sum_exec_runtime`` never exceeds ``now``);
  and every delivered phase completion lands on the eager-reschedule
  ETA — ``phase_started_at + phase_remaining / phase_rate`` — within
  tolerance, which pins the lazy ETA-revalidation fast path (ride +
  stale re-push, DESIGN §8) to the semantics of eagerly re-pushing on
  every rate change;
* **CFS** — a task's vruntime never decreases, and a queue's
  ``min_vruntime`` is monotonically non-decreasing;
* **power5** — decode shares are valid fractions summing to 1 (or 0
  when both contexts are off) — checked inside
  :func:`repro.power5.decode.decode_shares` itself;
* **hpcsched** — per-iteration utilizations observe ``0 <= U <= 1``,
  and the Load Imbalance Detector never applies a priority while FROZEN
  and never applies an *upward* change while OBSERVING (the legality
  rules of DESIGN §3's stable-state machine).

Production runs pay one ``is None`` attribute test per hook site; the
heavyweight bookkeeping exists only when validation is enabled.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.hpcsched.detector import LoadImbalanceDetector
    from repro.kernel.core_sched import Kernel
    from repro.kernel.task import Task
    from repro.simcore.events import Event

#: Environment flag that turns the oracles on for every new kernel.
ENV_FLAG = "REPRO_VALIDATE"

#: Slack for float accumulation in conservation sums.
_EPS = 1e-7


class InvariantViolation(AssertionError):
    """A runtime oracle caught the simulation breaking an invariant."""


def validation_enabled() -> bool:
    """Whether the ``REPRO_VALIDATE`` environment flag is set."""
    return os.environ.get(ENV_FLAG, "").strip() in ("1", "true", "yes", "on")


class KernelOracles:
    """Invariant bookkeeping attached to one kernel instance."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        #: cpu -> total occupancy charged to tasks on that CPU.
        self.cpu_busy: Dict[int, float] = {c: 0.0 for c in kernel.machine.cpu_ids}
        #: pid -> last observed vruntime.
        self._vruntime: Dict[int, float] = {}
        #: cpu -> last observed CFS min_vruntime.
        self._min_vruntime: Dict[int, float] = {}
        self._last_event_time = 0.0
        self.checks = 0
        self.violations = 0

    # ------------------------------------------------------------------
    def _fail(self, message: str) -> None:
        self.violations += 1
        raise InvariantViolation(message)

    # -- simcore -------------------------------------------------------
    def on_event(self, event: "Event") -> None:
        """Fired by :meth:`Simulator.step` for every delivered event."""
        self.checks += 1
        if event.cancelled:
            self._fail(f"cancelled event delivered: {event!r}")
        if event.time < self._last_event_time - _EPS:
            self._fail(
                f"event clock moved backwards: {event!r} after "
                f"t={self._last_event_time}"
            )
        self._last_event_time = event.time
        # The O(1) live pending counter behind len(queue) must agree
        # with an O(n) scan of the heap at every delivery boundary.
        tracked, actual = self.kernel.sim.queue.live_count_check()
        if tracked != actual:
            self._fail(
                f"event-queue live count out of sync: tracked {tracked}, "
                f"heap holds {actual} pending events"
            )

    # -- kernel core ---------------------------------------------------
    def on_account(self, cpu: int, task: "Task", delta: float, now: float) -> None:
        """Fired by ``update_curr`` whenever occupancy is charged."""
        self.checks += 1
        if delta < 0:
            self._fail(f"negative occupancy delta {delta} for {task!r}")
        self.cpu_busy[cpu] = self.cpu_busy.get(cpu, 0.0) + delta
        if self.cpu_busy[cpu] > now + _EPS:
            self._fail(
                f"CPU-time conservation broken on cpu{cpu}: busy "
                f"{self.cpu_busy[cpu]:.9f}s > wall {now:.9f}s"
            )
        if task.sum_exec_runtime > now + _EPS:
            self._fail(
                f"{task!r} charged {task.sum_exec_runtime:.9f}s of CPU time "
                f"by wall {now:.9f}s"
            )

    def on_phase_complete(self, task: "Task", now: float) -> None:
        """Fired by ``_phase_complete`` just before a compute phase is
        retired, while its anchor (started-at, remaining, rate) is still
        intact.  The delivery instant must equal the ETA an eager
        reschedule would have computed from that anchor."""
        self.checks += 1
        if task.phase_started_at is None or task.phase_rate <= 0.0:
            self._fail(
                f"phase completion delivered for {task!r} without an "
                f"active anchor (started={task.phase_started_at!r}, "
                f"rate={task.phase_rate!r})"
            )
        eta = task.phase_started_at + task.phase_remaining / task.phase_rate
        if abs(eta - now) > _EPS:
            self._fail(
                f"phase of {task!r} completed at t={now!r} but the eager "
                f"reschedule ETA is {eta!r} (drift {abs(eta - now):.3e})"
            )

    def on_run_end(self, end: float) -> None:
        """Final conservation audit when the kernel run loop returns."""
        for cpu, busy in self.cpu_busy.items():
            if busy > end + _EPS:
                self._fail(
                    f"cpu{cpu} accumulated {busy:.9f}s of occupancy in a "
                    f"{end:.9f}s run"
                )

    # -- CFS -----------------------------------------------------------
    def on_vruntime(self, task: "Task") -> None:
        """Fired after CFS accounting; vruntime must be monotonic."""
        self.checks += 1
        last = self._vruntime.get(task.pid)
        if last is not None and task.vruntime < last - _EPS:
            self._fail(
                f"vruntime of {task!r} went backwards: "
                f"{last:.9f} -> {task.vruntime:.9f}"
            )
        self._vruntime[task.pid] = task.vruntime

    def on_vruntime_placed(self, task: "Task") -> None:
        """Wake placement may legitimately *raise* a stale vruntime to
        the queue floor; re-baseline the monotonicity reference."""
        self._vruntime[task.pid] = task.vruntime

    def on_min_vruntime(self, cpu: int, value: float) -> None:
        """A CFS queue floor must be monotonically non-decreasing."""
        self.checks += 1
        last = self._min_vruntime.get(cpu)
        if last is not None and value < last - _EPS:
            self._fail(
                f"cfs min_vruntime on cpu{cpu} went backwards: "
                f"{last:.9f} -> {value:.9f}"
            )
        self._min_vruntime[cpu] = value

    # -- hpcsched ------------------------------------------------------
    def on_iteration(self, task: "Task", util: float) -> None:
        """A closed iteration's utilization must satisfy 0 <= U <= 1."""
        self.checks += 1
        if not -_EPS <= util <= 1.0 + _EPS:
            self._fail(f"iteration utilization {util!r} of {task!r} outside [0, 1]")

    def on_priority_apply(
        self, detector: "LoadImbalanceDetector", task: "Task", priority: int
    ) -> None:
        """Legality of a detector decision, checked *before* it lands."""
        self.checks += 1
        if detector.state == "frozen":
            self._fail(
                f"detector applied priority {priority} to {task!r} while FROZEN"
            )
        lo = self.kernel.tunables.get("hpcsched/min_prio")
        hi = self.kernel.tunables.get("hpcsched/max_prio")
        if not lo <= priority <= hi:
            self._fail(
                f"detector priority {priority} outside [{lo}, {hi}] for {task!r}"
            )
        if detector.state == "observing":
            current = detector.mechanism.read(task)
            if current is not None and priority > current:
                self._fail(
                    f"detector raised {task!r} to {priority} (from {current}) "
                    "while OBSERVING — only downward corrections are legal"
                )


def maybe_install(kernel: "Kernel") -> Optional[KernelOracles]:
    """Install oracles on ``kernel`` when the env flag asks for it."""
    if not validation_enabled():
        return None
    return install(kernel)


def install(kernel: "Kernel") -> KernelOracles:
    """Unconditionally attach a fresh oracle set to ``kernel``.

    Also enables the decode-share self-check in
    :mod:`repro.power5.decode` (module-wide, pure-function validation)
    and hooks the kernel's simulator event loop.
    """
    from repro.power5 import decode

    oracles = KernelOracles(kernel)
    kernel.oracles = oracles
    kernel.sim.oracle = oracles
    decode.enable_validation()
    return oracles
