"""Seeded scenario fuzzing for the differential oracle.

Scenarios are generated SPMD-shaped, mirroring the paper's workloads:
a random machine shape, a random subset of logical CPUs hosting pinned
tasks, and per-task programs structured in *rounds* — a mix of compute
(with per-round load noise), sleeps and hardware-priority writes,
optionally closed by a global barrier (so barrier arrival counts always
match and no generated scenario can deadlock).  The dimensions the
fuzzer explores:

* topology: 1–2 chips, 1–3 cores per chip,
* rank count and placement (including siblings sharing a core and
  lone tasks in ST mode),
* compute/communication mix and per-round load noise,
* performance profiles (cpu/mixed/memory bound),
* hardware priorities, both initial and mid-run rewrites (the source
  of fluid-engine rate rebasing, i.e. the banked-progress hot path).

Everything flows from one seeded ``numpy`` generator, so a fuzz
campaign is reproducible from ``(seed, index)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.validate.differential import (
    DifferentialResult,
    run_differential,
    shrink,
)
from repro.validate.scenario import (
    BarrierOp,
    ComputeOp,
    PROFILES,
    Scenario,
    SetPrioOp,
    SleepOp,
    TaskSpec,
)


#: Scenario pools ``run_fuzz`` can draw from: the generic SPMD engine
#: fuzzer, or shapes derived from the synth generator family
#: (``repro.workloads.synth``) expressed in the scenario language.
SCENARIO_POOLS = ("engine", "synth")


def generate_scenario(seed: int, index: int) -> Scenario:
    """Deterministically generate the ``index``-th scenario of ``seed``."""
    rng = np.random.default_rng(np.random.SeedSequence((seed, index)))

    chips = int(rng.choice([1, 1, 1, 2]))
    cores_per_chip = int(rng.integers(1, 4)) if chips == 1 else 2
    n_cpus = chips * cores_per_chip * 2

    n_tasks = int(rng.integers(1, n_cpus + 1))
    cpus = rng.permutation(n_cpus)[:n_tasks]

    rounds = int(rng.integers(1, 6))
    #: Tasks joining the per-round global barrier (needs >= 2 members).
    barrier_members = set()
    if n_tasks >= 2 and rng.random() < 0.8:
        size = int(rng.integers(2, n_tasks + 1))
        barrier_members = set(rng.permutation(n_tasks)[:size].tolist())

    specs: List[TaskSpec] = []
    for t in range(n_tasks):
        profile = str(rng.choice(PROFILES))
        prio = int(rng.integers(3, 7))  # 3..6
        base_work = float(rng.uniform(0.005, 0.05))
        ops: List[object] = []
        for _ in range(rounds):
            for _ in range(int(rng.integers(1, 4))):
                kind = rng.random()
                if kind < 0.62:
                    noise = float(rng.uniform(0.3, 1.8))  # load noise
                    ops.append(ComputeOp(work=base_work * noise))
                elif kind < 0.84:
                    ops.append(SleepOp(duration=float(rng.uniform(2e-4, 4e-3))))
                else:
                    ops.append(SetPrioOp(priority=int(rng.integers(3, 7))))
            if t in barrier_members:
                ops.append(BarrierOp(group=0))
        # Every program ends with a tiny compute so the final event is a
        # rate-dependent completion, not a barrier timestamp.
        ops.append(ComputeOp(work=base_work * 0.5))
        specs.append(
            TaskSpec(
                name=f"F{t}",
                cpu=int(cpus[t]),
                ops=tuple(ops),
                profile=profile,
                hw_priority=prio,
            )
        )
    return Scenario(
        tasks=tuple(specs),
        chips=chips,
        cores_per_chip=cores_per_chip,
        label=f"fuzz-{seed}-{index}",
    )


def generate_synth_scenario(seed: int, index: int) -> Scenario:
    """The ``index``-th synth-pool scenario of ``seed``.

    Rotates through the synth generator family, re-expressed in the
    four-op scenario language so the differential oracle can check the
    fluid engine on exactly the shapes the generators produce:

    * **scatter** — a :func:`repro.workloads.synth.calculate_work`
      distribution (randomized target imbalance) over every logical
      CPU, barrier-synchronized rounds;
    * **convergence** — (light, heavy) SMT pairs with the partner swap
      at the midpoint round (the step-change protocol);
    * **offload** — many tiny computes interleaved with short sleeps on
      odd CPUs against a long compute on even CPUs (the wakeup-latency
      stressor; message passing is outside the scenario DSL, so the
      blocking is modeled with sleeps).
    """
    from repro.workloads.synth import calculate_work

    rng = np.random.default_rng(np.random.SeedSequence((seed, index, 0x53594E54)))
    family = ("scatter", "convergence", "offload")[index % 3]
    chips = int(rng.choice([1, 1, 2]))
    cores_per_chip = 2
    n_cpus = chips * cores_per_chip * 2
    rounds = int(rng.integers(2, 5))
    mean_work = float(rng.uniform(0.004, 0.02))

    programs: List[List[object]] = [[] for _ in range(n_cpus)]
    if family == "scatter":
        imbalance = float(rng.uniform(1.0, n_cpus))
        loads = calculate_work(n_cpus, imbalance, mean_work=mean_work, rng=rng)
        for _ in range(rounds):
            for cpu, load in enumerate(loads):
                programs[cpu].append(ComputeOp(work=load))
                programs[cpu].append(BarrierOp(group=0))
    elif family == "convergence":
        imbalance = float(rng.uniform(1.0, 2.0))
        light = (2.0 - imbalance) * mean_work
        heavy = imbalance * mean_work
        step_round = rounds // 2
        for r in range(rounds):
            swapped = r >= step_round
            for cpu in range(n_cpus):
                is_heavy = (cpu % 2 == 1) != swapped
                work = heavy if is_heavy else light
                if work > 0:
                    programs[cpu].append(ComputeOp(work=work))
                programs[cpu].append(BarrierOp(group=0))
    else:  # offload
        messages = int(rng.integers(3, 9))
        chunk = mean_work / 8.0
        for _ in range(rounds):
            for cpu in range(n_cpus):
                if cpu % 2 == 0:
                    programs[cpu].append(ComputeOp(work=mean_work))
                else:
                    for _ in range(messages):
                        programs[cpu].append(SleepOp(duration=chunk))
                        programs[cpu].append(ComputeOp(work=chunk))
                programs[cpu].append(BarrierOp(group=0))

    specs = []
    for cpu, ops in enumerate(programs):
        # Rate-dependent final event, as in the engine pool.
        ops.append(ComputeOp(work=mean_work * 0.5))
        specs.append(
            TaskSpec(
                name=f"S{cpu}",
                cpu=cpu,
                ops=tuple(ops),
                profile=str(rng.choice(PROFILES)),
                hw_priority=int(rng.integers(3, 7)),
            )
        )
    return Scenario(
        tasks=tuple(specs),
        chips=chips,
        cores_per_chip=cores_per_chip,
        label=f"synth-{family}-{seed}-{index}",
    )


#: Pool name -> generator function.
POOL_GENERATORS = {
    "engine": generate_scenario,
    "synth": generate_synth_scenario,
}


@dataclass
class FuzzCase:
    """Outcome of one fuzzed scenario."""

    index: int
    label: str
    ok: bool
    events: int
    refined: bool
    exec_time: float


@dataclass
class FuzzReport:
    """Outcome of a fuzz campaign."""

    seed: int
    count: int
    dt: float
    pool: str = "engine"
    cases: List[FuzzCase] = field(default_factory=list)
    #: Result of the *shrunk* first divergence, if any was found.
    failure: Optional[DifferentialResult] = None
    wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        return self.failure is None

    @property
    def divergences(self) -> int:
        return sum(1 for c in self.cases if not c.ok)

    def summary(self) -> str:
        """Render the campaign outcome (plus minimized repro, if any)."""
        refined = sum(1 for c in self.cases if c.refined)
        lines = [
            f"fuzz campaign: pool={self.pool} seed={self.seed} "
            f"scenarios={len(self.cases)}/{self.count} dt={self.dt:g} "
            f"wall={self.wall_time:.2f}s",
            f"  divergences: {self.divergences}"
            f"  (refinement re-checks: {refined})",
        ]
        if self.failure is not None and self.failure.divergence is not None:
            lines.append("  MINIMIZED REPRO:")
            lines.append(
                "\n".join(
                    "    " + ln
                    for ln in self.failure.scenario.describe().splitlines()
                )
            )
            lines.append("    " + self.failure.divergence.describe())
        return "\n".join(lines)


def run_fuzz(
    count: int = 25,
    seed: int = 0,
    dt: float = 2e-5,
    stop_on_divergence: bool = True,
    on_case=None,
    pool: str = "engine",
) -> FuzzReport:
    """Fuzz ``count`` scenarios through the differential harness.

    ``pool`` selects the scenario generator (see
    :data:`SCENARIO_POOLS`): ``engine`` is the generic SPMD fuzzer,
    ``synth`` draws shapes from the synth workload generators.  On the
    first divergence the scenario is shrunk to a minimized repro
    (stored in ``report.failure``); with ``stop_on_divergence`` the
    campaign ends there.  ``on_case`` is an optional progress callback
    receiving each :class:`FuzzCase`.
    """
    try:
        generate = POOL_GENERATORS[pool]
    except KeyError:
        raise ValueError(
            f"unknown scenario pool {pool!r}; pick from {SCENARIO_POOLS}"
        ) from None
    report = FuzzReport(seed=seed, count=count, dt=dt, pool=pool)
    start = time.perf_counter()
    for index in range(count):
        scenario = generate(seed, index)
        result = run_differential(scenario, dt=dt)
        case = FuzzCase(
            index=index,
            label=scenario.label,
            ok=result.ok,
            events=scenario.total_ops(),
            refined=result.refined,
            exec_time=result.fluid.exec_time,
        )
        report.cases.append(case)
        if on_case is not None:
            on_case(case)
        if not result.ok:
            report.failure = shrink(scenario, dt=dt)
            if report.failure.ok:
                # Shrinking lost the bug (flaky tolerance edge); keep
                # the original divergent result as the repro.
                report.failure = result
            if stop_on_divergence:
                break
    report.wall_time = time.perf_counter() - start
    return report
