"""Differential-oracle validation of the fluid-rate simulator.

Every paper claim this repository reproduces rests on one assumption:
that the event-driven **fluid-rate** execution engine in
:mod:`repro.kernel.core_sched` computes the same schedule a brute-force
simulator would.  This package proves that assumption three ways:

* :mod:`repro.validate.reference` — a deliberately slow, obviously
  correct small-step **time-quantum** simulator (fixed ``dt``, no
  banked-progress shortcuts) consuming the same machine/workload
  configuration.
* :mod:`repro.validate.differential` — runs a scenario through both
  engines and asserts their event logs agree within the quantization
  tolerance, with a minimizing shrinker that reduces any divergence to
  the smallest scenario and the first divergent event.
* :mod:`repro.validate.invariants` — runtime oracles installed into the
  live kernel stack (CPU-time conservation, decode-share arithmetic,
  vruntime monotonicity, detector state-machine legality), toggled by
  the ``REPRO_VALIDATE=1`` environment flag.

:mod:`repro.validate.fuzz` feeds randomized scenarios (topologies, rank
counts, compute/comm mixes, priority ranges, load noise) into the
differential harness; the ``repro-hpcsched validate`` CLI subcommand and
the CI full job run it continuously.
"""

from repro.validate.differential import (
    Divergence,
    DifferentialResult,
    run_differential,
    shrink,
)
from repro.validate.fuzz import (
    FuzzReport,
    SCENARIO_POOLS,
    generate_scenario,
    generate_synth_scenario,
    run_fuzz,
)
from repro.validate.invariants import (
    InvariantViolation,
    validation_enabled,
)
from repro.validate.reference import ReferenceSimulator
from repro.validate.sharded_parity import (
    ParityCase,
    ParityReport,
    check_parity,
    run_parity_suite,
)
from repro.validate.scenario import (
    BarrierOp,
    ComputeOp,
    Scenario,
    SetPrioOp,
    SleepOp,
    TaskSpec,
)

__all__ = [
    "BarrierOp",
    "ComputeOp",
    "DifferentialResult",
    "Divergence",
    "FuzzReport",
    "InvariantViolation",
    "ParityCase",
    "ParityReport",
    "ReferenceSimulator",
    "SCENARIO_POOLS",
    "Scenario",
    "SetPrioOp",
    "SleepOp",
    "TaskSpec",
    "check_parity",
    "generate_scenario",
    "generate_synth_scenario",
    "run_differential",
    "run_fuzz",
    "run_parity_suite",
    "shrink",
    "validation_enabled",
]
