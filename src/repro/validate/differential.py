"""Differential oracle: fluid-rate engine vs. brute-force reference.

:func:`run_differential` executes one scenario through both engines and
compares their per-task **event logs** (the simulated time at which
every program op completed).  The reference quantizes transitions to its
time step, so the two logs legitimately differ by ``O(dt)`` per
transition; the harness handles that in two layers:

1. a conservative *a-priori* tolerance proportional to ``dt`` and the
   number of transitions in the scenario, and
2. a *refinement check* for anything that exceeds it: the reference is
   re-run with a 5x smaller quantum — genuine quantization error
   shrinks roughly linearly with ``dt``, while a real engine defect
   (e.g. mis-banked progress) stays put.  Only a persistent delta is
   reported as a divergence.

:func:`shrink` minimizes a divergent scenario: it truncates every
program to the prefix around the first divergent event, then greedily
drops whole tasks and then individual ops while the divergence
persists — the result is the smallest scenario (and the first divergent
event inside it) to debug.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.validate.reference import ReferenceResult, ReferenceSimulator
from repro.validate.scenario import (
    KernelRunResult,
    Scenario,
    build_kernel_run,
    truncate_ops,
    without_task,
)

#: Per-transition tolerance multiplier: every transition (op completion,
#: wake, priority write) can land up to one quantum late in the
#: reference, and a mis-quantized transition shifts downstream
#: completions by a bounded multiple of ``dt``.  The budget is kept
#: deliberately *tight* — measured quantization error sits well under
#: one unit of it — because a tight budget is what gives the harness its
#: sensitivity to small engine defects; legitimate overruns on long
#: rate-chains are absorbed by the refinement check instead.
_TOL_PER_TRANSITION = 1.5
_TOL_FLOOR_QUANTA = 10.0
#: Refinement: quantization error must shrink at least this factor when
#: dt shrinks 5x; engine bugs do not shrink at all.
_REFINE_DT_RATIO = 5.0
_REFINE_SHRINK_FACTOR = 2.0


@dataclass(frozen=True)
class Divergence:
    """The first event on which the two engines disagree."""

    task: str
    op_index: int
    op: str
    fluid_time: float
    reference_time: float
    tolerance: float

    @property
    def delta(self) -> float:
        return abs(self.fluid_time - self.reference_time)

    def describe(self) -> str:
        """One-line report of the divergent event and its delta."""
        return (
            f"first divergent event: {self.task} op[{self.op_index}] {self.op} "
            f"fluid={self.fluid_time:.9f}s reference={self.reference_time:.9f}s "
            f"|delta|={self.delta:.3e}s > tol={self.tolerance:.3e}s"
        )


@dataclass
class DifferentialResult:
    """Outcome of one scenario comparison."""

    scenario: Scenario
    divergence: Optional[Divergence]
    fluid: KernelRunResult
    reference: ReferenceResult
    refined: bool = False

    @property
    def ok(self) -> bool:
        return self.divergence is None


def _tolerance(scenario: Scenario, dt: float) -> float:
    return dt * (
        _TOL_PER_TRANSITION * scenario.total_ops() + _TOL_FLOOR_QUANTA
    )


def _first_mismatch(
    fluid: KernelRunResult,
    reference: ReferenceResult,
    scenario: Scenario,
    tol: float,
) -> Optional[Tuple[str, int, float, float]]:
    """Earliest (by fluid time) event whose times differ beyond ``tol``,
    or a structural mismatch (missing/extra events)."""
    worst: Optional[Tuple[float, str, int, float, float]] = None
    for spec in scenario.tasks:
        flog = fluid.logs.get(spec.name, [])
        rlog = reference.logs.get(spec.name, [])
        for i in range(max(len(flog), len(rlog))):
            if i >= len(flog) or i >= len(rlog):
                # One engine never completed this op: infinite delta.
                ft = flog[i][1] if i < len(flog) else float("inf")
                rt = rlog[i][1] if i < len(rlog) else float("inf")
                cand = (min(ft, rt), spec.name, i, ft, rt)
                if worst is None or cand[0] < worst[0]:
                    worst = cand
                break
            (fi, ft), (ri, rt) = flog[i], rlog[i]
            assert fi == ri == i, "event logs must be dense op-index sequences"
            if abs(ft - rt) > tol:
                cand = (min(ft, rt), spec.name, i, ft, rt)
                if worst is None or cand[0] < worst[0]:
                    worst = cand
                break
    if worst is None:
        return None
    _, name, index, ft, rt = worst
    return (name, index, ft, rt)


def run_differential(
    scenario: Scenario,
    dt: float = 2e-5,
    refine: bool = True,
    mutate_task=None,
) -> DifferentialResult:
    """Run ``scenario`` through both engines and compare event logs.

    ``mutate_task`` is forwarded to :func:`build_kernel_run` (mutation
    testing of the fluid engine).  With ``refine=True`` a suspected
    divergence is re-checked against a 5x finer reference before being
    reported, which separates quantization error from engine defects.
    """
    fluid = build_kernel_run(scenario, mutate_task=mutate_task)
    reference = ReferenceSimulator(scenario, dt=dt).run()
    tol = _tolerance(scenario, dt)
    mismatch = _first_mismatch(fluid, reference, scenario, tol)
    refined = False
    if mismatch is not None and refine:
        fine_dt = dt / _REFINE_DT_RATIO
        fine_ref = ReferenceSimulator(scenario, dt=fine_dt).run()
        fine_tol = _tolerance(scenario, fine_dt)
        fine_mismatch = _first_mismatch(fluid, fine_ref, scenario, fine_tol)
        refined = True
        if fine_mismatch is None:
            # The delta collapsed with dt: quantization, not a bug.
            return DifferentialResult(scenario, None, fluid, fine_ref, refined)
        name, index, ft, rt = mismatch
        fname, findex, fft, frt = fine_mismatch
        coarse_delta = abs(ft - rt) if ft != float("inf") else float("inf")
        fine_delta = abs(fft - frt) if fft != float("inf") else float("inf")
        if (
            fine_delta != float("inf")
            and coarse_delta != float("inf")
            and fine_delta * _REFINE_SHRINK_FACTOR <= coarse_delta
        ):
            # Still shrinking linearly with dt: quantization tail that
            # outran the linear budget (long rate-chains); accept.
            return DifferentialResult(scenario, None, fluid, fine_ref, refined)
        mismatch, reference, tol = fine_mismatch, fine_ref, fine_tol
    if mismatch is None:
        return DifferentialResult(scenario, None, fluid, reference, refined)
    name, index, ft, rt = mismatch
    spec = next(t for t in scenario.tasks if t.name == name)
    op_desc = (
        spec.ops[index].describe() if index < len(spec.ops) else "<missing>"
    )
    divergence = Divergence(
        task=name,
        op_index=index,
        op=op_desc,
        fluid_time=ft,
        reference_time=rt,
        tolerance=tol,
    )
    return DifferentialResult(scenario, divergence, fluid, reference, refined)


# ----------------------------------------------------------------------
# Minimizing shrinker
# ----------------------------------------------------------------------
def shrink(
    scenario: Scenario,
    dt: float = 2e-5,
    mutate_task=None,
    max_attempts: int = 200,
) -> DifferentialResult:
    """Reduce a divergent scenario to a minimal divergent scenario.

    Strategy (each step keeps the candidate only if it still diverges):

    1. truncate every program just past the first divergent event,
    2. greedily remove whole tasks,
    3. greedily remove single ops from each surviving program.

    Returns the differential result of the minimized scenario (whose
    ``divergence`` is the minimized first divergent event).  If the
    input scenario does not diverge it is returned unchanged.
    """
    attempts = 0

    def check(cand: Scenario) -> Optional[DifferentialResult]:
        nonlocal attempts
        if attempts >= max_attempts:
            return None
        attempts += 1
        try:
            res = run_differential(cand, dt=dt, mutate_task=mutate_task)
        except Exception:
            return None  # degenerate candidate (deadlock, ...): discard
        return res if not res.ok else None

    current = run_differential(scenario, dt=dt, mutate_task=mutate_task)
    if current.ok:
        return current

    # 1. Truncate programs just past the divergence point.
    div = current.divergence
    assert div is not None
    limits = {t.name: len(t.ops) for t in scenario.tasks}
    limits[div.task] = div.op_index + 1
    cand = truncate_ops(current.scenario, limits)
    res = check(cand)
    if res is not None:
        current = res

    # Global tail-shortening: halve every program while it still fails.
    while True:
        longest = max(len(t.ops) for t in current.scenario.tasks)
        if longest <= 1:
            break
        limits = {
            t.name: max(1, len(t.ops) // 2) for t in current.scenario.tasks
        }
        res = check(truncate_ops(current.scenario, limits))
        if res is None:
            break
        current = res

    # 2. Remove whole tasks.
    progress = True
    while progress:
        progress = False
        for spec in list(current.scenario.tasks):
            if len(current.scenario.tasks) <= 1:
                break
            res = check(without_task(current.scenario, spec.name))
            if res is not None:
                current = res
                progress = True
                break

    # 3. Remove individual ops.
    progress = True
    while progress:
        progress = False
        for spec in current.scenario.tasks:
            for i in range(len(spec.ops)):
                pruned = replace(
                    spec, ops=spec.ops[:i] + spec.ops[i + 1:]
                )
                tasks = tuple(
                    pruned if t.name == spec.name else t
                    for t in current.scenario.tasks
                )
                cand = replace(current.scenario, tasks=tasks)
                try:
                    cand.validate()
                except ValueError:
                    continue
                res = check(cand)
                if res is not None:
                    current = res
                    progress = True
                    break
            if progress:
                break

    final = replace(
        current.scenario,
        label=(scenario.label + "+shrunk") if scenario.label else "shrunk",
    )
    return run_differential(final, dt=dt, mutate_task=mutate_task)


def logs_as_text(result: DifferentialResult, limit: int = 40) -> str:
    """Human-readable side-by-side dump of the two event logs."""
    lines: List[str] = []
    for spec in result.scenario.tasks:
        flog = dict(result.fluid.logs.get(spec.name, []))
        rlog = dict(result.reference.logs.get(spec.name, []))
        lines.append(f"{spec.name}:")
        for i, op in enumerate(spec.ops[:limit]):
            ft = flog.get(i)
            rt = rlog.get(i)
            f_s = f"{ft:.9f}" if ft is not None else "—"
            r_s = f"{rt:.9f}" if rt is not None else "—"
            lines.append(
                f"  op[{i}] {op.describe():<22} fluid={f_s:<14} ref={r_s}"
            )
    return "\n".join(lines)
