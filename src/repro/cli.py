"""Command-line interface: ``repro-hpcsched`` / ``python -m repro``.

Subcommands:

* ``list``                      — show the experiment ids,
* ``run <experiment-id>``       — run one experiment and print the
  paper-style table / figure output,
* ``table1`` .. shortcuts map straight to ``run``.

Examples::

    repro-hpcsched list
    repro-hpcsched run table3
    repro-hpcsched run fig4
    repro-hpcsched run ablation_latency
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.experiments.registry import all_ids, run_by_id


def _print_result(exp_id: str, result) -> None:
    from repro.analysis.tables import format_characterization_table, format_comparison
    from repro.experiments.common import ExperimentResult

    if isinstance(result, dict) and result and all(
        isinstance(v, ExperimentResult) for v in result.values()
    ):
        paper_exec = _paper_exec_for(exp_id)
        print(format_characterization_table(list(result.values()), title=exp_id))
        if paper_exec:
            print()
            print(format_comparison(result, paper_exec, title="vs. paper:"))
        return
    if isinstance(result, dict):
        for key, value in result.items():
            if isinstance(value, dict) and "gantt" in value:
                print(f"== {key} (exec {value.get('exec_time', 0):.2f}s) ==")
                print(value["gantt"])
            elif isinstance(value, str) and "\n" in value:
                print(value)
            else:
                print(f"{key}: {value}")
        return
    print(result)


def _paper_exec_for(exp_id: str):
    mapping = {
        "table3": "repro.experiments.metbench",
        "table4": "repro.experiments.metbenchvar",
        "table5": "repro.experiments.btmz",
        "table6": "repro.experiments.siesta",
    }
    mod_name = mapping.get(exp_id)
    if mod_name is None:
        return None
    import importlib

    return getattr(importlib.import_module(mod_name), "PAPER_EXEC", None)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-hpcsched",
        description=(
            "HPCSched reproduction (Boneti et al., SC 2008): run the "
            "paper's experiments on the simulated POWER5/Linux stack."
        ),
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list experiment ids")
    runp = sub.add_parser("run", help="run one experiment")
    runp.add_argument("experiment", help="experiment id (see 'list')")
    runp.add_argument(
        "--iterations", type=int, default=None, help="override iteration count"
    )
    exp = sub.add_parser(
        "export",
        help="run one workload+scheduler and write trace artifacts "
        "(.prv, CSVs, gantt)",
    )
    exp.add_argument(
        "workload", choices=["metbench", "metbenchvar", "btmz", "siesta"]
    )
    exp.add_argument(
        "scheduler", choices=["cfs", "static", "uniform", "adaptive", "hybrid"]
    )
    exp.add_argument("--out", default="artifacts", help="output directory")
    exp.add_argument("--iterations", type=int, default=None)
    rep = sub.add_parser(
        "report",
        help="run the full evaluation (tables 1+3-6) and print the "
        "paper-vs-measured report",
    )
    rep.add_argument(
        "--quick", action="store_true",
        help="reduced iteration counts (fast smoke report)",
    )

    args = parser.parse_args(argv)
    if args.command == "list" or args.command is None:
        for exp_id in all_ids():
            print(exp_id)
        return 0
    if args.command == "run":
        kwargs = {}
        if args.iterations is not None:
            kwargs["iterations"] = args.iterations
        try:
            result = run_by_id(args.experiment, **kwargs)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        except TypeError:
            # experiment does not take an 'iterations' parameter
            result = run_by_id(args.experiment)
        _print_result(args.experiment, result)
        return 0
    if args.command == "export":
        return _export(args)
    if args.command == "report":
        return _report(quick=args.quick)
    parser.print_help()
    return 1


def _report(quick: bool = False) -> int:
    """Regenerate the whole evaluation and print EXPERIMENTS-style
    comparisons."""
    import importlib

    from repro.analysis.tables import format_characterization_table, format_comparison

    t1 = run_by_id("table1")
    print(t1["rendered"])
    status = "exact" if t1["table1_exact"] and t1["table2_exact"] else "MISMATCH"
    print(f"Tables I/II: {status}\n")

    plans = {
        "table3": ("metbench", {"iterations": 8} if quick else {}),
        "table4": ("metbenchvar", {"iterations": 9, "k": 3} if quick else {}),
        "table5": ("btmz", {"iterations": 30} if quick else {}),
        "table6": ("siesta", {"scf_steps": 4} if quick else {}),
    }
    for exp_id, (mod_name, kwargs) in plans.items():
        mod = importlib.import_module(f"repro.experiments.{mod_name}")
        results = run_by_id(exp_id, **kwargs)
        title = f"=== {exp_id} ({mod_name}) ==="
        print(title)
        print(format_characterization_table(list(results.values())))
        if not quick:
            print(format_comparison(results, mod.PAPER_EXEC, mod.PAPER_COMP))
        print()
    return 0


def _export(args) -> int:
    import importlib

    from repro.trace.export import write_bundle

    mod = importlib.import_module(f"repro.experiments.{args.workload}")
    kwargs = {"keep_trace": True}
    if args.iterations is not None and args.workload != "siesta":
        kwargs["iterations"] = args.iterations
    result = mod.run_one(args.scheduler, **kwargs)
    paths = write_bundle(result, args.out)
    print(f"exec time: {result.exec_time:.2f}s")
    for p in paths:
        print(f"wrote {p}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
