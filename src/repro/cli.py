"""Command-line interface: ``repro-hpcsched`` / ``python -m repro``.

Subcommands:

* ``list``                      — show the experiment ids,
* ``run <experiment-id>``       — run one experiment and print the
  paper-style table / figure output (``--param KEY=VALUE`` and
  ``--seed N`` forward overrides to the runner),
* ``export``                    — write trace artifacts for one run,
* ``report``                    — regenerate the full evaluation,
* ``campaign run|status|report`` — parallel, cached campaigns over
  the whole experiment matrix (see :mod:`repro.campaign`),
* ``validate``                  — differential-oracle fuzzing of the
  fluid-rate engine against the brute-force reference simulator
  (see :mod:`repro.validate`),
* ``bench``                     — measure engine throughput and paper
  suite wall cost, write ``BENCH_<label>.json``, diff against the
  previous report (see :mod:`repro.bench`),
* ``synth scatter|sweep|convergence`` — parameterized imbalance
  generators: exact-imbalance scatter points, imbalance x ranks
  sweeps, and step-change convergence timing (see
  :mod:`repro.workloads.synth` / :mod:`repro.analysis.convergence`),
* ``serve``                     — run the multi-tenant campaign
  service: durable job queue + fair-share scheduling over HTTP/JSON
  (see :mod:`repro.serve`; ``--smoke`` runs the bounded CI self-test),
* ``submit``                    — submit runs to a running service
  and stream NDJSON results as they complete.

Examples::

    repro-hpcsched list
    repro-hpcsched run table3
    repro-hpcsched run fig4 --param iterations=9 --param k=3
    repro-hpcsched campaign run paper-full --jobs 4
    repro-hpcsched campaign status campaigns/paper-full
    repro-hpcsched validate --fuzz 50 --seed 0
    repro-hpcsched synth sweep --imbalances 1.5,4.0 --ranks 16,64
    repro-hpcsched synth convergence --ranks 64 --revert-at 9
    repro-hpcsched bench --quick --label ci
    repro-hpcsched serve --root serve-data --port 8642 --workers 4
    repro-hpcsched submit table3 --tenant alice --seeds 0,1
"""

from __future__ import annotations

import argparse
import ast
import sys
from typing import Any, Dict, Optional, Sequence

from repro.experiments.registry import all_ids, run_by_id


def _print_result(exp_id: str, result) -> None:
    from repro.analysis.tables import format_characterization_table, format_comparison
    from repro.experiments.common import ExperimentResult

    if isinstance(result, dict) and result and all(
        isinstance(v, ExperimentResult) for v in result.values()
    ):
        paper_exec = _paper_exec_for(exp_id)
        print(format_characterization_table(list(result.values()), title=exp_id))
        if paper_exec:
            print()
            print(format_comparison(result, paper_exec, title="vs. paper:"))
        return
    if isinstance(result, dict):
        for key, value in result.items():
            if isinstance(value, dict) and "gantt" in value:
                print(f"== {key} (exec {value.get('exec_time', 0):.2f}s) ==")
                print(value["gantt"])
            elif isinstance(value, str) and "\n" in value:
                print(value)
            else:
                print(f"{key}: {value}")
        return
    print(result)


def _paper_exec_for(exp_id: str):
    mapping = {
        "table3": "repro.experiments.metbench",
        "table4": "repro.experiments.metbenchvar",
        "table5": "repro.experiments.btmz",
        "table6": "repro.experiments.siesta",
    }
    mod_name = mapping.get(exp_id)
    if mod_name is None:
        return None
    import importlib

    return getattr(importlib.import_module(mod_name), "PAPER_EXEC", None)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-hpcsched",
        description=(
            "HPCSched reproduction (Boneti et al., SC 2008): run the "
            "paper's experiments on the simulated POWER5/Linux stack."
        ),
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list experiment ids")
    runp = sub.add_parser("run", help="run one experiment")
    runp.add_argument("experiment", help="experiment id (see 'list')")
    runp.add_argument(
        "--iterations", type=int, default=None, help="override iteration count"
    )
    runp.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="extra runner keyword override (repeatable); values are "
        "parsed as Python literals when possible",
    )
    runp.add_argument(
        "--seed", type=int, default=None,
        help="forward a seed to runners that accept one",
    )
    exp = sub.add_parser(
        "export",
        help="run one workload+scheduler and write trace artifacts "
        "(.prv, CSVs, gantt)",
    )
    exp.add_argument(
        "workload", choices=["metbench", "metbenchvar", "btmz", "siesta"]
    )
    exp.add_argument(
        "scheduler", choices=["cfs", "static", "uniform", "adaptive", "hybrid"]
    )
    exp.add_argument("--out", default="artifacts", help="output directory")
    exp.add_argument("--iterations", type=int, default=None)
    rep = sub.add_parser(
        "report",
        help="run the full evaluation (tables 1+3-6) and print the "
        "paper-vs-measured report",
    )
    rep.add_argument(
        "--quick", action="store_true",
        help="reduced iteration counts (fast smoke report)",
    )
    _add_campaign_parser(sub)
    val = sub.add_parser(
        "validate",
        help="fuzz the fluid-rate engine against the brute-force "
        "reference simulator (differential oracle)",
    )
    val.add_argument(
        "--fuzz", type=int, default=25, metavar="N",
        help="number of fuzzed scenarios (default 25)",
    )
    val.add_argument(
        "--seed", type=int, default=0, help="fuzz campaign seed (default 0)"
    )
    val.add_argument(
        "--dt", type=float, default=2e-5,
        help="reference-simulator time quantum in seconds (default 2e-5)",
    )
    val.add_argument(
        "--keep-going", action="store_true",
        help="keep fuzzing past the first divergence",
    )
    val.add_argument(
        "--pool", choices=["engine", "synth"], default="engine",
        help="scenario pool: the generic SPMD fuzzer (engine) or "
        "shapes drawn from the synth workload generators (synth)",
    )
    val.add_argument(
        "--sharded-parity", action="store_true",
        help="instead of the differential fuzz, assert serial-vs-"
        "sharded cluster parity bit-for-bit (fixed cluster_metbench "
        "16/64 configurations + --fuzz randomized cluster scenarios)",
    )
    val.add_argument(
        "--quick", action="store_true",
        help="with --sharded-parity: 16-node fixed configurations "
        "only, at 2 shards (CI fast-split smoke)",
    )
    val.add_argument(
        "--workers", choices=["inline", "process"], default="inline",
        help="with --sharded-parity: shard transport for the sharded "
        "side; 'process' forces the forked-worker wire protocol even "
        "on 1-CPU hosts (default inline)",
    )
    ben = sub.add_parser(
        "bench",
        help="run the performance benchmark suite and record/diff "
        "BENCH_<label>.json reports",
    )
    ben.add_argument(
        "--quick", action="store_true",
        help="trimmed experiment suite and fewer rounds (storm sizes "
        "are unchanged, so throughput stays comparable)",
    )
    ben.add_argument(
        "--label", default="local",
        help="report label: writes BENCH_<label>.json (default local)",
    )
    ben.add_argument(
        "--out", default=".",
        help="directory for the report (default: current directory)",
    )
    ben.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline report to diff against (default: newest other "
        "BENCH_*.json in the output directory)",
    )
    ben.add_argument(
        "--threshold", type=float, default=None, metavar="FRAC",
        help="fail when events/sec drops more than FRAC below the "
        "baseline (default 0.20)",
    )
    ben.add_argument(
        "--rounds", type=int, default=None,
        help="rounds per benchmark (default: 3 quick, 5 full)",
    )
    ben.add_argument(
        "--storm-events", type=int, default=None,
        help="event count per synthetic storm (default 200000; mainly "
        "for tests — reports with different sizes are never compared)",
    )
    ben.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        help="run only the named benchmark (repeatable), e.g. "
        "event_storm_wide or cluster_metbench_64",
    )
    ben.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run distinct benchmarks in N worker processes (recorded "
        "in the report; diffs against a report measured with a "
        "different jobs/CPU configuration print a warning)",
    )
    ben.add_argument(
        "--shards-sweep", default=None, metavar="LIST",
        help="comma-separated shard counts (e.g. 1,2,4,8): run each "
        "selected sharded scenario at every count and emit a "
        "per-shard-count scaling table (events/s, wall, sync_rounds) "
        "into the report's 'scaling' section instead of the normal "
        "suite",
    )
    ben.add_argument(
        "--profile", action="store_true",
        help="add one unmeasured pass per benchmark with the "
        "per-event-type cost profiler active; the count/total-µs table "
        "is attached to each record and printed after the run",
    )
    clu = sub.add_parser(
        "cluster",
        help="run the multi-node gang-scheduling experiment "
        "(paper §VI: block vs gang placement at cluster scale)",
    )
    clu.add_argument(
        "--nodes", type=int, default=2,
        help="cluster size in nodes of 4 logical CPUs (default 2)",
    )
    clu.add_argument(
        "--placement", choices=["block", "gang", "both"], default="both",
        help="rank placement strategy to run (default: both, with a "
        "speedup summary)",
    )
    clu.add_argument(
        "--ranks", type=int, default=None,
        help="MPI ranks on the generalized load ladder "
        "(default: 4 per node, one per logical CPU)",
    )
    clu.add_argument(
        "--iterations", type=int, default=None,
        help="barrier-synchronized iterations per rank (default 10)",
    )
    clu.add_argument(
        "--no-hpc", action="store_true",
        help="run plain CFS on every node instead of one HPCSched "
        "instance per node",
    )
    clu.add_argument(
        "--shards", type=int, default=None, metavar="K",
        help="partition the cluster over K conservative-PDES shard "
        "simulators (bit-identical per-rank completion times; "
        "default: single serial simulator)",
    )
    clu.add_argument(
        "--workers", choices=["inline", "process", "auto"], default="auto",
        help="shard execution backend with --shards (default auto)",
    )
    clu.add_argument(
        "--json", action="store_true",
        help="emit one machine-readable JSON object instead of the "
        "human-readable summary",
    )
    _add_synth_parser(sub)
    _add_serve_parser(sub)
    _add_submit_parser(sub)

    args = parser.parse_args(argv)
    if args.command == "list" or args.command is None:
        for exp_id in all_ids():
            print(exp_id)
        return 0
    if args.command == "run":
        return _run_single(args)
    if args.command == "export":
        return _export(args)
    if args.command == "report":
        return _report(quick=args.quick)
    if args.command == "campaign":
        return _campaign(args)
    if args.command == "validate":
        return _validate(args)
    if args.command == "bench":
        return _bench(args)
    if args.command == "cluster":
        return _cluster(args)
    if args.command == "synth":
        return _synth(args)
    if args.command == "serve":
        return _serve(args)
    if args.command == "submit":
        return _submit(args)
    parser.print_help()
    return 1


def _parse_params(pairs: Sequence[str]) -> Dict[str, Any]:
    """Parse repeated ``KEY=VALUE`` flags; values are Python literals
    when they parse as one, strings otherwise."""
    out: Dict[str, Any] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--param expects KEY=VALUE, got {pair!r}")
        try:
            out[key] = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            out[key] = raw
    return out


def _run_single(args) -> int:
    """``run``: one experiment through the campaign invocation path."""
    from repro.campaign.spec import RunSpec, invoke

    params = _parse_params(args.param)
    if args.iterations is not None:
        params.setdefault("iterations", args.iterations)
    spec = RunSpec(experiment=args.experiment, params=params, seed=args.seed)
    try:
        result, dropped = invoke(spec)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    for name in dropped:
        print(
            f"note: {args.experiment} does not accept {name!r}; ignored",
            file=sys.stderr,
        )
    _print_result(args.experiment, result)
    return 0


def _add_campaign_parser(sub) -> None:
    """Attach the ``campaign`` subcommand tree."""
    camp = sub.add_parser(
        "campaign",
        help="run/inspect experiment campaigns (parallel, cached)",
    )
    csub = camp.add_subparsers(dest="campaign_command")

    crun = csub.add_parser("run", help="execute a campaign")
    crun.add_argument(
        "name",
        nargs="?",
        default="paper-full",
        help="built-in campaign (paper-full, paper-quick, smoke, "
        "synth-sweep, synth-convergence) — ignored when --experiments "
        "is given",
    )
    crun.add_argument(
        "--experiments",
        default=None,
        help="comma-separated experiment ids for an ad-hoc campaign",
    )
    crun.add_argument(
        "--seeds", default=None,
        help="comma-separated seeds to cross with the experiments",
    )
    crun.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="campaign-wide runner override (repeatable)",
    )
    crun.add_argument("--jobs", type=int, default=1, help="worker processes")
    crun.add_argument(
        "--timeout", type=float, default=None, help="per-run timeout (s)"
    )
    crun.add_argument(
        "--retries", type=int, default=1,
        help="retry budget per run (default 1)",
    )
    crun.add_argument(
        "--backoff", type=float, default=0.5,
        help="base retry backoff (s), doubled per attempt",
    )
    crun.add_argument(
        "--no-cache", action="store_true",
        help="recompute everything; skip the content-addressed cache",
    )
    crun.add_argument(
        "--verify", type=int, default=1, metavar="N",
        help="re-run the N cheapest runs serially and assert "
        "byte-identical results (0 disables)",
    )
    crun.add_argument(
        "--out", default=None,
        help="campaign directory (default campaigns/<name>)",
    )

    for cmd, help_text in (
        ("status", "print the run table + totals of a stored campaign"),
        ("report", "status plus the paper-style aggregate tables"),
    ):
        p = csub.add_parser(cmd, help=help_text)
        p.add_argument(
            "target", nargs="?", default="paper-full",
            help="campaign directory or built-in name",
        )


def _add_synth_parser(sub) -> None:
    """Attach the ``synth`` subcommand tree."""
    syn = sub.add_parser(
        "synth",
        help="parameterized imbalance generators: scatter points, "
        "imbalance x ranks sweeps, step-change convergence timing",
    )
    ssub = syn.add_subparsers(dest="synth_command")

    sca = ssub.add_parser(
        "scatter",
        help="one synthetic_scatter point under each scheduler",
    )
    sca.add_argument(
        "--imbalance", type=float, default=2.0,
        help="target imbalance factor max/mean (default 2.0)",
    )
    sca.add_argument(
        "--ranks", type=int, default=8,
        help="MPI ranks, one per logical CPU (default 8)",
    )
    sca.add_argument("--iterations", type=int, default=10)
    sca.add_argument("--seed", type=int, default=0)
    sca.add_argument(
        "--placement", choices=["paired", "bad", "shuffled"],
        default="paired",
        help="how loads map onto SMT cores (default paired: "
        "heavy-with-light, the regime priorities can fix)",
    )

    swe = ssub.add_parser(
        "sweep",
        help="synthetic_scatter over an imbalance x ranks grid",
    )
    swe.add_argument(
        "--imbalances", default="1.0,1.5,2.0,4.0",
        help="comma-separated target imbalance factors "
        "(default 1.0,1.5,2.0,4.0)",
    )
    swe.add_argument(
        "--ranks", default="4,16,64",
        help="comma-separated rank counts (default 4,16,64); "
        "infeasible cells (imbalance > ranks) are dropped",
    )
    swe.add_argument("--iterations", type=int, default=5)
    swe.add_argument("--seed", type=int, default=0)

    con = ssub.add_parser(
        "convergence",
        help="step-change reaction time: epochs/sim-seconds until the "
        "detector's measured imbalance recovers after a load swap",
    )
    con.add_argument("--ranks", type=int, default=16)
    con.add_argument(
        "--imbalance", type=float, default=1.5,
        help="SMT-pair imbalance factor in [1, 2] (default 1.5)",
    )
    con.add_argument("--iterations", type=int, default=12)
    con.add_argument(
        "--step-at", type=int, default=None,
        help="0-based iteration of the load swap (default: midpoint)",
    )
    con.add_argument(
        "--revert-at", type=int, default=None,
        help="swap back at this iteration (measures re-convergence)",
    )
    con.add_argument(
        "--eps", type=float, default=None,
        help="convergence threshold in utilization points (default: "
        "auto from the pre-step steady state)",
    )

    for p in (sca, swe, con):
        p.add_argument(
            "--schedulers", default=None,
            help="comma-separated scheduler list (default: "
            "cfs,uniform,adaptive; convergence: uniform,adaptive)",
        )
        p.add_argument(
            "--json", action="store_true",
            help="emit one machine-readable JSON object",
        )


def _synth(args) -> int:
    """``synth``: run the imbalance-generator experiments."""
    import json

    from repro.campaign.spec import summarize_result
    from repro.experiments.synth import (
        run_synth_convergence,
        run_synth_scatter,
        run_synth_sweep,
    )

    def scheds(default):
        if args.schedulers is None:
            return default
        return tuple(s.strip() for s in args.schedulers.split(",") if s.strip())

    if args.synth_command == "scatter":
        try:
            results = run_synth_scatter(
                imbalance=args.imbalance,
                ranks=args.ranks,
                iterations=args.iterations,
                seed=args.seed,
                placement=args.placement,
                schedulers=scheds(("cfs", "uniform", "adaptive")),
            )
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(summarize_result(results), indent=2, sort_keys=True))
            return 0
        print(
            f"synthetic_scatter: imbalance {args.imbalance:g} x "
            f"{args.ranks} ranks, {args.placement} placement"
        )
        _print_exec_rows(results)
        return 0

    if args.synth_command == "sweep":
        try:
            imbalances = [float(x) for x in args.imbalances.split(",") if x.strip()]
            ranks = [int(x) for x in args.ranks.split(",") if x.strip()]
            result = run_synth_sweep(
                imbalances=imbalances,
                ranks=ranks,
                iterations=args.iterations,
                seed=args.seed,
                schedulers=scheds(("cfs", "adaptive")),
            )
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(summarize_result(result), indent=2, sort_keys=True))
            return 0
        print("synthetic_scatter sweep (exec seconds per scheduler):")
        for cell in result["cells"]:
            row = "  ".join(
                f"{sched}={res.exec_time:8.3f}s"
                for sched, res in cell["results"].items()
            )
            print(
                f"  I={cell['imbalance']:<4g} N={cell['ranks']:<3d}  {row}"
            )
        return 0

    if args.synth_command == "convergence":
        try:
            results = run_synth_convergence(
                ranks=args.ranks,
                imbalance=args.imbalance,
                iterations=args.iterations,
                step_at=args.step_at,
                revert_at=args.revert_at,
                eps=args.eps,
                schedulers=scheds(("uniform", "adaptive")),
            )
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(summarize_result(results), indent=2, sort_keys=True))
            return 0
        print(
            f"synthetic_convergence: {args.ranks} ranks, pair imbalance "
            f"{args.imbalance:g}, step at iteration "
            f"{args.step_at if args.step_at is not None else args.iterations // 2}"
        )
        for sched, entry in results.items():
            for key in ("convergence", "reconvergence"):
                if key not in entry:
                    continue
                c = entry[key]
                when = (
                    f"{c['epochs']} epochs / {c['sim_time']:.3f}s"
                    if c["converged"]
                    else f"NOT within {c['epochs_observed']} epochs"
                )
                print(
                    f"  {sched:<9} {key:<13} eps={c['eps']:5.2f}pt  "
                    f"{when}  residual spread {c['residual_spread']:.2f}pt"
                )
        return 0

    print("usage: repro-hpcsched synth {scatter,sweep,convergence}", file=sys.stderr)
    return 1


def _print_exec_rows(results) -> None:
    """Exec-time rows (+ improvement over cfs when present)."""
    base = results.get("cfs")
    for sched, res in results.items():
        note = ""
        if base is not None and sched != "cfs" and base.exec_time > 0:
            note = f"  ({res.improvement_over(base):+.1f}% vs cfs)"
        print(f"  {sched:<9} exec {res.exec_time:8.3f}s{note}")


def _add_serve_parser(sub) -> None:
    """Attach the ``serve`` subcommand."""
    srv = sub.add_parser(
        "serve",
        help="run the multi-tenant campaign service (durable queue, "
        "fair-share scheduling, HTTP/JSON API)",
    )
    srv.add_argument(
        "--root", default=None,
        help="service state directory: job journal + shared result "
        "cache (default serve-data; --smoke defaults to a temp dir)",
    )
    srv.add_argument("--host", default="127.0.0.1", help="bind address")
    srv.add_argument(
        "--port", type=int, default=8642,
        help="TCP port (0 picks an ephemeral port; default 8642)",
    )
    srv.add_argument(
        "--workers", type=int, default=2, help="worker slots (default 2)"
    )
    srv.add_argument(
        "--worker-mode", choices=["process", "thread"], default="process",
        help="execution backend (default process)",
    )
    srv.add_argument(
        "--epoch-interval", type=float, default=0.25, metavar="SECONDS",
        help="wall time between fair-share scheduler epochs "
        "(default 0.25)",
    )
    srv.add_argument(
        "--manual-clock", action="store_true",
        help="never advance epochs on wall time; only POST /v1/tick "
        "moves the scheduler (deterministic runs)",
    )
    srv.add_argument(
        "--heuristic", choices=["uniform", "adaptive"], default="adaptive",
        help="the paper's balancing heuristic for tenant priorities "
        "(default adaptive)",
    )
    srv.add_argument(
        "--max-tenant-depth", type=int, default=64,
        help="queued jobs allowed per tenant before 429 (default 64)",
    )
    srv.add_argument(
        "--max-total-depth", type=int, default=256,
        help="queued jobs allowed service-wide before 429 (default 256)",
    )
    srv.add_argument(
        "--timeout", type=float, default=None,
        help="per-job execution timeout (s; default none)",
    )
    srv.add_argument(
        "--retries", type=int, default=1,
        help="retry budget per job (default 1)",
    )
    srv.add_argument(
        "--no-cache", action="store_true",
        help="disable the shared content-addressed result cache",
    )
    srv.add_argument(
        "--smoke", action="store_true",
        help="bounded self-test instead of serving: boot on an "
        "ephemeral port, drive a 3-tenant mini-campaign over HTTP, "
        "assert fair-share + cache + restart behaviour, exit",
    )


def _add_submit_parser(sub) -> None:
    """Attach the ``submit`` subcommand."""
    subm = sub.add_parser(
        "submit",
        help="submit experiment runs to a running campaign service "
        "and stream results",
    )
    subm.add_argument(
        "experiments", nargs="+", help="experiment ids (see 'list')"
    )
    subm.add_argument(
        "--tenant", required=True, help="tenant name to submit as"
    )
    subm.add_argument("--host", default="127.0.0.1", help="service host")
    subm.add_argument(
        "--port", type=int, default=8642, help="service port (default 8642)"
    )
    subm.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="runner keyword override applied to every run (repeatable)",
    )
    subm.add_argument(
        "--seeds", default=None,
        help="comma-separated seeds to cross with the experiments",
    )
    subm.add_argument(
        "--tag", default="",
        help="re-run tag: the same spec with a new tag is a "
        "deliberate duplicate, not an idempotent resubmit",
    )
    subm.add_argument(
        "--no-follow", action="store_true",
        help="submit and exit without waiting for results",
    )
    subm.add_argument(
        "--show-results", action="store_true",
        help="print each finished job's full result JSON",
    )
    subm.add_argument(
        "--timeout", type=float, default=600.0,
        help="result-stream timeout in seconds (default 600)",
    )


def _serve(args) -> int:
    """``serve``: run the campaign service (or its ``--smoke`` test)."""
    if args.smoke:
        from repro.serve.smoke import run_smoke

        return run_smoke(
            root=args.root,
            workers=args.workers,
            worker_mode=args.worker_mode,
        )

    import asyncio
    import signal

    from repro.serve import CampaignService, ServeConfig

    try:
        config = ServeConfig(
            root=args.root or "serve-data",
            host=args.host,
            port=args.port,
            workers=args.workers,
            worker_mode=args.worker_mode,
            epoch_interval=args.epoch_interval,
            manual_clock=args.manual_clock,
            max_tenant_depth=args.max_tenant_depth,
            max_total_depth=args.max_total_depth,
            job_timeout=args.timeout,
            retries=args.retries,
            heuristic=args.heuristic,
            cache_enabled=not args.no_cache,
        )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2

    async def _run() -> None:
        service = CampaignService(config)
        await service.start()
        clock = (
            "manual clock (POST /v1/tick)"
            if config.manual_clock or not config.epoch_interval
            else f"epoch every {config.epoch_interval}s"
        )
        print(
            f"repro.serve listening on http://{service.address}  "
            f"root={config.root}  workers={config.workers} "
            f"({config.worker_mode})  heuristic={config.heuristic}  {clock}"
        )
        if service.recovered_jobs:
            print(
                f"recovered {len(service.recovered_jobs)} mid-flight "
                f"job(s) from the journal"
            )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # platforms without signal handler support
        try:
            await stop.wait()
        finally:
            print("shutting down...")
            await service.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


def _submit(args) -> int:
    """``submit``: send a batch to a service, optionally stream results."""
    import json

    from repro.serve.client import ServeClient, ServeError

    params = _parse_params(args.param)
    seeds = (
        [int(s) for s in args.seeds.split(",") if s.strip()]
        if args.seeds
        else [None]
    )
    runs = []
    for experiment in args.experiments:
        for seed in seeds:
            run: Dict[str, Any] = {"experiment": experiment}
            if params:
                run["params"] = params
            if seed is not None:
                run["seed"] = seed
            if args.tag:
                run["tag"] = args.tag
            runs.append(run)

    client = ServeClient(args.host, args.port, timeout=args.timeout)
    try:
        doc = client.submit(args.tenant, runs, ok=False)
    except (ConnectionError, OSError) as exc:
        print(
            f"cannot reach the service at {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 2
    status = doc.get("_status", 200)
    accepted = doc.get("accepted", [])
    for job in accepted:
        print(f"accepted {job['job_id']}")
    if status >= 400:
        print(
            f"rejected {doc.get('rejected', 0)} run(s): "
            f"{doc.get('error', f'HTTP {status}')}",
            file=sys.stderr,
        )
        return 1
    if args.no_follow or not accepted:
        return 0

    job_ids = [job["job_id"] for job in accepted]
    failures = 0
    try:
        for rec in client.results(
            jobs=job_ids, follow=True, timeout=args.timeout
        ):
            note = " (cached)" if rec.get("cache_hit") else ""
            line = f"{rec['job_id']}  {rec['state']}{note}"
            if rec.get("error"):
                line += f"  {rec['error']}"
            print(line)
            if rec["state"] != "OK":
                failures += 1
            if args.show_results and "result" in rec:
                print(json.dumps(rec["result"], indent=2, sort_keys=True))
    except (ServeError, ConnectionError, OSError) as exc:
        print(f"result stream failed: {exc}", file=sys.stderr)
        return 2
    return 0 if failures == 0 else 1


def _campaign_dir(target: str):
    """Map a campaign name or path to its store directory."""
    from pathlib import Path

    path = Path(target)
    if path.is_dir() or path.suffix or "/" in target:
        return path
    return Path("campaigns") / target


def _campaign(args) -> int:
    """Dispatch the ``campaign`` sub-subcommands."""
    from pathlib import Path

    from repro.campaign import (
        CampaignConsistencyError,
        CampaignExecutor,
        CampaignStore,
        ProgressPrinter,
        ResultCache,
        builtin_campaign,
        expand_matrix,
        render_report,
        render_status,
    )

    if args.campaign_command in ("status", "report"):
        root = _campaign_dir(args.target)
        if not (root / "manifest.json").exists():
            print(f"no campaign found under {root}/", file=sys.stderr)
            return 2
        store = CampaignStore(root)
        render = render_status if args.campaign_command == "status" else render_report
        print(render(store))
        return 0
    if args.campaign_command != "run":
        print("usage: repro-hpcsched campaign {run,status,report}", file=sys.stderr)
        return 1

    if args.experiments:
        ids = [x.strip() for x in args.experiments.split(",") if x.strip()]
        seeds = (
            [int(s) for s in args.seeds.split(",")]
            if args.seeds
            else [None]
        )
        campaign = expand_matrix(
            "adhoc", ids, seeds=seeds, params=_parse_params(args.param),
            description="ad-hoc CLI campaign",
        )
    else:
        try:
            campaign = builtin_campaign(args.name)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        if args.param or args.seeds:
            seeds = (
                [int(s) for s in args.seeds.split(",")] if args.seeds else [None]
            )
            campaign = expand_matrix(
                campaign.name,
                sorted({r.experiment for r in campaign.runs}),
                seeds=seeds,
                params=_parse_params(args.param),
                description=campaign.description,
            )

    root = Path(args.out) if args.out else _campaign_dir(campaign.name)
    store = CampaignStore(root)
    cache = ResultCache(root / "cache", enabled=not args.no_cache)
    executor = CampaignExecutor(
        jobs=args.jobs,
        timeout=args.timeout,
        retries=args.retries,
        backoff=args.backoff,
        cache=cache,
        store=store,
        on_event=ProgressPrinter(len(campaign.runs)),
        verify=args.verify,
    )
    try:
        result = executor.run(campaign)
    except CampaignConsistencyError as exc:
        print(f"DETERMINISM VIOLATION: {exc}", file=sys.stderr)
        return 3
    totals = result.summary()
    print(
        f"\ncampaign {campaign.name}: {totals['ok']}/{totals['runs']} OK, "
        f"{totals['failed']} failed, cache-hit ratio "
        f"{totals['cache_hit_ratio']:.0%}, wall {totals['wall_time']:.2f}s"
        + (f", verified {totals['verified']} parallel==serial" if totals["verified"] else "")
    )
    print(f"artifacts: {store.manifest_path} + {store.runs_path}")
    return 0 if not result.failed else 1


def _validate(args) -> int:
    """``validate``: fuzz scenarios through the differential oracle, or
    (``--sharded-parity``) assert serial-vs-sharded cluster parity."""
    if args.sharded_parity:
        return _sharded_parity(args)
    from repro.validate import run_fuzz

    def progress(case) -> None:
        status = "ok" if case.ok else "DIVERGED"
        refined = " (refined)" if case.refined else ""
        print(
            f"  [{case.index + 1:>3}/{args.fuzz}] {case.label:<16} "
            f"{status}{refined}  events={case.events} "
            f"exec={case.exec_time:.4f}s"
        )

    report = run_fuzz(
        count=args.fuzz,
        seed=args.seed,
        dt=args.dt,
        stop_on_divergence=not args.keep_going,
        on_case=progress,
        pool=args.pool,
    )
    print(report.summary())
    return 0 if report.ok else 1


def _sharded_parity(args) -> int:
    """``validate --sharded-parity``: serial vs sharded, bit-for-bit."""
    from repro.validate import run_parity_suite

    def progress(case) -> None:
        status = "ok" if case.ok else "MISMATCH"
        print(
            f"  {case.label:<24} {status}  events {case.events_serial}"
            f" -> {case.events_sharded} sharded, {case.windows} windows"
            f" [{case.workers}]"
        )
        for line in case.mismatches:
            print(f"    {line}")

    report = run_parity_suite(
        fuzz=args.fuzz,
        seed=args.seed,
        nodes_fixed=(16,) if args.quick else (16, 64),
        shards_fixed=2 if args.quick else None,
        on_case=progress,
        workers=args.workers,
    )
    print(report.summary())
    return 0 if report.ok else 1


def _bench(args) -> int:
    """``bench``: measure, record BENCH_<label>.json, diff vs baseline."""
    from pathlib import Path

    from repro.bench import harness

    out_dir = Path(args.out)
    out_path = out_dir / f"BENCH_{args.label}.json"
    threshold = (
        harness.DEFAULT_THRESHOLD if args.threshold is None else args.threshold
    )
    kwargs = {}
    if args.storm_events is not None:
        kwargs["storm_events"] = args.storm_events
    if args.scenario is not None:
        kwargs["scenarios"] = args.scenario

    try:
        if args.shards_sweep is not None:
            try:
                shard_counts = [
                    int(tok) for tok in args.shards_sweep.split(",") if tok
                ]
            except ValueError:
                print(
                    f"--shards-sweep: expected comma-separated integers, "
                    f"got {args.shards_sweep!r}",
                    file=sys.stderr,
                )
                return 2
            report = harness.run_shards_sweep(
                shard_counts,
                scenarios=args.scenario,
                quick=args.quick,
                label=args.label,
                rounds=args.rounds,
                progress=lambda line: print(f"  {line}"),
            )
        else:
            report = harness.run_suite(
                quick=args.quick,
                label=args.label,
                rounds=args.rounds,
                jobs=args.jobs,
                profiled=args.profile,
                progress=lambda line: print(f"  {line}"),
                **kwargs,
            )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2

    if report.scaling:
        print("\nshards-sweep scaling:")
        for name, rows in report.scaling.items():
            print(f"  {name}:")
            print(
                "    shards      wall_s      events/s  sync_rounds"
                "   wire_bytes  workers"
            )
            for row in rows:
                print(
                    f"    {row['shards']:>6}  {row['wall_s']:>10.4f}"
                    f"  {row['events_per_sec']:>12,.0f}"
                    f"  {row['sync_rounds']:>11,}"
                    f"  {row['wire_bytes']:>11,}  {row['workers']}"
                )

    if args.profile:
        print("\nper-event-type costs (unmeasured profiled pass):")
        for name, rec in report.records.items():
            if not rec.profile:
                continue
            print(f"  {name}:")
            for etype, row in rec.profile.items():
                print(
                    f"    {etype:<16} {row['count']:>9,} events  "
                    f"{row['total_us']:>12,.0f} µs  "
                    f"({row['mean_us']:.2f} µs/event)"
                )

    if args.baseline is not None:
        baseline_path = Path(args.baseline)
    else:
        baseline_path = harness.find_baseline(out_dir, exclude=out_path)

    regressed = False
    if baseline_path is not None and baseline_path.exists():
        try:
            baseline = harness.load_report(baseline_path)
        except harness.BenchFormatError as exc:
            print(f"baseline ignored: {exc}", file=sys.stderr)
        else:
            current = report.to_dict()
            rows = harness.compare_reports(current, baseline, threshold)
            warnings = harness.context_warnings(current, baseline)
            report.vs_baseline = {
                "baseline": str(baseline_path),
                "threshold": threshold,
                "rows": rows,
                "warnings": warnings,
            }
            print(f"\nvs {baseline_path} (threshold -{threshold:.0%}):")
            for warning in warnings:
                print(f"  WARNING: {warning}")
            for row in rows:
                if row["regressed"]:
                    mark = "REGRESSED"
                elif row.get("cross_host"):
                    mark = "warn (cross-host, not gated)"
                else:
                    mark = "ok"
                if str(row.get("basis", "")).startswith("wall_"):
                    detail = (
                        f"({row['current'] * 1e3:,.1f} vs "
                        f"{row['baseline'] * 1e3:,.1f} ms wall)"
                    )
                else:
                    detail = (
                        f"({row['current']:,.0f} vs {row['baseline']:,.0f} "
                        f"events/s)"
                    )
                print(
                    f"  {row['name']:<24} {row['ratio']:>6.2f}x "
                    f"{detail}  {mark}"
                )
                regressed = regressed or bool(row["regressed"])
            if not rows:
                print("  (no comparable benchmarks)")
    else:
        print("\nno baseline found; recording only")

    harness.write_report(report, out_path)
    print(f"wrote {out_path}")
    if regressed:
        print("PERFORMANCE REGRESSION beyond threshold", file=sys.stderr)
        return 1
    return 0


def _cluster(args) -> int:
    """``cluster``: block vs gang placement on an N-node cluster,
    serially or sharded over K PDES simulators (``--shards``)."""
    import json

    from repro.cluster.experiment import (
        DEFAULT_ITERATIONS,
        ladder_loads,
        run_cluster,
        run_cluster_sharded,
    )

    n_ranks = args.ranks if args.ranks is not None else 4 * args.nodes
    iterations = (
        args.iterations if args.iterations is not None else DEFAULT_ITERATIONS
    )
    try:
        loads = ladder_loads(n_ranks)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    strategies = (
        ["block", "gang"] if args.placement == "both" else [args.placement]
    )
    if not args.json:
        mode = (
            f"{args.shards} PDES shards ({args.workers} workers)"
            if args.shards
            else "serial simulator"
        )
        print(
            f"cluster: {args.nodes} nodes x 4 CPUs, {n_ranks} ranks, "
            f"{iterations} iterations, "
            f"{'CFS only' if args.no_hpc else 'HPCSched per node'}, {mode}"
        )
    exec_times = {}
    out: Dict[str, Any] = {
        "nodes": args.nodes,
        "ranks": n_ranks,
        "iterations": iterations,
        "hpcsched": not args.no_hpc,
        "shards": args.shards or 1,
        "placements": {},
    }
    for strategy in strategies:
        try:
            if args.shards:
                result = run_cluster_sharded(
                    strategy,
                    loads=loads,
                    iterations=iterations,
                    n_nodes=args.nodes,
                    use_hpc=not args.no_hpc,
                    shards=args.shards,
                    workers=args.workers,
                )
            else:
                result = run_cluster(
                    strategy,
                    loads=loads,
                    iterations=iterations,
                    n_nodes=args.nodes,
                    use_hpc=not args.no_hpc,
                )
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        exec_times[strategy] = result.exec_time
        node_loads = result.node_loads
        spread = max(node_loads.values()) - min(node_loads.values())
        out["workers"] = result.workers
        out["placements"][strategy] = {
            "exec_time": result.exec_time,
            "node_load_spread": spread,
            "events": result.events,
            "windows": result.windows,
            "sync_rounds": result.sync_rounds,
            "wire_bytes": result.wire_bytes,
            "rank_exit": {str(r): t for r, t in sorted(result.rank_exit.items())},
        }
        if not args.json:
            print(
                f"  {strategy:<5} exec {result.exec_time:8.2f}s   "
                f"node-load spread {spread:6.2f}   "
                f"events {result.events:,}"
            )
    if len(exec_times) == 2 and exec_times["gang"] > 0:
        speedup = exec_times["block"] / exec_times["gang"]
        out["gang_speedup_over_block"] = speedup
        if not args.json:
            print(f"  gang speedup over block: {speedup:.2f}x")
    if args.json:
        print(json.dumps(out, indent=2, sort_keys=True))
    return 0


def _report(quick: bool = False) -> int:
    """Regenerate the whole evaluation and print EXPERIMENTS-style
    comparisons."""
    import importlib

    from repro.analysis.tables import format_characterization_table, format_comparison

    t1 = run_by_id("table1")
    print(t1["rendered"])
    status = "exact" if t1["table1_exact"] and t1["table2_exact"] else "MISMATCH"
    print(f"Tables I/II: {status}\n")

    plans = {
        "table3": ("metbench", {"iterations": 8} if quick else {}),
        "table4": ("metbenchvar", {"iterations": 9, "k": 3} if quick else {}),
        "table5": ("btmz", {"iterations": 30} if quick else {}),
        "table6": ("siesta", {"scf_steps": 4} if quick else {}),
    }
    for exp_id, (mod_name, kwargs) in plans.items():
        mod = importlib.import_module(f"repro.experiments.{mod_name}")
        results = run_by_id(exp_id, **kwargs)
        title = f"=== {exp_id} ({mod_name}) ==="
        print(title)
        print(format_characterization_table(list(results.values())))
        if not quick:
            print(format_comparison(results, mod.PAPER_EXEC, mod.PAPER_COMP))
        print()
    return 0


def _export(args) -> int:
    import importlib

    from repro.trace.export import write_bundle

    mod = importlib.import_module(f"repro.experiments.{args.workload}")
    kwargs = {"keep_trace": True}
    if args.iterations is not None and args.workload != "siesta":
        kwargs["iterations"] = args.iterations
    result = mod.run_one(args.scheduler, **kwargs)
    paths = write_bundle(result, args.out)
    print(f"exec time: {result.exec_time:.2f}s")
    for p in paths:
        print(f"wrote {p}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
