"""PARAVER-like tracing and trace analysis.

The paper uses PARAVER to visualize per-process state over time (dark
gray = computing, light gray = waiting/communication) and to compute the
``%Comp`` statistics of Tables III-VI.  This package provides the same
capabilities for the simulated kernel:

* :mod:`repro.trace.records` — raw event records and state intervals,
* :mod:`repro.trace.collector` — the kernel-side hook that turns
  scheduler events into per-task interval timelines,
* :mod:`repro.trace.stats` — %Comp / utilization / imbalance statistics,
* :mod:`repro.trace.gantt` — ASCII Gantt rendering of the timelines
  (our stand-in for the paper's trace figures),
* :mod:`repro.trace.paraver` — a PARAVER-flavoured text export.
"""

from repro.trace.records import TraceEvent, Interval, TaskTimeline, State
from repro.trace.collector import TraceCollector
from repro.trace.stats import TaskStats, compute_stats, utilization
from repro.trace.gantt import render_gantt

__all__ = [
    "TraceEvent",
    "Interval",
    "TaskTimeline",
    "State",
    "TraceCollector",
    "TaskStats",
    "compute_stats",
    "utilization",
    "render_gantt",
]
