"""Trace and result export: CSV files + bundle writer.

Complements the .prv export with analysis-friendly CSVs (state
intervals, per-task stats, priority changes) and a one-call bundle
writer used by ``repro-hpcsched export``.
"""

from __future__ import annotations

import csv
import io
import os
from typing import TYPE_CHECKING, Optional

from repro.trace.collector import TraceCollector
from repro.trace.gantt import render_gantt
from repro.trace.paraver import export_prv
from repro.trace.stats import compute_stats

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.common import ExperimentResult


def intervals_csv(trace: TraceCollector, end_time: float) -> str:
    """One row per state interval: pid, name, state, start, end, cpu."""
    trace.finish(end_time)
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["pid", "name", "state", "start", "end", "cpu"])
    for pid in sorted(trace.timelines):
        tl = trace.timelines[pid]
        for iv in tl.intervals:
            writer.writerow(
                [pid, tl.name, iv.state.value, f"{iv.start:.9f}",
                 f"{iv.end:.9f}", iv.cpu if iv.cpu is not None else ""]
            )
    return buf.getvalue()


def stats_csv(trace: TraceCollector, end_time: float) -> str:
    """Per-task summary: the numbers behind the paper-style tables."""
    stats = compute_stats(trace, end_time)
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(
        ["pid", "name", "running", "ready", "waiting", "span",
         "pct_comp", "pct_running"]
    )
    for name in sorted(stats):
        s = stats[name]
        writer.writerow(
            [s.pid, s.name, f"{s.running:.9f}", f"{s.ready:.9f}",
             f"{s.waiting:.9f}", f"{s.span:.9f}",
             f"{s.pct_comp:.4f}", f"{s.pct_running:.4f}"]
        )
    return buf.getvalue()


def priority_changes_csv(trace: TraceCollector) -> str:
    """Hardware-priority change log."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["time", "pid", "name", "priority"])
    for ev in trace.priority_changes():
        writer.writerow([f"{ev.time:.9f}", ev.pid, ev.name, ev.info["priority"]])
    return buf.getvalue()


def write_bundle(
    result: "ExperimentResult",
    directory: str,
    prefix: Optional[str] = None,
) -> list:
    """Write a full artifact bundle for one experiment run.

    Emits ``<prefix>.prv`` (PARAVER), ``<prefix>.intervals.csv``,
    ``<prefix>.stats.csv``, ``<prefix>.priorities.csv`` and
    ``<prefix>.gantt.txt``.  Returns the written paths.
    """
    if result.trace is None:
        raise ValueError(
            "result has no trace; run the experiment with keep_trace=True"
        )
    prefix = prefix or f"{result.workload}-{result.scheduler}"
    os.makedirs(directory, exist_ok=True)
    outputs = {
        f"{prefix}.prv": export_prv(result.trace, result.exec_time),
        f"{prefix}.intervals.csv": intervals_csv(result.trace, result.exec_time),
        f"{prefix}.stats.csv": stats_csv(result.trace, result.exec_time),
        f"{prefix}.priorities.csv": priority_changes_csv(result.trace),
        f"{prefix}.gantt.txt": render_gantt(
            result.trace, result.exec_time, width=120
        ),
    }
    paths = []
    for filename, content in outputs.items():
        path = os.path.join(directory, filename)
        with open(path, "w") as fh:
            fh.write(content)
        paths.append(path)
    return paths
