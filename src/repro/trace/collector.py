"""Kernel-side trace collector.

Installed on the kernel as ``Kernel(trace=TraceCollector())``; receives
every scheduler event and folds the state-changing ones into per-task
:class:`~repro.trace.records.TaskTimeline` objects while keeping the raw
event stream for detailed analysis (priority changes, iteration marks,
migrations).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.trace.records import State, TaskTimeline, TraceEvent

#: Scheduler event kind -> resulting task state (None = annotation only).
_KIND_TO_STATE = {
    "run": State.RUNNING,
    "wake": State.READY,
    "preempted": State.READY,
    "block": State.WAITING,
    "exit": State.NONE,
}


class TraceCollector:
    """Accumulates scheduler events into timelines and an event log."""

    def __init__(self, keep_events: bool = True) -> None:
        self.keep_events = keep_events
        self.events: List[TraceEvent] = []
        self.timelines: Dict[int, TaskTimeline] = {}
        self._finished_at: Optional[float] = None

    # -- kernel hook ---------------------------------------------------
    def record(self, time: float, task: Any, kind: str, **info) -> None:
        """Kernel hook: fold one scheduler event into the trace."""
        if getattr(task, "is_idle_task", False):
            return
        if self.keep_events:
            self.events.append(TraceEvent(time, task.pid, task.name, kind, info))
        state = _KIND_TO_STATE.get(kind)
        if state is None:
            return
        tl = self.timelines.get(task.pid)
        if tl is None:
            tl = TaskTimeline(task.pid, task.name)
            self.timelines[tl.pid] = tl
        tl.transition(time, state, cpu=info.get("cpu"))

    # -- analysis helpers ----------------------------------------------
    def finish(self, time: float) -> None:
        """Close all open intervals at end of run (idempotent)."""
        if self._finished_at == time:
            return
        self._finished_at = time
        for tl in self.timelines.values():
            tl.finish(time)

    def timeline(self, pid: int) -> TaskTimeline:
        """The timeline of the task with ``pid``."""
        return self.timelines[pid]

    def by_name(self, name: str) -> TaskTimeline:
        """The (first) timeline whose task has ``name``."""
        for tl in self.timelines.values():
            if tl.name == name:
                return tl
        raise KeyError(name)

    def events_of_kind(self, kind: str) -> List[TraceEvent]:
        """All raw events of one kind, in time order."""
        return [ev for ev in self.events if ev.kind == kind]

    def priority_changes(self, pid: Optional[int] = None) -> List[TraceEvent]:
        """All hardware-priority change events (optionally one task's)."""
        return [
            ev
            for ev in self.events
            if ev.kind == "hw_priority" and (pid is None or ev.pid == pid)
        ]
