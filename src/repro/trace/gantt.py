"""ASCII Gantt rendering of task timelines.

Our stand-in for the paper's PARAVER screenshots (Figures 3-6): one row
per task, ``#`` for computing (the paper's dark gray), ``.`` for
waiting/communication (light gray), ``-`` for runnable-but-waiting for a
CPU, and space for not-yet-started/exited.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.trace.collector import TraceCollector
from repro.trace.records import State, TaskTimeline

_GLYPH = {
    State.RUNNING: "#",
    State.READY: "-",
    State.WAITING: ".",
    State.NONE: " ",
}


def _sample(timeline: TaskTimeline, t: float) -> State:
    for iv in timeline.intervals:
        if iv.start <= t < iv.end:
            return iv.state
    return State.NONE


def render_timeline(timeline: TaskTimeline, t0: float, t1: float, width: int) -> str:
    """Render one task row by midpoint-sampling each column."""
    if t1 <= t0:
        return ""
    step = (t1 - t0) / width
    chars: List[str] = []
    # Walk intervals and columns together (both sorted) for O(n + width).
    ivs = timeline.intervals
    idx = 0
    for col in range(width):
        t = t0 + (col + 0.5) * step
        while idx < len(ivs) and ivs[idx].end <= t:
            idx += 1
        if idx < len(ivs) and ivs[idx].start <= t < ivs[idx].end:
            chars.append(_GLYPH[ivs[idx].state])
        else:
            chars.append(" ")
    return "".join(chars)


def render_gantt(
    trace: TraceCollector,
    end_time: float,
    width: int = 100,
    names: Optional[Iterable[str]] = None,
    start_time: float = 0.0,
) -> str:
    """Multi-row ASCII Gantt chart, one row per task.

    Legend: ``#`` computing, ``.`` waiting (MPI), ``-`` ready (waiting
    for a CPU).
    """
    trace.finish(end_time)
    timelines: Dict[str, TaskTimeline] = {
        tl.name: tl for tl in trace.timelines.values()
    }
    if names is None:
        ordered = [timelines[k] for k in sorted(timelines, key=_name_key)]
    else:
        ordered = [timelines[n] for n in names if n in timelines]
    label_w = max((len(tl.name) for tl in ordered), default=0) + 1
    lines = []
    header = " " * label_w + f"t=[{start_time:.2f}s .. {end_time:.2f}s]"
    lines.append(header)
    for tl in ordered:
        row = render_timeline(tl, start_time, end_time, width)
        lines.append(f"{tl.name:<{label_w}}{row}")
    lines.append(" " * label_w + "legend: # compute   . wait   - ready")
    return "\n".join(lines)


def _name_key(name: str):
    """Sort P1, P2, ... P10 naturally."""
    digits = "".join(c for c in name if c.isdigit())
    return (name.rstrip("0123456789"), int(digits) if digits else -1)
