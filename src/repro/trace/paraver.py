"""PARAVER-flavoured text export of a trace.

Real PARAVER consumes ``.prv`` files with colon-separated state/event
records.  We emit a faithful subset — a header plus state records
``1:<cpu>:<appl>:<task>:<thread>:<begin>:<end>:<state>`` and event
records ``2:...:<time>:<type>:<value>`` for hardware-priority changes —
so traces can be eyeballed or diffed, and so the export path of the
original tooling is represented in the reproduction.
"""

from __future__ import annotations

from typing import Dict, List

from repro.trace.collector import TraceCollector
from repro.trace.records import State

#: PARAVER state codes (subset of the standard palette).
STATE_CODE = {
    State.RUNNING: 1,
    State.READY: 3,
    State.WAITING: 6,
    State.NONE: 0,
}

#: Event type we use for POWER5 hardware-priority changes.
EVT_HW_PRIORITY = 9200001
#: Event type for HPCSched iteration boundaries.
EVT_ITERATION = 9200002

_TIME_SCALE = 1e9  # seconds -> integer nanoseconds


def export_prv(trace: TraceCollector, end_time: float, app_name: str = "repro") -> str:
    """Serialize the trace to a .prv-style string."""
    trace.finish(end_time)
    pids = sorted(trace.timelines)
    task_index = {pid: i + 1 for i, pid in enumerate(pids)}

    lines: List[str] = []
    ntasks = len(pids)
    duration_ns = int(round(end_time * _TIME_SCALE))
    lines.append(
        f"#Paraver (repro:{app_name}):{duration_ns}_ns:1(1):1:"
        + ",".join(f"{task_index[p]}(1:1)" for p in pids)
    )

    records: List[tuple] = []
    for pid in pids:
        tl = trace.timelines[pid]
        tix = task_index[pid]
        for iv in tl.intervals:
            cpu = (iv.cpu if iv.cpu is not None else 0) + 1
            records.append(
                (
                    iv.start,
                    f"1:{cpu}:1:{tix}:1:{int(round(iv.start * _TIME_SCALE))}:"
                    f"{int(round(iv.end * _TIME_SCALE))}:{STATE_CODE[iv.state]}",
                )
            )
    for ev in trace.events:
        if ev.pid not in task_index:
            continue
        tix = task_index[ev.pid]
        if ev.kind == "hw_priority":
            records.append(
                (
                    ev.time,
                    f"2:0:1:{tix}:1:{int(round(ev.time * _TIME_SCALE))}:"
                    f"{EVT_HW_PRIORITY}:{ev.info.get('priority', 0)}",
                )
            )
        elif ev.kind == "iteration":
            records.append(
                (
                    ev.time,
                    f"2:0:1:{tix}:1:{int(round(ev.time * _TIME_SCALE))}:"
                    f"{EVT_ITERATION}:{ev.info.get('index', 0)}",
                )
            )
    records.sort(key=lambda r: r[0])
    lines.extend(r[1] for r in records)
    return "\n".join(lines) + "\n"


def export_names(trace: TraceCollector) -> Dict[int, str]:
    """pid -> task name mapping (the .row file in real PARAVER)."""
    return {pid: tl.name for pid, tl in sorted(trace.timelines.items())}
