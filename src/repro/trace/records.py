"""Trace primitives: events, states, intervals, per-task timelines."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional


class State(Enum):
    """Task states as PARAVER would color them."""

    RUNNING = "running"  # computing on a CPU (dark gray in the paper)
    READY = "ready"  # runnable, waiting for a CPU
    WAITING = "waiting"  # blocked (MPI wait / sleep; light gray)
    NONE = "none"  # not yet started / exited


@dataclass(frozen=True)
class TraceEvent:
    """A raw scheduler event."""

    time: float
    pid: int
    name: str
    kind: str
    info: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Interval:
    """A maximal span of constant task state."""

    start: float
    end: float
    state: State
    cpu: Optional[int] = None

    @property
    def duration(self) -> float:
        return self.end - self.start


class TaskTimeline:
    """Ordered state intervals of one task."""

    def __init__(self, pid: int, name: str) -> None:
        self.pid = pid
        self.name = name
        self.intervals: List[Interval] = []
        # open interval being built
        self._state: State = State.NONE
        self._since: float = 0.0
        self._cpu: Optional[int] = None

    def transition(self, time: float, state: State, cpu: Optional[int] = None) -> None:
        """Close the current interval at ``time`` and open a new one."""
        if state == self._state and cpu == self._cpu:
            return
        if self._state != State.NONE and time > self._since:
            self.intervals.append(Interval(self._since, time, self._state, self._cpu))
        self._state = state
        self._since = time
        self._cpu = cpu

    def finish(self, time: float) -> None:
        """Flush the open interval at end of simulation."""
        self.transition(time, State.NONE)

    def time_in(self, state: State, start: float = 0.0, end: float = float("inf")) -> float:
        """Total time spent in ``state`` within the window [start, end]."""
        total = 0.0
        for iv in self.intervals:
            if iv.state != state:
                continue
            lo = max(iv.start, start)
            hi = min(iv.end, end)
            if hi > lo:
                total += hi - lo
        return total

    @property
    def span(self) -> float:
        if not self.intervals:
            return 0.0
        return self.intervals[-1].end - self.intervals[0].start
