"""Trace statistics: %Comp, utilization, imbalance metrics.

The paper's tables report, per process, the percentage of time spent
computing (``% Comp``) and the application's total execution time; its
§IV-B defines per-iteration utilization ``U_i = tR / (tR + tW)``.  These
functions compute the same quantities from trace timelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.trace.collector import TraceCollector
from repro.trace.records import State, TaskTimeline


@dataclass(frozen=True)
class TaskStats:
    """Per-task trace summary."""

    pid: int
    name: str
    running: float
    ready: float
    waiting: float
    span: float

    @property
    def pct_comp(self) -> float:
        """The paper's %Comp, as PARAVER measures it: time *not blocked
        in MPI* over the task's lifetime.  Time the OS keeps the task
        runnable-but-descheduled is invisible to application-level
        tracing and counts as computing — which is exactly why SIESTA's
        %Comp barely moves while its wall time improves (Table VI)."""
        if self.span <= 0:
            return 0.0
        return 100.0 * (self.running + self.ready) / self.span

    @property
    def pct_running(self) -> float:
        """OS-view utilization: actual CPU occupancy over lifetime."""
        return 100.0 * self.running / self.span if self.span > 0 else 0.0

    @property
    def utilization(self) -> float:
        """Fraction of lifetime spent computing, app view (0..1)."""
        return (self.running + self.ready) / self.span if self.span > 0 else 0.0


def utilization(timeline: TaskTimeline, start: float = 0.0, end: float = float("inf")) -> float:
    """CPU utilization of a task within a time window."""
    run = timeline.time_in(State.RUNNING, start, end)
    ready = timeline.time_in(State.READY, start, end)
    wait = timeline.time_in(State.WAITING, start, end)
    total = run + ready + wait
    return run / total if total > 0 else 0.0


def compute_stats(
    trace: TraceCollector,
    end_time: float,
    names: Optional[Iterable[str]] = None,
) -> Dict[str, TaskStats]:
    """Summarize every (or the named) task's timeline."""
    trace.finish(end_time)
    wanted = set(names) if names is not None else None
    out: Dict[str, TaskStats] = {}
    for tl in trace.timelines.values():
        if wanted is not None and tl.name not in wanted:
            continue
        run = tl.time_in(State.RUNNING)
        ready = tl.time_in(State.READY)
        wait = tl.time_in(State.WAITING)
        out[tl.name] = TaskStats(
            pid=tl.pid,
            name=tl.name,
            running=run,
            ready=ready,
            waiting=wait,
            span=run + ready + wait,
        )
    return out


def imbalance_spread(stats: Iterable[TaskStats]) -> float:
    """Max-min spread of %Comp across tasks (percentage points)."""
    vals = [s.pct_comp for s in stats]
    return max(vals) - min(vals) if vals else 0.0


def imbalance_factor(stats: Iterable[TaskStats]) -> float:
    """Classic load-imbalance metric: max(compute) / mean(compute)."""
    vals: List[float] = [s.running for s in stats]
    if not vals or sum(vals) == 0:
        return 1.0
    return max(vals) / (sum(vals) / len(vals))
