"""HPC workload balancing across scheduling domains (paper §IV-A).

The paper's balancer equalizes the *number of HPC tasks* at every
domain level — chip, core, context — so that, e.g., a core holding one
HPC task pulls from a core holding three until both hold two.  The
generic per-class pull balancer already moves queued tasks toward idle
CPUs; this module adds the domain-count equalization pass and the
analysis helper used by tests and experiments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.kernel.domains import LEVELS
from repro.kernel.policies import SchedPolicy, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core_sched import Kernel


def hpc_task_distribution(kernel: "Kernel") -> Dict[int, int]:
    """Number of runnable SCHED_HPC tasks per CPU (queued + running)."""
    counts: Dict[int, int] = {cpu: 0 for cpu in kernel.machine.cpu_ids}
    for task in kernel.tasks.values():
        if task.policy != SchedPolicy.HPC or not task.runnable:
            continue
        if task.cpu is not None:
            counts[task.cpu] += 1
    return counts


def _group_counts(
    counts: Dict[int, int], groups: List[Tuple[int, ...]]
) -> List[int]:
    return [sum(counts[c] for c in group) for group in groups]


def spread_hpc_tasks(kernel: "Kernel", max_moves: int = 64) -> int:
    """Equalize HPC task counts across all domain levels.

    Walks the levels outermost-first (chip, then core, then context) and
    migrates queued HPC tasks from the most- to the least-loaded group
    until every level is balanced to within one task.  Returns the
    number of migrations performed.
    """
    moves = 0
    raw = kernel.machine.domains()
    for level in reversed(LEVELS):  # chip -> core -> context
        groups = [tuple(g) for g in raw.get(level, [])]
        if len(groups) < 2:
            continue
        while moves < max_moves:
            counts = hpc_task_distribution(kernel)
            totals = _group_counts(counts, groups)
            hi = max(range(len(groups)), key=lambda i: totals[i])
            lo = min(range(len(groups)), key=lambda i: totals[i])
            if totals[hi] - totals[lo] <= 1:
                break
            task = _steal_queued_hpc(kernel, groups[hi])
            if task is None:
                break  # only running tasks left; nothing migratable now
            dst = min(groups[lo], key=lambda c: counts[c])
            kernel.migrate(task, dst)
            moves += 1
    # Innermost pass: within each core, spread across the two contexts.
    counts = hpc_task_distribution(kernel)
    for group in raw.get("context", []):
        a, b = sorted(group)
        while abs(counts[a] - counts[b]) > 1 and moves < max_moves:
            src, dst = (a, b) if counts[a] > counts[b] else (b, a)
            task = _steal_queued_hpc(kernel, (src,))
            if task is None:
                break
            kernel.migrate(task, dst)
            counts[src] -= 1
            counts[dst] += 1
            moves += 1
    return moves


def _steal_queued_hpc(kernel: "Kernel", cpus: Tuple[int, ...]):
    """A queued (READY, not running) HPC task on one of ``cpus``."""
    best_cpu = max(cpus, key=lambda c: kernel.rqs[c].nr_running)
    for task in kernel.tasks.values():
        if (
            task.policy == SchedPolicy.HPC
            and task.state == TaskState.READY
            and task.cpu == best_cpu
        ):
            return task
    for cpu in cpus:
        for task in kernel.tasks.values():
            if (
                task.policy == SchedPolicy.HPC
                and task.state == TaskState.READY
                and task.cpu == cpu
            ):
                return task
    return None
