"""The Load Imbalance Detector (paper §IV-B).

MPI tasks alternate compute phases (runnable) and wait phases (blocked
on a message or barrier); one *iteration* is a compute phase plus the
wait phase that ends it (paper Fig. 2).  While a task runs, the kernel
accumulates its execution time; when it wakes from an MPI wait the
iteration closes and the detector computes

* the last-iteration utilization  ``Ul(i) = tR / (tR + tW)``  and
* the global utilization          ``Ug    = sum(tR) / sum(ti)``,

then asks the configured heuristic for the task's hardware priority for
the next iteration and applies it through the mechanism — *before* the
new iteration starts, which is what lets a constant application be
balanced after a single observed iteration.

The detector learns from history: iteration ``i`` is assumed
representative of ``i+1``.  If the guess is wrong the imbalance shows up
in the next iteration's statistics and is corrected then (paper §IV-B).

All sampling is wakeup-driven: the detector observes iterations from
inside the MPI-wait wake events themselves and owns no periodic
sampling timer.  The fast-forward engine therefore needs no chain
family here — there is no detector event to elide, and the tick/balance
fires it does elide are no-ops that never feed these statistics.

**Stable state.**  "If the heuristic is able to balance the
application, i.e., to find a stable state, the Load Imbalance Detector
only checks whether the application maintains the same behavior,
without changing the priority of each task" (paper §IV-B).  The
detector runs a three-state machine:

* **ADJUSTING** — decisions active.  A *round* completes when every
  task has closed an iteration; if the round applied any priority
  change, the next round is observation-only (the change's effect must
  be measured before acting again — acting on utilizations measured
  under the *old* priorities is what causes oscillation); if the round
  changed nothing, the application is already stable and freezes.
* **OBSERVING** — one full round with no decisions; then freeze, taking
  each task's fresh utilization as its stable-state reference.
* **FROZEN** — priorities held.  A task deviating from its reference by
  more than ``hpcsched/rebalance_delta`` points signals a behaviour
  change: thaw, discard the now-stale history (keeping the revealing
  iteration) and re-balance — one or two iterations, as the paper
  observes on MetBenchVar.

The freeze is essential, not cosmetic: after balancing, *every* task
runs at high utilization (the de-prioritized ones because they were
slowed!), so a per-task band heuristic without hysteresis would promote
the formerly-idle tasks and destroy the balance it just built.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.hpcsched.mechanism import POWER5Mechanism, PriorityMechanism

if TYPE_CHECKING:  # pragma: no cover
    from repro.hpcsched.heuristics import Heuristic
    from repro.kernel.core_sched import Kernel
    from repro.kernel.task import Task


@dataclass
class HPCTaskStats:
    """Per-task iteration statistics kept by the detector."""

    pid: int
    #: Wall-clock start of the current iteration.
    iter_start: float = 0.0
    #: ``sum_exec_runtime`` snapshot at iteration start.
    run_snapshot: float = 0.0
    #: Utilization of the last *closed* iteration (0..1); None before
    #: the first iteration completes.
    last_util: Optional[float] = None
    #: Running/wall time of the last closed iteration (for history
    #: resets on behaviour changes).
    last_tr: float = 0.0
    last_ti: float = 0.0
    #: Accumulated running time over all closed iterations.
    total_run: float = 0.0
    #: Accumulated wall time over all closed iterations.
    total_time: float = 0.0
    iterations: int = 0
    #: History of per-iteration utilizations (for analysis/figures).
    history: List[float] = field(default_factory=list)

    @property
    def global_util(self) -> float:
        """``Ug = sum(tR) / sum(ti)`` over the task's whole history."""
        return self.total_run / self.total_time if self.total_time > 0 else 0.0

    def close_iteration(self, now: float, run_now: float) -> Optional[float]:
        """Close the iteration at ``now``; returns its utilization."""
        ti = now - self.iter_start
        if ti <= 0:
            return None
        tr = max(0.0, run_now - self.run_snapshot)
        if tr > ti:
            # Accounting jitter can charge marginally more run time than
            # wall time elapsed.  Clamp *tr itself* — not just the ratio —
            # so the accumulated ``total_run`` stays consistent with the
            # per-iteration clamp and ``global_util`` (Ug) cannot exceed 1.
            tr = ti
        util = tr / ti
        self.last_util = util
        self.last_tr = tr
        self.last_ti = ti
        self.total_run += tr
        self.total_time += ti
        self.iterations += 1
        self.history.append(util)
        self.iter_start = now
        self.run_snapshot = run_now
        return util

    def reset_history(self) -> None:
        """Forget everything but the just-closed iteration.

        Used on behaviour changes: the accumulated global utilization
        describes the *old* behaviour and would take many iterations to
        drift across the decision bands, so the detector restarts the
        history from the iteration that revealed the change.
        """
        if self.last_util is None:
            return
        self.history = [self.last_util]
        self.total_run = self.last_tr
        self.total_time = self.last_ti
        self.iterations = 1


class LoadImbalanceDetector:
    """Tracks the HPC application's iterations and drives the heuristic."""

    def __init__(
        self,
        kernel: "Kernel",
        heuristic: "Heuristic",
        mechanism: Optional[PriorityMechanism] = None,
    ) -> None:
        self.kernel = kernel
        self.heuristic = heuristic
        self.mechanism = mechanism or POWER5Mechanism()
        self.stats: Dict[int, HPCTaskStats] = {}
        #: Total priority changes applied (for experiments/ablations).
        self.priority_changes = 0
        #: Number of behaviour changes detected (thaw + history reset).
        self.behaviour_changes = 0
        #: Stable-state machine: "adjusting" | "observing" | "frozen".
        self.state = "adjusting"
        self._freeze_ref: Dict[int, float] = {}
        #: Tasks that closed an iteration in the current round.
        self._round_closed: set = set()
        self._round_changed = False
        kernel.tunables.subscribe(self._refresh_tunable_cache)

    def _refresh_tunable_cache(self) -> None:
        """Cache the knobs consulted on every iteration close (and by
        the heuristics' decide())."""
        get = self.kernel.tunables.get
        self._min_iter_time = get("hpcsched/min_iter_time")
        self._rebalance_delta = get("hpcsched/rebalance_delta")
        self._balance_spread = get("hpcsched/balance_spread")
        self._min_prio = get("hpcsched/min_prio")
        self._max_prio = get("hpcsched/max_prio")
        self._high_util = get("hpcsched/high_util")
        self._low_util = get("hpcsched/low_util")
        self._prio_step_mode = get("hpcsched/prio_step_mode")
        self._adaptive_g = get("hpcsched/adaptive_g")
        self._adaptive_l = get("hpcsched/adaptive_l")

    # ------------------------------------------------------------------
    # Task registry (driven by the HPC scheduling class)
    # ------------------------------------------------------------------
    def task_added(self, task: "Task") -> None:
        """Start tracking a task that entered the HPC class; its
        hardware priority is normalized to the base level."""
        now = self.kernel.now
        st = HPCTaskStats(pid=task.pid)
        st.iter_start = now
        st.run_snapshot = task.sum_exec_runtime
        self.stats[task.pid] = st
        self.state = "adjusting"
        # Thaw-via-task-arrival: stale stable-state references must not
        # survive into the next freeze (the membership changed, so the
        # old per-task references describe a different application).
        self._freeze_ref.clear()
        self._round_closed.clear()
        self._round_changed = False
        base = self._min_prio
        if task.hw_priority != base:
            self._apply(task, base)

    def task_removed(self, task: "Task") -> None:
        """Forget a task that exited or left the HPC class."""
        self.stats.pop(task.pid, None)
        self._round_closed.discard(task.pid)
        self._freeze_ref.pop(task.pid, None)

    # ------------------------------------------------------------------
    # Iteration tracking
    # ------------------------------------------------------------------
    def on_wait_wakeup(self, task: "Task") -> None:
        """The task woke from an MPI wait: iteration boundary."""
        st = self.stats.get(task.pid)
        if st is None:
            return
        now = self.kernel.now
        if now - st.iter_start < self._min_iter_time:
            return  # spurious/short wakeup; fold into the open iteration
        util = st.close_iteration(now, task.sum_exec_runtime)
        if util is None:
            return
        if self.kernel.oracles is not None:
            self.kernel.oracles.on_iteration(task, util)
        if self.kernel.trace is not None:
            self.kernel._trace(
                task, "iteration", index=st.iterations, util=util
            )

        if self.state == "frozen":
            if not self._behaviour_changed(task.pid, util):
                return  # stable state: hold every priority
            self._thaw()

        if self.state in ("adjusting", "observing"):
            new_prio = self.heuristic.decide(self, task, st)
            current = self.mechanism.read(task)
            if new_prio is not None and new_prio != current:
                # While observing (a change's effect is being measured),
                # only *downward* corrections apply: de-prioritizing a
                # low-utilization task is always safe, whereas a raise
                # may react to the artificial utilization of a task that
                # was just slowed down by its sibling's boost.
                if self.state == "adjusting" or new_prio < current:
                    self._apply(task, new_prio)
                    self._round_changed = True
        self._round_closed.add(task.pid)
        self._maybe_advance_round()

    # ------------------------------------------------------------------
    # Stable-state machinery
    # ------------------------------------------------------------------
    def _maybe_advance_round(self) -> None:
        """A round = every task closed one iteration.  On completion:
        changes applied -> measure their effect for one round before
        acting again; nothing changed -> the application is stable."""
        if self.state == "frozen" or not self.stats:
            return
        if not all(pid in self._round_closed for pid in self.stats):
            return
        if self._round_changed:
            # changes applied this round (initial adjustments, or safe
            # downward corrections while observing): measure their
            # effect for one more full round before freezing.
            self.state = "observing"
        else:
            self._freeze()
        self._round_closed.clear()
        self._round_changed = False

    def _freeze(self) -> None:
        self.state = "frozen"
        self._freeze_ref = {
            pid: st.last_util
            for pid, st in self.stats.items()
            if st.last_util is not None
        }

    def _behaviour_changed(self, pid: int, util: float) -> bool:
        ref = self._freeze_ref.get(pid)
        if ref is None:
            return False
        return abs(util - ref) * 100.0 > self._rebalance_delta

    def _thaw(self) -> None:
        """Leave the stable state: the history describes old behaviour."""
        self.state = "adjusting"
        self.behaviour_changes += 1
        self._freeze_ref.clear()
        for st in self.stats.values():
            st.reset_history()
        self._round_closed.clear()
        self._round_changed = False

    @property
    def frozen(self) -> bool:
        """Whether the detector sits in the stable (frozen) state."""
        return self.state == "frozen"

    # ------------------------------------------------------------------
    # Application-level views (analysis helpers)
    # ------------------------------------------------------------------
    def last_utils(self) -> List[float]:
        """Last-iteration utilization of every tracked task that has
        closed at least one iteration."""
        return [
            st.last_util for st in self.stats.values() if st.last_util is not None
        ]

    def application_balanced(self) -> bool:
        """Whether the last-iteration utilizations sit within
        ``hpcsched/balance_spread`` points (analysis helper)."""
        utils = self.last_utils()
        if len(utils) < len(self.stats) or not utils:
            return False
        spread = (max(utils) - min(utils)) * 100.0
        return spread <= self._balance_spread

    # ------------------------------------------------------------------
    def _apply(self, task: "Task", priority: int) -> None:
        if self.kernel.oracles is not None:
            self.kernel.oracles.on_priority_apply(self, task, priority)
        self.mechanism.apply(self.kernel, task, priority)
        self.priority_changes += 1
