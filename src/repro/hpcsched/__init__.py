"""HPCSched — the paper's dynamic balancing scheduler (paper §IV).

Three mostly-independent components:

* **Scheduling policy** (:mod:`repro.hpcsched.sched_hpc`): a new
  scheduling class inserted between the real-time and the CFS class,
  serving the new ``SCHED_HPC`` policy with FIFO or round-robin
  queueing.  An application opts in with one ``sched_setscheduler()``
  call — the only source modification required.
* **Load Imbalance Detector and heuristics**
  (:mod:`repro.hpcsched.detector`, :mod:`repro.hpcsched.heuristics`):
  per-iteration CPU-utilization tracking (an iteration is a compute
  phase plus the MPI wait that ends it, paper Fig. 2) and the *Uniform*
  (global utilization, LOW_UTIL/HIGH_UTIL bands) and *Adaptive*
  (``U = G*Ug(i-1) + L*Ul(i)``) priority-selection heuristics.
* **Mechanism** (:mod:`repro.hpcsched.mechanism`): the only
  architecture-dependent part — programming the POWER5 hardware thread
  priority (or doing nothing on machines without such support, in which
  case HPCSched still provides its low-latency scheduling benefits,
  paper §IV-C).

Helper :func:`attach_hpcsched` wires everything onto a simulated kernel.
"""

from repro.hpcsched.bands import (
    BandConfig,
    adaptive_mix,
    band_target,
    global_before_last,
)
from repro.hpcsched.sched_hpc import HPCSchedClass, attach_hpcsched
from repro.hpcsched.detector import LoadImbalanceDetector, HPCTaskStats
from repro.hpcsched.heuristics import (
    Heuristic,
    UniformHeuristic,
    AdaptiveHeuristic,
    HybridHeuristic,
    StaticPriorities,
)
from repro.hpcsched.mechanism import (
    PriorityMechanism,
    POWER5Mechanism,
    NullMechanism,
)
from repro.hpcsched.balance import spread_hpc_tasks, hpc_task_distribution

__all__ = [
    "BandConfig",
    "adaptive_mix",
    "band_target",
    "global_before_last",
    "HPCSchedClass",
    "attach_hpcsched",
    "LoadImbalanceDetector",
    "HPCTaskStats",
    "Heuristic",
    "UniformHeuristic",
    "AdaptiveHeuristic",
    "HybridHeuristic",
    "StaticPriorities",
    "PriorityMechanism",
    "POWER5Mechanism",
    "NullMechanism",
    "spread_hpc_tasks",
    "hpc_task_distribution",
]
