"""The paper's priority-band arithmetic as pure functions.

The Uniform and Adaptive heuristics (paper §IV-B) are, stripped of
kernel plumbing, three small pieces of math:

* the LOW_UTIL/HIGH_UTIL **decision bands** mapping a utilization
  percentage to a priority target inside ``[min_prio, max_prio]``
  (with a hysteresis gap in between that returns "no change");
* the **adaptive mix** ``U = G*Ug(i-1) + L*Ul(i)`` blending the global
  utilization up to the previous iteration with the last iteration's;
* the **history mean** reconstructing ``Ug(i-1)`` from a utilization
  history.

Two consumers share this module so they cannot drift: the kernel-side
:class:`~repro.hpcsched.heuristics.Heuristic` classes driven by the
Load Imbalance Detector, and the service-side
:class:`~repro.serve.scheduler.FairShareBalancer` that applies the same
bands to per-tenant *service* utilization to assign worker-slot
priorities (`repro.serve` dogfoods the paper's detector at the job
layer).  Everything here is deliberately free of kernel, task, and
tunables types.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class BandConfig:
    """The decision-band knobs, in the tunables' units.

    ``low_util``/``high_util`` are percentages (0..100); priorities are
    hardware-priority integers.  ``step`` selects the one-level-at-a-
    time mode (``hpcsched/prio_step_mode == "step"``) instead of
    jumping straight to the band target.
    """

    low_util: float
    high_util: float
    min_prio: int
    max_prio: int
    step: bool = False


def band_target(
    util_pct: float, current: int, cfg: BandConfig
) -> Optional[int]:
    """Apply the LOW/HIGH utilization bands to ``util_pct``.

    Returns the new priority, or ``None`` when the utilization sits in
    the hysteresis gap and the current priority should be held:

    * ``util_pct >= high_util`` — the consumer computes almost all the
      time; give it more resources (target ``max_prio``);
    * ``util_pct <= low_util`` — it mostly waits; it can afford to run
      slower (target ``min_prio``);
    * in between — leave the priority alone (prevents oscillation).
    """
    if util_pct >= cfg.high_util:
        target = cfg.max_prio
    elif util_pct <= cfg.low_util:
        target = cfg.min_prio
    else:
        return None

    if cfg.step and target != current:
        return current + (1 if target > current else -1)
    return target


def adaptive_mix(g: float, l: float, prev_global: float, last: float) -> float:
    """The paper's recency-weighted blend ``G*Ug(i-1) + L*Ul(i)``."""
    return g * prev_global + l * last


def global_before_last(
    history: Sequence[float], last: Optional[float]
) -> float:
    """``Ug(i-1)``: global utilization excluding the just-closed
    iteration.

    Reconstructed from the utilization history as a duration-unweighted
    mean of everything but the newest sample; with no older history it
    falls back to the last utilization (or 0 before any iteration).
    """
    if len(history) <= 1:
        return last if last is not None else 0.0
    older = history[:-1]
    return sum(older) / len(older)
