"""The architecture-dependent mechanism layer (paper §IV-C).

The scheduling policy and the heuristics are architecture-neutral; only
the functions that read and program the hardware thread priority touch
the processor.  :class:`POWER5Mechanism` drives the simulated POWER5's
per-context priority (at supervisor privilege, so the full [1, 6] range
of Table II is reachable); :class:`NullMechanism` is the fallback for
processors without software-controlled prioritization — HPCSched still
delivers its scheduling-latency benefits there, it just cannot balance.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.power5.priorities import (
    PrivilegeLevel,
    PriorityError,
    can_set_priority,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core_sched import Kernel
    from repro.kernel.task import Task


class PriorityMechanism(ABC):
    """Reads/writes a task's hardware thread priority."""

    #: Whether the mechanism can actually bias resources.
    effective: bool = True

    @abstractmethod
    def apply(self, kernel: "Kernel", task: "Task", priority: int) -> None:
        """Program ``priority`` for ``task`` (now if running, otherwise
        at its next context switch)."""

    def read(self, task: "Task") -> int:
        """Current hardware priority associated with ``task``."""
        return task.hw_priority


class POWER5Mechanism(PriorityMechanism):
    """Issues the (simulated) ``or X,X,X`` priority nops at supervisor
    privilege, exactly like the in-kernel HPCSched would."""

    privilege = PrivilegeLevel.SUPERVISOR

    def apply(self, kernel: "Kernel", task: "Task", priority: int) -> None:
        if not can_set_priority(priority, self.privilege):
            raise PriorityError(
                f"HPCSched (supervisor) cannot set priority {priority}"
            )
        kernel.set_hw_priority(task, priority, privilege=self.privilege)


class NullMechanism(PriorityMechanism):
    """No hardware prioritization available: priorities are recorded on
    the task descriptor but have no performance effect."""

    effective = False

    def apply(self, kernel: "Kernel", task: "Task", priority: int) -> None:
        # Record only; never touch the context, never change rates.
        task.hw_priority = int(priority)
