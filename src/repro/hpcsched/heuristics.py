"""Priority-selection heuristics (paper §IV-B).

Both paper heuristics map a utilization figure to a hardware-priority
target inside ``[MIN_PRIO, MAX_PRIO]`` (default [4, 6], so the in-core
priority difference never exceeds the ±2 the authors' ISCA'08
characterization recommends):

* utilization >= ``HIGH_UTIL``  ->  the task computes almost all the
  time; give it more core resources (target ``MAX_PRIO``);
* utilization <= ``LOW_UTIL``   ->  the task mostly waits; it can afford
  to run slower (target ``MIN_PRIO``);
* in between                    ->  leave the priority alone (hysteresis
  band that prevents oscillation).

*Uniform* applies the bands to the task's **global** utilization — slow
but steady, right for constant applications.  *Adaptive* applies them to
``U = G*Ug(i-1) + L*Ul(i)`` (default G=0.1, L=0.9), reacting within an
iteration or two but liable to over-react to OS noise (paper §V-A).

Once the Load Imbalance Detector reports the application balanced, both
heuristics hold their priorities and only resume adjusting when the
behaviour changes — the "stable state" of paper §IV-B.

:class:`StaticPriorities` reproduces the authors' earlier IPDPS'08
baseline: fixed, hand-tuned priorities applied once at start.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, Optional

from repro.hpcsched.bands import (
    BandConfig,
    adaptive_mix,
    band_target,
    global_before_last,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.hpcsched.detector import HPCTaskStats, LoadImbalanceDetector
    from repro.kernel.task import Task


class Heuristic(ABC):
    """Decides a task's hardware priority for its next iteration."""

    name: str = "abstract"

    @abstractmethod
    def decide(
        self,
        detector: "LoadImbalanceDetector",
        task: "Task",
        stats: "HPCTaskStats",
    ) -> Optional[int]:
        """Return the new hardware priority, or None to keep the current
        one.  Called at each iteration boundary of ``task``."""

    # ------------------------------------------------------------------
    # Shared plumbing
    # ------------------------------------------------------------------
    def _target_from_util(
        self,
        detector: "LoadImbalanceDetector",
        task: "Task",
        util_pct: float,
    ) -> Optional[int]:
        """Apply the LOW/HIGH utilization bands to ``util_pct``.

        The band arithmetic itself lives in :mod:`repro.hpcsched.bands`
        (shared with the service-layer fair-share balancer); this
        method only supplies the detector's tunable cache — refreshed
        on every tunables.set — and the task's current priority.
        """
        return band_target(
            util_pct,
            current=detector.mechanism.read(task),
            cfg=BandConfig(
                low_util=detector._low_util,
                high_util=detector._high_util,
                min_prio=detector._min_prio,
                max_prio=detector._max_prio,
                step=detector._prio_step_mode == "step",
            ),
        )


class UniformHeuristic(Heuristic):
    """Global-utilization bands: right for constant applications."""

    name = "uniform"

    def decide(self, detector, task, stats) -> Optional[int]:
        return self._target_from_util(detector, task, stats.global_util * 100.0)


class AdaptiveHeuristic(Heuristic):
    """Recency-weighted utilization ``G*Ug(i-1) + L*Ul(i)``.

    ``Ug(i-1)`` is the global utilization *up to the previous
    iteration*, i.e. excluding the one that just closed, matching the
    paper's formula.
    """

    name = "adaptive"

    def decide(self, detector, task, stats) -> Optional[int]:
        last = stats.last_util if stats.last_util is not None else 0.0
        util = adaptive_mix(
            detector._adaptive_g,
            detector._adaptive_l,
            self._global_before_last(stats),
            last,
        )
        return self._target_from_util(detector, task, util * 100.0)

    @staticmethod
    def _global_before_last(stats: "HPCTaskStats") -> float:
        """``Ug(i-1)`` reconstructed from the stats' history (see
        :func:`repro.hpcsched.bands.global_before_last`)."""
        if stats.iterations <= 1:
            return stats.last_util if stats.last_util is not None else 0.0
        return global_before_last(stats.history, stats.last_util)


class HybridHeuristic(Heuristic):
    """The paper's future-work ask (§VI): one heuristic for both
    constant and dynamic applications.

    Strategy: distinguish *level shifts* (real behaviour changes) from
    *noise* (one-off blips) using sample agreement:

    * the two newest utilizations **agree** (within ``volatility``):
      that is a consistent signal — trust their mean, reacting as fast
      as Adaptive whether the application is constant or just changed;
    * they **disagree**: the newest sample may be noise — decide on the
      window median instead, so a single noisy iteration (OS noise, a
      stray message burst) cannot flip the priority.  This is exactly
      Adaptive's over-reaction failure mode on MetBench (paper
      Fig. 3d), which Hybrid avoids at the cost of confirming real
      changes one iteration later.

    Tunables: ``window`` (samples for the damped median) and
    ``volatility`` (utilization agreement threshold, 0..1).
    """

    name = "hybrid"

    def __init__(self, window: int = 4, volatility: float = 0.15) -> None:
        if window < 2:
            raise ValueError("window must be >= 2")
        self.window = window
        self.volatility = volatility

    def decide(self, detector, task, stats) -> Optional[int]:
        recent = stats.history[-self.window:]
        if not recent:
            return None
        if len(recent) == 1:
            util = recent[0]
        elif abs(recent[-1] - recent[-2]) <= self.volatility:
            util = (recent[-1] + recent[-2]) / 2.0  # consistent signal
        else:
            util = sorted(recent)[len(recent) // 2]  # damped median
        return self._target_from_util(detector, task, util * 100.0)


class StaticPriorities(Heuristic):
    """The IPDPS'08 static baseline: hand-tuned priorities by task name,
    applied at the first iteration boundary and never changed."""

    name = "static"

    def __init__(self, priorities: Dict[str, int]) -> None:
        self.priorities = dict(priorities)

    def decide(self, detector, task, stats) -> Optional[int]:
        want = self.priorities.get(task.name)
        if want is None:
            return None
        return want
