"""The HPC scheduling class and SCHED_HPC policy (paper §IV-A).

Inserted between the real-time and the CFS class, so HPC tasks always
beat normal tasks to the CPU (that ordering alone is the source of the
scheduler-latency gains of §V-D) while FIFO/RR semantics are preserved.

Queueing is deliberately simple: with the expected one-HPC-task-per-CPU
workload a round-robin list matches a red-black tree, and the paper
found FIFO and RR indistinguishable; both are implemented and selected
with the ``hpcsched/policy_mode`` tunable.

The class also feeds the Load Imbalance Detector: blocking on an MPI
wait starts a wait phase, waking from one closes an iteration.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional

from repro.hpcsched.detector import LoadImbalanceDetector
from repro.hpcsched.heuristics import Heuristic, UniformHeuristic
from repro.hpcsched.mechanism import PriorityMechanism
from repro.kernel.policies import HPC_POLICIES
from repro.kernel.sched_class import SchedClass

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core_sched import Kernel
    from repro.kernel.runqueue import RunQueue
    from repro.kernel.task import Task


class HPCQueue:
    """Per-CPU FIFO/RR list of runnable HPC tasks."""

    __slots__ = ("tasks",)

    def __init__(self) -> None:
        self.tasks: Deque["Task"] = deque()


class HPCSchedClass(SchedClass):
    """The new scheduling class for SCHED_HPC tasks."""

    name = "hpc"
    policies = HPC_POLICIES

    def __init__(
        self,
        kernel: "Kernel",
        heuristic: Optional[Heuristic] = None,
        mechanism: Optional[PriorityMechanism] = None,
    ) -> None:
        super().__init__(kernel)
        self.detector = LoadImbalanceDetector(
            kernel, heuristic or UniformHeuristic(), mechanism
        )
        kernel.tunables.subscribe(self._refresh_tunable_cache)

    def _refresh_tunable_cache(self) -> None:
        """Cache the per-pick/per-tick knobs of the HPC class."""
        get = self.kernel.tunables.get
        self._rr = get("hpcsched/policy_mode") == "rr"
        self._rr_timeslice = get("hpcsched/rr_timeslice")
        self._tick_period = get("kernel/tick_period")

    # ------------------------------------------------------------------
    # Queueing discipline
    # ------------------------------------------------------------------
    def create_queue(self) -> HPCQueue:
        return HPCQueue()

    def enqueue_task(self, rq: "RunQueue", task: "Task") -> None:
        rq.queue_for(self).tasks.append(task)

    def dequeue_task(self, rq: "RunQueue", task: "Task") -> None:
        try:
            rq.queue_for(self).tasks.remove(task)
        except ValueError:
            raise ValueError(f"{task!r} not queued in HPC class") from None

    def pick_next_task(self, rq: "RunQueue") -> Optional["Task"]:
        q = rq.class_queues.get(self.name)
        if q is None or not q.tasks:
            return None
        task = q.tasks.popleft()
        if self._rr and task.rr_slice_left <= 0.0:
            task.rr_slice_left = self._rr_timeslice
        return task

    def nr_queued(self, rq: "RunQueue") -> int:
        q = rq.class_queues.get(self.name)
        return 0 if q is None else len(q.tasks)

    # ------------------------------------------------------------------
    # Tick / preemption
    # ------------------------------------------------------------------
    def task_tick(self, rq: "RunQueue", task: "Task") -> None:
        if not self._rr:
            return  # FIFO: the selected task runs until it yields/blocks
        task.rr_slice_left -= self._tick_period
        if task.rr_slice_left > 0.0:
            return
        task.rr_slice_left = self._rr_timeslice
        if self.nr_queued(rq) > 0:
            self.kernel.resched(rq.cpu)

    def check_preempt(self, rq: "RunQueue", woken: "Task") -> bool:
        # No wakeup preemption inside the class: a woken HPC task waits
        # for the running HPC task's turn (round-robin fairness).  The
        # class *order* already handles preemption of CFS tasks.
        return False

    def needs_tick(self, rq: "RunQueue", task: "Task") -> bool:
        if not self._rr:
            return False
        q = rq.class_queues.get(self.name)
        return q is not None and len(q.tasks) > 0

    def pull_candidates(self, rq: "RunQueue") -> List["Task"]:
        # Back of the round-robin list first: least disruption.
        return list(rq.queue_for(self).tasks)[::-1]

    # ------------------------------------------------------------------
    # Detector integration
    # ------------------------------------------------------------------
    def task_new(self, rq: "RunQueue", task: "Task") -> None:
        self.detector.task_added(task)

    def task_exit(self, rq: "RunQueue", task: "Task") -> None:
        self.detector.task_removed(task)

    def on_block(self, rq: "RunQueue", task: "Task", reason: str, is_wait: bool) -> None:
        # The wait phase begins; nothing to compute until the wakeup.
        pass

    def on_wakeup(self, task: "Task") -> None:
        if task.sleeping_on_wait:
            self.detector.on_wait_wakeup(task)

    def _rr_mode(self) -> bool:
        return self._rr


def attach_hpcsched(
    kernel: "Kernel",
    heuristic: Optional[Heuristic] = None,
    mechanism: Optional[PriorityMechanism] = None,
) -> HPCSchedClass:
    """Register the HPC class on ``kernel`` between RT and CFS
    (paper Fig. 1b) and return it."""
    cls = HPCSchedClass(kernel, heuristic, mechanism)
    kernel.register_class(cls, before="fair")
    return cls
