"""Performance benchmark harness (``repro bench``).

Measures the repository's own simulation cost — raw event throughput of
the discrete-event engine plus the wall cost of the paper experiments —
and records the results in schema-versioned ``BENCH_<label>.json`` files
so the perf trajectory is tracked alongside the code.  See
:mod:`repro.bench.harness` for the measurement methodology and
:mod:`repro.bench.scenarios` for the workloads.
"""

from repro.bench.harness import (
    SCHEMA_VERSION,
    BenchReport,
    compare_reports,
    find_baseline,
    load_report,
    run_suite,
    write_report,
)
from repro.bench.scenarios import event_storm_chain, event_storm_deep

__all__ = [
    "SCHEMA_VERSION",
    "BenchReport",
    "compare_reports",
    "event_storm_chain",
    "event_storm_deep",
    "find_baseline",
    "load_report",
    "run_suite",
    "write_report",
]
