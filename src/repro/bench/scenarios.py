"""Benchmark workloads for the engine and the experiment stack.

Two synthetic event storms bracket the engine's behaviour:

* :func:`event_storm_chain` — a single self-rescheduling chain.  The
  heap never holds more than one event, so the measurement isolates the
  per-event fixed cost of the run loop (pop, clock update, callback
  dispatch, push).
* :func:`event_storm_deep` — many concurrent chains with staggered
  periods.  The heap stays hundreds of events deep, which is what real
  kernel queues look like (ticks, phase completions, balance timers and
  reschedules across every CPU), so ``Event.__lt__`` and heap sifting
  dominate.

Two cluster-scale scenarios exercise the scale-out path on top of the
full stack (paper §VI: "modern Supercomputers consist of thousands of
nodes"):

* :func:`event_storm_wide` — a synchronization storm across a 64-node
  cluster: 256 pinned ranks iterating tiny compute+barrier cycles, 4096
  compute-phase chains in total.  Per delivered event the engine pays
  the cluster stop predicate and every context switch pays the sibling
  rate-propagation path, so this measures exactly the per-event and
  per-rate-change overhead that scale-out amplifies.
* :func:`cluster_metbench` — the paper's MetBench load ladder placed on
  N nodes under *both* block and gang placement (the PR's
  ``cluster_metbench_16`` / ``cluster_metbench_64`` benchmarks), with
  one HPCSched per node.  End-to-end cluster throughput, balance timers
  and all.

The service-layer scenarios (:func:`serve_throughput`,
:func:`serve_throughput_warm`) measure ``repro.serve`` end to end —
admission, journal, fair-share dispatch, worker execution — in jobs
completed rather than simulator events: their ``events_per_sec`` reads
as jobs/sec.

All scenarios are deterministic: same arguments, same event count.
"""

from __future__ import annotations

from repro.simcore.engine import Simulator

#: Default number of events per storm; identical in quick and full bench
#: modes so throughput numbers stay comparable across reports.
DEFAULT_STORM_EVENTS = 200_000

#: Concurrent chains of the deep storm (heap depth while running).
DEFAULT_STORM_CHAINS = 512

#: Total compute-phase chains of the wide (cluster) storm:
#: ranks x iterations.
DEFAULT_WIDE_CHAINS = 4096

#: Nodes of the wide storm's cluster (4 logical CPUs each).
DEFAULT_WIDE_NODES = 64

#: Side-channel from the sharded scenarios to the bench harness: the
#: last sharded run's coordination stats (``sync_rounds``,
#: ``wire_bytes``, ``workers``), accumulated across the strategies a
#: scenario runs.  Scenario functions return event counts (the
#: throughput metric); the harness drains this via
#: :func:`consume_sharded_stats` into the record's ``meta`` so bench
#: JSON can attribute parallel wins without changing the comparable
#: params/metric surface.
LAST_SHARDED_STATS = None


def _record_sharded_stats(results) -> None:
    global LAST_SHARDED_STATS
    LAST_SHARDED_STATS = {
        "sync_rounds": sum(r.sync_rounds for r in results),
        "wire_bytes": sum(r.wire_bytes for r in results),
        "workers": results[0].workers if results else "inline",
    }


def consume_sharded_stats():
    """Return and clear the stats of the last sharded scenario run."""
    global LAST_SHARDED_STATS
    stats, LAST_SHARDED_STATS = LAST_SHARDED_STATS, None
    return stats


def event_storm_chain(n: int = DEFAULT_STORM_EVENTS) -> int:
    """Single self-rescheduling chain; returns events processed."""
    sim = Simulator()

    def chain(i: int = 0) -> None:
        if i < n:
            sim.after(1e-6, lambda: chain(i + 1))

    chain()
    sim.run()
    return sim.events_processed


def event_storm_deep(
    n: int = DEFAULT_STORM_EVENTS, chains: int = DEFAULT_STORM_CHAINS
) -> int:
    """``chains`` concurrent self-rescheduling chains with staggered
    periods; returns events processed (``chains * (n // chains)``)."""
    sim = Simulator()
    per_chain = n // chains

    def hop(c: int, i: int) -> None:
        if i < per_chain:
            # Staggered periods keep the chains out of lockstep so heap
            # order actually has to be maintained.
            sim.after(1e-6 * ((c % 7) + 1), lambda: hop(c, i + 1))

    for c in range(chains):
        hop(c, 0)
    sim.run()
    return sim.events_processed


#: Compute+sleep cycles of each timer-storm task.
DEFAULT_TIMER_ITERATIONS = 25


def event_storm_timers(
    iterations: int = DEFAULT_TIMER_ITERATIONS, fastforward: bool = True
) -> int:
    """Timer-dominated storm; returns events processed.

    A ``full_ticks`` kernel with one pinned task per CPU, each
    computing briefly then sleeping half a simulated second: during the
    sleeps nearly every event in the stock run is a tick or balance
    timer firing against an idle CPU — exactly the
    predetermined-outcome events :mod:`repro.simcore.fastforward`
    elides.  Benched twice (``fastforward`` on and off) so the report
    carries the elision speedup as a same-host wall-time pair.
    """
    from repro.kernel import Compute, Kernel, Sleep
    from repro.power5.machine import Machine, MachineTopology
    from repro.power5.perfmodel import TableDrivenModel

    machine = Machine(MachineTopology(), TableDrivenModel())
    kernel = Kernel(machine=machine, fastforward=fastforward)
    kernel.tunables.set("kernel/full_ticks", True)

    def prog():
        for _ in range(iterations):
            yield Compute(2e-4)
            yield Sleep(0.512)

    for cpu in kernel.machine.cpu_ids:
        kernel.spawn(f"pulse{cpu}", prog(), cpu=cpu, cpus_allowed=[cpu])
    kernel.run()
    return kernel.sim.events_processed


def event_storm_wide(
    chains: int = DEFAULT_WIDE_CHAINS, n_nodes: int = DEFAULT_WIDE_NODES
) -> int:
    """Cluster-wide synchronization storm; returns events processed.

    One pinned rank per logical CPU of an ``n_nodes``-node cluster
    (4 CPUs per node), each iterating a near-zero compute phase plus a
    global barrier until ``chains`` compute-phase chains have run
    (``chains // ranks`` iterations).  Loads are staggered by a
    microsecond per rank so phase completions stay distinct and the
    heap keeps thousands of concurrent chains (phases, wakeups,
    reschedules, balance timers) in flight.  No HPCSched: the storm
    isolates kernel + engine scale-out cost from heuristic cost.
    """
    from repro.cluster.cluster import Cluster
    from repro.cluster.gang import block_placement
    from repro.mpi.process import MPIRank

    cluster = Cluster(n_nodes=n_nodes, heuristic_factory=None)
    cpn = cluster.cpus_per_node
    ranks = n_nodes * cpn
    iterations = max(1, chains // ranks)

    def worker(load: float):
        def factory(mpi: MPIRank):
            def prog():
                for _ in range(iterations):
                    yield mpi.compute(load)
                    yield mpi.barrier()

            return prog()

        return factory

    programs = [worker(4e-4 + r * 1e-6) for r in range(ranks)]
    cluster.launch(programs, block_placement(ranks, n_nodes, cpn))
    cluster.run()
    return cluster.sim.events_processed


def cluster_metbench(n_nodes: int = 16, iterations: int = 2) -> int:
    """The paper's MetBench ladder on ``n_nodes`` nodes, run under both
    block and gang placement with one HPCSched per node; returns the
    total events processed across both runs."""
    from repro.cluster.experiment import ladder_loads, run_cluster

    loads = ladder_loads(4 * n_nodes)
    total = 0
    for strategy in ("block", "gang"):
        result = run_cluster(
            strategy, loads=loads, iterations=iterations, n_nodes=n_nodes
        )
        total += result.events
    return total


def cluster_metbench_sharded(
    n_nodes: int = 64,
    iterations: int = 2,
    shards: int = 8,
    workers: str = "inline",
) -> int:
    """The sharded-PDES twin of :func:`cluster_metbench`: the same
    block+gang workload pair partitioned over ``shards`` simulators
    (:mod:`repro.cluster.sharded`).  Per-rank completion times are
    bit-identical to the serial run's, so the wall-time ratio against
    ``cluster_metbench`` with the same parameters is a pure measure of
    the sharded runner's event elision (and, with process workers on a
    multi-core host, of parallel execution)."""
    from repro.cluster.experiment import ladder_loads, run_cluster_sharded

    loads = ladder_loads(4 * n_nodes)
    total = 0
    results = []
    for strategy in ("block", "gang"):
        result = run_cluster_sharded(
            strategy,
            loads=loads,
            iterations=iterations,
            n_nodes=n_nodes,
            shards=shards,
            workers=workers,
        )
        results.append(result)
        total += result.events
    _record_sharded_stats(results)
    return total


def event_storm_wide_sharded(
    chains: int = DEFAULT_WIDE_CHAINS,
    n_nodes: int = DEFAULT_WIDE_NODES,
    shards: int = 8,
    workers: str = "inline",
) -> int:
    """The sharded twin of :func:`event_storm_wide`: the identical
    synchronization storm partitioned over ``shards`` simulators;
    returns events processed across all shards."""
    from repro.cluster.gang import block_placement
    from repro.cluster.sharded import run_sharded
    from repro.mpi.process import MPIRank
    from repro.power5.machine import MachineTopology

    cpn = MachineTopology().n_cpus
    ranks = n_nodes * cpn
    iterations = max(1, chains // ranks)

    def worker(load: float):
        def factory(mpi: MPIRank):
            def prog():
                for _ in range(iterations):
                    yield mpi.compute(load)
                    yield mpi.barrier()

            return prog()

        return factory

    programs = [worker(4e-4 + r * 1e-6) for r in range(ranks)]
    result = run_sharded(
        n_nodes=n_nodes,
        programs=programs,
        placement=block_placement(ranks, n_nodes, cpn),
        heuristic_factory=None,
        shards=shards,
        workers=workers,
    )
    _record_sharded_stats([result])
    return result.events


# ----------------------------------------------------------------------
# Synthetic-generator scenarios (repro.workloads.synth)
# ----------------------------------------------------------------------

#: Rank count of the synth scenarios: the 16-chip machine (64 logical
#: CPUs) the convergence goldens also use.
DEFAULT_SYNTH_RANKS = 64


def synth_scatter(
    ranks: int = DEFAULT_SYNTH_RANKS,
    imbalance: float = 2.0,
    iterations: int = 5,
) -> int:
    """A 64-rank :class:`~repro.workloads.synth.SyntheticScatter` run
    under the Adaptive heuristic; returns events processed.

    Exercises the full single-kernel stack at one-rank-per-CPU scale:
    detector iteration closes, heuristic decisions and POWER5 rate
    recomputes across 16 chips, with the exact-imbalance generator
    providing a deterministic non-trivial load distribution.
    """
    from repro.experiments.common import run_experiment
    from repro.workloads.synth import SyntheticScatter

    workload = SyntheticScatter(
        imbalance=imbalance, ranks=ranks, iterations=iterations
    )
    result = run_experiment(
        workload, "adaptive", topology=workload.topology(), keep_trace=True
    )
    assert result.kernel is not None
    return result.kernel.sim.events_processed


def synth_convergence(
    ranks: int = DEFAULT_SYNTH_RANKS, iterations: int = 12
) -> int:
    """The step-change convergence probe (with reversal) under the
    Adaptive heuristic; returns events processed.

    The detector thaws and rebalances twice per run, so this measures
    the behaviour-change path — history resets, re-adjustment rounds,
    freeze — that the steady-state scenarios never touch.
    """
    from repro.experiments.common import run_experiment
    from repro.workloads.synth import SyntheticConvergence

    workload = SyntheticConvergence(
        ranks=ranks, iterations=iterations, revert_at=(3 * iterations) // 4
    )
    result = run_experiment(
        workload, "adaptive", topology=workload.topology(), keep_trace=True
    )
    assert result.kernel is not None
    return result.kernel.sim.events_processed


# ----------------------------------------------------------------------
# Service-layer scenarios (repro.serve)
# ----------------------------------------------------------------------

#: Jobs per service throughput pass; well inside the default admission
#: bounds so no submission is ever rejected mid-bench.
DEFAULT_SERVE_JOBS = 32


def _serve_pass(root: str, tenant: str, jobs: int, workers: int) -> int:
    """One full service pass: boot, submit ``jobs`` runs, drain, stop.

    Returns the number of completed jobs (the harness's "events", so
    the recorded throughput is jobs/sec).  Thread workers keep the
    measurement about the service overhead — admission, journal writes,
    fair-share dispatch — not process fork cost.
    """
    import asyncio

    from repro.campaign.spec import RunSpec
    from repro.serve.service import CampaignService
    from repro.serve.state import ServeConfig

    async def scenario() -> int:
        service = CampaignService(
            ServeConfig(
                root=root,
                port=0,
                workers=workers,
                worker_mode="thread",
                manual_clock=True,
                epoch_interval=None,
            )
        )
        await service.start()
        specs = [
            (RunSpec(experiment="table1", seed=s), "") for s in range(jobs)
        ]
        accepted, rejection = service.submit(tenant, specs)
        if rejection is not None or len(accepted) != jobs:
            raise RuntimeError("bench submission was rejected")
        if not await service.drain(timeout=600.0):
            raise RuntimeError("bench drain timed out")
        await service.stop()
        return len(accepted)

    return asyncio.run(scenario())


def serve_throughput(
    jobs: int = DEFAULT_SERVE_JOBS, workers: int = 1
) -> int:
    """Cold-cache service throughput on a fresh root."""
    import tempfile

    with tempfile.TemporaryDirectory(prefix="bench-serve-") as root:
        return _serve_pass(root, "bench", jobs, workers)


def serve_throughput_warm(
    jobs: int = DEFAULT_SERVE_JOBS, workers: int = 1
):
    """Factory for the warm-cache pass: returns the measurable callable.

    The cold fill happens here, outside the measurement; each call of
    the returned function submits the identical matrix as a fresh
    tenant, so every job completes from the shared content-addressed
    cache with zero executions — the pure service-overhead floor.
    """
    import atexit
    import itertools
    import shutil
    import tempfile

    root = tempfile.mkdtemp(prefix="bench-serve-warm-")
    atexit.register(shutil.rmtree, root, ignore_errors=True)
    _serve_pass(root, "seed", jobs, workers)
    counter = itertools.count(1)

    def run() -> int:
        return _serve_pass(root, f"warm{next(counter)}", jobs, workers)

    return run
