"""Benchmark workloads for the engine and the experiment stack.

Two synthetic event storms bracket the engine's behaviour:

* :func:`event_storm_chain` — a single self-rescheduling chain.  The
  heap never holds more than one event, so the measurement isolates the
  per-event fixed cost of the run loop (pop, clock update, callback
  dispatch, push).
* :func:`event_storm_deep` — many concurrent chains with staggered
  periods.  The heap stays hundreds of events deep, which is what real
  kernel queues look like (ticks, phase completions, balance timers and
  reschedules across every CPU), so ``Event.__lt__`` and heap sifting
  dominate.

Both are deterministic: same arguments, same event count.
"""

from __future__ import annotations

from repro.simcore.engine import Simulator

#: Default number of events per storm; identical in quick and full bench
#: modes so throughput numbers stay comparable across reports.
DEFAULT_STORM_EVENTS = 200_000

#: Concurrent chains of the deep storm (heap depth while running).
DEFAULT_STORM_CHAINS = 512


def event_storm_chain(n: int = DEFAULT_STORM_EVENTS) -> int:
    """Single self-rescheduling chain; returns events processed."""
    sim = Simulator()

    def chain(i: int = 0) -> None:
        if i < n:
            sim.after(1e-6, lambda: chain(i + 1))

    chain()
    sim.run()
    return sim.events_processed


def event_storm_deep(
    n: int = DEFAULT_STORM_EVENTS, chains: int = DEFAULT_STORM_CHAINS
) -> int:
    """``chains`` concurrent self-rescheduling chains with staggered
    periods; returns events processed (``chains * (n // chains)``)."""
    sim = Simulator()
    per_chain = n // chains

    def hop(c: int, i: int) -> None:
        if i < per_chain:
            # Staggered periods keep the chains out of lockstep so heap
            # order actually has to be maintained.
            sim.after(1e-6 * ((c % 7) + 1), lambda: hop(c, i + 1))

    for c in range(chains):
        hop(c, 0)
    sim.run()
    return sim.events_processed
