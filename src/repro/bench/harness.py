"""Measurement harness behind ``repro bench``.

A bench run executes a fixed suite of workloads — the synthetic event
storms from :mod:`repro.bench.scenarios` plus the paper's MetBench
experiment under several schedulers — and records, per benchmark, the
best wall time over ``rounds`` repetitions, the number of simulation
events processed, and the derived events/sec throughput.  The whole
report (plus the process peak RSS) is written to a schema-versioned
``BENCH_<label>.json`` so successive runs can be diffed.

Methodology notes:

* **Best-of-N wall time, median-diffed.**  Shared machines are noisy;
  the minimum over N rounds is the least-contended observation, but a
  single lucky round can flatter it, so each record also carries the
  *median* wall time and the coefficient of variation across rounds,
  and :func:`compare_reports` prefers the median ruler whenever both
  reports provide it (falling back to best-of-N against pre-schema-2
  baselines).  ``gc.collect()`` runs between rounds so collector debt
  from one round is not billed to the next.
* **Unmeasured profiled pass.**  ``--profile`` runs one *extra* pass of
  each benchmark with an :class:`repro.simcore.profile.EventProfiler`
  active and attaches the per-event-type cost table to the record.  The
  profiled pass is never timed: the observer overhead (two
  ``perf_counter`` calls per event) must not pollute the wall numbers.
* **Identical storm sizes in quick and full mode.**  ``--quick`` only
  trims the experiment suite and the round count, never the storm event
  counts, so throughput numbers stay comparable across modes.
* **Parameter-checked comparisons.**  Every benchmark records its
  parameters; :func:`compare_reports` only diffs entries whose name
  *and* parameters match, so a quick report diffed against a full
  baseline silently skips the non-comparable experiment entries instead
  of producing nonsense ratios.
"""

from __future__ import annotations

import gc
import json
import platform
import statistics
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.scenarios import (
    DEFAULT_SERVE_JOBS,
    DEFAULT_STORM_CHAINS,
    DEFAULT_STORM_EVENTS,
    DEFAULT_TIMER_ITERATIONS,
    DEFAULT_WIDE_CHAINS,
    DEFAULT_WIDE_NODES,
    DEFAULT_SYNTH_RANKS,
    cluster_metbench,
    cluster_metbench_sharded,
    consume_sharded_stats,
    event_storm_chain,
    event_storm_deep,
    event_storm_timers,
    event_storm_wide,
    event_storm_wide_sharded,
    serve_throughput,
    serve_throughput_warm,
    synth_convergence,
    synth_scatter,
)

#: Bump on any incompatible change to the report layout.  (Additive
#: fields — ``jobs``, ``host_cpus``, the sharded scenarios — do not
#: bump it: old reports stay loadable and diffable.)  Schema 2 added
#: the round statistics (``wall_median_s``, ``wall_cv``,
#: ``events_per_sec_median``) and the optional ``profile`` table; v1
#: reports remain loadable (see :data:`SUPPORTED_SCHEMAS`) and diffs
#: against them fall back to the best-of-N ruler.
SCHEMA_VERSION = 2

#: Schemas :func:`load_report` accepts.
SUPPORTED_SCHEMAS = frozenset({1, 2})

#: Default regression threshold: fail when a benchmark's events/sec
#: drops more than this fraction below the baseline.
DEFAULT_THRESHOLD = 0.20

#: Shard/worker configuration of the sharded cluster scenarios.
DEFAULT_SHARDS = 8
DEFAULT_SHARD_WORKERS = "inline"

#: Every benchmark name the suite can produce, for --scenario filter
#: validation.  Experiment entries are per-scheduler.
SCENARIO_NAMES = (
    "event_storm_chain",
    "event_storm_deep",
    "event_storm_timers",
    "event_storm_timers_stock",
    "event_storm_wide",
    "event_storm_wide_sharded",
    "event_storm_wide_sharded_proc",
    "metbench_cfs",
    "metbench_uniform",
    "metbench_adaptive",
    "cluster_metbench_16",
    "cluster_metbench_64",
    "cluster_metbench_64_sharded",
    "cluster_metbench_64_sharded_proc",
    "synth_scatter_64",
    "synth_convergence_64",
    "serve_throughput_1w",
    "serve_throughput_4w",
    "serve_throughput_warm",
)

#: Sharded scenarios that accept an explicit shard count — the targets
#: of ``repro bench --shards-sweep``.  ``*_proc`` twins force the
#: process (wire-protocol) transport regardless of host CPU count.
SWEEPABLE_SCENARIOS = (
    "event_storm_wide_sharded",
    "event_storm_wide_sharded_proc",
    "cluster_metbench_64_sharded",
    "cluster_metbench_64_sharded_proc",
)


@dataclass
class BenchRecord:
    """One benchmark's measurement."""

    name: str
    wall_s: float  # best wall time over all rounds
    events: int  # simulation events processed in one round
    events_per_sec: float
    rounds: int
    params: Dict[str, object] = field(default_factory=dict)
    #: Median wall time over the rounds (the diff ruler since schema 2).
    wall_median_s: float = 0.0
    #: Coefficient of variation (stdev/mean) of the round wall times —
    #: a noise gauge for the host; 0.0 for single-round entries.
    wall_cv: float = 0.0
    events_per_sec_median: float = 0.0
    #: Per-event-type cost table from the unmeasured ``--profile`` pass
    #: (type → {count, total_us, mean_us}); absent without --profile.
    profile: Optional[Dict[str, object]] = None
    #: Attribution metadata that is *not* part of the comparable surface
    #: (``compare_reports`` keys on name+params only): the sharded
    #: scenarios record ``sync_rounds``/``wire_bytes``/``workers`` here.
    meta: Optional[Dict[str, object]] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form of this record."""
        out: Dict[str, object] = {
            "name": self.name,
            "wall_s": self.wall_s,
            "events": self.events,
            "events_per_sec": self.events_per_sec,
            "rounds": self.rounds,
            "params": self.params,
            "wall_median_s": self.wall_median_s,
            "wall_cv": self.wall_cv,
            "events_per_sec_median": self.events_per_sec_median,
        }
        if self.profile is not None:
            out["profile"] = self.profile
        if self.meta is not None:
            out["meta"] = self.meta
        return out


def host_cpu_count() -> int:
    """Logical CPUs available to this process (affinity-aware)."""
    try:
        import os

        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux
        import os

        return os.cpu_count() or 1


def host_fingerprint() -> Dict[str, object]:
    """Identity of the measuring host: cpu count, kernel release, python.

    Wall times only mean something against a baseline from the *same*
    fingerprint — PR 6's report showed uniform 0.80–0.95× "regressions"
    on untouched pure-engine scenarios that were really a host/kernel
    change.  :func:`compare_reports` downgrades cross-fingerprint
    regressions to warnings.
    """
    return {
        "cpus": host_cpu_count(),
        "kernel": platform.release(),
        "python": sys.version.split()[0],
    }


def _kernel_from_platform(text: str) -> str:
    """Extract the kernel release from a ``platform.platform()`` string
    (legacy reports recorded only that).  ``Linux-6.18.5-fc-v20-x86_64-
    with-glibc2.36`` → ``6.18.5-fc-v20``; unparseable strings are
    returned whole (they still compare stably against themselves)."""
    if "-" not in text:
        return text
    body = text.split("-", 1)[1]
    for marker in ("-x86_64", "-aarch64", "-arm64", "-i686", "-with"):
        idx = body.find(marker)
        if idx != -1:
            return body[:idx]
    return body


def fingerprint_of(report: Dict[str, object]) -> Dict[str, object]:
    """The host fingerprint of a loaded report dict.  Reports written
    before the explicit ``fingerprint`` field existed derive one from
    the legacy ``host_cpus``/``platform``/``python`` metadata, so a new
    report still matches an old baseline measured on the same host."""
    fp = report.get("fingerprint")
    if isinstance(fp, dict):
        return fp
    return {
        "cpus": report.get("host_cpus"),
        "kernel": _kernel_from_platform(str(report.get("platform", ""))),
        "python": report.get("python"),
    }


def fingerprints_match(
    current: Dict[str, object], baseline: Dict[str, object]
) -> bool:
    """Whether two reports were measured on the same host fingerprint.

    A report with no host metadata at all (neither the explicit
    ``fingerprint`` nor the legacy fields) gets the benefit of the
    doubt: it is assumed same-host so the regression gate stays strict
    rather than silently downgrading every diff against it."""
    cur_fp, base_fp = fingerprint_of(current), fingerprint_of(baseline)

    def blank(fp: Dict[str, object]) -> bool:
        return fp.get("cpus") is None and fp.get("python") is None and not fp.get("kernel")

    if blank(cur_fp) or blank(base_fp):
        return True
    return cur_fp == base_fp


@dataclass
class BenchReport:
    """A full bench run: metadata plus one record per benchmark."""

    label: str
    quick: bool
    records: Dict[str, BenchRecord] = field(default_factory=dict)
    peak_rss_kb: Optional[int] = None
    created: Optional[str] = None
    vs_baseline: Dict[str, object] = field(default_factory=dict)
    #: Benchmark processes run concurrently (``repro bench --jobs``).
    #: Recorded because parallel rounds contend for CPU: wall times from
    #: a jobs>1 report are not comparable to a serial one.
    jobs: int = 1
    #: Logical CPUs the measuring host exposed; same caveat.
    host_cpus: int = field(default_factory=host_cpu_count)
    #: Per-shard-count scaling rows from ``--shards-sweep``:
    #: scenario → [{shards, wall_s, events_per_sec, sync_rounds,
    #: wire_bytes, workers}, ...] so future PRs can track parallel
    #: efficiency, not just single-point wall time.
    scaling: Dict[str, List[Dict[str, object]]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form: schema header, metadata, benchmark table."""
        out: Dict[str, object] = {
            "schema": SCHEMA_VERSION,
            "label": self.label,
            "quick": self.quick,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "peak_rss_kb": self.peak_rss_kb,
            "jobs": self.jobs,
            "host_cpus": self.host_cpus,
            "fingerprint": {**host_fingerprint(), "cpus": self.host_cpus},
            "benchmarks": {n: r.to_dict() for n, r in self.records.items()},
        }
        if self.created:
            out["created"] = self.created
        if self.vs_baseline:
            out["vs_baseline"] = self.vs_baseline
        if self.scaling:
            out["scaling"] = self.scaling
        return out


def _measure(
    fn: Callable[[], int], rounds: int
) -> Tuple[float, float, float, int]:
    """(best, median, cv, events) of the wall times over ``rounds``."""
    times: List[float] = []
    events = 0
    for _ in range(max(1, rounds)):
        gc.collect()
        t0 = time.perf_counter()
        events = fn()
        times.append(time.perf_counter() - t0)
    best = min(times)
    median = statistics.median(times)
    if len(times) > 1:
        mean = sum(times) / len(times)
        cv = statistics.stdev(times) / mean if mean > 0 else 0.0
    else:
        cv = 0.0
    return best, median, cv, events


def _profile_pass(fn: Callable[[], int]) -> Dict[str, object]:
    """One extra, unmeasured run of ``fn`` with the event profiler
    active; returns the per-event-type cost table."""
    from repro.simcore.profile import activate_profiler, deactivate_profiler

    profiler = activate_profiler()
    try:
        fn()
    finally:
        deactivate_profiler()
    return profiler.snapshot()


def _record(
    name: str,
    fn: Callable[[], int],
    rounds: int,
    params: Dict[str, object],
    profiled: bool = False,
) -> BenchRecord:
    wall, median, cv, events = _measure(fn, rounds)
    eps = events / wall if wall > 0 else 0.0
    eps_median = events / median if median > 0 else 0.0
    return BenchRecord(
        name=name,
        wall_s=round(wall, 6),
        events=events,
        events_per_sec=round(eps, 1),
        rounds=rounds,
        params=params,
        wall_median_s=round(median, 6),
        wall_cv=round(cv, 4),
        events_per_sec_median=round(eps_median, 1),
        profile=_profile_pass(fn) if profiled else None,
    )


def _peak_rss_kb() -> Optional[int]:
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    if sys.platform == "darwin":
        rss //= 1024
    return int(rss)


def _entry_spec(
    name: str, quick: bool, storm_events: int
) -> Tuple[Callable[[], int], Dict[str, object]]:
    """The workload callable and parameter dict of one benchmark.

    Module-level (rather than closures inside :func:`run_suite`) so a
    ``--jobs`` worker process can rebuild the callable from the picklable
    ``(name, quick, storm_events)`` triple.
    """
    if name == "event_storm_chain":
        return lambda: event_storm_chain(storm_events), {"events": storm_events}
    if name == "event_storm_deep":
        return (
            lambda: event_storm_deep(storm_events, DEFAULT_STORM_CHAINS),
            {"events": storm_events, "chains": DEFAULT_STORM_CHAINS},
        )
    if name.startswith("event_storm_timers"):
        # Twin entries: same workload with the fast-forward engine on
        # (default) and off, so one report carries the elision speedup
        # as a same-host wall-time pair.
        ff = not name.endswith("_stock")
        return (
            lambda: event_storm_timers(
                DEFAULT_TIMER_ITERATIONS, fastforward=ff
            ),
            {"iterations": DEFAULT_TIMER_ITERATIONS, "fastforward": ff},
        )
    if name.startswith("metbench_"):
        sched = name[len("metbench_"):]
        iters: Optional[int] = 8 if quick else None

        def run_exp() -> int:
            from repro.experiments import metbench

            result = metbench.run_one(sched, iterations=iters, keep_trace=True)
            assert result.kernel is not None
            return result.kernel.sim.events_processed

        return run_exp, {"scheduler": sched, "iterations": iters}
    if name == "event_storm_wide":
        return (
            lambda: event_storm_wide(DEFAULT_WIDE_CHAINS, DEFAULT_WIDE_NODES),
            {"chains": DEFAULT_WIDE_CHAINS, "nodes": DEFAULT_WIDE_NODES},
        )
    if "_sharded" in name:
        return _sharded_spec(name, DEFAULT_SHARDS)
    if name.startswith("cluster_metbench_"):
        nodes = int(name[len("cluster_metbench_"):])
        return (
            lambda: cluster_metbench(n_nodes=nodes, iterations=2),
            {"nodes": nodes, "iterations": 2, "placements": "block+gang"},
        )
    if name == "synth_scatter_64":
        return (
            lambda: synth_scatter(DEFAULT_SYNTH_RANKS, 2.0, 5),
            {
                "ranks": DEFAULT_SYNTH_RANKS,
                "imbalance": 2.0,
                "iterations": 5,
                "scheduler": "adaptive",
            },
        )
    if name == "synth_convergence_64":
        return (
            lambda: synth_convergence(DEFAULT_SYNTH_RANKS, 12),
            {
                "ranks": DEFAULT_SYNTH_RANKS,
                "iterations": 12,
                "scheduler": "adaptive",
            },
        )
    if name.startswith("serve_throughput"):
        if name == "serve_throughput_warm":
            # The factory does the cold cache fill here, outside the
            # measured rounds; the returned callable is all-cache-hit.
            return (
                serve_throughput_warm(DEFAULT_SERVE_JOBS, workers=1),
                {"jobs": DEFAULT_SERVE_JOBS, "workers": 1, "cache": "warm"},
            )
        workers = int(name[len("serve_throughput_"):-1])
        return (
            lambda: serve_throughput(DEFAULT_SERVE_JOBS, workers=workers),
            {"jobs": DEFAULT_SERVE_JOBS, "workers": workers, "cache": "cold"},
        )
    raise ValueError(f"unknown benchmark {name!r}")


def _sharded_spec(
    name: str, shards: int
) -> Tuple[Callable[[], int], Dict[str, object]]:
    """Callable + params of a sharded scenario at an explicit shard
    count.  The ``_proc`` suffix forces ``workers="process"`` (the
    wire-protocol transport) even on 1-CPU hosts; the base names use
    :data:`DEFAULT_SHARD_WORKERS`."""
    workers = DEFAULT_SHARD_WORKERS
    base = name
    if name.endswith("_proc"):
        workers = "process"
        base = name[: -len("_proc")]
    if base == "event_storm_wide_sharded":
        return (
            lambda: event_storm_wide_sharded(
                DEFAULT_WIDE_CHAINS,
                DEFAULT_WIDE_NODES,
                shards=shards,
                workers=workers,
            ),
            {
                "chains": DEFAULT_WIDE_CHAINS,
                "nodes": DEFAULT_WIDE_NODES,
                "shards": shards,
                "workers": workers,
            },
        )
    if base.startswith("cluster_metbench_") and base.endswith("_sharded"):
        nodes = int(base[len("cluster_metbench_"): -len("_sharded")])
        return (
            lambda: cluster_metbench_sharded(
                n_nodes=nodes,
                iterations=2,
                shards=shards,
                workers=workers,
            ),
            {
                "nodes": nodes,
                "iterations": 2,
                "placements": "block+gang",
                "shards": shards,
                "workers": workers,
            },
        )
    raise ValueError(f"unknown sharded benchmark {name!r}")


def _exec_entry(
    name: str,
    rounds: int,
    quick: bool,
    storm_events: int,
    profiled: bool = False,
) -> Dict[str, object]:
    """Measure one named benchmark; returns the record as a plain dict
    (this runs inside a worker process under ``--jobs``)."""
    fn, params = _entry_spec(name, quick, storm_events)
    consume_sharded_stats()  # clear any stale stats before measuring
    rec = _record(name, fn, rounds, params, profiled=profiled)
    rec.meta = consume_sharded_stats()
    return rec.to_dict()


def _plan(
    quick: bool, rounds: int, scenarios: Optional[Sequence[str]]
) -> List[Tuple[str, int]]:
    """The ordered ``(name, rounds)`` schedule of one suite run.

    Storms use the full round count; experiment entries use 1 (quick) or
    2 rounds; cluster and service scenarios cap at 2 rounds.  Quick mode trims the
    experiment suite to ``metbench_uniform`` exactly as before.  Cluster
    scenario parameters are identical in quick and full mode, so their
    numbers stay comparable across modes.
    """

    def wanted(name: str) -> bool:
        return scenarios is None or name in scenarios

    exp_names = ["metbench_uniform"] if quick else [
        "metbench_cfs", "metbench_uniform", "metbench_adaptive"
    ]
    exp_rounds = 1 if quick else 2
    cluster_rounds = min(rounds, 2)
    plan: List[Tuple[str, int]] = []
    for name in (
        "event_storm_chain",
        "event_storm_deep",
        "event_storm_timers",
        "event_storm_timers_stock",
    ):
        if wanted(name):
            plan.append((name, rounds))
    for name in exp_names:
        if wanted(name):
            plan.append((name, exp_rounds))
    for name in (
        "event_storm_wide",
        "event_storm_wide_sharded",
        "event_storm_wide_sharded_proc",
        "cluster_metbench_16",
        "cluster_metbench_64",
        "cluster_metbench_64_sharded",
        "cluster_metbench_64_sharded_proc",
        "synth_scatter_64",
        "synth_convergence_64",
    ):
        if wanted(name):
            plan.append((name, cluster_rounds))
    for name in (
        "serve_throughput_1w",
        "serve_throughput_4w",
        "serve_throughput_warm",
    ):
        if wanted(name):
            plan.append((name, cluster_rounds))
    return plan


def _progress_line(rec: BenchRecord) -> str:
    if rec.name.startswith("event_storm_") and "wide" not in rec.name:
        return (
            f"{rec.name}: {rec.events_per_sec:,.0f} events/s "
            f"({rec.wall_s * 1e3:.1f} ms best of {rec.rounds})"
        )
    return (
        f"{rec.name}: {rec.wall_s * 1e3:.1f} ms, "
        f"{rec.events} events ({rec.events_per_sec:,.0f} events/s)"
    )


def run_shards_sweep(
    shard_counts: Sequence[int],
    scenarios: Optional[Sequence[str]] = None,
    quick: bool = False,
    label: str = "local",
    rounds: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> BenchReport:
    """``repro bench --shards-sweep``: run each selected sharded scenario
    at every shard count in ``shard_counts`` and emit a per-shard-count
    scaling table.

    Records are named ``<scenario>@s<k>`` (with ``shards`` in params, so
    sweeps with different counts never get cross-compared) and the
    report's ``scaling`` section aggregates ``(shards, wall_s,
    events_per_sec, sync_rounds, wire_bytes)`` rows per scenario — the
    parallel-efficiency curve future PRs diff, not just a single wall
    time.  ``scenarios`` defaults to every sweepable scenario; non-sweep
    scenarios in the filter are rejected.
    """
    if not shard_counts:
        raise ValueError("--shards-sweep needs at least one shard count")
    if any(k < 1 for k in shard_counts):
        raise ValueError(f"shard counts must be >= 1, got {list(shard_counts)}")
    if scenarios is None:
        targets = list(SWEEPABLE_SCENARIOS)
    else:
        bad = sorted(set(scenarios) - set(SWEEPABLE_SCENARIOS))
        if bad:
            raise ValueError(
                f"--shards-sweep only applies to sharded scenarios "
                f"({', '.join(SWEEPABLE_SCENARIOS)}); got {', '.join(bad)}"
            )
        targets = list(scenarios)
    n_rounds = min(rounds if rounds is not None else (3 if quick else 5), 2)
    say = progress or (lambda _msg: None)
    report = BenchReport(label=label, quick=quick)
    for name in targets:
        rows: List[Dict[str, object]] = []
        for k in shard_counts:
            fn, params = _sharded_spec(name, k)
            consume_sharded_stats()
            rec = _record(f"{name}@s{k}", fn, n_rounds, params)
            rec.meta = consume_sharded_stats()
            report.records[rec.name] = rec
            say(_progress_line(rec))
            stats = rec.meta or {}
            rows.append(
                {
                    "shards": k,
                    "wall_s": rec.wall_s,
                    "wall_median_s": rec.wall_median_s,
                    "events_per_sec": rec.events_per_sec,
                    "sync_rounds": stats.get("sync_rounds", 0),
                    "wire_bytes": stats.get("wire_bytes", 0),
                    "workers": stats.get("workers", "inline"),
                }
            )
        report.scaling[name] = rows
    report.peak_rss_kb = _peak_rss_kb()
    return report


def run_suite(
    quick: bool = False,
    label: str = "local",
    rounds: Optional[int] = None,
    storm_events: int = DEFAULT_STORM_EVENTS,
    progress: Optional[Callable[[str], None]] = None,
    scenarios: Optional[Sequence[str]] = None,
    jobs: int = 1,
    profiled: bool = False,
) -> BenchReport:
    """Run the bench suite (or a subset) and return the report.

    ``rounds`` defaults to 3 in quick mode and 5 otherwise;
    ``storm_events`` is exposed for the unit tests (tiny storms) and is
    recorded in each storm's ``params`` so mismatched-size reports never
    get compared.  ``scenarios`` restricts the run to the named
    benchmarks (see :data:`SCENARIO_NAMES`).  ``progress`` receives one
    line per benchmark.

    ``jobs`` > 1 farms *distinct* benchmarks out to that many worker
    processes.  Each benchmark still runs its rounds sequentially inside
    one worker (a benchmark is never split), but concurrent benchmarks
    contend for CPU, so the resulting wall times are only comparable to
    other reports measured with the same ``jobs`` on the same host —
    both are recorded in the report and :func:`context_warnings` flags
    diffs across mismatched configurations.

    ``profiled`` adds one unmeasured pass per benchmark with the event
    profiler active and attaches the per-event-type cost table to each
    record (``repro bench --profile``).
    """
    if rounds is None:
        rounds = 3 if quick else 5
    if scenarios is not None:
        unknown = sorted(set(scenarios) - set(SCENARIO_NAMES))
        if unknown:
            raise ValueError(
                f"unknown scenario(s) {', '.join(unknown)}; "
                f"choose from {', '.join(SCENARIO_NAMES)}"
            )
    say = progress or (lambda _msg: None)
    jobs = max(1, jobs)
    report = BenchReport(label=label, quick=quick, jobs=jobs)
    plan = _plan(quick, rounds, scenarios)

    if jobs > 1 and len(plan) > 1:
        from concurrent.futures import ProcessPoolExecutor, as_completed

        done: Dict[str, BenchRecord] = {}
        with ProcessPoolExecutor(max_workers=min(jobs, len(plan))) as pool:
            futures = {
                pool.submit(
                    _exec_entry, name, n_rounds, quick, storm_events, profiled
                ): name
                for name, n_rounds in plan
            }
            for fut in as_completed(futures):
                rec = BenchRecord(**fut.result())  # type: ignore[arg-type]
                done[rec.name] = rec
                say(_progress_line(rec))
        for name, _ in plan:  # report order follows the plan, not finish
            report.records[name] = done[name]
    else:
        for name, n_rounds in plan:
            rec = BenchRecord(**_exec_entry(name, n_rounds, quick, storm_events, profiled))  # type: ignore[arg-type]
            report.records[name] = rec
            say(_progress_line(rec))

    report.peak_rss_kb = _peak_rss_kb()
    return report


# ----------------------------------------------------------------------
# Report I/O and comparison
# ----------------------------------------------------------------------
class BenchFormatError(ValueError):
    """A BENCH_*.json file does not match the expected schema."""


def write_report(report: BenchReport, path: Path) -> None:
    """Serialize ``report`` to ``path`` (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n")


def load_report(path: Path) -> Dict[str, object]:
    """Load and validate a report dict (raw JSON form)."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or "schema" not in data:
        raise BenchFormatError(f"{path}: not a bench report")
    if data["schema"] not in SUPPORTED_SCHEMAS:
        raise BenchFormatError(
            f"{path}: schema {data['schema']} not in supported "
            f"{sorted(SUPPORTED_SCHEMAS)}"
        )
    if not isinstance(data.get("benchmarks"), dict):
        raise BenchFormatError(f"{path}: missing benchmarks table")
    return data


def find_baseline(directory: Path, exclude: Optional[Path] = None) -> Optional[Path]:
    """The most recently modified ``BENCH_*.json`` in ``directory``,
    skipping ``exclude`` (the file about to be written)."""
    directory = Path(directory)
    candidates = [
        p
        for p in sorted(directory.glob("BENCH_*.json"))
        if exclude is None or p.resolve() != Path(exclude).resolve()
    ]
    if not candidates:
        return None
    return max(candidates, key=lambda p: p.stat().st_mtime)


def context_warnings(
    current: Dict[str, object], baseline: Dict[str, object]
) -> List[str]:
    """Human-readable warnings when two reports were measured under
    different conditions (``--jobs`` parallelism or host CPU count):
    their wall times contend differently for CPU, so throughput ratios
    between them are not trustworthy.  Reports written before these
    fields existed default to the serial single-host assumption
    (``jobs=1``), which never warns against an equally-old baseline."""
    warnings: List[str] = []
    cur_jobs = int(current.get("jobs", 1) or 1)
    base_jobs = int(baseline.get("jobs", 1) or 1)
    if cur_jobs != base_jobs:
        warnings.append(
            f"bench --jobs mismatch: current report measured with "
            f"jobs={cur_jobs}, baseline with jobs={base_jobs}; parallel "
            f"benchmarks contend for CPU, so ratios are unreliable"
        )
    cur_cpus = current.get("host_cpus")
    base_cpus = baseline.get("host_cpus")
    if cur_cpus is not None and base_cpus is not None and cur_cpus != base_cpus:
        warnings.append(
            f"host CPU count mismatch: current host has {cur_cpus}, "
            f"baseline had {base_cpus}; wall times are not comparable "
            f"across hosts"
        )
    if not fingerprints_match(current, baseline):
        cur_fp, base_fp = fingerprint_of(current), fingerprint_of(baseline)
        warnings.append(
            f"host fingerprint mismatch: current {cur_fp} vs baseline "
            f"{base_fp}; regressions are downgraded to warnings (wall "
            f"times across hosts/kernels/pythons are not comparable)"
        )
    return warnings


def compare_reports(
    current: Dict[str, object],
    baseline: Dict[str, object],
    threshold: float = DEFAULT_THRESHOLD,
    same_host: Optional[bool] = None,
) -> List[Dict[str, object]]:
    """Diff two report dicts.

    Returns one row per benchmark present in both reports *with matching
    parameters*: ``{name, current, baseline, ratio, basis, regressed,
    cross_host}`` where ``ratio`` > 1 means the current report is faster
    and ``regressed`` flags a drop of more than ``threshold``.

    Two rules keep the ratios honest:

    * **Basis.**  Normally the ratio is current/baseline events-per-sec,
      computed from the *median*-round numbers when both reports carry
      them (schema 2) and from the best-of-N numbers otherwise — a
      single lucky round flatters the minimum, so the median is the
      fairer ruler whenever it is available on both sides.  When the
      same workload processed a *different number of events* (the
      fast-forward engine elides inert timers, so event counts
      legitimately change across engine versions), throughput is the
      wrong ruler — eliding 90% of the events "loses" 90% of the
      numerator — and the row falls back to the wall-time ratio
      (baseline/current, same orientation).  ``basis`` records which
      ruler was used (``events_per_sec[_median]`` or
      ``wall_s``/``wall_median_s``).
    * **Cross-host downgrade.**  When the reports' host fingerprints
      differ (``same_host`` defaults to :func:`fingerprints_match`),
      a drop beyond the threshold sets ``cross_host`` instead of
      ``regressed`` — a kernel/python/cpu change moves wall times by
      tens of percent on its own, so the gate must not fail CI on it.
    """
    rows: List[Dict[str, object]] = []
    cur_benches = current["benchmarks"]
    base_benches = baseline["benchmarks"]
    assert isinstance(cur_benches, dict) and isinstance(base_benches, dict)
    if same_host is None:
        same_host = fingerprints_match(current, baseline)
    for name in sorted(cur_benches):
        if name not in base_benches:
            continue
        cur, base = cur_benches[name], base_benches[name]
        if cur.get("params") != base.get("params"):
            continue  # not comparable (different sizes/iterations)
        cur_events, base_events = cur.get("events"), base.get("events")

        def pick(field_median: str, field_best: str) -> Tuple[str, float, float]:
            # Median ruler only when BOTH reports carry it (a v1
            # baseline has no medians; comparing its best against a
            # median would bias the ratio).
            cm = float(cur.get(field_median, 0.0) or 0.0)
            bm = float(base.get(field_median, 0.0) or 0.0)
            if cm > 0 and bm > 0:
                return field_median, cm, bm
            return field_best, float(cur.get(field_best, 0.0) or 0.0), float(
                base.get(field_best, 0.0) or 0.0
            )

        if (
            cur_events is not None
            and base_events is not None
            and cur_events != base_events
        ):
            basis, cur_val, base_val = pick("wall_median_s", "wall_s")
            if cur_val <= 0 or base_val <= 0:
                continue
            ratio = base_val / cur_val
        else:
            basis, cur_val, base_val = pick(
                "events_per_sec_median", "events_per_sec"
            )
            if base_val <= 0:
                continue
            ratio = cur_val / base_val
        slow = ratio < 1.0 - threshold
        rows.append(
            {
                "name": name,
                "current": cur_val,
                "baseline": base_val,
                "ratio": round(ratio, 4),
                "basis": basis,
                "regressed": slow and same_host,
                "cross_host": slow and not same_host,
            }
        )
    return rows
