"""Measurement harness behind ``repro bench``.

A bench run executes a fixed suite of workloads — the synthetic event
storms from :mod:`repro.bench.scenarios` plus the paper's MetBench
experiment under several schedulers — and records, per benchmark, the
best wall time over ``rounds`` repetitions, the number of simulation
events processed, and the derived events/sec throughput.  The whole
report (plus the process peak RSS) is written to a schema-versioned
``BENCH_<label>.json`` so successive runs can be diffed.

Methodology notes:

* **Best-of-N wall time.**  Shared machines are noisy; the minimum over
  N rounds is the least-contended observation and the most stable
  statistic for regression detection.  ``gc.collect()`` runs between
  rounds so collector debt from one round is not billed to the next.
* **Identical storm sizes in quick and full mode.**  ``--quick`` only
  trims the experiment suite and the round count, never the storm event
  counts, so throughput numbers stay comparable across modes.
* **Parameter-checked comparisons.**  Every benchmark records its
  parameters; :func:`compare_reports` only diffs entries whose name
  *and* parameters match, so a quick report diffed against a full
  baseline silently skips the non-comparable experiment entries instead
  of producing nonsense ratios.
"""

from __future__ import annotations

import gc
import json
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.scenarios import (
    DEFAULT_STORM_CHAINS,
    DEFAULT_STORM_EVENTS,
    DEFAULT_WIDE_CHAINS,
    DEFAULT_WIDE_NODES,
    cluster_metbench,
    event_storm_chain,
    event_storm_deep,
    event_storm_wide,
)

#: Bump on any incompatible change to the report layout.
SCHEMA_VERSION = 1

#: Default regression threshold: fail when a benchmark's events/sec
#: drops more than this fraction below the baseline.
DEFAULT_THRESHOLD = 0.20

#: Every benchmark name the suite can produce, for --scenario filter
#: validation.  Experiment entries are per-scheduler.
SCENARIO_NAMES = (
    "event_storm_chain",
    "event_storm_deep",
    "event_storm_wide",
    "metbench_cfs",
    "metbench_uniform",
    "metbench_adaptive",
    "cluster_metbench_16",
    "cluster_metbench_64",
)


@dataclass
class BenchRecord:
    """One benchmark's measurement."""

    name: str
    wall_s: float  # best wall time over all rounds
    events: int  # simulation events processed in one round
    events_per_sec: float
    rounds: int
    params: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form of this record."""
        return {
            "name": self.name,
            "wall_s": self.wall_s,
            "events": self.events,
            "events_per_sec": self.events_per_sec,
            "rounds": self.rounds,
            "params": self.params,
        }


@dataclass
class BenchReport:
    """A full bench run: metadata plus one record per benchmark."""

    label: str
    quick: bool
    records: Dict[str, BenchRecord] = field(default_factory=dict)
    peak_rss_kb: Optional[int] = None
    created: Optional[str] = None
    vs_baseline: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form: schema header, metadata, benchmark table."""
        out: Dict[str, object] = {
            "schema": SCHEMA_VERSION,
            "label": self.label,
            "quick": self.quick,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "peak_rss_kb": self.peak_rss_kb,
            "benchmarks": {n: r.to_dict() for n, r in self.records.items()},
        }
        if self.created:
            out["created"] = self.created
        if self.vs_baseline:
            out["vs_baseline"] = self.vs_baseline
        return out


def _measure(fn: Callable[[], int], rounds: int) -> Tuple[float, int]:
    """Best wall time over ``rounds`` calls, plus the event count."""
    best = float("inf")
    events = 0
    for _ in range(max(1, rounds)):
        gc.collect()
        t0 = time.perf_counter()
        events = fn()
        dt = time.perf_counter() - t0
        if dt < best:
            best = dt
    return best, events


def _record(
    name: str,
    fn: Callable[[], int],
    rounds: int,
    params: Dict[str, object],
) -> BenchRecord:
    wall, events = _measure(fn, rounds)
    eps = events / wall if wall > 0 else 0.0
    return BenchRecord(
        name=name,
        wall_s=round(wall, 6),
        events=events,
        events_per_sec=round(eps, 1),
        rounds=rounds,
        params=params,
    )


def _peak_rss_kb() -> Optional[int]:
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    if sys.platform == "darwin":
        rss //= 1024
    return int(rss)


def run_suite(
    quick: bool = False,
    label: str = "local",
    rounds: Optional[int] = None,
    storm_events: int = DEFAULT_STORM_EVENTS,
    progress: Optional[Callable[[str], None]] = None,
    scenarios: Optional[Sequence[str]] = None,
) -> BenchReport:
    """Run the bench suite (or a subset) and return the report.

    ``rounds`` defaults to 3 in quick mode and 5 otherwise;
    ``storm_events`` is exposed for the unit tests (tiny storms) and is
    recorded in each storm's ``params`` so mismatched-size reports never
    get compared.  ``scenarios`` restricts the run to the named
    benchmarks (see :data:`SCENARIO_NAMES`); cluster scenarios keep
    identical parameters in quick and full mode, so their numbers stay
    comparable across modes.  ``progress`` receives one line per
    benchmark.
    """
    if rounds is None:
        rounds = 3 if quick else 5
    if scenarios is not None:
        unknown = sorted(set(scenarios) - set(SCENARIO_NAMES))
        if unknown:
            raise ValueError(
                f"unknown scenario(s) {', '.join(unknown)}; "
                f"choose from {', '.join(SCENARIO_NAMES)}"
            )
    say = progress or (lambda _msg: None)
    report = BenchReport(label=label, quick=quick)

    def wanted(name: str) -> bool:
        return scenarios is None or name in scenarios

    # ------------------------------------------------------------------
    # Engine storms: raw event throughput.
    # ------------------------------------------------------------------
    storms = [
        (
            "event_storm_chain",
            lambda: event_storm_chain(storm_events),
            {"events": storm_events},
        ),
        (
            "event_storm_deep",
            lambda: event_storm_deep(storm_events, DEFAULT_STORM_CHAINS),
            {"events": storm_events, "chains": DEFAULT_STORM_CHAINS},
        ),
    ]
    for name, fn, params in storms:
        if not wanted(name):
            continue
        rec = _record(name, fn, rounds, params)
        report.records[name] = rec
        say(
            f"{name}: {rec.events_per_sec:,.0f} events/s "
            f"({rec.wall_s * 1e3:.1f} ms best of {rounds})"
        )

    # ------------------------------------------------------------------
    # Paper suite: MetBench end-to-end (kernel + POWER5 model + HPCSched).
    # ------------------------------------------------------------------
    from repro.experiments import metbench

    if quick:
        exp_cases = [("uniform", 8)]
        exp_rounds = 1
    else:
        exp_cases = [("cfs", None), ("uniform", None), ("adaptive", None)]
        exp_rounds = 2

    for sched, iters in exp_cases:
        name = f"metbench_{sched}"
        if not wanted(name):
            continue
        holder: Dict[str, int] = {}

        def run_exp(sched: str = sched, iters: Optional[int] = iters) -> int:
            result = metbench.run_one(sched, iterations=iters, keep_trace=True)
            assert result.kernel is not None
            holder["events"] = result.kernel.sim.events_processed
            return holder["events"]

        rec = _record(
            name, run_exp, exp_rounds, {"scheduler": sched, "iterations": iters}
        )
        report.records[name] = rec
        say(
            f"{name}: {rec.wall_s * 1e3:.1f} ms, "
            f"{rec.events} events ({rec.events_per_sec:,.0f} events/s)"
        )

    # ------------------------------------------------------------------
    # Cluster scale-out: wide synchronization storm + gang experiment.
    # Parameters are identical in quick and full mode (only the round
    # count shrinks), so cluster numbers compare across modes.
    # ------------------------------------------------------------------
    cluster_rounds = min(rounds, 2)
    cluster_cases = [
        (
            "event_storm_wide",
            lambda: event_storm_wide(DEFAULT_WIDE_CHAINS, DEFAULT_WIDE_NODES),
            {"chains": DEFAULT_WIDE_CHAINS, "nodes": DEFAULT_WIDE_NODES},
        ),
        (
            "cluster_metbench_16",
            lambda: cluster_metbench(n_nodes=16, iterations=2),
            {"nodes": 16, "iterations": 2, "placements": "block+gang"},
        ),
        (
            "cluster_metbench_64",
            lambda: cluster_metbench(n_nodes=64, iterations=2),
            {"nodes": 64, "iterations": 2, "placements": "block+gang"},
        ),
    ]
    for name, fn, params in cluster_cases:
        if not wanted(name):
            continue
        rec = _record(name, fn, cluster_rounds, params)
        report.records[name] = rec
        say(
            f"{name}: {rec.wall_s * 1e3:.1f} ms, "
            f"{rec.events} events ({rec.events_per_sec:,.0f} events/s)"
        )

    report.peak_rss_kb = _peak_rss_kb()
    return report


# ----------------------------------------------------------------------
# Report I/O and comparison
# ----------------------------------------------------------------------
class BenchFormatError(ValueError):
    """A BENCH_*.json file does not match the expected schema."""


def write_report(report: BenchReport, path: Path) -> None:
    """Serialize ``report`` to ``path`` (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n")


def load_report(path: Path) -> Dict[str, object]:
    """Load and validate a report dict (raw JSON form)."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or "schema" not in data:
        raise BenchFormatError(f"{path}: not a bench report")
    if data["schema"] != SCHEMA_VERSION:
        raise BenchFormatError(
            f"{path}: schema {data['schema']} != supported {SCHEMA_VERSION}"
        )
    if not isinstance(data.get("benchmarks"), dict):
        raise BenchFormatError(f"{path}: missing benchmarks table")
    return data


def find_baseline(directory: Path, exclude: Optional[Path] = None) -> Optional[Path]:
    """The most recently modified ``BENCH_*.json`` in ``directory``,
    skipping ``exclude`` (the file about to be written)."""
    directory = Path(directory)
    candidates = [
        p
        for p in sorted(directory.glob("BENCH_*.json"))
        if exclude is None or p.resolve() != Path(exclude).resolve()
    ]
    if not candidates:
        return None
    return max(candidates, key=lambda p: p.stat().st_mtime)


def compare_reports(
    current: Dict[str, object],
    baseline: Dict[str, object],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[Dict[str, object]]:
    """Diff two report dicts on events/sec.

    Returns one row per benchmark present in both reports *with matching
    parameters*: ``{name, current, baseline, ratio, regressed}`` where
    ``ratio`` is current/baseline throughput and ``regressed`` flags a
    drop of more than ``threshold``.
    """
    rows: List[Dict[str, object]] = []
    cur_benches = current["benchmarks"]
    base_benches = baseline["benchmarks"]
    assert isinstance(cur_benches, dict) and isinstance(base_benches, dict)
    for name in sorted(cur_benches):
        if name not in base_benches:
            continue
        cur, base = cur_benches[name], base_benches[name]
        if cur.get("params") != base.get("params"):
            continue  # not comparable (different sizes/iterations)
        base_eps = float(base.get("events_per_sec", 0.0))
        cur_eps = float(cur.get("events_per_sec", 0.0))
        if base_eps <= 0:
            continue
        ratio = cur_eps / base_eps
        rows.append(
            {
                "name": name,
                "current": cur_eps,
                "baseline": base_eps,
                "ratio": round(ratio, 4),
                "regressed": ratio < 1.0 - threshold,
            }
        )
    return rows
