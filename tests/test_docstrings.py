"""Documentation quality gate: every public item carries a docstring.

Deliverable (e) of the reproduction: "doc comments on every public
item".  This test walks the package and enforces it mechanically.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "__main__" in info.name:
            continue
        yield importlib.import_module(info.name)


MODULES = list(_public_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


def _documented(obj) -> bool:
    """Docstring present, own or inherited from the interface it
    implements (``inspect.getdoc`` resolves the MRO)."""
    doc = inspect.getdoc(obj)
    return bool(doc and doc.strip())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export
        if not _documented(obj):
            undocumented.append(f"{module.__name__}.{name}")
        if inspect.isclass(obj):
            for mname in vars(obj):
                if mname.startswith("_"):
                    continue
                meth = getattr(obj, mname, None)
                if not inspect.isfunction(meth):
                    continue
                if not _documented(meth):
                    undocumented.append(
                        f"{module.__name__}.{name}.{mname}"
                    )
    assert not undocumented, f"missing docstrings: {undocumented}"
