"""isend/irecv/waitall semantics (the BT-MZ exchange pattern)."""

import pytest

from repro.mpi.process import MPIRank
from repro.mpi.runtime import MPIRuntime


def launch(kernel, factories):
    rt = MPIRuntime(kernel)
    tasks = []
    cpus = [0, 1, 2, 3]
    for rank, factory in enumerate(factories):
        mpi = MPIRank(rt, rank)
        task = kernel.create_task(f"r{rank}", cpus_allowed=[cpus[rank]])
        task.program = factory(mpi)
        rt.bind(rank, task)
        tasks.append((task, cpus[rank]))
    for task, cpu in tasks:
        kernel.start_task(task, cpu=cpu)
    return rt, [t for t, _ in tasks]


def test_neighbor_exchange_completes(quiet_kernel):
    done = []

    def make(rank, nbrs, work):
        def factory(mpi):
            def prog():
                for it in range(3):
                    recvs = [mpi.irecv(n, tag=it) for n in nbrs]
                    yield mpi.compute(work)
                    sends = [mpi.isend(n, tag=it) for n in nbrs]
                    yield mpi.waitall(recvs + sends)
                done.append(rank)

            return prog()

        return factory

    factories = [
        make(0, [1, 3], 0.01),
        make(1, [0, 2], 0.02),
        make(2, [1, 3], 0.03),
        make(3, [2, 0], 0.04),
    ]
    launch(quiet_kernel, factories)
    quiet_kernel.run()
    assert sorted(done) == [0, 1, 2, 3]


def test_waitall_with_completed_handles_still_blocks_for_isend(quiet_kernel):
    """Even the slowest rank blocks briefly: isends complete at
    delivery, not at post (rendezvous/ack semantics)."""
    waits = []

    def fast(mpi):
        def prog():
            recvs = [mpi.irecv(1, tag=0)]
            yield mpi.compute(0.001)
            sends = [mpi.isend(1, tag=0)]
            yield mpi.waitall(recvs + sends)

        return prog()

    def slow(mpi):
        def prog():
            recvs = [mpi.irecv(0, tag=0)]
            yield mpi.compute(0.05)  # partner's data long arrived
            t0 = quiet_kernel.now
            sends = [mpi.isend(0, tag=0)]
            yield mpi.waitall(recvs + sends)
            waits.append(quiet_kernel.now - t0)

        return prog()

    rt, _ = launch(quiet_kernel, [fast, slow])
    quiet_kernel.run()
    assert len(waits) == 1
    assert waits[0] >= rt.latency.base  # blocked at least one delivery


def test_irecv_completes_from_unexpected_queue(quiet_kernel):
    def sender(mpi):
        def prog():
            mpi.isend(1, tag=3)  # immediate call, no yield
            yield mpi.compute(0.001)

        return prog()

    def receiver(mpi):
        def prog():
            yield mpi.compute(0.05)  # message lands before irecv posted
            h = mpi.irecv(0, tag=3)
            assert h.complete  # matched immediately from the queue
            yield mpi.waitall([h])

        return prog()

    launch(quiet_kernel, [sender, receiver])
    end = quiet_kernel.run()
    assert end < 0.1


def test_waitall_partial_completion_blocks(quiet_kernel):
    stages = []

    def sender(mpi):
        def prog():
            mpi.isend(1, tag=0)
            yield mpi.compute(0.05)
            mpi.isend(1, tag=1)
            yield mpi.compute(0.001)

        return prog()

    def receiver(mpi):
        def prog():
            h0 = mpi.irecv(0, tag=0)
            h1 = mpi.irecv(0, tag=1)
            stages.append("waiting")
            yield mpi.waitall([h0, h1])
            stages.append("done")

        return prog()

    launch(quiet_kernel, [sender, receiver])
    quiet_kernel.run()
    assert stages == ["waiting", "done"]


def test_request_handle_repr_states(quiet_kernel):
    rt = MPIRuntime(quiet_kernel)
    rt.bind(0, quiet_kernel.create_task("a"))
    rt.bind(1, quiet_kernel.create_task("b"))
    h = rt.post_irecv(0, source=1, tag=0)
    assert not h.complete
    assert "pending" in repr(h)
