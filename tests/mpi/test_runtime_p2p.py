"""Point-to-point semantics through the full kernel+MPI stack."""

import pytest

from repro.kernel import Compute
from repro.mpi.comm import ANY_SOURCE, ANY_TAG
from repro.mpi.process import MPIRank
from repro.mpi.runtime import MPIRuntime


def launch_pair(kernel, prog0, prog1):
    """Bind two rank programs and start them pinned to cpus 0 and 2."""
    rt = MPIRuntime(kernel)
    tasks = []
    for rank, (factory, cpu) in enumerate(((prog0, 0), (prog1, 2))):
        mpi = MPIRank(rt, rank)
        task = kernel.create_task(f"r{rank}", cpus_allowed=[cpu])
        task.program = factory(mpi)
        rt.bind(rank, task)
        tasks.append((task, cpu))
    for task, cpu in tasks:
        kernel.start_task(task, cpu=cpu)
    return rt, [t for t, _ in tasks]


def test_send_recv_roundtrip(quiet_kernel):
    log = []

    def sender(mpi):
        def prog():
            yield mpi.compute(0.01)
            yield mpi.send(1, tag=5)
            log.append(("sent", quiet_kernel.now))

        return prog()

    def receiver(mpi):
        def prog():
            yield mpi.recv(0, tag=5)
            log.append(("recvd", quiet_kernel.now))

        return prog()

    rt, _ = launch_pair(quiet_kernel, sender, receiver)
    quiet_kernel.run()
    assert [k for k, _ in log] == ["sent", "recvd"]
    sent_t = log[0][1]
    recv_t = log[1][1]
    assert recv_t >= sent_t + rt.latency.base


def test_recv_before_send_blocks(quiet_kernel):
    order = []

    def sender(mpi):
        def prog():
            yield mpi.compute(0.05)
            order.append("computed")
            yield mpi.send(1)

        return prog()

    def receiver(mpi):
        def prog():
            yield mpi.recv(0)
            order.append("received")

        return prog()

    launch_pair(quiet_kernel, sender, receiver)
    quiet_kernel.run()
    assert order == ["computed", "received"]


def test_send_before_recv_queues_unexpected(quiet_kernel):
    def sender(mpi):
        def prog():
            yield mpi.send(1, tag=9)
            yield mpi.compute(0.01)

        return prog()

    def receiver(mpi):
        def prog():
            yield mpi.compute(0.05)  # message arrives while computing
            yield mpi.recv(0, tag=9)  # must complete instantly

        return prog()

    rt, tasks = launch_pair(quiet_kernel, sender, receiver)
    end = quiet_kernel.run()
    assert end < 0.1


def test_tag_matching_is_selective(quiet_kernel):
    got = []

    def sender(mpi):
        def prog():
            yield mpi.send(1, tag=1)
            yield mpi.send(1, tag=2)

        return prog()

    def receiver(mpi):
        def prog():
            yield mpi.recv(0, tag=2)
            got.append("tag2")
            yield mpi.recv(0, tag=1)
            got.append("tag1")

        return prog()

    launch_pair(quiet_kernel, sender, receiver)
    quiet_kernel.run()
    assert got == ["tag2", "tag1"]


def test_wildcard_recv(quiet_kernel):
    def sender(mpi):
        def prog():
            yield mpi.send(1, tag=42)

        return prog()

    def receiver(mpi):
        def prog():
            yield mpi.recv(ANY_SOURCE, ANY_TAG)

        return prog()

    launch_pair(quiet_kernel, sender, receiver)
    end = quiet_kernel.run()
    assert end < 0.01


def test_fifo_ordering_same_channel(quiet_kernel):
    """Messages on one (src, dst, tag) channel are received in order."""
    seen = []

    def sender(mpi):
        def prog():
            for i in range(5):
                yield mpi.send(1, tag=0, size=i)

        return prog()

    def receiver(mpi):
        def prog():
            for _ in range(5):
                yield mpi.recv(0, tag=0)
                st = mpi.runtime.state(1)
                seen.append(len(st.unexpected))

        return prog()

    launch_pair(quiet_kernel, sender, receiver)
    quiet_kernel.run()
    assert len(seen) == 5


def test_send_to_unknown_rank_rejected(quiet_kernel):
    rt = MPIRuntime(quiet_kernel)
    task = quiet_kernel.create_task("r0")
    rt.bind(0, task)
    with pytest.raises(ValueError):
        rt.post_send(0, 99, 0, 0)


def test_double_bind_rejected(quiet_kernel):
    rt = MPIRuntime(quiet_kernel)
    rt.bind(0, quiet_kernel.create_task("a"))
    with pytest.raises(ValueError):
        rt.bind(0, quiet_kernel.create_task("b"))


def test_message_counters(quiet_kernel):
    def sender(mpi):
        def prog():
            yield mpi.send(1)
            yield mpi.send(1)

        return prog()

    def receiver(mpi):
        def prog():
            yield mpi.recv(0)
            yield mpi.recv(0)

        return prog()

    rt, _ = launch_pair(quiet_kernel, sender, receiver)
    quiet_kernel.run()
    assert rt.messages_sent == 2
    assert rt.messages_delivered == 2


def test_latency_scales_with_size(quiet_kernel):
    times = {}

    def sender(mpi):
        def prog():
            yield mpi.send(1, tag=1, size=0)
            yield mpi.send(1, tag=2, size=10_000_000)

        return prog()

    def receiver(mpi):
        def prog():
            yield mpi.recv(0, tag=1)
            times["small"] = quiet_kernel.now
            yield mpi.recv(0, tag=2)
            times["big"] = quiet_kernel.now

        return prog()

    launch_pair(quiet_kernel, sender, receiver)
    quiet_kernel.run()
    assert times["big"] - times["small"] >= 0.009  # 10MB at 1GB/s
