"""Collective operations: barrier, bcast, reduce, allreduce."""

import pytest

from repro.mpi.comm import Communicator
from repro.mpi.process import MPIRank
from repro.mpi.runtime import MPIRuntime


def launch(kernel, factories, cpus=None):
    rt = MPIRuntime(kernel)
    cpus = cpus or list(range(len(factories)))
    tasks = []
    for rank, factory in enumerate(factories):
        mpi = MPIRank(rt, rank)
        task = kernel.create_task(f"r{rank}", cpus_allowed=[cpus[rank]])
        task.program = factory(mpi)
        rt.bind(rank, task)
        tasks.append((task, cpus[rank]))
    for task, cpu in tasks:
        kernel.start_task(task, cpu=cpu)
    return rt, [t for t, _ in tasks]


def barrier_prog(kernel, works, releases):
    def make(rank):
        def factory(mpi):
            def prog():
                yield mpi.compute(works[rank])
                yield mpi.barrier()
                releases.append((rank, kernel.now))

            return prog()

        return factory

    return make


def test_barrier_releases_together(quiet_kernel):
    releases = []
    works = [0.01, 0.05, 0.02, 0.03]
    make = barrier_prog(quiet_kernel, works, releases)
    launch(quiet_kernel, [make(r) for r in range(4)])
    quiet_kernel.run()
    assert len(releases) == 4
    times = [t for _, t in releases]
    assert max(times) - min(times) < 1e-9  # all released at one instant
    # and nobody left before the slowest rank arrived (0.05 units of
    # work, partly at SMT-equal speed, partly in ST mode)
    assert min(times) > 0.02


def test_every_rank_blocks_at_barrier_even_the_last(quiet_kernel):
    """The last arriver also sleeps (the detector's iteration source)."""
    releases = []
    works = [0.001, 0.05]
    make = barrier_prog(quiet_kernel, works, releases)
    rt, tasks = launch(quiet_kernel, [make(0), make(1)], cpus=[0, 2])
    quiet_kernel.run()
    # the slow rank's release is later than its own arrival
    assert releases[0][1] == releases[1][1]
    assert releases[0][1] > 0.05 / 2.1  # work at ST speed + tree delay


def test_repeated_barriers_form_rounds(quiet_kernel):
    count = 5
    hits = []

    def make(rank, work):
        def factory(mpi):
            def prog():
                for it in range(count):
                    yield mpi.compute(work)
                    yield mpi.barrier()
                    hits.append((it, rank))

            return prog()

        return factory

    launch(quiet_kernel, [make(0, 0.01), make(1, 0.03)], cpus=[0, 2])
    quiet_kernel.run()
    assert len(hits) == 2 * count
    # iterations strictly ordered: all of round i precede round i+1
    rounds = [it for it, _ in hits]
    assert rounds == sorted(rounds)


def test_sub_communicator_barrier_excludes_others(quiet_kernel):
    sub_released = []
    outsider_done = []

    def member(rank):
        def factory(mpi):
            def prog():
                sub = Communicator([0, 1], name="sub")
                yield mpi.compute(0.01)
                yield mpi.barrier(sub)
                sub_released.append(rank)

            return prog()

        return factory

    def outsider(mpi):
        def prog():
            yield mpi.compute(0.001)
            outsider_done.append(True)

        return prog()

    # NB: both members construct their own Communicator object — use one
    # shared instance instead, as real code would.
    shared = Communicator([0, 1], name="sub2")

    def member_shared(rank):
        def factory(mpi):
            def prog():
                yield mpi.compute(0.01)
                yield mpi.barrier(shared)
                sub_released.append(rank)

            return prog()

        return factory

    launch(
        quiet_kernel,
        [member_shared(0), member_shared(1), outsider],
        cpus=[0, 1, 2],
    )
    quiet_kernel.run()
    assert sorted(sub_released) == [0, 1]
    assert outsider_done == [True]


def test_barrier_rejects_non_member(quiet_kernel):
    rt = MPIRuntime(quiet_kernel)
    rt.bind(0, quiet_kernel.create_task("a"))
    comm = Communicator([1, 2])
    with pytest.raises(ValueError):
        rt.collective_arrive(comm, "barrier", 0)


@pytest.mark.parametrize("kind", ["bcast", "reduce", "allreduce"])
def test_other_collectives_synchronize(quiet_kernel, kind):
    done = []

    def make(rank, work):
        def factory(mpi):
            def prog():
                yield mpi.compute(work)
                yield getattr(mpi, kind)()
                done.append((rank, quiet_kernel.now))

            return prog()

        return factory

    launch(quiet_kernel, [make(0, 0.001), make(1, 0.02)], cpus=[0, 2])
    quiet_kernel.run()
    assert len(done) == 2
    t0, t1 = done[0][1], done[1][1]
    assert abs(t0 - t1) < 1e-9


def test_tree_delay_grows_with_size(quiet_kernel):
    rt = MPIRuntime(quiet_kernel)
    assert rt._tree_delay(2) < rt._tree_delay(16)


def test_collective_sleep_reason(quiet_kernel):
    from repro.mpi.process import CollectiveRequest

    rt = MPIRuntime(quiet_kernel)
    rt.bind(0, quiet_kernel.create_task("a"))
    req = CollectiveRequest(rt, Communicator([0]), "barrier", 0)
    assert req.sleep_reason == "mpi_barrier"
    assert req.is_wait
