"""Extended MPI API tests: wait, sendrecv, iprobe, extra collectives."""

import pytest

from repro.mpi.comm import ANY_SOURCE, ANY_TAG
from repro.mpi.process import MPIRank
from repro.mpi.runtime import MPIRuntime

from tests.mpi.test_collectives import launch


def test_wait_single_handle(quiet_kernel):
    got = []

    def sender(mpi):
        def prog():
            yield mpi.compute(0.02)
            mpi.isend(1, tag=0)
            yield mpi.compute(0.001)

        return prog()

    def receiver(mpi):
        def prog():
            h = mpi.irecv(0, tag=0)
            yield mpi.wait(h)
            got.append(h.complete)

        return prog()

    launch(quiet_kernel, [sender, receiver], cpus=[0, 2])
    quiet_kernel.run()
    assert got == [True]


def test_sendrecv_exchange_is_deadlock_free(quiet_kernel):
    """Both ranks sendrecv each other simultaneously — the classic
    pattern that deadlocks with naive blocking sends."""
    done = []

    def make(rank, peer):
        def factory(mpi):
            def prog():
                yield mpi.compute(0.01 * (rank + 1))
                yield mpi.sendrecv(peer, source=peer)
                done.append(rank)

            return prog()

        return factory

    launch(quiet_kernel, [make(0, 1), make(1, 0)], cpus=[0, 2])
    end = quiet_kernel.run()
    assert sorted(done) == [0, 1]
    assert end < 0.1


def test_iprobe_nonconsuming(quiet_kernel):
    observations = []

    def sender(mpi):
        def prog():
            mpi.isend(1, tag=9)
            yield mpi.compute(0.001)

        return prog()

    def receiver(mpi):
        def prog():
            yield mpi.compute(0.05)  # let the message land
            observations.append(mpi.iprobe(0, 9))
            observations.append(mpi.iprobe(0, 9))  # still there
            observations.append(mpi.iprobe(0, 99))  # wrong tag
            yield mpi.recv(0, tag=9)
            observations.append(mpi.iprobe(0, 9))  # consumed

        return prog()

    launch(quiet_kernel, [sender, receiver], cpus=[0, 2])
    quiet_kernel.run()
    assert observations == [True, True, False, False]


@pytest.mark.parametrize("kind", ["gather", "scatter", "alltoall"])
def test_extra_collectives_synchronize(quiet_kernel, kind):
    times = []

    def make(rank, work):
        def factory(mpi):
            def prog():
                yield mpi.compute(work)
                yield getattr(mpi, kind)()
                times.append(quiet_kernel.now)

            return prog()

        return factory

    launch(quiet_kernel, [make(0, 0.001), make(1, 0.03)], cpus=[0, 2])
    quiet_kernel.run()
    assert len(times) == 2
    assert abs(times[0] - times[1]) < 1e-9


def test_collectives_of_different_kinds_do_not_interfere(quiet_kernel):
    """A barrier and a gather in flight concurrently keep separate
    arrival counters."""
    order = []

    def a(mpi):
        def prog():
            yield mpi.barrier()
            order.append("a-barrier")
            yield mpi.gather()
            order.append("a-gather")

        return prog()

    def b(mpi):
        def prog():
            yield mpi.barrier()
            order.append("b-barrier")
            yield mpi.gather()
            order.append("b-gather")

        return prog()

    launch(quiet_kernel, [a, b], cpus=[0, 2])
    quiet_kernel.run()
    assert set(order[:2]) == {"a-barrier", "b-barrier"}
    assert set(order[2:]) == {"a-gather", "b-gather"}
