"""Payload delivery: the yield expression of recv returns data."""

import pytest

from tests.mpi.test_collectives import launch


def test_recv_yields_payload_blocking_path(quiet_kernel):
    got = []

    def sender(mpi):
        def prog():
            yield mpi.compute(0.01)
            yield mpi.send(1, tag=1, payload={"value": 42})

        return prog()

    def receiver(mpi):
        def prog():
            data = yield mpi.recv(0, tag=1)  # blocks: sender computes first
            got.append(data)

        return prog()

    launch(quiet_kernel, [sender, receiver], cpus=[0, 2])
    quiet_kernel.run()
    assert got == [{"value": 42}]


def test_recv_yields_payload_fast_path(quiet_kernel):
    got = []

    def sender(mpi):
        def prog():
            yield mpi.send(1, tag=1, payload="hello")

        return prog()

    def receiver(mpi):
        def prog():
            yield mpi.compute(0.02)  # message arrives while computing
            data = yield mpi.recv(0, tag=1)
            got.append(data)

        return prog()

    launch(quiet_kernel, [sender, receiver], cpus=[0, 2])
    quiet_kernel.run()
    assert got == ["hello"]


def test_payloadless_recv_yields_none(quiet_kernel):
    got = []

    def sender(mpi):
        def prog():
            yield mpi.send(1, tag=0)

        return prog()

    def receiver(mpi):
        def prog():
            data = yield mpi.recv(0, tag=0)
            got.append(data)

        return prog()

    launch(quiet_kernel, [sender, receiver], cpus=[0, 2])
    quiet_kernel.run()
    assert got == [None]


def test_other_requests_yield_none(quiet_kernel):
    got = []

    def solo(mpi):
        def prog():
            got.append((yield mpi.compute(0.01)))
            got.append((yield mpi.sleep(0.001)))
            got.append((yield mpi.barrier()))

        return prog()

    launch(quiet_kernel, [solo], cpus=[0])
    quiet_kernel.run()
    assert got == [None, None, None]


def test_ring_value_passing(quiet_kernel):
    """A token accumulates rank ids around a ring — end-to-end payload
    semantics across four ranks."""
    final = []

    def make(rank, n):
        def factory(mpi):
            def prog():
                if rank == 0:
                    yield mpi.send(1, tag=0, payload=[0])
                    token = yield mpi.recv(n - 1, tag=0)
                    final.append(token)
                else:
                    token = yield mpi.recv(rank - 1, tag=0)
                    yield mpi.compute(0.001)
                    yield mpi.send((rank + 1) % n, tag=0, payload=token + [rank])

            return prog()

        return factory

    launch(quiet_kernel, [make(r, 4) for r in range(4)])
    quiet_kernel.run()
    assert final == [[0, 1, 2, 3]]


def test_payloads_do_not_break_full_experiments():
    """Regression guard: the send()-based driver must leave the golden
    behaviour untouched."""
    from repro.experiments import metbench
    from tests.test_goldens import _load_goldens

    res = metbench.run_one("cfs", iterations=8, keep_trace=False)
    assert res.exec_time == pytest.approx(
        _load_goldens()["metbench_cfs"], rel=1e-9
    )
