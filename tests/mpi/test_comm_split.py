"""Communicator split tests."""

import pytest

from repro.mpi.comm import Communicator


def test_split_by_parity():
    world = Communicator([0, 1, 2, 3, 4, 5])
    groups = world.split(lambda r: r % 2)
    assert set(groups) == {0, 1}
    assert groups[0].ranks == (0, 2, 4)
    assert groups[1].ranks == (1, 3, 5)


def test_split_names_carry_color():
    world = Communicator([0, 1], name="w")
    groups = world.split(lambda r: "a")
    assert groups["a"].name == "w/splita"


def test_split_communicators_are_independent(quiet_kernel):
    """Barriers on split communicators only synchronize their members."""
    from tests.mpi.test_collectives import launch

    world_ranks = [0, 1, 2, 3]
    subs = Communicator(world_ranks).split(lambda r: r // 2)
    released = []

    def make(rank):
        def factory(mpi):
            def prog():
                yield mpi.compute(0.01 * (rank + 1))
                yield mpi.barrier(subs[rank // 2])
                released.append((rank, quiet_kernel.now))

            return prog()

        return factory

    launch(quiet_kernel, [make(r) for r in world_ranks])
    quiet_kernel.run()
    times = dict(released)
    # pair (0,1) releases together, pair (2,3) together, pairs differ
    assert times[0] == pytest.approx(times[1])
    assert times[2] == pytest.approx(times[3])
    assert times[0] < times[2]
