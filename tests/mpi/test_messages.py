"""Message and latency-model unit tests."""

import pytest
from hypothesis import given, strategies as st

from repro.mpi.comm import ANY_SOURCE, ANY_TAG, Communicator
from repro.mpi.messages import LatencyModel, Message


def test_latency_base_plus_bandwidth():
    lm = LatencyModel(base=1e-6, bandwidth=1e9)
    assert lm.delay(0) == pytest.approx(1e-6)
    assert lm.delay(1_000_000) == pytest.approx(1e-6 + 1e-3)


def test_default_latency_is_microseconds():
    lm = LatencyModel()
    assert 1e-6 < lm.delay(0) < 1e-4


@given(st.integers(0, 10**9))
def test_property_latency_monotone_in_size(size):
    lm = LatencyModel()
    assert lm.delay(size) >= lm.delay(0)


def test_message_matching_exact():
    m = Message(src=1, dst=2, tag=7, size=0, send_time=0, arrival_time=1)
    assert m.matches(1, 7)
    assert not m.matches(0, 7)
    assert not m.matches(1, 8)


def test_message_matching_wildcards():
    m = Message(src=1, dst=2, tag=7, size=0, send_time=0, arrival_time=1)
    assert m.matches(ANY_SOURCE, 7)
    assert m.matches(1, ANY_TAG)
    assert m.matches(ANY_SOURCE, ANY_TAG)


def test_communicator_basics():
    c = Communicator([0, 1, 2])
    assert c.size == 3
    assert 1 in c and 5 not in c


def test_communicator_rejects_duplicates():
    with pytest.raises(ValueError):
        Communicator([0, 1, 1])


def test_communicator_unique_ids():
    a = Communicator([0, 1])
    b = Communicator([0, 1])
    assert a.cid != b.cid
