"""Bench harness: suite execution, report I/O, regression comparison,
and the ``repro bench`` CLI path."""

import json

import pytest

from repro.bench import harness
from repro.bench.scenarios import (
    cluster_metbench,
    cluster_metbench_sharded,
    event_storm_chain,
    event_storm_deep,
    event_storm_wide,
    event_storm_wide_sharded,
    synth_convergence,
    synth_scatter,
)
from repro.cli import main


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
def test_storm_chain_deterministic_event_count():
    assert event_storm_chain(500) == 500
    assert event_storm_chain(500) == 500


def test_storm_deep_deterministic_event_count():
    # chains * (n // chains) events, independent of scheduling noise
    assert event_storm_deep(1000, chains=16) == 16 * (1000 // 16)


def test_storm_wide_deterministic_event_count():
    # The wide storm spans a real cluster; same inputs must replay the
    # exact same event stream (the count includes MPI + kernel events).
    first = event_storm_wide(chains=8, n_nodes=2)
    assert first > 0
    assert event_storm_wide(chains=8, n_nodes=2) == first


def test_cluster_metbench_runs_both_placements():
    assert cluster_metbench(n_nodes=2, iterations=1) > 0


def test_cluster_metbench_elides_events(monkeypatch):
    # Since PR 8 the kernel-level fast-forward engine parks inert balance
    # timers in the serial cluster too, so serial and sharded elide
    # identically; the stock (ff-off) run still pays for every fire.
    monkeypatch.setenv("REPRO_FASTFORWARD", "1")
    serial = cluster_metbench(n_nodes=4, iterations=1)
    sharded = cluster_metbench_sharded(n_nodes=4, iterations=1, shards=2)
    monkeypatch.setenv("REPRO_FASTFORWARD", "0")
    stock = cluster_metbench(n_nodes=4, iterations=1)
    assert 0 < serial < stock
    assert 0 < sharded <= stock


def test_event_storm_wide_sharded_deterministic():
    first = event_storm_wide_sharded(chains=16, n_nodes=2, shards=2)
    assert first > 0
    assert event_storm_wide_sharded(chains=16, n_nodes=2, shards=2) == first


def test_synth_scatter_deterministic_event_count():
    first = synth_scatter(ranks=8, imbalance=2.0, iterations=2)
    assert first > 0
    assert synth_scatter(ranks=8, imbalance=2.0, iterations=2) == first


def test_synth_convergence_deterministic_event_count():
    first = synth_convergence(ranks=8, iterations=8)
    assert first > 0
    assert synth_convergence(ranks=8, iterations=8) == first


def test_synth_scenarios_have_harness_entries():
    for name in ("synth_scatter_64", "synth_convergence_64"):
        assert name in harness.SCENARIO_NAMES
        fn, params = harness._entry_spec(name, quick=True, storm_events=0)
        assert callable(fn)
        assert params["ranks"] == 64
        assert params["scheduler"] == "adaptive"


# ----------------------------------------------------------------------
# Suite + report structure
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_report():
    lines = []
    report = harness.run_suite(
        quick=True,
        label="test",
        rounds=1,
        storm_events=2_000,
        progress=lines.append,
    )
    return report, lines


def test_run_suite_covers_storms_and_experiment(tiny_report):
    report, lines = tiny_report
    names = set(report.records)
    assert {"event_storm_chain", "event_storm_deep", "metbench_uniform"} <= names
    assert len(lines) == len(report.records)
    for rec in report.records.values():
        assert rec.wall_s > 0
        assert rec.events > 0
        assert rec.events_per_sec > 0


def test_run_suite_scenario_filter_selects_only_named():
    report = harness.run_suite(
        quick=True,
        label="filtered",
        rounds=1,
        storm_events=2_000,
        scenarios=["event_storm_chain"],
    )
    assert set(report.records) == {"event_storm_chain"}


def test_run_suite_rejects_unknown_scenario():
    with pytest.raises(ValueError, match="event_storm_chain"):
        harness.run_suite(quick=True, rounds=1, scenarios=["bogus"])


def test_report_dict_is_schema_versioned(tiny_report):
    report, _ = tiny_report
    data = report.to_dict()
    assert data["schema"] == harness.SCHEMA_VERSION
    assert data["label"] == "test"
    assert data["quick"] is True
    assert data["benchmarks"]["event_storm_chain"]["params"] == {"events": 2_000}
    # peak RSS is recorded on POSIX platforms
    assert data["peak_rss_kb"] is None or data["peak_rss_kb"] > 0
    # measurement-context metadata (jobs/CPU count) is always recorded
    assert data["jobs"] == 1
    assert data["host_cpus"] >= 1


def test_sharded_scenarios_carry_worker_params():
    report = harness.run_suite(
        quick=True,
        rounds=1,
        storm_events=2_000,
        scenarios=["event_storm_wide_sharded", "cluster_metbench_64_sharded"],
    )
    for rec in report.records.values():
        assert rec.params["shards"] == harness.DEFAULT_SHARDS
        assert rec.params["workers"] == harness.DEFAULT_SHARD_WORKERS


def test_sharded_records_attach_sync_meta():
    """Sharded scenario records carry the sync_rounds/wire_bytes
    attribution in ``meta`` — outside params, so baseline comparability
    is untouched — and the meta survives the JSON round trip."""
    report = harness.run_suite(
        quick=True,
        rounds=1,
        storm_events=2_000,
        scenarios=["event_storm_wide_sharded"],
    )
    rec = report.records["event_storm_wide_sharded"]
    assert rec.meta is not None
    assert rec.meta["sync_rounds"] > 0
    assert rec.meta["workers"] == harness.DEFAULT_SHARD_WORKERS
    assert rec.to_dict()["meta"] == rec.meta
    # Non-sharded records carry no meta at all.
    plain = harness.run_suite(
        quick=True, rounds=1, storm_events=2_000,
        scenarios=["event_storm_chain"],
    )
    assert plain.records["event_storm_chain"].meta is None
    assert "meta" not in plain.records["event_storm_chain"].to_dict()


def test_proc_scenarios_force_process_transport():
    """The ``*_proc`` twins pin ``workers="process"`` in params and
    record nonzero wire_bytes — the wire protocol actually ran."""
    report = harness.run_suite(
        quick=True,
        rounds=1,
        storm_events=2_000,
        scenarios=["event_storm_wide_sharded_proc"],
    )
    rec = report.records["event_storm_wide_sharded_proc"]
    assert rec.params["workers"] == "process"
    assert rec.meta["workers"] == "process"
    assert rec.meta["wire_bytes"] > 0
    assert rec.events > 0


def test_shards_sweep_emits_scaling_table():
    report = harness.run_shards_sweep(
        [1, 2], scenarios=["event_storm_wide_sharded"], quick=True, rounds=1
    )
    names = list(report.records)
    assert names == [
        "event_storm_wide_sharded@s1",
        "event_storm_wide_sharded@s2",
    ]
    assert report.records[names[0]].params["shards"] == 1
    assert report.records[names[1]].params["shards"] == 2
    rows = report.scaling["event_storm_wide_sharded"]
    assert [row["shards"] for row in rows] == [1, 2]
    for row in rows:
        assert row["wall_s"] > 0
        assert row["events_per_sec"] > 0
        assert "sync_rounds" in row and "wire_bytes" in row
    # 1 shard short-circuits the window machinery entirely.
    assert rows[0]["sync_rounds"] == 0
    assert rows[1]["sync_rounds"] > 0
    assert report.to_dict()["scaling"] == report.scaling


def test_shards_sweep_rejects_bad_inputs():
    with pytest.raises(ValueError):
        harness.run_shards_sweep([], scenarios=["event_storm_wide_sharded"])
    with pytest.raises(ValueError):
        harness.run_shards_sweep([0, 2], scenarios=["event_storm_wide_sharded"])
    with pytest.raises(ValueError):
        harness.run_shards_sweep([1], scenarios=["event_storm_chain"])


def test_run_suite_parallel_jobs_matches_serial_structure():
    scenarios = ["event_storm_chain", "event_storm_deep"]
    serial = harness.run_suite(
        quick=True, rounds=1, storm_events=2_000, scenarios=scenarios
    )
    parallel = harness.run_suite(
        quick=True, rounds=1, storm_events=2_000, scenarios=scenarios, jobs=2
    )
    assert list(parallel.records) == list(serial.records)  # plan order kept
    assert parallel.jobs == 2
    for name in scenarios:
        assert parallel.records[name].events == serial.records[name].events
        assert parallel.records[name].params == serial.records[name].params


def test_context_warnings_flag_jobs_and_cpu_mismatch():
    cur = {"jobs": 2, "host_cpus": 4, "benchmarks": {}}
    base = {"jobs": 1, "host_cpus": 8, "benchmarks": {}}
    warnings = harness.context_warnings(cur, base)
    assert len(warnings) == 3
    assert any("jobs" in w for w in warnings)
    assert any("CPU count" in w for w in warnings)
    # a cpu-count difference is also a fingerprint difference
    assert any("fingerprint mismatch" in w for w in warnings)
    # pre-metadata reports (no fields) never warn against each other
    assert harness.context_warnings({"benchmarks": {}}, {"benchmarks": {}}) == []


def test_write_and_load_roundtrip(tiny_report, tmp_path):
    report, _ = tiny_report
    path = tmp_path / "BENCH_test.json"
    harness.write_report(report, path)
    data = harness.load_report(path)
    assert data["benchmarks"].keys() == report.records.keys()


def test_load_rejects_wrong_schema(tmp_path):
    path = tmp_path / "BENCH_bad.json"
    path.write_text(json.dumps({"schema": 999, "benchmarks": {}}))
    with pytest.raises(harness.BenchFormatError):
        harness.load_report(path)
    path.write_text(json.dumps({"nope": 1}))
    with pytest.raises(harness.BenchFormatError):
        harness.load_report(path)
    path.write_text(json.dumps({"schema": harness.SCHEMA_VERSION}))
    with pytest.raises(harness.BenchFormatError):
        harness.load_report(path)


# ----------------------------------------------------------------------
# Baseline discovery + comparison
# ----------------------------------------------------------------------
def _report_dict(eps, params=None):
    return {
        "schema": harness.SCHEMA_VERSION,
        "benchmarks": {
            "event_storm_chain": {
                "events_per_sec": eps,
                "params": params or {"events": 1000},
            }
        },
    }


def test_find_baseline_picks_newest_and_skips_exclude(tmp_path):
    a = tmp_path / "BENCH_a.json"
    b = tmp_path / "BENCH_b.json"
    out = tmp_path / "BENCH_out.json"
    for i, p in enumerate([a, b, out]):
        p.write_text("{}")
        # mtime strictly increasing: a < b < out
        import os

        os.utime(p, (1000 + i, 1000 + i))
    assert harness.find_baseline(tmp_path, exclude=out) == b
    assert harness.find_baseline(tmp_path / "empty", exclude=None) is None


def test_compare_flags_regression_beyond_threshold():
    rows = harness.compare_reports(
        _report_dict(700.0), _report_dict(1000.0), threshold=0.20
    )
    assert len(rows) == 1
    assert rows[0]["regressed"] is True
    assert rows[0]["ratio"] == pytest.approx(0.7)


def test_compare_tolerates_drop_within_threshold_and_gains():
    rows = harness.compare_reports(
        _report_dict(900.0), _report_dict(1000.0), threshold=0.20
    )
    assert rows[0]["regressed"] is False
    rows = harness.compare_reports(
        _report_dict(2000.0), _report_dict(1000.0), threshold=0.20
    )
    assert rows[0]["regressed"] is False
    assert rows[0]["ratio"] == pytest.approx(2.0)


def test_compare_skips_mismatched_params_and_missing_benchmarks():
    cur = _report_dict(500.0, params={"events": 2000})
    base = _report_dict(1000.0, params={"events": 200000})
    assert harness.compare_reports(cur, base) == []
    assert harness.compare_reports(cur, {"schema": 1, "benchmarks": {}}) == []
    # zero-throughput baselines are skipped, not divided by
    assert harness.compare_reports(_report_dict(500.0), _report_dict(0.0)) == []


# ----------------------------------------------------------------------
# Host fingerprint: cross-host downgrade + wall-time basis
# ----------------------------------------------------------------------
def _fp_report(eps, wall=1.0, events=1000, fingerprint=None, **meta):
    rec = {
        "events_per_sec": eps,
        "wall_s": wall,
        "events": events,
        "params": {"events": 1000},
    }
    out = {
        "schema": harness.SCHEMA_VERSION,
        "benchmarks": {"event_storm_chain": rec},
        **meta,
    }
    if fingerprint is not None:
        out["fingerprint"] = fingerprint
    return out


def test_report_records_host_fingerprint(tiny_report):
    report, _ = tiny_report
    data = report.to_dict()
    fp = data["fingerprint"]
    assert set(fp) == {"cpus", "kernel", "python"}
    assert fp["cpus"] == data["host_cpus"]
    assert fp["python"] == data["python"]


def test_fingerprint_derived_from_legacy_metadata():
    # Pre-PR-8 reports carry no explicit fingerprint; the same host must
    # still match one derived from host_cpus/platform/python.
    legacy = {
        "schema": harness.SCHEMA_VERSION,
        "benchmarks": {},
        "host_cpus": 1,
        "platform": "Linux-6.18.5-fc-v20-x86_64-with-glibc2.36",
        "python": "3.11.7",
    }
    modern = dict(
        legacy,
        fingerprint={"cpus": 1, "kernel": "6.18.5-fc-v20", "python": "3.11.7"},
    )
    assert harness.fingerprint_of(legacy) == harness.fingerprint_of(modern)
    assert harness.fingerprints_match(modern, legacy)
    other = dict(
        legacy, platform="Linux-5.10.0-generic-x86_64-with-glibc2.31"
    )
    assert not harness.fingerprints_match(modern, other)


def test_compare_same_fingerprint_still_gates_regressions():
    fp = {"cpus": 1, "kernel": "6.1.0", "python": "3.11.7"}
    rows = harness.compare_reports(
        _fp_report(700.0, fingerprint=fp),
        _fp_report(1000.0, fingerprint=fp),
        threshold=0.20,
    )
    assert rows[0]["regressed"] is True
    assert rows[0]["cross_host"] is False


def test_compare_cross_fingerprint_downgrades_to_warning():
    cur = _fp_report(
        700.0, fingerprint={"cpus": 1, "kernel": "6.1.0", "python": "3.11.7"}
    )
    base = _fp_report(
        1000.0, fingerprint={"cpus": 8, "kernel": "5.10.0", "python": "3.10.2"}
    )
    rows = harness.compare_reports(cur, base, threshold=0.20)
    assert rows[0]["regressed"] is False
    assert rows[0]["cross_host"] is True
    warnings = harness.context_warnings(cur, base)
    assert any("fingerprint mismatch" in w for w in warnings)


def test_compare_uses_wall_basis_when_event_counts_differ():
    # Fast-forward elision legitimately shrinks the event count; the
    # events/sec ratio would then read as a huge regression.  The diff
    # must fall back to wall time (and flag the basis).
    cur = _fp_report(500.0, wall=0.2, events=100)  # 10x fewer events,
    base = _fp_report(5000.0, wall=1.0, events=1000)  # 5x faster wall
    rows = harness.compare_reports(cur, base, threshold=0.20)
    assert rows[0]["basis"] == "wall_s"
    assert rows[0]["ratio"] == pytest.approx(5.0)
    assert rows[0]["regressed"] is False
    # Equal event counts keep the throughput basis.
    rows = harness.compare_reports(
        _fp_report(900.0), _fp_report(1000.0), threshold=0.20
    )
    assert rows[0]["basis"] == "events_per_sec"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _cli_bench(tmp_path, capsys, *extra):
    # Tiny 1-round storms are far too noisy for the default 20%
    # threshold, so the tests pass 0.99: only the fabricated
    # million-fold baseline of the regression test can trip it.
    code = main(
        [
            "bench",
            "--quick",
            "--rounds", "1",
            "--storm-events", "2000",
            "--threshold", "0.99",
            "--out", str(tmp_path),
            *extra,
        ]
    )
    return code, capsys.readouterr()


def test_cli_bench_records_then_diffs(tmp_path, capsys):
    code, captured = _cli_bench(tmp_path, capsys, "--label", "first")
    assert code == 0
    assert "no baseline found" in captured.out
    assert (tmp_path / "BENCH_first.json").exists()

    # Second run auto-discovers the first as its baseline and embeds
    # the comparison in its own report.
    code, captured = _cli_bench(tmp_path, capsys, "--label", "second")
    assert code == 0
    assert "vs " in captured.out and "BENCH_first.json" in captured.out
    data = harness.load_report(tmp_path / "BENCH_second.json")
    assert data["vs_baseline"]["rows"]


def test_cli_bench_fails_on_regression(tmp_path, capsys):
    # A fabricated super-fast baseline forces a >threshold regression.
    fake = {
        "schema": harness.SCHEMA_VERSION,
        "benchmarks": {
            "event_storm_chain": {
                "events_per_sec": 1e12,
                "params": {"events": 2000},
            }
        },
    }
    baseline = tmp_path / "BENCH_fake.json"
    baseline.write_text(json.dumps(fake))
    code, captured = _cli_bench(
        tmp_path, capsys, "--label", "slow", "--baseline", str(baseline)
    )
    assert code == 1
    assert "REGRESSED" in captured.out
    assert "PERFORMANCE REGRESSION" in captured.err


def test_cli_bench_ignores_malformed_baseline(tmp_path, capsys):
    bad = tmp_path / "BENCH_bad.json"
    bad.write_text(json.dumps({"schema": 999, "benchmarks": {}}))
    code, captured = _cli_bench(
        tmp_path, capsys, "--label", "x", "--baseline", str(bad)
    )
    assert code == 0
    assert "baseline ignored" in captured.err


def test_cli_bench_scenario_filter(tmp_path, capsys):
    code, captured = _cli_bench(
        tmp_path, capsys, "--label", "one",
        "--scenario", "event_storm_chain",
    )
    assert code == 0
    data = harness.load_report(tmp_path / "BENCH_one.json")
    assert set(data["benchmarks"]) == {"event_storm_chain"}


def test_cli_bench_jobs_mismatch_warns_against_baseline(tmp_path, capsys):
    code, _ = _cli_bench(
        tmp_path, capsys, "--label", "serial1",
        "--scenario", "event_storm_chain",
    )
    assert code == 0
    code, captured = _cli_bench(
        tmp_path, capsys, "--label", "par",
        "--scenario", "event_storm_chain", "--jobs", "2",
    )
    assert code == 0
    assert "WARNING" in captured.out and "jobs" in captured.out
    data = harness.load_report(tmp_path / "BENCH_par.json")
    assert data["jobs"] == 2
    assert data["vs_baseline"]["warnings"]


def test_cli_bench_unknown_scenario_errors(tmp_path, capsys):
    code, captured = _cli_bench(
        tmp_path, capsys, "--label", "x", "--scenario", "bogus"
    )
    assert code == 2
    assert "bogus" in captured.err


# ----------------------------------------------------------------------
# Schema 2: round statistics, median diff basis, profiled pass
# ----------------------------------------------------------------------
def test_records_carry_round_statistics(tiny_report):
    report, _ = tiny_report
    for rec in report.records.values():
        # best-of-N can never exceed the median of the same rounds.
        assert 0 < rec.wall_s <= rec.wall_median_s
        assert rec.events_per_sec >= rec.events_per_sec_median > 0
        assert rec.wall_cv == 0.0  # single round: no spread
        assert rec.profile is None  # not a --profile run
    data = report.to_dict()
    chain = data["benchmarks"]["event_storm_chain"]
    assert "wall_median_s" in chain and "wall_cv" in chain
    assert "profile" not in chain  # optional block absent, not null


def test_load_accepts_schema_1_reports(tmp_path):
    path = tmp_path / "BENCH_v1.json"
    path.write_text(json.dumps({"schema": 1, "benchmarks": {}}))
    assert harness.load_report(path)["schema"] == 1


def _rec_v2(eps, eps_median, events=1000):
    return {
        "events": events,
        "events_per_sec": eps,
        "events_per_sec_median": eps_median,
        "params": {"events": 1000},
    }


def test_compare_prefers_median_when_both_reports_have_it():
    cur = {"schema": 2, "benchmarks": {"b": _rec_v2(2000.0, 1000.0)}}
    base = {"schema": 2, "benchmarks": {"b": _rec_v2(1000.0, 1000.0)}}
    rows = harness.compare_reports(cur, base)
    assert rows[0]["basis"] == "events_per_sec_median"
    assert rows[0]["ratio"] == pytest.approx(1.0)  # medians equal


def test_compare_falls_back_to_best_against_v1_baseline():
    cur = {"schema": 2, "benchmarks": {"b": _rec_v2(2000.0, 1800.0)}}
    base = {
        "schema": 1,
        "benchmarks": {
            "b": {
                "events": 1000,
                "events_per_sec": 1000.0,
                "params": {"events": 1000},
            }
        },
    }
    rows = harness.compare_reports(cur, base)
    assert rows[0]["basis"] == "events_per_sec"
    assert rows[0]["ratio"] == pytest.approx(2.0)


def test_compare_wall_basis_uses_median_when_available():
    def wrec(events, wall, wall_median):
        return {
            "events": events,
            "wall_s": wall,
            "wall_median_s": wall_median,
            "events_per_sec": events / wall,
            "events_per_sec_median": events / wall_median,
            "params": {"events": 1000},
        }

    cur = {"schema": 2, "benchmarks": {"b": wrec(500, 1.0, 2.0)}}
    base = {"schema": 2, "benchmarks": {"b": wrec(1000, 1.0, 1.0)}}
    rows = harness.compare_reports(cur, base)  # event counts differ
    assert rows[0]["basis"] == "wall_median_s"
    assert rows[0]["ratio"] == pytest.approx(0.5)


def test_profiled_run_attaches_event_type_table():
    report = harness.run_suite(
        quick=True,
        rounds=1,
        storm_events=2_000,
        scenarios=["metbench_uniform"],
        profiled=True,
    )
    profile = report.records["metbench_uniform"].profile
    assert profile, "profiled pass produced no table"
    # Kernel event types, namespaced by label prefix.
    assert "resched" in profile and "phase" in profile
    for row in profile.values():
        assert row["count"] > 0
        assert row["total_us"] >= 0.0
    data = report.to_dict()
    assert data["benchmarks"]["metbench_uniform"]["profile"] == profile


def test_cli_bench_profile_prints_cost_table(tmp_path, capsys):
    code, captured = _cli_bench(
        tmp_path, capsys, "--label", "prof",
        "--scenario", "event_storm_chain", "--profile",
    )
    assert code == 0
    assert "per-event-type costs" in captured.out
    data = harness.load_report(tmp_path / "BENCH_prof.json")
    assert "profile" in data["benchmarks"]["event_storm_chain"]
