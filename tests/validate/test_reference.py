"""Unit tests for the small-step reference simulator."""

import pytest

from repro.power5.perfmodel import TableDrivenModel
from repro.validate.reference import ReferenceSimulator
from repro.validate.scenario import (
    BarrierOp,
    ComputeOp,
    Scenario,
    SetPrioOp,
    SleepOp,
    TaskSpec,
    profile_by_name,
)

DT = 1e-5


def scenario(*tasks, **kw):
    return Scenario(tasks=tuple(tasks), **kw)


def test_single_compute_matches_closed_form():
    """One task alone on its core runs at the ST rate; completion is
    work/rate, quantized up to at most one quantum."""
    work = 0.01
    s = scenario(TaskSpec("A", 0, (ComputeOp(work),)))
    res = ReferenceSimulator(s, dt=DT).run()
    rate = TableDrivenModel().speed(
        profile_by_name("cpu_bound"),
        own_priority=4,
        sibling_priority=4,
        sibling_busy=False,
    )
    expected = work / rate
    assert expected <= res.exec_time <= expected + 2 * DT
    assert res.logs["A"] == [(0, pytest.approx(res.exec_time))]


def test_sleep_duration_is_exact_to_one_quantum():
    s = scenario(TaskSpec("A", 0, (SleepOp(0.001),)))
    res = ReferenceSimulator(s, dt=DT).run()
    assert 0.001 - 1e-12 <= res.exec_time <= 0.001 + 2 * DT


def test_zero_work_ops_complete_immediately():
    """Empty compute phases and zero sleeps must not consume a quantum
    (mirrors the fluid engine skipping empty phases)."""
    s = scenario(
        TaskSpec("A", 0, (ComputeOp(0.0), SleepOp(0.0), ComputeOp(0.001)))
    )
    res = ReferenceSimulator(s, dt=DT).run()
    log = dict(res.logs["A"])
    assert log[0] == 0.0
    assert log[1] == 0.0
    assert log[2] > 0.0


def test_barrier_releases_all_members_at_last_arrival():
    s = scenario(
        TaskSpec("A", 0, (ComputeOp(0.002), BarrierOp(0))),
        TaskSpec("B", 2, (ComputeOp(0.02), BarrierOp(0))),
    )
    res = ReferenceSimulator(s, dt=DT).run()
    a_barrier = dict(res.logs["A"])[1]
    b_barrier = dict(res.logs["B"])[1]
    assert a_barrier == b_barrier  # released at the same instant
    assert a_barrier >= dict(res.logs["B"])[0]  # not before B arrived


def test_sibling_contention_slows_both_tasks():
    """Two tasks sharing a core must each run slower than alone."""
    work = 0.01
    alone = ReferenceSimulator(
        scenario(TaskSpec("A", 0, (ComputeOp(work),))), dt=DT
    ).run()
    paired = ReferenceSimulator(
        scenario(
            TaskSpec("A", 0, (ComputeOp(work),)),
            TaskSpec("B", 1, (ComputeOp(work),)),
        ),
        dt=DT,
    ).run()
    assert dict(paired.logs["A"])[0] > dict(alone.logs["A"])[0]


def test_priority_write_speeds_up_the_writer():
    """Raising own priority against a sibling raises own rate."""
    base = scenario(
        TaskSpec("A", 0, (ComputeOp(0.01),), hw_priority=4),
        TaskSpec("B", 1, (ComputeOp(0.05),), hw_priority=4),
    )
    boosted = scenario(
        TaskSpec("A", 0, (SetPrioOp(6), ComputeOp(0.01)), hw_priority=4),
        TaskSpec("B", 1, (ComputeOp(0.05),), hw_priority=4),
    )
    t_base = dict(ReferenceSimulator(base, dt=DT).run().logs["A"])[0]
    t_boost = dict(ReferenceSimulator(boosted, dt=DT).run().logs["A"])[1]
    assert t_boost < t_base


def test_state_intervals_partition_the_run():
    """Each task's interval trace must tile [0, exec_time] contiguously."""
    s = scenario(
        TaskSpec("A", 0, (ComputeOp(0.004), SleepOp(0.001), ComputeOp(0.002))),
        TaskSpec("B", 2, (SleepOp(0.002), ComputeOp(0.004))),
    )
    res = ReferenceSimulator(s, dt=DT).run()
    for name, intervals in res.intervals.items():
        assert intervals[0][1] == 0.0
        for (_, _, end), (_, start, _) in zip(intervals, intervals[1:]):
            assert end == start
        assert intervals[-1][2] == pytest.approx(res.exec_time)


def test_mismatched_barrier_counts_rejected():
    s = scenario(
        TaskSpec("A", 0, (BarrierOp(0), BarrierOp(0))),
        TaskSpec("B", 1, (BarrierOp(0),)),
    )
    with pytest.raises(ValueError, match="mismatched arrival counts"):
        ReferenceSimulator(s, dt=DT)


def test_invalid_quantum_rejected():
    s = scenario(TaskSpec("A", 0, (ComputeOp(0.001),)))
    with pytest.raises(ValueError):
        ReferenceSimulator(s, dt=0.0)


def test_halving_dt_halves_quantization_error():
    """The reference's error against the fluid engine's exact result
    must shrink roughly linearly with dt (it is first-order)."""
    from repro.validate.scenario import build_kernel_run

    s = scenario(
        TaskSpec("A", 0, (ComputeOp(0.01),), "mixed", 5),
        TaskSpec("B", 1, (ComputeOp(0.02),), "cpu_bound", 3),
    )
    exact = dict(build_kernel_run(s).logs["A"])[0]
    err = []
    for dt in (4e-5, 2e-5, 1e-5):
        got = dict(ReferenceSimulator(s, dt=dt).run().logs["A"])[0]
        err.append(abs(got - exact))
    assert err[0] > err[2]  # strictly improving over a 4x dt range
