"""Mutation tests: injected engine bugs must be caught and minimized.

The differential harness exists to catch defects in the fluid-rate
engine's banked-progress arithmetic.  These tests *inject* such defects
through the ``mutate_task`` hook (wrapping ``Task.bank_progress`` on
every task of the fluid run) and assert that the harness (a) flags a
divergence and (b) shrinks it to a small actionable repro.
"""

import pytest

from repro.validate.differential import run_differential, shrink
from repro.validate.fuzz import generate_scenario
from repro.validate.scenario import ComputeOp, Scenario, TaskSpec


def losing_bank_bug(fraction):
    """A banking defect: on every rebank, ``fraction`` of the work that
    was just credited is credited *again* (the task appears to have done
    more work than it did — completions land early)."""

    def mutate(task):
        orig = task.bank_progress

        def buggy(now):
            before = task.phase_remaining
            orig(now)
            done = before - task.phase_remaining
            task.phase_remaining = max(
                0.0, task.phase_remaining - fraction * done
            )

        task.bank_progress = buggy

    return mutate


def forgetting_bank_bug(fraction):
    """The converse defect: ``fraction`` of the banked progress is lost
    on every rebank — completions land late."""

    def mutate(task):
        orig = task.bank_progress

        def buggy(now):
            before = task.phase_remaining
            orig(now)
            done = before - task.phase_remaining
            task.phase_remaining = min(
                before, task.phase_remaining + fraction * done
            )

        task.bank_progress = buggy

    return mutate


#: A scenario of two SMT siblings whose staggered completions force a
#: rebank: when B finishes, A's rate changes and its accrued progress
#: must be banked — the exact code path the mutations corrupt.
SIBLINGS = Scenario(
    tasks=(
        TaskSpec("A", 0, (ComputeOp(0.02),), "mixed", 3),
        TaskSpec("B", 1, (ComputeOp(0.008),), "mixed", 6),
    ),
    label="siblings",
)


def test_unmutated_siblings_agree():
    assert run_differential(SIBLINGS).ok


@pytest.mark.parametrize(
    "bug", [forgetting_bank_bug(0.3), losing_bank_bug(0.3)],
    ids=["forgets-progress", "double-credits-progress"],
)
def test_banking_bug_caught_on_sibling_scenario(bug):
    res = run_differential(SIBLINGS, mutate_task=bug)
    assert not res.ok
    assert res.divergence.task == "A"  # B runs to completion unperturbed


def test_banking_bug_caught_and_minimized_from_fuzz():
    """Acceptance: a fuzzed scenario catches the injected banking bug
    and the shrinker reduces it to a minimal divergent repro."""
    bug = forgetting_bank_bug(0.3)
    scenario = generate_scenario(0, 1)
    res = run_differential(scenario, mutate_task=bug)
    assert not res.ok

    minimized = shrink(scenario, mutate_task=bug)
    assert not minimized.ok
    assert minimized.divergence is not None
    # The repro is genuinely minimal: a rebank needs two sibling tasks,
    # each needs at least one op to have an event to diverge on.
    assert len(minimized.scenario.tasks) == 2
    assert minimized.scenario.total_ops() <= 4
    # Shrinking never loses the divergence location's meaning:
    text = minimized.divergence.describe()
    assert "first divergent event" in text


def test_shrink_returns_input_when_not_divergent():
    res = shrink(SIBLINGS)
    assert res.ok


def test_subtle_banking_bug_still_caught():
    """Even a 5%-of-banked-work defect must be visible to the harness
    on at least one fuzzed scenario (tight tolerance + refinement)."""
    bug = forgetting_bank_bug(0.05)
    caught = [
        i
        for i in range(20)
        if not run_differential(
            generate_scenario(0, i), mutate_task=bug
        ).ok
    ]
    assert caught, "a 5% banking defect escaped 20 fuzzed scenarios"
