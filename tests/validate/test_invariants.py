"""Runtime invariant oracles: installation, checks, violation paths."""

import pytest

from repro.kernel.core_sched import Kernel
from repro.kernel.syscalls import Compute, Sleep
from repro.power5 import decode
from repro.power5.machine import Machine, MachineTopology
from repro.power5.perfmodel import TableDrivenModel
from repro.validate.invariants import (
    InvariantViolation,
    KernelOracles,
    install,
    maybe_install,
    validation_enabled,
)


def make_kernel():
    return Kernel(machine=Machine(MachineTopology(), TableDrivenModel()))


@pytest.fixture
def oracles():
    kernel = make_kernel()
    yield install(kernel)
    decode.disable_validation()


# ----------------------------------------------------------------------
# Enablement plumbing
# ----------------------------------------------------------------------
def test_env_flag_parsing(monkeypatch):
    for value in ("1", "true", "yes", "on"):
        monkeypatch.setenv("REPRO_VALIDATE", value)
        assert validation_enabled()
    for value in ("", "0", "no", "off"):
        monkeypatch.setenv("REPRO_VALIDATE", value)
        assert not validation_enabled()


def test_production_kernel_has_no_oracles(monkeypatch):
    monkeypatch.delenv("REPRO_VALIDATE", raising=False)
    assert make_kernel().oracles is None


def test_env_flag_installs_oracles_on_new_kernels(monkeypatch):
    monkeypatch.setenv("REPRO_VALIDATE", "1")
    try:
        kernel = make_kernel()
        assert isinstance(kernel.oracles, KernelOracles)
        assert kernel.sim.oracle is kernel.oracles
        assert decode._VALIDATE
    finally:
        decode.disable_validation()


def test_maybe_install_respects_disabled_flag(monkeypatch):
    monkeypatch.setenv("REPRO_VALIDATE", "0")
    assert maybe_install(make_kernel()) is None


# ----------------------------------------------------------------------
# End-to-end: oracles ride along a real run and stay silent
# ----------------------------------------------------------------------
def test_oracles_run_clean_on_real_workload(monkeypatch):
    monkeypatch.setenv("REPRO_VALIDATE", "1")
    try:
        kernel = make_kernel()

        def prog(work, pause):
            def gen():
                for _ in range(3):
                    yield Compute(work)
                    yield Sleep(pause)

            return gen()

        kernel.spawn("a", prog(0.01, 0.002), cpu=0)
        kernel.spawn("b", prog(0.02, 0.001), cpu=1)
        kernel.run()
        oracles = kernel.oracles
        assert oracles.checks > 0
        assert oracles.violations == 0
        assert sum(oracles.cpu_busy.values()) > 0.0
    finally:
        decode.disable_validation()


def test_oracles_run_clean_on_differential_scenarios(monkeypatch):
    """Fluid runs of the differential harness pass every oracle."""
    monkeypatch.setenv("REPRO_VALIDATE", "1")
    try:
        from repro.validate.fuzz import generate_scenario
        from repro.validate.scenario import build_kernel_run

        for i in range(5):
            build_kernel_run(generate_scenario(7, i))
    finally:
        decode.disable_validation()


# ----------------------------------------------------------------------
# Violation paths (each oracle actually bites)
# ----------------------------------------------------------------------
def test_on_account_rejects_negative_delta(oracles):
    task = oracles.kernel.spawn("t", iter(()), cpu=0)
    with pytest.raises(InvariantViolation, match="negative occupancy"):
        oracles.on_account(0, task, -1e-3, now=1.0)


def test_on_account_rejects_overfull_cpu(oracles):
    task = oracles.kernel.spawn("t", iter(()), cpu=0)
    with pytest.raises(InvariantViolation, match="conservation"):
        oracles.on_account(0, task, delta=2.0, now=1.0)


def test_on_account_rejects_task_outrunning_wall_clock(oracles):
    task = oracles.kernel.spawn("t", iter(()), cpu=0)
    task.sum_exec_runtime = 5.0
    with pytest.raises(InvariantViolation, match="charged"):
        oracles.on_account(0, task, delta=0.5, now=1.0)


def test_on_run_end_audits_accumulated_busy(oracles):
    oracles.cpu_busy[0] = 2.0
    with pytest.raises(InvariantViolation, match="accumulated"):
        oracles.on_run_end(end=1.0)


def test_on_event_rejects_cancelled_delivery(oracles):
    ev = oracles.kernel.sim.queue.push(1.0, lambda: None)
    ev.cancel()
    with pytest.raises(InvariantViolation, match="cancelled"):
        oracles.on_event(ev)


def test_on_event_rejects_time_travel(oracles):
    late = oracles.kernel.sim.queue.push(2.0, lambda: None)
    early = oracles.kernel.sim.queue.push(1.0, lambda: None)
    oracles.on_event(late)
    with pytest.raises(InvariantViolation, match="backwards"):
        oracles.on_event(early)


def test_on_vruntime_rejects_regression(oracles):
    task = oracles.kernel.spawn("t", iter(()), cpu=0)
    task.vruntime = 2.0
    oracles.on_vruntime(task)
    task.vruntime = 1.0
    with pytest.raises(InvariantViolation, match="vruntime"):
        oracles.on_vruntime(task)


def test_on_vruntime_placed_rebaselines(oracles):
    task = oracles.kernel.spawn("t", iter(()), cpu=0)
    task.vruntime = 2.0
    oracles.on_vruntime(task)
    task.vruntime = 3.5  # wake placement raised it
    oracles.on_vruntime_placed(task)
    oracles.on_vruntime(task)  # no violation


def test_on_min_vruntime_rejects_regression(oracles):
    oracles.on_min_vruntime(0, 2.0)
    with pytest.raises(InvariantViolation, match="min_vruntime"):
        oracles.on_min_vruntime(0, 1.0)


def test_on_iteration_rejects_out_of_range_utilization(oracles):
    task = oracles.kernel.spawn("t", iter(()), cpu=0)
    oracles.on_iteration(task, 0.0)
    oracles.on_iteration(task, 1.0)
    with pytest.raises(InvariantViolation, match="utilization"):
        oracles.on_iteration(task, 1.5)
    with pytest.raises(InvariantViolation, match="utilization"):
        oracles.on_iteration(task, -0.5)


class _StubDetector:
    """Duck-typed detector carrying just what the oracle reads."""

    def __init__(self, state, current_prio):
        self.state = state
        self.mechanism = self

    def read(self, task):
        return getattr(self, "_prio", None)


def _detector(state, current_prio=None):
    d = _StubDetector(state, current_prio)
    d._prio = current_prio
    return d


def test_on_priority_apply_rejects_frozen_action(oracles):
    task = oracles.kernel.spawn("t", iter(()), cpu=0)
    with pytest.raises(InvariantViolation, match="FROZEN"):
        oracles.on_priority_apply(_detector("frozen"), task, 4)


def test_on_priority_apply_rejects_out_of_range(oracles):
    task = oracles.kernel.spawn("t", iter(()), cpu=0)
    hi = oracles.kernel.tunables.get("hpcsched/max_prio")
    with pytest.raises(InvariantViolation, match="outside"):
        oracles.on_priority_apply(_detector("adjusting"), task, hi + 1)


def test_on_priority_apply_rejects_upward_while_observing(oracles):
    task = oracles.kernel.spawn("t", iter(()), cpu=0)
    with pytest.raises(InvariantViolation, match="OBSERVING"):
        oracles.on_priority_apply(_detector("observing", 4), task, 6)
    # downward corrections while observing are legal:
    oracles.on_priority_apply(_detector("observing", 6), task, 4)


def test_live_detector_never_trips_the_oracle(monkeypatch):
    """The adaptive experiment, oracles on: every detector decision is
    legal by construction — and the iteration oracle sees real data."""
    monkeypatch.setenv("REPRO_VALIDATE", "1")
    try:
        from repro.experiments import metbench

        metbench.run_one("adaptive", iterations=4, keep_trace=False)
    finally:
        decode.disable_validation()


# ----------------------------------------------------------------------
# Decode-share self-checks
# ----------------------------------------------------------------------
def test_decode_validation_accepts_all_normal_pairs():
    decode.enable_validation()
    try:
        for pa in range(8):
            for pb in range(8):
                fa, fb = decode.decode_shares(pa, pb)
                assert 0.0 <= fa <= 1.0 and 0.0 <= fb <= 1.0
    finally:
        decode.disable_validation()


def test_decode_validation_catches_bad_background_share(monkeypatch):
    decode.enable_validation()
    try:
        monkeypatch.setattr(decode, "BACKGROUND_SHARE", 1.5)
        with pytest.raises(decode.DecodeShareError):
            decode.decode_shares(1, 4)
    finally:
        decode.disable_validation()


def test_decode_checks_cost_nothing_when_disabled(monkeypatch):
    """With validation off the self-check must not even run (production
    pays nothing): a corrupted constant goes unnoticed here on purpose."""
    decode.disable_validation()
    monkeypatch.setattr(decode, "BACKGROUND_SHARE", 1.5)
    decode.decode_shares(1, 4)  # no raise: the check is pay-for-use
