"""The synth scenario pool: generation domain, determinism, and the
differential oracle over every generator family."""

import pytest

from repro.validate.differential import run_differential
from repro.validate.fuzz import (
    POOL_GENERATORS,
    SCENARIO_POOLS,
    generate_synth_scenario,
    run_fuzz,
)
from repro.validate.scenario import BarrierOp, ComputeOp, SleepOp

FAMILIES = ("scatter", "convergence", "offload")


def test_pool_registry_is_consistent():
    assert set(POOL_GENERATORS) == set(SCENARIO_POOLS)
    assert POOL_GENERATORS["synth"] is generate_synth_scenario


def test_generation_is_deterministic():
    for i in range(6):
        assert generate_synth_scenario(3, i) == generate_synth_scenario(3, i)


def test_indices_rotate_through_the_generator_families():
    for i in range(6):
        s = generate_synth_scenario(0, i)
        assert FAMILIES[i % 3] in s.label


def test_generated_scenarios_stay_inside_the_domain():
    for i in range(12):
        s = generate_synth_scenario(7, i)
        s.validate()  # raises on any domain violation
        # One pinned task per logical CPU, barrier-synchronized rounds.
        assert len(s.tasks) == s.n_cpus
        assert all(
            any(isinstance(op, BarrierOp) for op in t.ops) for t in s.tasks
        )


def test_offload_family_interleaves_sleeps_on_odd_cpus():
    scenarios = [generate_synth_scenario(0, i) for i in (2, 5, 8)]
    for s in scenarios:
        odd = [t for t in s.tasks if t.cpu % 2 == 1]
        assert all(
            any(isinstance(op, SleepOp) for op in t.ops) for t in odd
        )
        even = [t for t in s.tasks if t.cpu % 2 == 0]
        assert all(
            all(not isinstance(op, SleepOp) for op in t.ops) for t in even
        )
        assert all(
            any(isinstance(op, ComputeOp) for op in t.ops) for t in s.tasks
        )


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("family_index", [0, 1, 2])
def test_differential_oracle_accepts_every_family(seed, family_index):
    """ISSUE acceptance: >= 3 seeds per generator family through the
    fluid-vs-reference oracle, zero divergences."""
    scenario = generate_synth_scenario(seed, family_index)
    assert FAMILIES[family_index] in scenario.label
    result = run_differential(scenario, dt=5e-5)
    assert result.ok, result.divergence


def test_run_fuzz_draws_from_the_synth_pool():
    report = run_fuzz(count=3, seed=0, dt=5e-5, pool="synth")
    assert report.ok
    assert report.pool == "synth"
    assert len(report.cases) == 3
    assert all(c.label.startswith("synth-") for c in report.cases)
    assert "pool=synth" in report.summary()


def test_run_fuzz_rejects_an_unknown_pool():
    with pytest.raises(ValueError, match="engine"):
        run_fuzz(count=1, pool="quantum")


def test_default_pool_is_the_engine_fuzzer():
    report = run_fuzz(count=1, seed=0, dt=5e-5)
    assert report.pool == "engine"
    assert report.cases[0].label.startswith("fuzz-")
