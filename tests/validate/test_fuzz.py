"""The scenario fuzzer: determinism, domain validity, campaign plumbing."""

import pytest

from repro.validate.fuzz import FuzzReport, generate_scenario, run_fuzz
from repro.validate.scenario import BarrierOp


def test_generation_is_deterministic():
    for i in range(5):
        assert generate_scenario(3, i) == generate_scenario(3, i)


def test_generation_varies_across_indices_and_seeds():
    base = generate_scenario(0, 0)
    assert any(generate_scenario(0, i) != base for i in range(1, 6))
    assert generate_scenario(1, 0) != base


def test_generated_scenarios_stay_inside_the_domain():
    for i in range(30):
        s = generate_scenario(11, i)
        s.validate()  # raises on any domain violation
        assert 1 <= len(s.tasks) <= s.n_cpus
        assert all(len(t.ops) >= 1 for t in s.tasks)


def test_generated_barriers_are_never_lonely():
    """A generated barrier group always has >= 2 members (a 1-member
    barrier would make the scenario trivially sequential)."""
    for i in range(30):
        s = generate_scenario(2, i)
        members = sum(
            1
            for t in s.tasks
            if any(isinstance(op, BarrierOp) for op in t.ops)
        )
        assert members == 0 or members >= 2


def test_small_campaign_is_clean_and_reports():
    seen = []
    report = run_fuzz(count=5, seed=0, on_case=seen.append)
    assert isinstance(report, FuzzReport)
    assert report.ok
    assert report.divergences == 0
    assert len(report.cases) == 5
    assert [c.index for c in seen] == [0, 1, 2, 3, 4]
    text = report.summary()
    assert "seed=0" in text and "divergences: 0" in text


def test_campaign_stops_and_minimizes_on_divergence(monkeypatch):
    """A campaign that hits a divergence shrinks it into ``failure`` and
    (by default) stops fuzzing."""
    import repro.validate.fuzz as fuzz

    def bug(task):
        orig = task.bank_progress

        def buggy(now):
            before = task.phase_remaining
            orig(now)
            done = before - task.phase_remaining
            task.phase_remaining = min(before, task.phase_remaining + 0.3 * done)

        task.bank_progress = buggy

    real_run = fuzz.run_differential
    real_shrink = fuzz.shrink
    monkeypatch.setattr(
        fuzz, "run_differential",
        lambda s, dt=2e-5: real_run(s, dt=dt, mutate_task=bug),
    )
    monkeypatch.setattr(
        fuzz, "shrink",
        lambda s, dt=2e-5: real_shrink(s, dt=dt, mutate_task=bug),
    )
    report = fuzz.run_fuzz(count=20, seed=0)
    assert not report.ok
    assert report.failure is not None and not report.failure.ok
    assert len(report.cases) < 20  # stopped at the first divergence
    assert "MINIMIZED REPRO" in report.summary()


def test_cli_validate_subcommand_passes(capsys):
    from repro.cli import main

    assert main(["validate", "--fuzz", "3", "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert "divergences: 0" in out
    assert "[  3/3]" in out
