"""The differential harness: agreement, mismatch detection, tolerance."""

import pytest

from repro.validate.differential import (
    Divergence,
    _first_mismatch,
    _tolerance,
    logs_as_text,
    run_differential,
)
from repro.validate.reference import ReferenceResult
from repro.validate.scenario import (
    BarrierOp,
    ComputeOp,
    KernelRunResult,
    Scenario,
    SetPrioOp,
    SleepOp,
    TaskSpec,
)

SMOKE = Scenario(
    tasks=(
        TaskSpec(
            "A", 0,
            (ComputeOp(0.02), BarrierOp(0), ComputeOp(0.01), SetPrioOp(6),
             ComputeOp(0.02)),
            "cpu_bound", 4,
        ),
        TaskSpec(
            "B", 1,
            (ComputeOp(0.05), BarrierOp(0), SleepOp(0.001), ComputeOp(0.03)),
            "mixed", 5,
        ),
        TaskSpec("C", 2, (SleepOp(0.002), ComputeOp(0.04)), "mem_bound", 4),
    ),
    label="smoke",
)


def test_engines_agree_on_smoke_scenario():
    res = run_differential(SMOKE)
    assert res.ok, res.divergence and res.divergence.describe()
    # Both engines produced a complete log for every task.
    for spec in SMOKE.tasks:
        assert len(res.fluid.logs[spec.name]) == len(spec.ops)
        assert len(res.reference.logs[spec.name]) == len(spec.ops)


def test_engines_agree_on_smt_sibling_pair():
    s = Scenario(
        tasks=(
            TaskSpec("A", 0, (ComputeOp(0.01), SetPrioOp(2), ComputeOp(0.01))),
            TaskSpec("B", 1, (ComputeOp(0.015), SleepOp(0.002), ComputeOp(0.01))),
        )
    )
    assert run_differential(s).ok


def test_tolerance_scales_with_ops_and_dt():
    small = Scenario(tasks=(TaskSpec("A", 0, (ComputeOp(0.01),)),))
    assert _tolerance(small, 2e-5) < _tolerance(SMOKE, 2e-5)
    assert _tolerance(SMOKE, 1e-5) < _tolerance(SMOKE, 2e-5)


def _synthetic(logs_f, logs_r, scenario):
    fluid = KernelRunResult(logs=logs_f)
    ref = ReferenceResult(logs=logs_r, intervals={}, exec_time=0.0, steps=0)
    return fluid, ref, scenario


def test_first_mismatch_picks_earliest_divergent_event():
    s = Scenario(
        tasks=(
            TaskSpec("A", 0, (ComputeOp(0.01), ComputeOp(0.01))),
            TaskSpec("B", 2, (ComputeOp(0.01),)),
        )
    )
    fluid, ref, s = _synthetic(
        {"A": [(0, 1.0), (1, 9.0)], "B": [(0, 2.0)]},
        {"A": [(0, 1.0), (1, 2.5)], "B": [(0, 5.0)]},
        s,
    )
    # B diverges at t=2.0 (earlier than A's divergence at t=2.5).
    name, index, ft, rt = _first_mismatch(fluid, ref, s, tol=0.1)
    assert (name, index) == ("B", 0)
    assert (ft, rt) == (2.0, 5.0)


def test_first_mismatch_flags_missing_events_as_infinite():
    s = Scenario(tasks=(TaskSpec("A", 0, (ComputeOp(0.01), ComputeOp(0.01))),))
    fluid, ref, s = _synthetic(
        {"A": [(0, 1.0)]},
        {"A": [(0, 1.0), (1, 2.0)]},
        s,
    )
    name, index, ft, rt = _first_mismatch(fluid, ref, s, tol=0.1)
    assert (name, index) == ("A", 1)
    assert ft == float("inf") and rt == 2.0


def test_first_mismatch_none_when_within_tolerance():
    s = Scenario(tasks=(TaskSpec("A", 0, (ComputeOp(0.01),)),))
    fluid, ref, s = _synthetic(
        {"A": [(0, 1.00001)]}, {"A": [(0, 1.0)]}, s
    )
    assert _first_mismatch(fluid, ref, s, tol=0.1) is None


def test_divergence_describe_mentions_times_and_delta():
    d = Divergence(
        task="A", op_index=3, op="compute(0.01)",
        fluid_time=1.5, reference_time=1.0, tolerance=0.01,
    )
    assert d.delta == pytest.approx(0.5)
    text = d.describe()
    assert "A" in text and "op[3]" in text and "compute(0.01)" in text


def test_logs_as_text_renders_both_columns():
    res = run_differential(SMOKE)
    text = logs_as_text(res)
    assert "fluid=" in text and "ref=" in text
    for spec in SMOKE.tasks:
        assert f"{spec.name}:" in text


def test_refinement_absorbs_quantization_past_the_budget(monkeypatch):
    """When quantization alone exceeds the a-priori budget (simulated
    here by shrinking the budget below one quantum), the refinement
    pass must classify the delta as quantization — it shrinks with dt —
    instead of reporting a false divergence."""
    import repro.validate.differential as differential

    monkeypatch.setattr(differential, "_TOL_PER_TRANSITION", 0.0)
    monkeypatch.setattr(differential, "_TOL_FLOOR_QUANTA", 0.05)
    s = Scenario(
        tasks=(
            TaskSpec("A", 0, (ComputeOp(0.01),)),
            TaskSpec("B", 1, (ComputeOp(0.03),)),
        )
    )
    res = run_differential(s, dt=2e-3)
    assert res.ok
    assert res.refined
