"""The synth experiment runners: registration, shapes, convergence
payloads, and campaign serializability."""

import json

import pytest

from repro.campaign.spec import summarize_result
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import all_ids, run_by_id
from repro.experiments.synth import (
    run_synth_convergence,
    run_synth_offload,
    run_synth_scatter,
    run_synth_sweep,
)

SMALL = {"ranks": 4, "iterations": 3}


def test_synth_runners_are_registered():
    ids = all_ids()
    for required in (
        "synth_scatter",
        "synth_convergence",
        "synth_sweep",
        "synth_offload",
        "synth_local_bad",
    ):
        assert required in ids


def test_scatter_returns_one_result_per_scheduler():
    out = run_synth_scatter(imbalance=2.0, schedulers=("cfs", "adaptive"), **SMALL)
    assert set(out) == {"cfs", "adaptive"}
    for result in out.values():
        assert isinstance(result, ExperimentResult)
        assert result.exec_time > 0
        assert result.trace is None  # keep_trace defaults off
    # The dynamic heuristic must not lose to the baseline on the
    # fixable (paired) placement.
    assert out["adaptive"].exec_time <= out["cfs"].exec_time * (1 + 1e-9)


def test_local_bad_dispatches_through_the_registry():
    out = run_by_id("synth_local_bad", schedulers=("cfs",), **SMALL)
    assert set(out) == {"cfs"}


def test_offload_shapes():
    out = run_synth_offload(
        ranks=4, iterations=2, messages=3, schedulers=("cfs", "uniform")
    )
    assert set(out) == {"cfs", "uniform"}
    assert all(r.exec_time > 0 for r in out.values())


def test_convergence_reports_metrics_per_scheduler():
    out = run_synth_convergence(
        ranks=4, iterations=8, revert_at=6, schedulers=("adaptive",)
    )
    entry = out["adaptive"]
    assert set(entry) == {"result", "convergence", "reconvergence"}
    conv = entry["convergence"]
    # Auto-eps mode: the threshold comes from the pre-step floor, never
    # below the detector's own 10-point band.
    assert conv["eps"] >= 10.0
    assert conv["converged"]
    assert conv["epochs"] >= 1
    assert conv["sim_time"] > 0
    assert entry["reconvergence"]["converged"]
    # Traces are dropped unless requested.
    assert entry["result"].trace is None
    kept = run_synth_convergence(
        ranks=4, iterations=6, schedulers=("adaptive",), keep_trace=True
    )
    assert kept["adaptive"]["result"].trace is not None
    assert "reconvergence" not in kept["adaptive"]  # no revert_at


def test_convergence_honors_an_explicit_eps():
    out = run_synth_convergence(
        ranks=4, iterations=6, eps=150.0, schedulers=("uniform",)
    )
    conv = out["uniform"]["convergence"]
    assert conv["eps"] == 150.0
    assert conv["converged"]  # 150 points can't be exceeded


def test_sweep_covers_the_feasible_grid():
    out = run_synth_sweep(
        imbalances=(1.0, 4.0),
        ranks=(2, 4),
        iterations=2,
        schedulers=("cfs",),
    )
    cells = out["cells"]
    assert [(c["imbalance"], c["ranks"]) for c in cells] == [
        (1.0, 2),
        (1.0, 4),
        (4.0, 4),  # (4.0, 2) infeasible, dropped
    ]
    for c in cells:
        assert set(c["results"]) == {"cfs"}


def test_synth_results_are_campaign_serializable():
    out = run_synth_convergence(ranks=4, iterations=6, schedulers=("adaptive",))
    summary = summarize_result(out)
    text = json.dumps(summary)  # must not raise
    round_trip = json.loads(text)
    assert round_trip["adaptive"]["convergence"]["converged"] is True
