"""Integration shape tests: reduced-size versions of the paper's
experiments must reproduce who-wins and the rough factors.

These are the repository's core correctness claims; the full-size runs
live in benchmarks/.
"""

import pytest

from repro.experiments import btmz, metbench, metbenchvar, siesta
from repro.experiments.common import run_experiment


# ----------------------------------------------------------------------
# MetBench (Table III shape)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def metbench_matrix():
    iters = 10
    return {
        sched: metbench.run_one(sched, iterations=iters, keep_trace=True)
        for sched in ("cfs", "static", "uniform", "adaptive")
    }


def test_metbench_baseline_imbalance(metbench_matrix):
    base = metbench_matrix["cfs"]
    assert base.tasks["P1"].pct_comp < 30
    assert base.tasks["P2"].pct_comp > 99


def test_metbench_all_balancers_beat_baseline(metbench_matrix):
    base = metbench_matrix["cfs"]
    for sched in ("static", "uniform", "adaptive"):
        gain = metbench_matrix[sched].improvement_over(base)
        assert 8.0 < gain < 16.0, f"{sched}: {gain}"


def test_metbench_dynamic_matches_static(metbench_matrix):
    static = metbench_matrix["static"].exec_time
    uniform = metbench_matrix["uniform"].exec_time
    assert uniform == pytest.approx(static, rel=0.05)


def test_metbench_dynamic_balances_utilizations(metbench_matrix):
    uni = metbench_matrix["uniform"]
    for name in ("P1", "P2", "P3", "P4"):
        assert uni.tasks[name].pct_comp > 90


def test_metbench_converges_in_one_or_two_iterations(metbench_matrix):
    """Paper: 'the scheduler is able to detect the correct hardware
    priority quickly (in one or two iterations)'."""
    uni = metbench_matrix["uniform"]
    first_iter_end = uni.exec_time / 10 * 2.2
    for name, hist in uni.priority_history.items():
        for t, _prio in hist:
            assert t <= first_iter_end
    assert uni.priority_changes == 2  # P2 and P4 -> 6, once each


# ----------------------------------------------------------------------
# MetBenchVar (Table IV shape)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def metbenchvar_matrix():
    return {
        sched: metbenchvar.run_one(sched, iterations=9, k=3, keep_trace=True)
        for sched in ("cfs", "static", "uniform", "adaptive")
    }


def test_metbenchvar_dynamic_beats_static_beats_baseline(metbenchvar_matrix):
    base = metbenchvar_matrix["cfs"].exec_time
    static = metbenchvar_matrix["static"].exec_time
    uniform = metbenchvar_matrix["uniform"].exec_time
    adaptive = metbenchvar_matrix["adaptive"].exec_time
    assert uniform < base
    assert adaptive < base
    # dynamic rebalances the reversed periods; static cannot
    assert uniform <= static * 1.01
    assert adaptive <= static * 1.01


def test_metbenchvar_detector_notices_behaviour_changes(metbenchvar_matrix):
    uni = metbenchvar_matrix["uniform"]
    # priorities changed again after the swaps (more than the initial 2)
    assert uni.priority_changes >= 4


def test_metbenchvar_priorities_flip_after_swap(metbenchvar_matrix):
    uni = metbenchvar_matrix["uniform"]
    hist_p1 = [p for _, p in uni.priority_history["P1"]]
    # P1 starts small (prio 4 implicit), becomes big -> raised to 6
    assert 6 in hist_p1


# ----------------------------------------------------------------------
# BT-MZ (Table V shape)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def btmz_matrix():
    return {
        sched: btmz.run_one(sched, iterations=30, keep_trace=True)
        for sched in ("cfs", "static", "uniform", "adaptive")
    }


def test_btmz_baseline_ladder(btmz_matrix):
    base = btmz_matrix["cfs"]
    comps = [base.tasks[f"P{i}"].pct_comp for i in range(1, 5)]
    assert comps == sorted(comps)
    assert comps[-1] > 99


def test_btmz_improvement_band(btmz_matrix):
    base = btmz_matrix["cfs"]
    for sched in ("static", "uniform", "adaptive"):
        gain = btmz_matrix[sched].improvement_over(base)
        assert 10.0 < gain < 20.0, f"{sched}: {gain}"


def test_btmz_heuristics_reach_stable_state(btmz_matrix):
    uni = btmz_matrix["uniform"]
    assert uni.priority_changes == 1  # P4 -> 6, then frozen
    assert uni.tasks["P4"].pct_comp > 99


# ----------------------------------------------------------------------
# SIESTA (Table VI shape)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def siesta_matrix():
    return {
        sched: siesta.run_one(sched, scf_steps=5, keep_trace=False)
        for sched in ("cfs", "uniform", "adaptive")
    }


@pytest.mark.slow
def test_siesta_improvement_band(siesta_matrix):
    base = siesta_matrix["cfs"]
    for sched in ("uniform", "adaptive"):
        gain = siesta_matrix[sched].improvement_over(base)
        assert 3.0 < gain < 9.0, f"{sched}: {gain}"


@pytest.mark.slow
def test_siesta_utilizations_barely_move(siesta_matrix):
    """The paper's key negative result: HPCSched cannot balance SIESTA;
    the gain is latency, not balance."""
    base = siesta_matrix["cfs"]
    uni = siesta_matrix["uniform"]
    for name in ("P1", "P2", "P3", "P4"):
        assert uni.tasks[name].pct_comp == pytest.approx(
            base.tasks[name].pct_comp, abs=4.0
        )


@pytest.mark.slow
def test_siesta_latency_collapses_under_hpcsched(siesta_matrix):
    base = siesta_matrix["cfs"]
    uni = siesta_matrix["uniform"]
    assert uni.mean_wakeup_latency < base.mean_wakeup_latency
    assert uni.max_wakeup_latency < base.max_wakeup_latency


@pytest.mark.slow
def test_siesta_priorities_flap_without_effect(siesta_matrix):
    """Iteration i does not predict i+1: many priority changes, no
    balance improvement (paper §V-D)."""
    uni = siesta_matrix["uniform"]
    assert uni.priority_changes > 10
