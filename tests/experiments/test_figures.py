"""Figure-generation tests (reduced sizes)."""

import pytest

from repro.experiments.figures import figure1, figure2, figure3, figure6


def test_figure1_class_orders():
    out = figure1()
    assert out["order_standard"] == ["rt", "fair", "idle"]
    assert out["order_hpcsched"] == ["rt", "hpc", "fair", "idle"]
    assert "1. rt" in out["standard"]
    assert "2. hpc" in out["hpcsched"]


def test_figure2_iteration_structure():
    out = figure2(iterations=3)
    spans = out["spans"]
    kinds = [k for k, _, _ in spans]
    # alternating compute / wait pattern (paper Fig. 2)
    assert "RUNNING" in kinds and "WAITING" in kinds
    runs = kinds.count("RUNNING")
    waits = kinds.count("WAITING")
    assert runs >= 3 and waits >= 3
    assert "#" in out["gantt"] and "." in out["gantt"]


@pytest.mark.slow
def test_figure3_renders_all_four_schedulers():
    out = figure3(iterations=4)
    assert set(out) == {"cfs", "static", "uniform", "adaptive"}
    for entry in out.values():
        assert "P1" in entry["gantt"]
        assert entry["exec_time"] > 0


@pytest.mark.slow
def test_figure6_renders_three_schedulers():
    out = figure6(scf_steps=2)
    assert set(out) == {"cfs", "uniform", "adaptive"}
